//! QoS guarantees of the coordinated managers.
//!
//! With perfect models the paper's managers must never cause a significant
//! QoS violation; with analytical models violations must stay small and rare;
//! with relaxed targets the measured slowdown must respect the allowed bound.

use qosrm_core::{CoordinatedRma, ModelKind};
use qosrm_types::{PlatformConfig, QosSpec};
use rma_sim::{compare, CophaseSimulator, SimulationOptions};
use simdb::builder::{build_database_for_mixes, BuildOptions};
use simdb::SimDb;
use workload::WorkloadMix;

fn build(platform: &PlatformConfig, mix: &WorkloadMix) -> SimDb {
    build_database_for_mixes(
        platform,
        std::slice::from_ref(mix),
        &BuildOptions::quick_for_tests(platform),
    )
}

fn cache_sensitive_mix() -> WorkloadMix {
    WorkloadMix::new(
        "qos-mix",
        vec!["mcf_like", "soplex_like", "libquantum_like", "povray_like"],
    )
}

#[test]
fn perfect_model_manager_never_violates_strict_qos() {
    let platform = PlatformConfig::paper2(4);
    let mix = cache_sensitive_mix();
    let db = build(&platform, &mix);
    let qos = vec![QosSpec::STRICT; 4];
    let options = SimulationOptions {
        provide_perfect_tables: true,
        ..Default::default()
    };
    let simulator = CophaseSimulator::new(&db, &mix, options).expect("valid workload");
    let baseline = simulator.run_baseline().unwrap();
    let mut manager = CoordinatedRma::with_model(&platform, qos.clone(), ModelKind::Perfect, true);
    let managed = simulator.run(&mut manager).unwrap();
    let cmp = compare(&baseline, &managed, &qos);
    assert!(
        cmp.violations.is_empty(),
        "perfect-model RM3 must meet every constraint, got {:?}",
        cmp.violations
    );
    // The per-interval violation probability is essentially zero up to
    // transition overheads.
    assert!(cmp.interval_stats.probability() < 0.05);
}

#[test]
fn analytical_model_violations_are_small_and_rare() {
    let platform = PlatformConfig::paper1(4);
    let mix = cache_sensitive_mix();
    let db = build(&platform, &mix);
    let qos = vec![QosSpec::STRICT; 4];
    let options = SimulationOptions {
        provide_mlp_profiles: false,
        ..Default::default()
    };
    let simulator = CophaseSimulator::new(&db, &mix, options).expect("valid workload");
    let baseline = simulator.run_baseline().unwrap();
    let mut manager = CoordinatedRma::paper1(&platform, qos.clone());
    let managed = simulator.run(&mut manager).unwrap();
    let cmp = compare(&baseline, &managed, &qos);
    // The paper reports average violations of 3% and a maximum of 9% caused
    // by modeling error; allow a similar (loose) bound here.
    assert!(
        cmp.max_violation() < 0.15,
        "violations must stay bounded, worst {:.1}%",
        cmp.max_violation() * 100.0
    );
    assert!(cmp.num_violations() <= 2);
}

#[test]
fn relaxed_targets_bound_the_slowdown() {
    let platform = PlatformConfig::paper1(4);
    let mix = cache_sensitive_mix();
    let db = build(&platform, &mix);
    let relaxation = 0.4;
    let qos = vec![QosSpec::relaxed_by(relaxation); 4];
    let options = SimulationOptions {
        provide_mlp_profiles: false,
        provide_perfect_tables: true,
        ..Default::default()
    };
    let simulator = CophaseSimulator::new(&db, &mix, options).expect("valid workload");
    let baseline = simulator.run_baseline().unwrap();
    let mut manager = CoordinatedRma::with_model(&platform, qos.clone(), ModelKind::Perfect, false);
    let managed = simulator.run(&mut manager).unwrap();
    let cmp = compare(&baseline, &managed, &qos);
    assert!(cmp.violations.is_empty(), "{:?}", cmp.violations);
    for (i, slowdown) in cmp.per_app_slowdown.iter().enumerate() {
        assert!(
            *slowdown <= relaxation + 0.02,
            "app {i} slowed by {:.1}%, allowed {:.0}%",
            slowdown * 100.0,
            relaxation * 100.0
        );
    }
    // The relaxation must actually be exploited: someone slows down.
    assert!(cmp.per_app_slowdown.iter().any(|s| *s > 0.05));
}

#[test]
fn per_app_qos_is_respected_when_only_some_apps_are_relaxed() {
    let platform = PlatformConfig::paper1(4);
    let mix = cache_sensitive_mix();
    let db = build(&platform, &mix);
    // Only applications 1 and 2 may slow down.
    let qos = vec![
        QosSpec::STRICT,
        QosSpec::relaxed_by(0.4),
        QosSpec::relaxed_by(0.4),
        QosSpec::STRICT,
    ];
    let options = SimulationOptions {
        provide_mlp_profiles: false,
        provide_perfect_tables: true,
        ..Default::default()
    };
    let simulator = CophaseSimulator::new(&db, &mix, options).expect("valid workload");
    let baseline = simulator.run_baseline().unwrap();
    let mut manager = CoordinatedRma::with_model(&platform, qos.clone(), ModelKind::Perfect, false);
    let managed = simulator.run(&mut manager).unwrap();
    let cmp = compare(&baseline, &managed, &qos);
    assert!(cmp.violations.is_empty(), "{:?}", cmp.violations);
    // The strict applications stay within the significance threshold.
    assert!(cmp.per_app_slowdown[0] < 0.02);
    assert!(cmp.per_app_slowdown[3] < 0.02);
}
