//! Determinism and persistence of the evaluation pipeline.
//!
//! Every step — stream generation, characterization, database construction,
//! the co-phase simulation and the managers themselves — is seeded and must
//! produce bit-identical results across runs, so experiments are reproducible.

use qosrm_core::CoordinatedRma;
use qosrm_types::{PlatformConfig, QosSpec};
use rma_sim::{CophaseSimulator, SimulationOptions};
use simdb::builder::{build_database_for_mixes, BuildOptions};
use workload::{benchmark, PhaseCharacterizer, WorkloadMix};

fn mix() -> WorkloadMix {
    WorkloadMix::new(
        "det",
        vec!["mcf_like", "lbm_like", "gamess_like", "soplex_like"],
    )
}

#[test]
fn characterization_is_deterministic() {
    let platform = PlatformConfig::paper2(4);
    let characterizer = PhaseCharacterizer::new(
        &platform,
        workload::CharacterizationConfig::quick_for_tests(&platform),
    );
    let bench = benchmark("soplex_like").unwrap();
    let a = characterizer.characterize(&bench.phases[0], bench.phase_seed(0));
    let b = characterizer.characterize(&bench.phases[0], bench.phase_seed(0));
    assert_eq!(a, b);
    // A different seed produces a different (but still valid) characterization.
    let c = characterizer.characterize(&bench.phases[0], bench.phase_seed(0) ^ 1);
    assert!(c.validate().is_ok());
    assert_ne!(a, c);
}

#[test]
fn database_and_simulation_are_deterministic() {
    let platform = PlatformConfig::paper2(4);
    let options = BuildOptions::quick_for_tests(&platform);
    let mix = mix();
    let db1 = build_database_for_mixes(&platform, std::slice::from_ref(&mix), &options);
    let db2 = build_database_for_mixes(&platform, std::slice::from_ref(&mix), &options);
    assert_eq!(db1, db2);

    let qos = vec![QosSpec::STRICT; 4];
    let sim = CophaseSimulator::new(&db1, &mix, SimulationOptions::default()).unwrap();
    let mut m1 = CoordinatedRma::paper2(&platform, qos.clone());
    let mut m2 = CoordinatedRma::paper2(&platform, qos.clone());
    let r1 = sim.run(&mut m1).unwrap();
    let r2 = sim.run(&mut m2).unwrap();
    assert_eq!(r1, r2);
}

#[test]
fn identical_seeds_yield_byte_identical_simulation_results() {
    // Two fully independent pipelines (characterization, database and
    // simulation) from the same seeds must agree to the last serialized
    // byte — structural equality could hide NaN or map-ordering drift that
    // would desynchronize persisted artefacts and golden tables.
    let run_pipeline = || {
        let platform = PlatformConfig::paper2(4);
        let options = BuildOptions::quick_for_tests(&platform);
        let mix = mix();
        let db = build_database_for_mixes(&platform, std::slice::from_ref(&mix), &options);
        let sim = CophaseSimulator::new(&db, &mix, SimulationOptions::default()).unwrap();
        let baseline = sim.run_baseline().unwrap();
        let mut manager = CoordinatedRma::paper2(&platform, vec![QosSpec::STRICT; 4]);
        let managed = sim.run(&mut manager).unwrap();
        (
            serde_json::to_string(&baseline).unwrap(),
            serde_json::to_string(&managed).unwrap(),
        )
    };
    let (baseline_a, managed_a) = run_pipeline();
    let (baseline_b, managed_b) = run_pipeline();
    assert_eq!(
        baseline_a, baseline_b,
        "baseline runs must serialize identically"
    );
    assert_eq!(
        managed_a, managed_b,
        "managed runs must serialize identically"
    );
}

#[test]
fn database_survives_a_json_roundtrip() {
    let platform = PlatformConfig::paper2(4);
    let options = BuildOptions::quick_for_tests(&platform);
    let mix = WorkloadMix::new(
        "det-persist",
        vec!["mcf_like", "gamess_like", "gamess_like", "mcf_like"],
    );
    let db = build_database_for_mixes(&platform, std::slice::from_ref(&mix), &options);

    let dir = std::env::temp_dir().join("qosrm-integration");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("roundtrip-db.json");
    simdb::persist::save(&db, &path).unwrap();
    let loaded = simdb::persist::load(&path).unwrap();
    assert_eq!(db, loaded);

    // A simulation on the reloaded database gives identical results.
    let qos = vec![QosSpec::STRICT; 4];
    let sim_a = CophaseSimulator::new(&db, &mix, SimulationOptions::default()).unwrap();
    let sim_b = CophaseSimulator::new(&loaded, &mix, SimulationOptions::default()).unwrap();
    let mut ma = CoordinatedRma::paper1(&platform, qos.clone());
    let mut mb = CoordinatedRma::paper1(&platform, qos.clone());
    assert_eq!(sim_a.run(&mut ma), sim_b.run(&mut mb));
    std::fs::remove_file(&path).ok();
}

#[test]
fn different_workload_orders_give_identical_per_benchmark_records() {
    let platform = PlatformConfig::paper2(4);
    let options = BuildOptions::quick_for_tests(&platform);
    let mix_a = WorkloadMix::new("a", vec!["mcf_like", "lbm_like", "mcf_like", "lbm_like"]);
    let mix_b = WorkloadMix::new("b", vec!["lbm_like", "mcf_like", "lbm_like", "mcf_like"]);
    let db_a = build_database_for_mixes(&platform, std::slice::from_ref(&mix_a), &options);
    let db_b = build_database_for_mixes(&platform, std::slice::from_ref(&mix_b), &options);
    assert_eq!(db_a.benchmark("mcf_like"), db_b.benchmark("mcf_like"));
    assert_eq!(db_a.benchmark("lbm_like"), db_b.benchmark("lbm_like"));
}
