//! Shape checks of the headline results: who wins, and roughly by how much,
//! must match the paper even though absolute numbers differ (our substrate is
//! a synthetic simulator, not the authors' Sniper/McPAT setup).

use qosrm_core::CoordinatedRma;
use qosrm_types::{PlatformConfig, QosSpec};
use rma_sim::{compare, Comparison, CophaseSimulator, SimulationOptions};
use simdb::builder::{build_database_for_mixes, BuildOptions};
use simdb::SimDb;
use workload::WorkloadMix;

fn build(platform: &PlatformConfig, mix: &WorkloadMix) -> SimDb {
    build_database_for_mixes(
        platform,
        std::slice::from_ref(mix),
        &BuildOptions::quick_for_tests(platform),
    )
}

fn run(
    db: &SimDb,
    mix: &WorkloadMix,
    manager: &mut dyn qosrm_types::ResourceManager,
    qos: &[QosSpec],
    paper2_hw: bool,
) -> Comparison {
    let options = SimulationOptions {
        provide_mlp_profiles: paper2_hw,
        ..Default::default()
    };
    let simulator = CophaseSimulator::new(db, mix, options).expect("valid workload");
    let baseline = simulator.run_baseline().unwrap();
    let managed = simulator.run(manager).unwrap();
    compare(&baseline, &managed, qos)
}

#[test]
fn combined_rma_beats_partitioning_only_on_cache_sensitive_mixes() {
    let platform = PlatformConfig::paper1(4);
    let mix = WorkloadMix::new(
        "shape-cs",
        vec!["mcf_like", "soplex_like", "libquantum_like", "gamess_like"],
    );
    let db = build(&platform, &mix);
    let qos = vec![QosSpec::STRICT; 4];

    let mut combined = CoordinatedRma::paper1(&platform, qos.clone());
    let combined_cmp = run(&db, &mix, &mut combined, &qos, false);
    let mut partitioning = CoordinatedRma::partitioning_only(&platform, qos.clone());
    let partitioning_cmp = run(&db, &mix, &mut partitioning, &qos, false);

    assert!(
        combined_cmp.energy_savings > 0.03,
        "combined RMA should save a few percent, got {:.3}",
        combined_cmp.energy_savings
    );
    assert!(
        combined_cmp.energy_savings > partitioning_cmp.energy_savings,
        "coordination must beat partitioning alone ({:.3} vs {:.3})",
        combined_cmp.energy_savings,
        partitioning_cmp.energy_savings
    );
}

#[test]
fn dvfs_only_cannot_save_energy_under_strict_qos() {
    let platform = PlatformConfig::paper1(4);
    let mix = WorkloadMix::new(
        "shape-dvfs",
        vec!["mcf_like", "soplex_like", "milc_like", "povray_like"],
    );
    let db = build(&platform, &mix);
    let qos = vec![QosSpec::STRICT; 4];
    let mut dvfs = CoordinatedRma::dvfs_only(&platform, qos.clone());
    let cmp = run(&db, &mix, &mut dvfs, &qos, false);
    // The paper: "an RMA that controls only DVFS cannot save energy without
    // degrading the performance".
    assert!(
        cmp.energy_savings.abs() < 0.02,
        "got {:.3}",
        cmp.energy_savings
    );
    assert!(cmp.violations.is_empty());
}

#[test]
fn rm3_beats_rm2_when_parallelism_sensitivity_is_present() {
    let platform = PlatformConfig::paper2(4);
    // Scenario-1 style mix: cache-sensitive + parallelism-sensitive apps.
    let mix = WorkloadMix::new(
        "shape-s1",
        vec![
            "soplex_like",
            "gems_fdtd_like",
            "mcf_like",
            "libquantum_like",
        ],
    );
    let db = build(&platform, &mix);
    let qos = vec![QosSpec::STRICT; 4];

    let mut rm2 = CoordinatedRma::paper1(&platform, qos.clone());
    let rm2_cmp = run(&db, &mix, &mut rm2, &qos, true);
    let mut rm3 = CoordinatedRma::paper2(&platform, qos.clone());
    let rm3_cmp = run(&db, &mix, &mut rm3, &qos, true);

    assert!(
        rm3_cmp.energy_savings > 0.05,
        "RM3 got {:.3}",
        rm3_cmp.energy_savings
    );
    assert!(
        rm3_cmp.energy_savings > rm2_cmp.energy_savings + 0.01,
        "RM3 must add savings over RM2 in scenario 1 ({:.3} vs {:.3})",
        rm3_cmp.energy_savings,
        rm2_cmp.energy_savings
    );
}

#[test]
fn no_manager_saves_much_on_purely_compute_bound_mixes() {
    let platform = PlatformConfig::paper2(4);
    let mix = WorkloadMix::new(
        "shape-s4",
        vec!["gamess_like", "povray_like", "gobmk_like", "sjeng_like"],
    );
    let db = build(&platform, &mix);
    let qos = vec![QosSpec::STRICT; 4];

    let mut rm2 = CoordinatedRma::paper1(&platform, qos.clone());
    let rm2_cmp = run(&db, &mix, &mut rm2, &qos, true);
    let mut rm3 = CoordinatedRma::paper2(&platform, qos.clone());
    let rm3_cmp = run(&db, &mix, &mut rm3, &qos, true);

    // The paper's scenario 4: all-insensitive workloads leave (almost) no
    // room — and must in particular never cost a lot of energy.
    assert!(
        rm2_cmp.energy_savings.abs() < 0.05,
        "RM2 {:.3}",
        rm2_cmp.energy_savings
    );
    assert!(
        rm3_cmp.energy_savings > -0.02 && rm3_cmp.energy_savings < 0.08,
        "RM3 {:.3}",
        rm3_cmp.energy_savings
    );
}

#[test]
fn relaxing_qos_increases_savings_monotonically() {
    let platform = PlatformConfig::paper1(4);
    let mix = WorkloadMix::new(
        "shape-relax",
        vec!["mcf_like", "soplex_like", "milc_like", "hmmer_like"],
    );
    let db = build(&platform, &mix);
    let mut previous = f64::NEG_INFINITY;
    for relaxation in [0.0, 0.2, 0.4] {
        let qos = vec![QosSpec::relaxed_by(relaxation); 4];
        let options = SimulationOptions {
            provide_mlp_profiles: false,
            provide_perfect_tables: true,
            ..Default::default()
        };
        let simulator = CophaseSimulator::new(&db, &mix, options).expect("valid workload");
        let baseline = simulator.run_baseline().unwrap();
        let mut manager = CoordinatedRma::with_model(
            &platform,
            qos.clone(),
            qosrm_core::ModelKind::Perfect,
            false,
        );
        let managed = simulator.run(&mut manager).unwrap();
        let cmp = compare(&baseline, &managed, &qos);
        assert!(
            cmp.energy_savings >= previous - 0.01,
            "savings must not shrink when QoS is relaxed ({previous:.3} -> {:.3} at {relaxation})",
            cmp.energy_savings
        );
        previous = cmp.energy_savings;
    }
    assert!(
        previous > 0.10,
        "40% relaxation should unlock >10% savings, got {previous:.3}"
    );
}
