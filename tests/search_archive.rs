//! Determinism and replay guarantees of the Pareto-front scenario search:
//!
//! * two same-seed runs produce byte-identical archive directories
//!   (manifest, every spec file, every result file);
//! * every archived spec loads, validates, lowers, and — replayed through
//!   the streaming run/merge pipeline — reproduces the stored result file
//!   byte-for-byte, so fitness evaluations are auditable after the fact;
//! * the manifest is internally consistent: schema tag, Pareto Strength
//!   member order, mutual nondominance of the archived front, and a
//!   capacity bound the member list respects.

use experiments::search::{self, SearchConfig, SearchManifest, MANIFEST_SCHEMA};
use experiments::spec::ScenarioSpec;
use experiments::{stream, ExperimentContext, StreamOptions};
use std::collections::BTreeMap;
use std::fs;
use std::path::{Path, PathBuf};

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("qosrm_search_it_{tag}_{}", std::process::id()));
    fs::remove_dir_all(&dir).ok();
    dir
}

fn quick_config() -> SearchConfig {
    SearchConfig {
        seed: 2026,
        generations: 2,
        population: 4,
        capacity: 3,
        ..SearchConfig::default()
    }
}

/// Every file of an archive directory, name -> bytes.
fn archive_bytes(dir: &Path) -> BTreeMap<String, Vec<u8>> {
    let mut files = BTreeMap::new();
    for entry in fs::read_dir(dir)
        .expect("archive directory exists")
        .flatten()
    {
        let name = entry.file_name().to_string_lossy().into_owned();
        files.insert(name, fs::read(entry.path()).expect("archive file reads"));
    }
    files
}

#[test]
fn same_seed_archives_are_byte_identical() {
    let ctx = ExperimentContext::new(true);
    let config = quick_config();
    let (a, b) = (temp_dir("seed_a"), temp_dir("seed_b"));

    let first = search::run(&config, &ctx, &a).expect("first search runs");
    let second = search::run(&config, &ctx, &b).expect("second search runs");
    assert_eq!(first, second, "reports diverged between same-seed runs");

    let (bytes_a, bytes_b) = (archive_bytes(&a), archive_bytes(&b));
    assert!(!bytes_a.is_empty(), "archive is empty");
    assert_eq!(
        bytes_a.keys().collect::<Vec<_>>(),
        bytes_b.keys().collect::<Vec<_>>(),
        "archive file sets diverged"
    );
    for (name, bytes) in &bytes_a {
        assert_eq!(bytes, &bytes_b[name], "{name} diverged between runs");
    }
    fs::remove_dir_all(&a).ok();
    fs::remove_dir_all(&b).ok();
}

#[test]
fn rerun_over_an_existing_archive_drops_stale_members() {
    let ctx = ExperimentContext::new(true);
    let dir = temp_dir("rewrite");

    search::run(&quick_config(), &ctx, &dir).expect("first search runs");
    let mut other = quick_config();
    other.seed = 9999;
    search::run(&other, &ctx, &dir).expect("second search runs over the same directory");

    let manifest = SearchManifest::load(&dir).expect("manifest loads");
    assert_eq!(manifest.seed, 9999);
    let expected: Vec<String> = std::iter::once(search::MANIFEST_FILE.to_string())
        .chain(
            manifest
                .members
                .iter()
                .flat_map(|m| [m.spec_file.clone(), m.result_file.clone()]),
        )
        .collect();
    let mut on_disk: Vec<String> = archive_bytes(&dir).into_keys().collect();
    let mut expected_sorted = expected;
    expected_sorted.sort();
    on_disk.sort();
    assert_eq!(
        on_disk, expected_sorted,
        "directory contents must equal the manifest exactly"
    );
    fs::remove_dir_all(&dir).ok();
}

#[test]
fn archived_specs_replay_byte_identically_through_the_streaming_pipeline() {
    let ctx = ExperimentContext::new(true);
    let dir = temp_dir("replay");
    search::run(&quick_config(), &ctx, &dir).expect("search runs");

    let manifest = SearchManifest::load(&dir).expect("manifest loads");
    assert_eq!(manifest.schema, MANIFEST_SCHEMA);
    assert!(
        manifest.quick,
        "quick-mode flag must be recorded for replays"
    );
    assert!(manifest.members.len() <= manifest.capacity);
    assert!(!manifest.members.is_empty());

    // The archived front is mutually nondominated and listed in Pareto
    // Strength order.
    let fitnesses: Vec<_> = manifest.members.iter().map(|m| m.fitness).collect();
    for (i, a) in fitnesses.iter().enumerate() {
        for (j, b) in fitnesses.iter().enumerate() {
            assert!(
                i == j || !a.dominates(b),
                "archive member {i} dominates member {j}"
            );
        }
    }
    let ranked = search::rank_by_strength(&fitnesses);
    assert_eq!(
        ranked,
        (0..fitnesses.len()).collect::<Vec<_>>(),
        "members are not in Pareto Strength order"
    );

    // Every member replays through run+merge to its stored result bytes.
    for member in &manifest.members {
        let spec = ScenarioSpec::load(&dir.join(&member.spec_file)).expect("archived spec loads");
        spec.lower().expect("archived spec lowers");
        let run_dir = temp_dir(&format!("replay_{}", member.id));
        let report = stream::run(&spec, &ctx, &run_dir, &StreamOptions::default())
            .expect("replay run completes");
        assert!(report.finished);
        let merged = stream::merge(&run_dir).expect("replay merges");
        let replay_path = run_dir.join("result.json");
        merged.save(&replay_path).expect("replay result saves");
        assert_eq!(
            fs::read(&replay_path).expect("replay bytes"),
            fs::read(dir.join(&member.result_file)).expect("stored bytes"),
            "replay of {} diverged from its archived result",
            member.id
        );
        fs::remove_dir_all(&run_dir).ok();
    }
    fs::remove_dir_all(&dir).ok();
}
