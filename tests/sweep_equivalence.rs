//! Execution-mode equivalence of the scenario-sweep engine.
//!
//! The sweep options (`parallel`, `memoize`) are pure execution switches:
//! serial, parallel and parallel+memoized runs of the same grid must produce
//! bit-identical result tables, and the experiments built on the engine must
//! render byte-identical reports in every mode.

use experiments::sweep::{self, PlatformAxis, QosAxis, RmaVariant, ScenarioGrid, SweepOptions};
use experiments::{run_experiment, ExperimentContext};
use qosrm_types::{PlatformConfig, QosSpec};
use rma_sim::SimulationOptions;
use workload::paper1_workloads;

fn grid(ctx: &ExperimentContext) -> ScenarioGrid {
    ScenarioGrid {
        platforms: vec![PlatformAxis::new(
            "paper1-4c",
            PlatformConfig::paper1(4),
            ctx.limit_workloads(paper1_workloads(4))
                .into_iter()
                .take(2)
                .collect(),
        )],
        qos: vec![
            QosAxis::uniform("strict", QosSpec::STRICT),
            QosAxis::uniform("relaxed 40%", QosSpec::relaxed_by(0.4)),
        ],
        variants: vec![
            RmaVariant::Paper1,
            RmaVariant::PartitioningOnly,
            RmaVariant::NashBestResponse,
            RmaVariant::NashEquilibrium,
        ],
        options: SimulationOptions {
            provide_mlp_profiles: false,
            ..Default::default()
        },
    }
}

#[test]
fn serial_parallel_and_memoized_sweeps_are_bit_identical() {
    // Separate contexts so each mode starts from a cold curve cache.
    let serial_ctx = ExperimentContext::new(true).with_sweep_options(SweepOptions::serial());
    let parallel_ctx = ExperimentContext::new(true).with_sweep_options(SweepOptions {
        parallel: true,
        memoize: false,
        incremental: false,
    });
    let memoized_ctx = ExperimentContext::new(true).with_sweep_options(SweepOptions {
        parallel: true,
        memoize: true,
        incremental: false,
    });
    let incremental_ctx = ExperimentContext::new(true).with_sweep_options(SweepOptions {
        parallel: true,
        memoize: true,
        incremental: true,
    });

    let serial = sweep::run(&grid(&serial_ctx), &serial_ctx);
    let parallel = sweep::run(&grid(&parallel_ctx), &parallel_ctx);
    let memoized = sweep::run(&grid(&memoized_ctx), &memoized_ctx);
    let incremental = sweep::run(&grid(&incremental_ctx), &incremental_ctx);

    assert_eq!(serial, parallel, "parallel execution changed sweep results");
    assert_eq!(serial, memoized, "curve memoization changed sweep results");
    assert_eq!(
        serial, incremental,
        "the incremental delta path changed sweep results"
    );

    // The incremental run actually took the delta path, and skipped work.
    // Both contexts share a curve cache, so a key's *first* occurrence is
    // built either way (a digest can only recur after its first sighting):
    // builds stay equal, and the savings show up as skipped cache lookups
    // and skipped convolution work instead.
    let cold = memoized_ctx.rma_telemetry().snapshot();
    let delta = incremental_ctx.rma_telemetry().snapshot();
    assert_eq!(cold.invocations, delta.invocations);
    assert_eq!(cold.delta_invocations, 0);
    assert!(delta.delta_invocations > 0, "delta path never taken");
    assert!(delta.warm_rows_reused > 0, "warm arena never reused a row");
    assert_eq!(delta.curve_builds, cold.curve_builds);
    let cold_lookups = memoized_ctx.curve_cache().hits() + memoized_ctx.curve_cache().misses();
    let delta_lookups =
        incremental_ctx.curve_cache().hits() + incremental_ctx.curve_cache().misses();
    assert!(
        delta_lookups < cold_lookups,
        "digest diffing must short-circuit cache lookups ({delta_lookups} vs {cold_lookups})"
    );
    assert!(
        delta.reduction_ops < cold.reduction_ops,
        "warm rows + incumbent pruning must cut convolution work ({} vs {})",
        delta.reduction_ops,
        cold.reduction_ops
    );

    // The memoized run actually exercised the cache.
    assert_eq!(
        serial_ctx.curve_cache().hits() + serial_ctx.curve_cache().misses(),
        0
    );
    assert!(memoized_ctx.curve_cache().hits() > 0, "cache never hit");
    assert!(
        memoized_ctx.curve_cache().misses() > 0,
        "cache never filled"
    );
}

#[test]
fn experiment_reports_render_identically_in_every_mode() {
    let serial_ctx = ExperimentContext::new(true).with_sweep_options(SweepOptions::serial());
    let default_ctx = ExperimentContext::new(true);
    // e3 exercises the perfect-table digest branch of the curve-cache key;
    // e10 the game-theoretic manager variants.
    for id in ["e1", "e3", "e7", "e10"] {
        let serial = run_experiment(id, &serial_ctx).unwrap().render();
        let fast = run_experiment(id, &default_ctx).unwrap().render();
        assert_eq!(serial, fast, "{id} rendered differently across sweep modes");
    }
}

#[test]
fn memoization_pays_off_within_one_sweep() {
    let ctx = ExperimentContext::new(true);
    let result = sweep::run(&grid(&ctx), &ctx);
    assert_eq!(result.scenarios.len(), 16);
    let cache = ctx.curve_cache();
    let total = cache.hits() + cache.misses();
    assert!(
        cache.hit_rate() > 0.2,
        "expected recurring observations across scenarios, hit rate {:.3} of {total}",
        cache.hit_rate()
    );
}
