//! Execution-mode equivalence of the scenario-sweep engine.
//!
//! The sweep options (`parallel`, `memoize`) are pure execution switches:
//! serial, parallel and parallel+memoized runs of the same grid must produce
//! bit-identical result tables, and the experiments built on the engine must
//! render byte-identical reports in every mode.

use experiments::sweep::{self, PlatformAxis, QosAxis, RmaVariant, ScenarioGrid, SweepOptions};
use experiments::{run_experiment, ExperimentContext};
use qosrm_types::{PlatformConfig, QosSpec};
use rma_sim::SimulationOptions;
use workload::paper1_workloads;

fn grid(ctx: &ExperimentContext) -> ScenarioGrid {
    ScenarioGrid {
        platforms: vec![PlatformAxis::new(
            "paper1-4c",
            PlatformConfig::paper1(4),
            ctx.limit_workloads(paper1_workloads(4))
                .into_iter()
                .take(2)
                .collect(),
        )],
        qos: vec![
            QosAxis::uniform("strict", QosSpec::STRICT),
            QosAxis::uniform("relaxed 40%", QosSpec::relaxed_by(0.4)),
        ],
        variants: vec![
            RmaVariant::Paper1,
            RmaVariant::PartitioningOnly,
            RmaVariant::NashBestResponse,
            RmaVariant::NashEquilibrium,
        ],
        options: SimulationOptions {
            provide_mlp_profiles: false,
            ..Default::default()
        },
    }
}

#[test]
fn serial_parallel_and_memoized_sweeps_are_bit_identical() {
    // Separate contexts so each mode starts from a cold curve cache.
    let serial_ctx = ExperimentContext::new(true).with_sweep_options(SweepOptions::serial());
    let parallel_ctx = ExperimentContext::new(true).with_sweep_options(SweepOptions {
        parallel: true,
        memoize: false,
    });
    let memoized_ctx = ExperimentContext::new(true).with_sweep_options(SweepOptions {
        parallel: true,
        memoize: true,
    });

    let serial = sweep::run(&grid(&serial_ctx), &serial_ctx);
    let parallel = sweep::run(&grid(&parallel_ctx), &parallel_ctx);
    let memoized = sweep::run(&grid(&memoized_ctx), &memoized_ctx);

    assert_eq!(serial, parallel, "parallel execution changed sweep results");
    assert_eq!(serial, memoized, "curve memoization changed sweep results");

    // The memoized run actually exercised the cache.
    assert_eq!(
        serial_ctx.curve_cache().hits() + serial_ctx.curve_cache().misses(),
        0
    );
    assert!(memoized_ctx.curve_cache().hits() > 0, "cache never hit");
    assert!(
        memoized_ctx.curve_cache().misses() > 0,
        "cache never filled"
    );
}

#[test]
fn experiment_reports_render_identically_in_every_mode() {
    let serial_ctx = ExperimentContext::new(true).with_sweep_options(SweepOptions::serial());
    let default_ctx = ExperimentContext::new(true);
    // e3 exercises the perfect-table digest branch of the curve-cache key;
    // e10 the game-theoretic manager variants.
    for id in ["e1", "e3", "e7", "e10"] {
        let serial = run_experiment(id, &serial_ctx).unwrap().render();
        let fast = run_experiment(id, &default_ctx).unwrap().render();
        assert_eq!(serial, fast, "{id} rendered differently across sweep modes");
    }
}

#[test]
fn memoization_pays_off_within_one_sweep() {
    let ctx = ExperimentContext::new(true);
    let result = sweep::run(&grid(&ctx), &ctx);
    assert_eq!(result.scenarios.len(), 16);
    let cache = ctx.curve_cache();
    let total = cache.hits() + cache.misses();
    assert!(
        cache.hit_rate() > 0.2,
        "expected recurring observations across scenarios, hit rate {:.3} of {total}",
        cache.hit_rate()
    );
}
