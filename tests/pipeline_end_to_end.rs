//! End-to-end integration of the whole pipeline:
//! synthetic workload -> characterization -> simulation database -> co-phase
//! simulator -> coordinated resource manager -> energy/QoS comparison.

use qosrm_core::CoordinatedRma;
use qosrm_types::{PlatformConfig, QosSpec};
use rma_sim::{compare, CophaseSimulator, SimulationOptions};
use simdb::builder::{build_database_for_mixes, BuildOptions};
use simdb::GroundTruth;
use workload::WorkloadMix;

fn mixed_workload() -> WorkloadMix {
    WorkloadMix::new(
        "it-mixed",
        vec!["mcf_like", "libquantum_like", "gamess_like", "soplex_like"],
    )
}

#[test]
fn full_pipeline_runs_and_saves_energy_without_violations_in_aggregate() {
    let platform = PlatformConfig::paper2(4);
    let mix = mixed_workload();
    let db = build_database_for_mixes(
        &platform,
        std::slice::from_ref(&mix),
        &BuildOptions::quick_for_tests(&platform),
    );
    assert_eq!(db.len(), 4);
    assert!(db.validate().is_ok());

    let qos = vec![QosSpec::STRICT; 4];
    let simulator =
        CophaseSimulator::new(&db, &mix, SimulationOptions::default()).expect("valid workload");
    let baseline = simulator.run_baseline().unwrap();
    let mut manager = CoordinatedRma::paper2(&platform, qos.clone());
    let managed = simulator.run(&mut manager).unwrap();
    let cmp = compare(&baseline, &managed, &qos);

    // Every application completed its first round in both runs.
    for (b, m) in baseline.per_app.iter().zip(managed.per_app.iter()) {
        assert_eq!(b.intervals, m.intervals, "{}", b.benchmark);
        assert!(m.execution_seconds > 0.0 && m.energy_joules > 0.0);
    }
    // The manager was actually exercised.
    assert!(managed.rma_invocations > 0);
    assert!(
        managed.setting_changes > 0,
        "RM3 should change the setting on this mix"
    );
    // A cache-sensitive + streaming + compute mix is the favourable case:
    // energy must go down, not up.
    assert!(
        cmp.energy_savings > 0.01,
        "expected positive savings, got {:.3}",
        cmp.energy_savings
    );
    // Energy breakdown components must sum to the reported total.
    let total = managed.energy_breakdown.total();
    assert!((total - managed.system_energy_joules).abs() / total < 1e-6);
}

#[test]
fn ground_truth_queries_are_consistent_with_simulated_baseline() {
    let platform = PlatformConfig::paper1(4);
    let mix = mixed_workload();
    let db = build_database_for_mixes(
        &platform,
        std::slice::from_ref(&mix),
        &BuildOptions::quick_for_tests(&platform),
    );
    let gt = GroundTruth::new(&platform);
    let options = SimulationOptions {
        provide_mlp_profiles: false,
        ..Default::default()
    };
    let simulator = CophaseSimulator::new(&db, &mix, options).expect("valid workload");
    let baseline = simulator.run_baseline().unwrap();

    // The baseline run's interval durations must equal the ground-truth
    // timing of the corresponding phase at the baseline setting.
    let record = db.benchmark("gamess_like").unwrap();
    let app_idx = mix
        .benchmarks
        .iter()
        .position(|b| b == "gamess_like")
        .unwrap();
    let baseline_setting =
        qosrm_types::SystemSetting::baseline(&platform).core(qosrm_types::CoreId(app_idx));
    for interval in baseline
        .intervals
        .iter()
        .filter(|r| r.app.index() == app_idx)
        .take(5)
    {
        let phase = record.phase(interval.phase);
        let expected = gt.metrics_at(phase, baseline_setting).time_seconds;
        assert!(
            (interval.time_seconds - expected).abs() / expected < 0.05,
            "interval {} took {:.4}s, ground truth {:.4}s",
            interval.interval_index,
            interval.time_seconds,
            expected
        );
    }
}

#[test]
fn eight_core_pipeline_completes() {
    let platform = PlatformConfig::paper2(8);
    let mix = WorkloadMix::new(
        "it-8core",
        vec![
            "mcf_like",
            "libquantum_like",
            "gamess_like",
            "soplex_like",
            "lbm_like",
            "omnetpp_like",
            "povray_like",
            "gcc_like",
        ],
    );
    let db = build_database_for_mixes(
        &platform,
        std::slice::from_ref(&mix),
        &BuildOptions::quick_for_tests(&platform),
    );
    let qos = vec![QosSpec::STRICT; 8];
    let simulator =
        CophaseSimulator::new(&db, &mix, SimulationOptions::default()).expect("valid workload");
    let baseline = simulator.run_baseline().unwrap();
    let mut manager = CoordinatedRma::paper1(&platform, qos.clone());
    let managed = simulator.run(&mut manager).unwrap();
    let cmp = compare(&baseline, &managed, &qos);
    assert_eq!(managed.per_app.len(), 8);
    assert!(
        cmp.energy_savings > -0.05,
        "managed run must not waste energy grossly"
    );
}
