//! Smoke tests of the experiment runners (quick mode): every experiment the
//! DESIGN.md index lists must run, produce rows and stay within loose sanity
//! bounds. The full-mode numbers are recorded in EXPERIMENTS.md.

use experiments::{run_experiment, ExperimentContext, ALL_EXPERIMENTS};

#[test]
fn every_experiment_id_is_registered() {
    let ctx = ExperimentContext::new(true);
    // Unknown ids are rejected rather than silently ignored.
    assert!(run_experiment("e42", &ctx).is_none());
    assert_eq!(ALL_EXPERIMENTS.len(), 10);
}

#[test]
fn overhead_experiments_match_paper_scale() {
    let ctx = ExperimentContext::new(true);
    let e5 = run_experiment("e5", &ctx).expect("e5 exists");
    assert_eq!(e5.rows.len(), 3);
    let four_core = e5.rows.iter().find(|r| r.label == "4-core").unwrap();
    assert!(
        four_core
            .get("Instructions / invocation (measured)")
            .unwrap()
            < 40_000.0
    );

    let e9 = run_experiment("e9", &ctx).expect("e9 exists");
    assert_eq!(e9.rows.len(), 3);
    for row in &e9.rows {
        assert!(row.get("% of 100M interval").unwrap() < 0.1);
    }
}

#[test]
fn paper1_energy_experiment_produces_positive_average_savings() {
    let ctx = ExperimentContext::new(true);
    let e1 = run_experiment("e1", &ctx).expect("e1 exists");
    assert!(!e1.rows.is_empty());
    let savings: Vec<f64> = e1
        .rows
        .iter()
        .filter_map(|r| r.get("Combined savings %"))
        .collect();
    let avg = savings.iter().sum::<f64>() / savings.len() as f64;
    assert!(
        avg > 1.0,
        "average combined savings should be positive, got {avg:.2}%"
    );
    // The rendered table mentions both managers.
    let rendered = e1.render();
    assert!(rendered.contains("Combined savings %"));
    assert!(rendered.contains("Partitioning savings %"));
}

#[test]
fn price_of_anarchy_experiment_reports_selfishness_cost() {
    let ctx = ExperimentContext::new(true);
    let e10 = run_experiment("e10", &ctx).expect("e10 exists");
    assert!(!e10.rows.is_empty());
    assert_eq!(e10.summary.len(), 1);
    for row in &e10.rows {
        // Selfish play cannot beat the cooperative optimum (PoA ≥ 1 − ε)
        // and the selected best equilibrium must track it closely.
        let br = row.get("NashBR PoA").expect("NashBR PoA column");
        let eq = row.get("NashEq PoA").expect("NashEq PoA column");
        assert!(br >= 0.98, "NashBR PoA {br:.4} < 1 - ε on {}", row.label);
        assert!(eq >= 0.98, "NashEq PoA {eq:.4} < 1 - ε on {}", row.label);
        assert!(eq <= br + 0.02, "best equilibrium worse than best response");
    }
    let rendered = e10.render();
    assert!(rendered.contains("NashBR PoA"));
    assert!(rendered.contains("NashEq PoA"));
}

#[test]
fn paper2_scenario_experiment_has_rm3_at_least_matching_rm2() {
    let ctx = ExperimentContext::new(true);
    let e7 = run_experiment("e7", &ctx).expect("e7 exists");
    assert!(!e7.rows.is_empty());
    let rm2: f64 = e7.rows.iter().filter_map(|r| r.get("RM2 savings %")).sum();
    let rm3: f64 = e7.rows.iter().filter_map(|r| r.get("RM3 savings %")).sum();
    assert!(
        rm3 >= rm2 - 1.0,
        "RM3 must not lose to RM2 overall (rm2 sum {rm2:.1}, rm3 sum {rm3:.1})"
    );
    assert_eq!(e7.summary.len(), 4, "one summary line per scenario");
}
