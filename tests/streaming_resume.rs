//! Equivalence guarantees of the streaming sharded executor:
//!
//! * an existing experiment grid (E1's) run through the streaming executor
//!   merges to a `SweepResult` byte-identical to the in-memory path;
//! * a sweep interrupted after N shards and resumed merges byte-identically
//!   to an uninterrupted run of the same spec — exercised on a synthetic
//!   grid and on E10's game-theoretic manager grid;
//! * the checkpoint manifest tracks per-shard curve-cache statistics.

use experiments::spec::{PlatformAxisSpec, PlatformSpec, ScenarioSpec, WorkloadSource};
use experiments::sweep::{self, QosAxis, RmaVariant, SweepOptions};
use experiments::{stream, ExperimentContext, StreamOptions, SweepManifest};
use qosrm_types::QosSpec;
use std::fs;
use std::path::PathBuf;
use workload::{MixPopulation, SynthSpec};

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("qosrm_streaming_it_{tag}_{}", std::process::id()));
    fs::remove_dir_all(&dir).ok();
    dir
}

/// Serializes a sweep result exactly as `SweepResult::save` writes it.
fn result_bytes(result: &sweep::SweepResult) -> String {
    serde_json::to_string(result).expect("sweep results serialize")
}

#[test]
fn streaming_e1_grid_merges_byte_identically_to_the_in_memory_path() {
    let ctx = ExperimentContext::new(true);
    let spec = experiments::e1_energy_savings::spec(&ctx);
    let grid = spec.lower().expect("the E1 spec lowers");
    let in_memory = sweep::run_with(&grid, &ctx, &SweepOptions::default());

    let dir = temp_dir("e1");
    let report = stream::run(
        &spec,
        &ctx,
        &dir,
        &StreamOptions {
            shard_size: 5,
            ..Default::default()
        },
    )
    .expect("streaming run completes");
    assert!(report.finished);
    let merged = stream::merge(&dir).expect("complete run merges");

    assert_eq!(result_bytes(&merged), result_bytes(&in_memory));

    // The manifest accounts for every scenario and records the shared
    // curve cache's per-shard hit statistics.
    let manifest = SweepManifest::load(&dir).expect("manifest exists");
    assert_eq!(manifest.completed_scenarios, grid.len());
    assert_eq!(
        manifest.shards.iter().map(|s| s.scenarios).sum::<usize>(),
        grid.len()
    );
    let lookups: u64 = manifest
        .shards
        .iter()
        .map(|s| s.curve_hits + s.curve_misses)
        .sum();
    assert!(lookups > 0, "memoized run recorded no curve lookups");
    fs::remove_dir_all(&dir).ok();
}

fn synthetic_spec() -> ScenarioSpec {
    ScenarioSpec {
        name: "resume-equivalence".to_string(),
        platforms: vec![PlatformAxisSpec {
            label: "paper2-4c".to_string(),
            platform: PlatformSpec::Paper2 { num_cores: 4 },
            workloads: WorkloadSource::Synth(SynthSpec {
                seed: 1234,
                count: 8,
                num_cores: 4,
                population: MixPopulation::Mixed,
                name_prefix: "rs-".to_string(),
            }),
        }],
        qos: vec![QosAxis::uniform("strict", QosSpec::STRICT)],
        variants: vec![RmaVariant::Paper1, RmaVariant::Paper2],
        options: None,
    }
}

#[test]
fn interrupted_and_resumed_sweep_merges_byte_identically() {
    let ctx = ExperimentContext::new(true);
    let spec = synthetic_spec();

    // Reference: one uninterrupted streaming run.
    let ref_dir = temp_dir("uninterrupted");
    let report = stream::run(
        &spec,
        &ctx,
        &ref_dir,
        &StreamOptions {
            shard_size: 4,
            ..Default::default()
        },
    )
    .expect("uninterrupted run completes");
    assert!(report.finished);
    let reference = stream::merge(&ref_dir).expect("merges");

    // Interrupted: stop after 2 shards, then resume to completion.
    let dir = temp_dir("interrupted");
    let partial = stream::run(
        &spec,
        &ctx,
        &dir,
        &StreamOptions {
            shard_size: 4,
            max_shards: 2,
            ..Default::default()
        },
    )
    .expect("partial run runs");
    assert!(!partial.finished);
    assert_eq!(partial.completed, 8);
    assert!(
        stream::merge(&dir).is_err(),
        "merging an incomplete run must fail"
    );

    let resumed = stream::resume(
        &ctx,
        &dir,
        &StreamOptions {
            shard_size: 4,
            ..Default::default()
        },
    )
    .expect("resume completes");
    assert!(resumed.finished);
    assert_eq!(resumed.skipped, 8);
    let merged = stream::merge(&dir).expect("resumed run merges");

    assert_eq!(result_bytes(&merged), result_bytes(&reference));

    // Saved result files are byte-identical too (the acceptance criterion
    // the CI smoke step checks with `cmp`).
    let ref_file = ref_dir.join("result.json");
    let resumed_file = dir.join("result.json");
    reference.save(&ref_file).unwrap();
    merged.save(&resumed_file).unwrap();
    assert_eq!(
        fs::read(&ref_file).unwrap(),
        fs::read(&resumed_file).unwrap()
    );

    fs::remove_dir_all(&ref_dir).ok();
    fs::remove_dir_all(&dir).ok();
}

#[test]
fn interrupted_e10_poa_sweep_resumes_byte_identically() {
    // The quick E10 grid (4 mixes × strict × {RM2, NashBR, NashEq} = 12
    // scenarios): the game-theoretic variants must shard, resume and merge
    // byte-identically across the interruption boundary, so the PoA report
    // built from the merged result is byte-stable under kill/resume.
    let ctx = ExperimentContext::new(true);
    let spec = experiments::e10_price_of_anarchy::spec(&ctx);

    let ref_dir = temp_dir("e10_uninterrupted");
    let report = stream::run(
        &spec,
        &ctx,
        &ref_dir,
        &StreamOptions {
            shard_size: 4,
            ..Default::default()
        },
    )
    .expect("uninterrupted E10 run completes");
    assert!(report.finished);
    let reference = stream::merge(&ref_dir).expect("merges");

    let dir = temp_dir("e10_interrupted");
    let partial = stream::run(
        &spec,
        &ctx,
        &dir,
        &StreamOptions {
            shard_size: 4,
            max_shards: 2,
            ..Default::default()
        },
    )
    .expect("partial E10 run runs");
    assert!(!partial.finished);
    assert_eq!(partial.completed, 8);

    let resumed = stream::resume(
        &ctx,
        &dir,
        &StreamOptions {
            shard_size: 4,
            ..Default::default()
        },
    )
    .expect("resume completes");
    assert!(resumed.finished);
    assert_eq!(resumed.skipped, 8);
    let merged = stream::merge(&dir).expect("resumed E10 run merges");

    assert_eq!(result_bytes(&merged), result_bytes(&reference));

    fs::remove_dir_all(&ref_dir).ok();
    fs::remove_dir_all(&dir).ok();
}
