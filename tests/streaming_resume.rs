//! Equivalence guarantees of the streaming sharded executor:
//!
//! * an existing experiment grid (E1's) run through the streaming executor
//!   merges to a `SweepResult` byte-identical to the in-memory path;
//! * a sweep interrupted after N shards and resumed merges byte-identically
//!   to an uninterrupted run of the same spec — exercised on a synthetic
//!   grid and on E10's game-theoretic manager grid;
//! * the checkpoint manifest tracks per-shard curve-cache statistics;
//! * the lease protocol behind the distributed coordinator: an expired
//!   lease reinjects its shard, duplicate completions racing across a
//!   lease epoch resolve to exactly one winning log (in either delivery
//!   order), and a coordinator killed and reopened over the directory
//!   restores unexpired leases so live workers reattach.

use experiments::spec::{PlatformAxisSpec, PlatformSpec, ScenarioSpec, WorkloadSource};
use experiments::sweep::{self, QosAxis, RmaVariant, SweepOptions};
use experiments::{
    dist, stream, ExperimentContext, LeaseCounters, ShardScheduler, StreamOptions, SweepManifest,
};
use qosrm_types::QosSpec;
use std::fs;
use std::path::PathBuf;
use std::sync::Arc;
use workload::{MixPopulation, SynthSpec};

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("qosrm_streaming_it_{tag}_{}", std::process::id()));
    fs::remove_dir_all(&dir).ok();
    dir
}

/// Serializes a sweep result exactly as `SweepResult::save` writes it.
fn result_bytes(result: &sweep::SweepResult) -> String {
    serde_json::to_string(result).expect("sweep results serialize")
}

#[test]
fn streaming_e1_grid_merges_byte_identically_to_the_in_memory_path() {
    let ctx = ExperimentContext::new(true);
    let spec = experiments::e1_energy_savings::spec(&ctx);
    let grid = spec.lower().expect("the E1 spec lowers");
    let in_memory = sweep::run_with(&grid, &ctx, &SweepOptions::default());

    let dir = temp_dir("e1");
    let report = stream::run(
        &spec,
        &ctx,
        &dir,
        &StreamOptions {
            shard_size: 5,
            ..Default::default()
        },
    )
    .expect("streaming run completes");
    assert!(report.finished);
    let merged = stream::merge(&dir).expect("complete run merges");

    assert_eq!(result_bytes(&merged), result_bytes(&in_memory));

    // The manifest accounts for every scenario and records the shared
    // curve cache's per-shard hit statistics.
    let manifest = SweepManifest::load(&dir).expect("manifest exists");
    assert_eq!(manifest.completed_scenarios, grid.len());
    assert_eq!(
        manifest.shards.iter().map(|s| s.scenarios).sum::<usize>(),
        grid.len()
    );
    let lookups: u64 = manifest
        .shards
        .iter()
        .map(|s| s.curve_hits + s.curve_misses)
        .sum();
    assert!(lookups > 0, "memoized run recorded no curve lookups");
    fs::remove_dir_all(&dir).ok();
}

fn synthetic_spec() -> ScenarioSpec {
    ScenarioSpec {
        name: "resume-equivalence".to_string(),
        platforms: vec![PlatformAxisSpec {
            label: "paper2-4c".to_string(),
            platform: PlatformSpec::Paper2 { num_cores: 4 },
            workloads: WorkloadSource::Synth(SynthSpec {
                seed: 1234,
                count: 8,
                num_cores: 4,
                population: MixPopulation::Mixed,
                name_prefix: "rs-".to_string(),
            }),
        }],
        qos: vec![QosAxis::uniform("strict", QosSpec::STRICT)],
        variants: vec![RmaVariant::Paper1, RmaVariant::Paper2],
        options: None,
    }
}

#[test]
fn interrupted_and_resumed_sweep_merges_byte_identically() {
    let ctx = ExperimentContext::new(true);
    let spec = synthetic_spec();

    // Reference: one uninterrupted streaming run.
    let ref_dir = temp_dir("uninterrupted");
    let report = stream::run(
        &spec,
        &ctx,
        &ref_dir,
        &StreamOptions {
            shard_size: 4,
            ..Default::default()
        },
    )
    .expect("uninterrupted run completes");
    assert!(report.finished);
    let reference = stream::merge(&ref_dir).expect("merges");

    // Interrupted: stop after 2 shards, then resume to completion.
    let dir = temp_dir("interrupted");
    let partial = stream::run(
        &spec,
        &ctx,
        &dir,
        &StreamOptions {
            shard_size: 4,
            max_shards: 2,
            ..Default::default()
        },
    )
    .expect("partial run runs");
    assert!(!partial.finished);
    assert_eq!(partial.completed, 8);
    assert!(
        stream::merge(&dir).is_err(),
        "merging an incomplete run must fail"
    );

    let resumed = stream::resume(
        &ctx,
        &dir,
        &StreamOptions {
            shard_size: 4,
            ..Default::default()
        },
    )
    .expect("resume completes");
    assert!(resumed.finished);
    assert_eq!(resumed.skipped, 8);
    let merged = stream::merge(&dir).expect("resumed run merges");

    assert_eq!(result_bytes(&merged), result_bytes(&reference));

    // Saved result files are byte-identical too (the acceptance criterion
    // the CI smoke step checks with `cmp`).
    let ref_file = ref_dir.join("result.json");
    let resumed_file = dir.join("result.json");
    reference.save(&ref_file).unwrap();
    merged.save(&resumed_file).unwrap();
    assert_eq!(
        fs::read(&ref_file).unwrap(),
        fs::read(&resumed_file).unwrap()
    );

    fs::remove_dir_all(&ref_dir).ok();
    fs::remove_dir_all(&dir).ok();
}

#[test]
fn interrupted_e10_poa_sweep_resumes_byte_identically() {
    // The quick E10 grid (4 mixes × strict × {RM2, NashBR, NashEq} = 12
    // scenarios): the game-theoretic variants must shard, resume and merge
    // byte-identically across the interruption boundary, so the PoA report
    // built from the merged result is byte-stable under kill/resume.
    let ctx = ExperimentContext::new(true);
    let spec = experiments::e10_price_of_anarchy::spec(&ctx);

    let ref_dir = temp_dir("e10_uninterrupted");
    let report = stream::run(
        &spec,
        &ctx,
        &ref_dir,
        &StreamOptions {
            shard_size: 4,
            ..Default::default()
        },
    )
    .expect("uninterrupted E10 run completes");
    assert!(report.finished);
    let reference = stream::merge(&ref_dir).expect("merges");

    let dir = temp_dir("e10_interrupted");
    let partial = stream::run(
        &spec,
        &ctx,
        &dir,
        &StreamOptions {
            shard_size: 4,
            max_shards: 2,
            ..Default::default()
        },
    )
    .expect("partial E10 run runs");
    assert!(!partial.finished);
    assert_eq!(partial.completed, 8);

    let resumed = stream::resume(
        &ctx,
        &dir,
        &StreamOptions {
            shard_size: 4,
            ..Default::default()
        },
    )
    .expect("resume completes");
    assert!(resumed.finished);
    assert_eq!(resumed.skipped, 8);
    let merged = stream::merge(&dir).expect("resumed E10 run merges");

    assert_eq!(result_bytes(&merged), result_bytes(&reference));

    fs::remove_dir_all(&ref_dir).ok();
    fs::remove_dir_all(&dir).ok();
}

/// Runs the reference (uninterrupted, single-process) sweep of
/// [`synthetic_spec`] and returns its serialized merge.
fn reference_bytes(ctx: &ExperimentContext, spec: &ScenarioSpec, tag: &str) -> String {
    let ref_dir = temp_dir(tag);
    let report = stream::run(
        spec,
        ctx,
        &ref_dir,
        &StreamOptions {
            shard_size: 4,
            ..Default::default()
        },
    )
    .expect("reference run completes");
    assert!(report.finished);
    let bytes = result_bytes(&stream::merge(&ref_dir).expect("reference merges"));
    fs::remove_dir_all(&ref_dir).ok();
    bytes
}

/// Evaluates a lease's grid points exactly as a distributed worker would.
fn evaluate(ctx: &ExperimentContext, spec: &ScenarioSpec, points: &[u64]) -> (String, u64, u64) {
    dist::evaluate_points(ctx, spec, points, SweepOptions::default()).expect("points evaluate")
}

#[test]
fn expired_lease_reinjects_its_shard_and_the_merge_stays_byte_identical() {
    let ctx = ExperimentContext::new(true);
    let spec = synthetic_spec();
    let reference = reference_bytes(&ctx, &spec, "lease_ref");

    // Drive the scheduler directly with a synthetic clock: w1 takes the
    // first shard and goes silent; w2 drains the rest.
    let dir = temp_dir("lease_expiry");
    let manifest = stream::init_manifest(&spec, true, &dir, 4).expect("manifest inits");
    let counters = Arc::new(LeaseCounters::default());
    let mut scheduler =
        ShardScheduler::open(manifest, &dir, 4, 1_000, counters, false, 0).expect("opens");

    let lost = scheduler.lease("w1", 0).expect("leases").expect("a grant");
    assert_eq!(lost.epoch, 1);
    assert_eq!(lost.expires_ms, 1_000);

    let mut drained = 0;
    while let Some(lease) = scheduler.lease("w2", 100).expect("leases") {
        let (log, hits, misses) = evaluate(&ctx, &spec, &lease.points);
        let outcome = scheduler
            .complete("w2", lease.shard, lease.epoch, &log, hits, misses, 100)
            .expect("completes");
        assert!(outcome.accepted);
        drained += 1;
    }
    assert_eq!(drained, 3, "w1 still holds an unexpired lease at t=100");
    assert!(!scheduler.finished());

    // At t=2000 w1's lease has expired: the next lease call reinjects the
    // lost shard and re-grants it — same points, higher epoch.
    let regrant = scheduler
        .lease("w2", 2_000)
        .expect("leases")
        .expect("the lost shard comes back");
    assert_eq!(regrant.shard, lost.shard);
    assert_eq!(regrant.points, lost.points);
    assert_eq!(regrant.epoch, 2);
    let (log, hits, misses) = evaluate(&ctx, &spec, &regrant.points);
    assert!(
        scheduler
            .complete(
                "w2",
                regrant.shard,
                regrant.epoch,
                &log,
                hits,
                misses,
                2_100
            )
            .expect("completes")
            .accepted
    );
    assert!(scheduler.finished());

    // The presumed-dead worker finishing late is rejected as stale.
    let (late, h, m) = evaluate(&ctx, &spec, &lost.points);
    let outcome = scheduler
        .complete("w1", lost.shard, lost.epoch, &late, h, m, 3_000)
        .expect("resolves");
    assert!(outcome.stale && !outcome.accepted);

    let telemetry = scheduler.telemetry();
    assert_eq!(telemetry.granted, 5);
    assert_eq!(telemetry.expired, 1);
    assert_eq!(telemetry.reinjected, 1);
    assert_eq!(telemetry.stale_rejected, 1);
    assert_eq!(telemetry.completed, 4);
    assert_eq!(telemetry.per_worker.get("w2"), Some(&4));
    assert_eq!(telemetry.per_worker.get("w1"), None);

    let merged = stream::merge(&dir).expect("distributed run merges");
    assert_eq!(result_bytes(&merged), reference);
    fs::remove_dir_all(&dir).ok();
}

#[test]
fn duplicate_shard_completions_resolve_by_lease_epoch_in_either_order() {
    let ctx = ExperimentContext::new(true);
    let spec = synthetic_spec();
    let reference = reference_bytes(&ctx, &spec, "race_ref");

    // Two workers race the same shard across a lease epoch: w1 leases it,
    // goes quiet past expiry, and the shard is re-granted to w2. Whichever
    // order the two completions arrive in, exactly one log wins — the one
    // naming the active epoch. The loser delivers a sentinel payload so
    // the test can prove the rejected log never reaches disk.
    for stale_first in [true, false] {
        let dir = temp_dir(if stale_first { "race_sf" } else { "race_wf" });
        let manifest = stream::init_manifest(&spec, true, &dir, 8).expect("manifest inits");
        let counters = Arc::new(LeaseCounters::default());
        let mut scheduler =
            ShardScheduler::open(manifest, &dir, 8, 1_000, counters, false, 0).expect("opens");

        let contested = scheduler.lease("w1", 0).expect("leases").expect("a grant");
        let other = scheduler.lease("w2", 0).expect("leases").expect("a grant");
        let (log, hits, misses) = evaluate(&ctx, &spec, &other.points);
        assert!(
            scheduler
                .complete("w2", other.shard, other.epoch, &log, hits, misses, 10)
                .expect("completes")
                .accepted
        );

        let regrant = scheduler
            .lease("w2", 2_000)
            .expect("leases")
            .expect("the expired shard is re-granted");
        assert_eq!(regrant.shard, contested.shard);
        assert_eq!(regrant.epoch, contested.epoch + 1);

        let (winner, hits, misses) = evaluate(&ctx, &spec, &regrant.points);
        let corrupt = "{\"never\":\"written\"}\n";
        let deliveries: [(&str, u64, &str, bool); 2] = if stale_first {
            [
                ("w1", contested.epoch, corrupt, false),
                ("w2", regrant.epoch, &winner, true),
            ]
        } else {
            [
                ("w2", regrant.epoch, &winner, true),
                ("w1", contested.epoch, corrupt, false),
            ]
        };
        for (worker, epoch, log, accepted) in deliveries {
            let outcome = scheduler
                .complete(worker, regrant.shard, epoch, log, hits, misses, 2_100)
                .expect("resolves");
            assert_eq!(outcome.accepted, accepted);
            assert_eq!(outcome.stale, !accepted);
        }
        assert!(scheduler.finished());

        let on_disk = fs::read_to_string(dir.join(stream::shard_file_name(regrant.shard)))
            .expect("the winning log is on disk");
        assert_eq!(on_disk, winner, "the stale log must never reach disk");

        let telemetry = scheduler.telemetry();
        assert_eq!(telemetry.stale_rejected, 1);
        assert_eq!(telemetry.expired, 1);
        assert_eq!(telemetry.completed, 2);
        assert_eq!(telemetry.per_worker.get("w2"), Some(&2));

        let merged = stream::merge(&dir).expect("contested run merges");
        assert_eq!(result_bytes(&merged), reference);
        fs::remove_dir_all(&dir).ok();
    }
}

#[test]
fn reopened_scheduler_restores_unexpired_leases_so_live_workers_reattach() {
    let ctx = ExperimentContext::new(true);
    let spec = synthetic_spec();
    let reference = reference_bytes(&ctx, &spec, "restart_ref");

    // First coordinator: w1 holds a long lease, w2 has completed a shard.
    // Dropping the scheduler without further ceremony is a SIGKILL — all
    // scheduling state is already durable in the manifest.
    let dir = temp_dir("restart");
    let manifest = stream::init_manifest(&spec, true, &dir, 4).expect("manifest inits");
    let mut scheduler = ShardScheduler::open(
        manifest,
        &dir,
        4,
        10_000,
        Arc::new(LeaseCounters::default()),
        false,
        0,
    )
    .expect("opens");
    let held = scheduler.lease("w1", 0).expect("leases").expect("a grant");
    let done = scheduler.lease("w2", 0).expect("leases").expect("a grant");
    let (log, hits, misses) = evaluate(&ctx, &spec, &done.points);
    assert!(
        scheduler
            .complete("w2", done.shard, done.epoch, &log, hits, misses, 50)
            .expect("completes")
            .accepted
    );
    drop(scheduler);

    // Second coordinator, same directory, 5s later: w1's lease is not
    // expired, so it must be restored — not reinjected — and w1 simply
    // keeps going: heartbeats renew, and its epoch-1 completion lands.
    let manifest = SweepManifest::load(&dir).expect("manifest reloads");
    let counters = Arc::new(LeaseCounters::default());
    let mut scheduler =
        ShardScheduler::open(manifest, &dir, 4, 10_000, counters, false, 5_000).expect("reopens");
    let extra = scheduler
        .lease("w1", 5_000)
        .expect("leases")
        .expect("a never-granted shard is still pending after the restart");
    assert_ne!(
        extra.shard, held.shard,
        "the live lease must not be re-granted"
    );
    assert_eq!(
        scheduler
            .heartbeat("w1", held.shard, held.epoch, 6_000)
            .expect("beats"),
        Some(16_000),
        "the restored lease renews under its original epoch"
    );
    assert_eq!(
        scheduler
            .heartbeat("w1", held.shard, held.epoch + 1, 6_000)
            .expect("beats"),
        None,
        "a heartbeat naming a never-issued epoch is refused"
    );
    let (log, hits, misses) = evaluate(&ctx, &spec, &held.points);
    assert!(
        scheduler
            .complete("w1", held.shard, held.epoch, &log, hits, misses, 7_000)
            .expect("completes")
            .accepted,
        "the live worker's completion survives the coordinator restart"
    );

    let (log, hits, misses) = evaluate(&ctx, &spec, &extra.points);
    assert!(
        scheduler
            .complete("w1", extra.shard, extra.epoch, &log, hits, misses, 7_000)
            .expect("completes")
            .accepted
    );

    let record = scheduler
        .manifest()
        .leases
        .iter()
        .find(|record| record.shard == held.shard)
        .expect("the held shard has a record");
    assert!(record.done);
    assert_eq!(record.epoch, held.epoch, "epochs never regress on restart");
    while let Some(lease) = scheduler.lease("w1", 7_000).expect("leases") {
        let (log, hits, misses) = evaluate(&ctx, &spec, &lease.points);
        assert!(
            scheduler
                .complete("w1", lease.shard, lease.epoch, &log, hits, misses, 7_000)
                .expect("completes")
                .accepted
        );
    }
    assert!(scheduler.finished());

    let telemetry = scheduler.telemetry();
    assert_eq!(telemetry.renewed, 1);
    assert_eq!(telemetry.expired, 0);
    assert_eq!(telemetry.stale_rejected, 0);

    let merged = stream::merge(&dir).expect("restarted run merges");
    assert_eq!(result_bytes(&merged), reference);
    fs::remove_dir_all(&dir).ok();
}
