//! # qosrm-proto
//!
//! The wire protocol shared by everything that talks over a socket in this
//! workspace: the `qosrm_serve` daemon and its clients, and the distributed
//! sweep coordinator/worker pair (`sweep coordinate` / `sweep work` /
//! `qosrm_worker`).
//!
//! The crate deliberately sits *below* both `experiments` and `qosrm-serve`
//! in the dependency graph: the coordinator lives in `experiments::dist`
//! (so offline multi-process sweeps need no daemon), the daemon embeds the
//! same coordinator behind its own endpoints, and both speak the byte-level
//! protocol defined here.
//!
//! Two modules:
//!
//! * [`http`] — the hand-rolled minimal HTTP/1.0 subset ([`std::net`] only;
//!   the vendor/ constraint rules out async runtimes and HTTP crates),
//!   including the explicit protocol-version header that makes a
//!   mixed-version coordinator/worker pair fail fast with a typed
//!   [`http::WireError`] instead of a confusing malformed-request path;
//! * [`wire`] — the JSON message bodies of the coordination endpoints
//!   (`POST /lease`, `POST /heartbeat`, `POST /shards/{id}/complete`).

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod http;
pub mod wire;

pub use http::{
    check_proto_version, WireError, WireErrorBody, PROTOCOL_MISMATCH_KIND, PROTO_VERSION,
    PROTO_VERSION_HEADER,
};
pub use wire::{
    CompleteReply, CompleteRequest, CoordStatus, HeartbeatReply, HeartbeatRequest, LeaseGrant,
    LeaseReply, LeaseRequest, LeaseTelemetry,
};
