//! JSON message bodies of the coordination endpoints.
//!
//! Three request/reply pairs drive the lease protocol:
//!
//! * `POST /lease` — [`LeaseRequest`] → [`LeaseReply`]: a worker asks for a
//!   shard; the coordinator answers with a [`LeaseGrant`] (work), a retry
//!   hint (nothing pending *right now* — live leases may yet expire), or
//!   `finished` (the run is complete, the worker may exit).
//! * `POST /heartbeat` — [`HeartbeatRequest`] → [`HeartbeatReply`]: renews a
//!   held lease before it expires.
//! * `POST /shards/{id}/complete` — [`CompleteRequest`] → [`CompleteReply`]:
//!   delivers the shard's JSONL outcome log. The coordinator accepts it only
//!   if the named lease epoch is still the active one; a presumed-dead
//!   worker finishing after its shard was reinjected gets `stale: true` and
//!   its log is dropped, so exactly one log per shard ever reaches disk.
//!
//! `GET /status` returns a [`CoordStatus`] snapshot (progress plus the
//! [`LeaseTelemetry`] counters that also feed the daemon's `/stats`).
//!
//! All types obey the vendored serde stub's limits: plain derives, no field
//! attributes, every field required on deserialize, maps keyed by `String`
//! in a `BTreeMap`. Timestamps and durations are `u64` milliseconds.

use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::fmt;

/// Worker → coordinator: request a shard lease.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct LeaseRequest {
    /// Stable worker identity (appears in telemetry and log lines).
    pub worker: String,
    /// Run to lease from; the empty string means "any run with pending
    /// shards" (daemon mode, where several runs may be live at once).
    pub run: String,
}

/// One leased shard: everything a worker needs to evaluate it.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LeaseGrant {
    /// Run the shard belongs to.
    pub run: String,
    /// Shard index within the run (names the `shard-NNNN.jsonl` log).
    pub shard: u64,
    /// Lease epoch. Completions must echo it exactly; after expiry the
    /// shard is re-leased under a higher epoch and the old epoch is dead.
    pub epoch: u64,
    /// Lease duration in milliseconds; heartbeat well inside it.
    pub lease_ms: u64,
    /// Coordinator-clock expiry, milliseconds since the Unix epoch.
    pub expires_ms: u64,
    /// The sweep spec, as its canonical JSON text.
    pub spec_json: String,
    /// Whether the run is a quick-mode (reduced-fidelity) sweep.
    pub quick: bool,
    /// Grid-point indices (into the spec's canonical point order) this
    /// shard evaluates.
    pub points: Vec<u64>,
    /// Evaluate serially even if the worker has parallelism available
    /// (used by benches that need deterministic per-rep counters).
    pub serial: bool,
}

/// Coordinator → worker: answer to a lease request.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LeaseReply {
    /// The granted shard, if any shard was pending.
    pub grant: Option<LeaseGrant>,
    /// True once every shard of the run is complete; the worker may exit.
    pub finished: bool,
    /// When `grant` is absent and `finished` is false (all remaining shards
    /// are leased to other workers), how long to wait before asking again.
    pub retry_ms: u64,
}

/// Worker → coordinator: renew a held lease.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct HeartbeatRequest {
    /// The worker renewing.
    pub worker: String,
    /// Run the lease belongs to.
    pub run: String,
    /// Leased shard index.
    pub shard: u64,
    /// The epoch the worker holds; renewal fails if it is no longer active.
    pub epoch: u64,
}

/// Coordinator → worker: heartbeat outcome.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct HeartbeatReply {
    /// True if the lease was still active and its expiry was pushed out;
    /// false means the lease is dead and the worker should abandon the
    /// shard (its eventual completion would be rejected as stale anyway).
    pub renewed: bool,
    /// The new coordinator-clock expiry when renewed, else 0.
    pub expires_ms: u64,
}

/// Worker → coordinator: deliver a finished shard's outcome log.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct CompleteRequest {
    /// The worker delivering.
    pub worker: String,
    /// Run the shard belongs to.
    pub run: String,
    /// Completed shard index.
    pub shard: u64,
    /// The epoch under which the worker held the shard.
    pub epoch: u64,
    /// The shard's outcome log: one canonical `ScenarioOutcome` JSON object
    /// per line, in the shard's point order.
    pub outcomes_jsonl: String,
    /// Curve-cache hits the evaluation scored (merged into run telemetry).
    pub curve_hits: u64,
    /// Curve-cache misses the evaluation scored.
    pub curve_misses: u64,
}

/// Coordinator → worker: completion outcome.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct CompleteReply {
    /// True if the log was accepted and durably written.
    pub accepted: bool,
    /// True if the completion was rejected because its lease epoch is no
    /// longer the active one (the shard was reinjected; another log wins).
    pub stale: bool,
    /// True once every shard of the run is complete.
    pub finished: bool,
}

/// Lease-protocol telemetry counters.
///
/// Surfaced by the coordinator's `GET /status` and folded into the daemon's
/// `GET /stats` report. The `Display` impl destructures exhaustively — no
/// `..` — so adding a field here fails compilation until it is surfaced.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct LeaseTelemetry {
    /// Leases granted (first grants and re-grants after expiry alike).
    pub granted: u64,
    /// Heartbeat renewals of still-active leases.
    pub renewed: u64,
    /// Leases that expired before their shard completed.
    pub expired: u64,
    /// Shards reinjected into the pending queue after a lease expired.
    pub reinjected: u64,
    /// Completions rejected because their lease epoch was no longer active.
    pub stale_rejected: u64,
    /// Shard completions accepted and durably written.
    pub completed: u64,
    /// Accepted shard completions per worker id.
    pub per_worker: BTreeMap<String, u64>,
}

impl fmt::Display for LeaseTelemetry {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        // Exhaustive destructure: a new counter fails compilation here
        // until it is printed.
        let LeaseTelemetry {
            granted,
            renewed,
            expired,
            reinjected,
            stale_rejected,
            completed,
            ref per_worker,
        } = *self;
        write!(
            f,
            "leases: granted {granted} renewed {renewed} expired {expired} \
             reinjected {reinjected} stale-rejected {stale_rejected} completed {completed}"
        )?;
        if !per_worker.is_empty() {
            write!(f, " | per-worker:")?;
            for (worker, shards) in per_worker {
                write!(f, " {worker}={shards}")?;
            }
        }
        Ok(())
    }
}

/// Coordinator progress snapshot (`GET /status`).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct CoordStatus {
    /// Run identifier.
    pub run: String,
    /// Whether the run is a quick-mode sweep.
    pub quick: bool,
    /// Scenarios completed so far.
    pub completed: u64,
    /// Total scenarios in the sweep grid.
    pub total: u64,
    /// True once every shard is complete.
    pub finished: bool,
    /// Lease-protocol counters.
    pub leases: LeaseTelemetry,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lease_reply_roundtrips_with_and_without_a_grant() {
        let grant = LeaseGrant {
            run: "r0abc".to_string(),
            shard: 3,
            epoch: 2,
            lease_ms: 5000,
            expires_ms: 1_700_000_005_000,
            spec_json: "{\"label\":\"t\"}".to_string(),
            quick: false,
            points: vec![12, 13, 14, 15],
            serial: true,
        };
        let reply = LeaseReply {
            grant: Some(grant),
            finished: false,
            retry_ms: 250,
        };
        let json = serde_json::to_string(&reply).unwrap();
        let back: LeaseReply = serde_json::from_str(&json).unwrap();
        assert_eq!(back, reply);

        let idle = LeaseReply {
            grant: None,
            finished: true,
            retry_ms: 0,
        };
        let json = serde_json::to_string(&idle).unwrap();
        let back: LeaseReply = serde_json::from_str(&json).unwrap();
        assert_eq!(back, idle);
    }

    #[test]
    fn telemetry_display_surfaces_every_counter() {
        let mut telemetry = LeaseTelemetry {
            granted: 7,
            renewed: 4,
            expired: 1,
            reinjected: 1,
            stale_rejected: 1,
            completed: 6,
            per_worker: BTreeMap::new(),
        };
        telemetry.per_worker.insert("w1".to_string(), 4);
        telemetry.per_worker.insert("w2".to_string(), 2);
        let text = telemetry.to_string();
        for needle in [
            "granted 7",
            "renewed 4",
            "expired 1",
            "reinjected 1",
            "stale-rejected 1",
            "completed 6",
            "w1=4",
            "w2=2",
        ] {
            assert!(text.contains(needle), "missing {needle:?} in {text:?}");
        }
        let json = serde_json::to_string(&telemetry).unwrap();
        let back: LeaseTelemetry = serde_json::from_str(&json).unwrap();
        assert_eq!(back, telemetry);
    }
}
