//! A deliberately minimal HTTP/1.0 subset shared by the daemon, the sweep
//! coordinator, and their blocking clients.
//!
//! The vendor/ constraint rules out async runtimes and HTTP crates, and the
//! protocol needs very little: one request per connection, `Content-Length`
//! bodies, `Connection: close` responses, and one streaming response shape
//! (the JSONL outcome tail, which has no length and ends when the socket
//! closes). The grammar the daemon accepts:
//!
//! ```text
//! request  = method SP path ["?" query] SP version CRLF *(header CRLF) CRLF [body]
//! method   = "GET" | "POST"
//! query    = key "=" value *("&" key "=" value)
//! header   = name ":" OWS value            ; names are case-insensitive
//! body     = octets, exactly Content-Length of them
//! ```
//!
//! Anything else — a torn head, a missing version, a body longer than the
//! configured payload limit — yields a typed [`RequestError`], which the
//! server maps to a JSON error response (see [`WireError`]) rather than a
//! hangup, so clients always learn *why* they were refused.
//!
//! ## Protocol versioning
//!
//! Coordination requests (`/lease`, `/heartbeat`, `/shards/{id}/complete`)
//! carry the explicit [`PROTO_VERSION_HEADER`] header naming the protocol
//! revision the sender speaks ([`PROTO_VERSION`]). A coordinator checks it
//! with [`check_proto_version`] before parsing the body, so a mixed-version
//! coordinator/worker pair fails fast with a typed
//! [`PROTOCOL_MISMATCH_KIND`] error instead of a confusing
//! malformed-message path deeper in.

use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::io::{Read, Write};
use std::net::TcpStream;

/// Upper bound on the request head (request line + headers). Large requests
/// put their payload in the body, never the head.
pub const MAX_HEAD_BYTES: usize = 8 * 1024;

/// Name of the protocol-version header every coordination request carries.
pub const PROTO_VERSION_HEADER: &str = "x-qosrm-proto";

/// The protocol revision this build speaks. Bump it whenever a wire message
/// changes incompatibly; a coordinator and worker disagreeing on it refuse
/// each other with a typed error instead of mis-parsing bodies.
pub const PROTO_VERSION: &str = "qosrm/1";

/// `kind` of the typed error a version mismatch produces.
pub const PROTOCOL_MISMATCH_KIND: &str = "ProtocolMismatch";

/// Verifies a coordination request's [`PROTO_VERSION_HEADER`]. A missing or
/// mismatched header yields the [`PROTOCOL_MISMATCH_KIND`] error the caller
/// should answer with (HTTP 400) before touching the body.
pub fn check_proto_version(request: &Request) -> Result<(), WireError> {
    match request.header(PROTO_VERSION_HEADER) {
        Some(version) if version == PROTO_VERSION => Ok(()),
        Some(version) => Err(WireError::new(
            PROTOCOL_MISMATCH_KIND,
            format!(
                "peer speaks protocol {version:?} but this build speaks {PROTO_VERSION:?}; \
                 run matching coordinator and worker builds"
            ),
        )),
        None => Err(WireError::new(
            PROTOCOL_MISMATCH_KIND,
            format!(
                "request carries no {PROTO_VERSION_HEADER} header (an older build?); \
                 this build speaks {PROTO_VERSION:?}"
            ),
        )),
    }
}

/// A parsed request.
#[derive(Debug, Clone)]
pub struct Request {
    /// Request method (`GET`, `POST`).
    pub method: String,
    /// Decoded path without the query string (e.g. `/runs/r0123/stream`).
    pub path: String,
    /// Decoded query parameters.
    pub query: HashMap<String, String>,
    /// Headers with lower-cased names.
    pub headers: HashMap<String, String>,
    /// Request body (`Content-Length` octets).
    pub body: Vec<u8>,
}

impl Request {
    /// A query parameter, if present.
    pub fn query_param(&self, key: &str) -> Option<&str> {
        self.query.get(key).map(String::as_str)
    }

    /// A header value by case-insensitive name, if present.
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers
            .get(&name.to_ascii_lowercase())
            .map(String::as_str)
    }
}

/// Why a request could not be read.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RequestError {
    /// The head or body exceeded a configured limit (the limit in bytes).
    TooLarge {
        /// The limit that was exceeded, in bytes.
        limit: usize,
    },
    /// The bytes on the wire were not a well-formed request (torn head,
    /// bad request line, unparsable `Content-Length`, truncated body).
    Malformed(String),
    /// The peer closed the connection before sending anything.
    Closed,
}

/// Reads one request from `stream`. `max_body` bounds the accepted
/// `Content-Length`; the head is bounded by [`MAX_HEAD_BYTES`].
pub fn read_request(stream: &mut TcpStream, max_body: usize) -> Result<Request, RequestError> {
    // Read the head byte-wise-ish (buffered in chunks) until CRLFCRLF.
    let mut head = Vec::new();
    let mut buf = [0u8; 1024];
    let header_end = loop {
        if let Some(pos) = find_head_end(&head) {
            break pos;
        }
        if head.len() > MAX_HEAD_BYTES {
            return Err(RequestError::TooLarge {
                limit: MAX_HEAD_BYTES,
            });
        }
        let n = stream
            .read(&mut buf)
            .map_err(|e| RequestError::Malformed(format!("read failed: {e}")))?;
        if n == 0 {
            if head.is_empty() {
                return Err(RequestError::Closed);
            }
            return Err(RequestError::Malformed(
                "connection closed before the request head completed".to_string(),
            ));
        }
        head.extend_from_slice(&buf[..n]);
    };
    let body_prefix = head.split_off(header_end + 4);
    let head_text = String::from_utf8(head)
        .map_err(|_| RequestError::Malformed("request head is not UTF-8".to_string()))?;

    let mut lines = head_text.split("\r\n");
    let request_line = lines.next().unwrap_or("");
    let mut parts = request_line.split_whitespace();
    let method = parts
        .next()
        .ok_or_else(|| RequestError::Malformed("empty request line".to_string()))?
        .to_string();
    let target = parts
        .next()
        .ok_or_else(|| RequestError::Malformed("request line has no path".to_string()))?;
    let version = parts
        .next()
        .ok_or_else(|| RequestError::Malformed("request line has no HTTP version".to_string()))?;
    if !version.starts_with("HTTP/") {
        return Err(RequestError::Malformed(format!(
            "bad HTTP version {version:?}"
        )));
    }

    let mut headers = HashMap::new();
    for line in lines {
        if line.is_empty() {
            continue;
        }
        let (name, value) = line.split_once(':').ok_or_else(|| {
            RequestError::Malformed(format!("header line without a colon: {line:?}"))
        })?;
        headers.insert(name.trim().to_ascii_lowercase(), value.trim().to_string());
    }

    let (path, query) = parse_target(target);

    let content_length = match headers.get("content-length") {
        Some(raw) => raw
            .parse::<usize>()
            .map_err(|_| RequestError::Malformed(format!("unparsable Content-Length {raw:?}")))?,
        None => 0,
    };
    if content_length > max_body {
        return Err(RequestError::TooLarge { limit: max_body });
    }
    let mut body = body_prefix;
    if body.len() > content_length {
        return Err(RequestError::Malformed(
            "body is longer than Content-Length".to_string(),
        ));
    }
    while body.len() < content_length {
        let n = stream
            .read(&mut buf)
            .map_err(|e| RequestError::Malformed(format!("read failed: {e}")))?;
        if n == 0 {
            return Err(RequestError::Malformed(format!(
                "connection closed with {} of {content_length} body bytes read",
                body.len()
            )));
        }
        body.extend_from_slice(&buf[..n]);
        if body.len() > content_length {
            return Err(RequestError::Malformed(
                "body is longer than Content-Length".to_string(),
            ));
        }
    }

    Ok(Request {
        method,
        path,
        query,
        headers,
        body,
    })
}

fn find_head_end(bytes: &[u8]) -> Option<usize> {
    bytes.windows(4).position(|w| w == b"\r\n\r\n")
}

/// Splits a request target into its decoded path and query map.
fn parse_target(target: &str) -> (String, HashMap<String, String>) {
    let (path, query_text) = match target.split_once('?') {
        Some((p, q)) => (p, q),
        None => (target, ""),
    };
    let mut query = HashMap::new();
    for pair in query_text.split('&') {
        if pair.is_empty() {
            continue;
        }
        let (key, value) = pair.split_once('=').unwrap_or((pair, ""));
        query.insert(percent_decode(key), percent_decode(value));
    }
    (percent_decode(path), query)
}

/// Minimal percent-decoding (enough for `%2F` in labels and `+` as space).
fn percent_decode(text: &str) -> String {
    let bytes = text.as_bytes();
    let mut out = Vec::with_capacity(bytes.len());
    let mut i = 0;
    while i < bytes.len() {
        match bytes[i] {
            b'%' if i + 2 < bytes.len() => {
                let hex = &text[i + 1..i + 3];
                if let Ok(v) = u8::from_str_radix(hex, 16) {
                    out.push(v);
                    i += 3;
                } else {
                    out.push(b'%');
                    i += 1;
                }
            }
            b'+' => {
                out.push(b' ');
                i += 1;
            }
            b => {
                out.push(b);
                i += 1;
            }
        }
    }
    String::from_utf8_lossy(&out).into_owned()
}

/// The body of every error response: `{"error":{"kind":...,"message":...}}`.
///
/// `kind` is a stable machine-readable discriminator (`PayloadTooLarge`,
/// `MalformedRequest`, `InvalidSpec`, `QueueFull`, `RunNotFound`,
/// `RunNotComplete`, `NotFound`, `MethodNotAllowed`, `ProtocolMismatch`);
/// `message` is human-readable detail. Clients dispatch on `kind`, never on
/// `message`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WireError {
    /// The error payload.
    pub error: WireErrorBody,
}

/// Inner payload of [`WireError`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WireErrorBody {
    /// Stable machine-readable discriminator.
    pub kind: String,
    /// Human-readable detail.
    pub message: String,
}

impl WireError {
    /// Builds an error body.
    pub fn new(kind: &str, message: impl Into<String>) -> Self {
        WireError {
            error: WireErrorBody {
                kind: kind.to_string(),
                message: message.into(),
            },
        }
    }
}

/// Writes a complete response with a `Content-Length` and closes semantics
/// (`Connection: close`; the server drops the stream afterwards).
pub fn write_response(
    stream: &mut TcpStream,
    status: u16,
    reason: &str,
    content_type: &str,
    body: &[u8],
) -> std::io::Result<()> {
    let head = format!(
        "HTTP/1.0 {status} {reason}\r\nContent-Type: {content_type}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n",
        body.len()
    );
    stream.write_all(head.as_bytes())?;
    stream.write_all(body)?;
    stream.flush()
}

/// Writes a JSON response.
pub fn write_json(
    stream: &mut TcpStream,
    status: u16,
    reason: &str,
    body: &str,
) -> std::io::Result<()> {
    write_response(stream, status, reason, "application/json", body.as_bytes())
}

/// Writes a typed JSON error response.
pub fn write_error(
    stream: &mut TcpStream,
    status: u16,
    reason: &str,
    error: &WireError,
) -> std::io::Result<()> {
    let body = serde_json::to_string(error).unwrap_or_else(|_| "{}".to_string());
    write_json(stream, status, reason, &body)
}

/// Writes the head of a streaming (unbounded) response; the body follows as
/// raw writes and ends when the connection closes.
pub fn write_stream_head(stream: &mut TcpStream, content_type: &str) -> std::io::Result<()> {
    let head =
        format!("HTTP/1.0 200 OK\r\nContent-Type: {content_type}\r\nConnection: close\r\n\r\n");
    stream.write_all(head.as_bytes())?;
    stream.flush()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn target_parsing_splits_path_and_query() {
        let (path, query) = parse_target("/runs/r01/stream?from=42&quick=false");
        assert_eq!(path, "/runs/r01/stream");
        assert_eq!(query.get("from").map(String::as_str), Some("42"));
        assert_eq!(query.get("quick").map(String::as_str), Some("false"));
        let (path, query) = parse_target("/stats");
        assert_eq!(path, "/stats");
        assert!(query.is_empty());
    }

    #[test]
    fn percent_decoding() {
        assert_eq!(percent_decode("a%2Fb+c"), "a/b c");
        assert_eq!(percent_decode("plain"), "plain");
        assert_eq!(percent_decode("bad%zz"), "bad%zz");
    }

    #[test]
    fn wire_error_roundtrip() {
        let err = WireError::new("QueueFull", "queue is at its 64-run bound");
        let json = serde_json::to_string(&err).unwrap();
        assert!(json.contains("\"QueueFull\""));
        let back: WireError = serde_json::from_str(&json).unwrap();
        assert_eq!(back, err);
    }

    fn request_with_version(version: Option<&str>) -> Request {
        let mut headers = HashMap::new();
        if let Some(v) = version {
            headers.insert(PROTO_VERSION_HEADER.to_string(), v.to_string());
        }
        Request {
            method: "POST".to_string(),
            path: "/lease".to_string(),
            query: HashMap::new(),
            headers,
            body: Vec::new(),
        }
    }

    #[test]
    fn proto_version_check_accepts_only_the_current_revision() {
        assert!(check_proto_version(&request_with_version(Some(PROTO_VERSION))).is_ok());
        let missing = check_proto_version(&request_with_version(None)).unwrap_err();
        assert_eq!(missing.error.kind, PROTOCOL_MISMATCH_KIND);
        let wrong = check_proto_version(&request_with_version(Some("qosrm/0"))).unwrap_err();
        assert_eq!(wrong.error.kind, PROTOCOL_MISMATCH_KIND);
        assert!(wrong.error.message.contains("qosrm/0"));
    }
}
