//! Property-based tests of the cache substrate invariants.

use cache_model::{
    Access, AccessTrace, Atd, AtdConfig, OverlapParams, PartitionedCache, ReplacementPolicy,
    StackDistanceProfiler,
};
use proptest::prelude::*;
use qosrm_types::{CoreId, LlcGeometry, WayPartition};

fn small_geometry() -> LlcGeometry {
    LlcGeometry {
        num_sets: 16,
        associativity: 8,
        line_bytes: 64,
    }
}

/// Strategy: a trace of up to 600 accesses over a bounded address range, with
/// monotonically increasing instruction indices.
fn trace_strategy(max_lines: u64) -> impl Strategy<Value = AccessTrace> {
    prop::collection::vec((0..max_lines, 1u64..50), 1..600).prop_map(|pairs| {
        let mut inst = 0u64;
        let accesses = pairs
            .into_iter()
            .map(|(line, gap)| {
                inst += gap;
                Access::new(line, inst)
            })
            .collect::<Vec<_>>();
        let total_inst = inst + 100;
        AccessTrace::new(accesses, total_inst)
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The ATD/stack-profiler miss curve is non-increasing in the way count.
    #[test]
    fn miss_curve_is_monotone(trace in trace_strategy(256)) {
        let geom = small_geometry();
        let mut profiler = StackDistanceProfiler::new(&geom);
        let profile = profiler.replay(&trace);
        let curve = profile.miss_curve(geom.associativity);
        prop_assert!(curve.validate().is_ok());
        prop_assert!(curve.misses_at(1) <= trace.len() as u64);
    }

    /// The detailed partitioned cache agrees exactly with the stack-distance
    /// profiler for any single-core way allocation (LRU stack property).
    #[test]
    fn partitioned_cache_matches_profiler(trace in trace_strategy(128), ways in 1usize..8) {
        let geom = small_geometry();
        let mut profiler = StackDistanceProfiler::new(&geom);
        let profile = profiler.replay(&trace);

        let partition = WayPartition::new(vec![ways, geom.associativity - ways]);
        let mut cache = PartitionedCache::new(geom, &partition, ReplacementPolicy::Lru).unwrap();
        let misses = cache.replay(CoreId(0), trace.accesses());
        prop_assert_eq!(misses, profile.misses_at(ways));
    }

    /// Leading misses never exceed total misses and never increase with a
    /// larger overlap window or more MSHRs.
    #[test]
    fn leading_misses_monotone_in_core_size(
        trace in trace_strategy(512),
        ways in 1usize..8,
        rob_small in 16usize..64,
        rob_extra in 1usize..256,
        mshr_small in 1usize..4,
        mshr_extra in 1usize..16,
    ) {
        let geom = small_geometry();
        let mut profiler = StackDistanceProfiler::new(&geom);
        let profile = profiler.replay(&trace);

        let small = OverlapParams { rob_entries: rob_small, mshrs: mshr_small };
        let large = OverlapParams {
            rob_entries: rob_small + rob_extra,
            mshrs: mshr_small + mshr_extra,
        };
        let total = profile.misses_at(ways);
        let lead_small = profile.leading_misses_at(ways, &small);
        let lead_large = profile.leading_misses_at(ways, &large);
        prop_assert!(lead_small <= total);
        prop_assert!(lead_large <= total);
        prop_assert!(lead_large <= lead_small, "bigger cores can only merge more misses");
        prop_assert!(profile.mlp_at(ways, &large) >= profile.mlp_at(ways, &small) - 1e-12);
    }

    /// A set-sampled ATD never reports a non-monotonic curve and its estimate
    /// stays within a loose bound of the exact profile for uniform traffic.
    #[test]
    fn sampled_atd_monotone(trace in trace_strategy(512)) {
        let geom = small_geometry();
        let mut atd = Atd::new(geom, AtdConfig { set_sampling: 4, bits_per_entry: 28 });
        let profile = atd.observe_interval(&trace);
        prop_assert!(profile.validate().is_ok());
        prop_assert!(profile.misses_at(1) <= 4 * trace.len() as u64);
    }

    /// Repartitioning the detailed cache never lets a core exceed its way
    /// budget in any set.
    #[test]
    fn resident_lines_bounded_by_partition(
        trace in trace_strategy(512),
        ways in 1usize..8,
    ) {
        let geom = small_geometry();
        let partition = WayPartition::new(vec![ways, geom.associativity - ways]);
        let mut cache = PartitionedCache::new(geom, &partition, ReplacementPolicy::Lru).unwrap();
        cache.replay(CoreId(0), trace.accesses());
        prop_assert!(cache.resident_lines(CoreId(0)) <= ways * geom.num_sets);
    }
}
