//! Detailed set-associative, way-partitioned LLC model.
//!
//! This is the ground-truth "main cache" of the simulated system: each core is
//! restricted to filling into the ways of its partition (contiguous way masks,
//! as produced by [`qosrm_types::WayPartition::to_masks`]) while lookups probe
//! the whole set. It is used to validate the stack-distance profiler and the
//! ATD model, and by integration tests that exercise repartitioning.

use crate::access::Access;
use crate::replacement::ReplacementPolicy;
use qosrm_types::{CoreId, LlcGeometry, QosrmError, WayMask, WayPartition};
use serde::{Deserialize, Serialize};

/// Outcome of a single cache access.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum AccessOutcome {
    /// The line was found in the cache.
    Hit,
    /// The line was not present and was filled into an invalid way.
    MissFilled,
    /// The line was not present and a victim line was evicted to make room.
    MissEvicted {
        /// Line address of the evicted victim.
        victim_line: u64,
    },
}

impl AccessOutcome {
    /// Whether the access missed.
    pub fn is_miss(&self) -> bool {
        !matches!(self, AccessOutcome::Hit)
    }
}

/// Per-core hit/miss statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct CacheStats {
    /// Number of lookups issued by the core.
    pub accesses: u64,
    /// Number of lookups that hit.
    pub hits: u64,
    /// Number of lookups that missed.
    pub misses: u64,
}

impl CacheStats {
    /// Miss ratio (0 when the core issued no accesses).
    pub fn miss_ratio(&self) -> f64 {
        if self.accesses == 0 {
            0.0
        } else {
            self.misses as f64 / self.accesses as f64
        }
    }
}

#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
struct Line {
    valid: bool,
    tag: u64,
    owner: usize,
    /// Monotonic timestamp of the last reference, for LRU victim selection.
    last_use: u64,
}

impl Line {
    fn empty() -> Self {
        Line {
            valid: false,
            tag: 0,
            owner: 0,
            last_use: 0,
        }
    }
}

/// A shared, way-partitioned, set-associative cache with per-core fill masks.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct PartitionedCache {
    geometry: LlcGeometry,
    policy: ReplacementPolicy,
    masks: Vec<WayMask>,
    sets: Vec<Vec<Line>>,
    stats: Vec<CacheStats>,
    clock: u64,
    rng_state: u64,
}

impl PartitionedCache {
    /// Creates a cache with the given geometry and per-core way partition.
    pub fn new(
        geometry: LlcGeometry,
        partition: &WayPartition,
        policy: ReplacementPolicy,
    ) -> Result<Self, QosrmError> {
        geometry.validate()?;
        partition.validate(&geometry)?;
        let masks = partition.to_masks();
        let num_cores = masks.len();
        Ok(PartitionedCache {
            geometry,
            policy,
            masks,
            sets: vec![vec![Line::empty(); geometry.associativity]; geometry.num_sets],
            stats: vec![CacheStats::default(); num_cores],
            clock: 0,
            rng_state: 0x9E37_79B9_7F4A_7C15,
        })
    }

    /// The cache geometry.
    pub fn geometry(&self) -> &LlcGeometry {
        &self.geometry
    }

    /// Per-core statistics collected since construction or the last
    /// [`Self::reset_stats`].
    pub fn stats(&self, core: CoreId) -> CacheStats {
        self.stats[core.index()]
    }

    /// Clears the per-core statistics (cache contents are kept).
    pub fn reset_stats(&mut self) {
        for s in &mut self.stats {
            *s = CacheStats::default();
        }
    }

    /// Applies a new way partition. Cached lines outside a core's new mask
    /// are *not* invalidated (as in real way-partitioning hardware, existing
    /// lines remain until they are naturally evicted), but new fills obey the
    /// new masks.
    pub fn repartition(&mut self, partition: &WayPartition) -> Result<(), QosrmError> {
        partition.validate(&self.geometry)?;
        if partition.num_cores() != self.masks.len() {
            return Err(QosrmError::InvalidSetting(
                "repartition must cover the same number of cores".into(),
            ));
        }
        self.masks = partition.to_masks();
        Ok(())
    }

    /// Performs one access on behalf of `core` and returns its outcome.
    pub fn access(&mut self, core: CoreId, access: Access) -> AccessOutcome {
        self.clock += 1;
        let clock = self.clock;
        let set_idx = access.set_index(self.geometry.num_sets);
        let tag = access.tag(self.geometry.num_sets);
        let stats = &mut self.stats[core.index()];
        stats.accesses += 1;

        // Lookup probes the whole set.
        let set = &mut self.sets[set_idx];
        if let Some(line) = set.iter_mut().find(|l| l.valid && l.tag == tag) {
            line.last_use = clock;
            stats.hits += 1;
            return AccessOutcome::Hit;
        }
        stats.misses += 1;

        // Fill: victim selection restricted to the core's way mask.
        let mask = self.masks[core.index()];
        debug_assert!(mask.count() > 0, "core has an empty way mask");

        // Prefer an invalid way inside the mask.
        if let Some(way) = mask.ways().find(|&w| !set[w].valid) {
            set[way] = Line {
                valid: true,
                tag,
                owner: core.index(),
                last_use: clock,
            };
            return AccessOutcome::MissFilled;
        }

        let victim_way = match self.policy {
            ReplacementPolicy::Lru => mask
                .ways()
                .min_by_key(|&w| set[w].last_use)
                .expect("non-empty mask"),
            ReplacementPolicy::Random => {
                let ways: Vec<usize> = mask.ways().collect();
                let r = {
                    let mut x = self.rng_state;
                    x ^= x << 13;
                    x ^= x >> 7;
                    x ^= x << 17;
                    self.rng_state = x;
                    x
                };
                ways[(r % ways.len() as u64) as usize]
            }
        };
        let victim = set[victim_way];
        set[victim_way] = Line {
            valid: true,
            tag,
            owner: core.index(),
            last_use: clock,
        };
        let victim_line = (victim.tag << self.geometry.num_sets.trailing_zeros()) | set_idx as u64;
        AccessOutcome::MissEvicted { victim_line }
    }

    /// Replays a slice of accesses on behalf of `core`, returning the number
    /// of misses.
    pub fn replay(&mut self, core: CoreId, accesses: &[Access]) -> u64 {
        let mut misses = 0;
        for &a in accesses {
            if self.access(core, a).is_miss() {
                misses += 1;
            }
        }
        misses
    }

    /// Number of valid lines currently owned by `core`.
    pub fn resident_lines(&self, core: CoreId) -> usize {
        self.sets
            .iter()
            .flat_map(|s| s.iter())
            .filter(|l| l.valid && l.owner == core.index())
            .count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::access::Access;

    fn small_geometry() -> LlcGeometry {
        LlcGeometry {
            num_sets: 16,
            associativity: 8,
            line_bytes: 64,
        }
    }

    fn loop_trace(lines: u64, repeats: u64) -> Vec<Access> {
        let mut v = Vec::new();
        let mut inst = 0;
        for _ in 0..repeats {
            for i in 0..lines {
                v.push(Access::new(i * 16, inst)); // all map to set 0
                inst += 10;
            }
        }
        v
    }

    #[test]
    fn single_core_lru_behaviour() {
        let geom = small_geometry();
        let partition = WayPartition::new(vec![4, 4]);
        let mut cache = PartitionedCache::new(geom, &partition, ReplacementPolicy::Lru).unwrap();

        // Core 0 loops over 4 lines in one set with 4 ways: only cold misses.
        let misses = cache.replay(CoreId(0), &loop_trace(4, 10));
        assert_eq!(misses, 4);
        assert_eq!(cache.stats(CoreId(0)).misses, 4);
        assert_eq!(cache.stats(CoreId(0)).accesses, 40);
        assert!(cache.stats(CoreId(0)).miss_ratio() < 0.11);
    }

    #[test]
    fn partition_limits_usable_ways() {
        let geom = small_geometry();
        // Core 0 gets only 2 ways: the 4-line loop thrashes.
        let partition = WayPartition::new(vec![2, 6]);
        let mut cache = PartitionedCache::new(geom, &partition, ReplacementPolicy::Lru).unwrap();
        let misses = cache.replay(CoreId(0), &loop_trace(4, 10));
        assert_eq!(misses, 40);
    }

    #[test]
    fn matches_stack_distance_profiler() {
        use crate::profile::StackDistanceProfiler;
        use rand::{Rng, SeedableRng};
        let geom = small_geometry();
        let mut rng = rand::rngs::StdRng::seed_from_u64(7);
        let accesses: Vec<Access> = (0..2000u64)
            .map(|i| Access::new(rng.gen_range(0..96u64), i * 3))
            .collect();
        let trace = crate::access::AccessTrace::new(accesses.clone(), 6000);

        let mut profiler = StackDistanceProfiler::new(&geom);
        let profile = profiler.replay(&trace);

        for ways in [1usize, 2, 3, 5, 7] {
            let partition = WayPartition::new(vec![ways, geom.associativity - ways]);
            let mut cache =
                PartitionedCache::new(geom, &partition, ReplacementPolicy::Lru).unwrap();
            let misses = cache.replay(CoreId(0), &accesses);
            assert_eq!(
                misses,
                profile.misses_at(ways),
                "partitioned cache vs stack profiler at {ways} ways"
            );
        }
    }

    #[test]
    fn cores_do_not_evict_each_other() {
        let geom = small_geometry();
        let partition = WayPartition::new(vec![4, 4]);
        let mut cache = PartitionedCache::new(geom, &partition, ReplacementPolicy::Lru).unwrap();

        // Core 0 installs 4 lines in set 0.
        cache.replay(CoreId(0), &loop_trace(4, 1));
        // Core 1 streams over many lines of the same set.
        let streaming: Vec<Access> = (100..200u64).map(|i| Access::new(i * 16, i)).collect();
        cache.replay(CoreId(1), &streaming);
        // Core 0's lines must still be resident: re-running its loop causes no misses.
        cache.reset_stats();
        let misses = cache.replay(CoreId(0), &loop_trace(4, 1));
        assert_eq!(misses, 0);
    }

    #[test]
    fn repartition_changes_future_fills() {
        let geom = small_geometry();
        let mut cache =
            PartitionedCache::new(geom, &WayPartition::new(vec![2, 6]), ReplacementPolicy::Lru)
                .unwrap();
        // With 2 ways the 4-line loop thrashes.
        assert_eq!(cache.replay(CoreId(0), &loop_trace(4, 5)), 20);
        // Grow core 0 to 8... not allowed (must sum to associativity); grow to 6.
        cache.repartition(&WayPartition::new(vec![6, 2])).unwrap();
        cache.reset_stats();
        // After a transition pass that misses while the working set refills,
        // steady state has no misses.
        cache.replay(CoreId(0), &loop_trace(4, 1));
        cache.reset_stats();
        assert_eq!(cache.replay(CoreId(0), &loop_trace(4, 5)), 0);
        // Invalid repartitions are rejected.
        assert!(cache
            .repartition(&WayPartition::new(vec![6, 2, 8]))
            .is_err());
        assert!(cache.repartition(&WayPartition::new(vec![7, 2])).is_err());
    }

    #[test]
    fn random_policy_still_bounded_by_partition() {
        let geom = small_geometry();
        let partition = WayPartition::new(vec![2, 6]);
        let mut cache = PartitionedCache::new(geom, &partition, ReplacementPolicy::Random).unwrap();
        let misses = cache.replay(CoreId(0), &loop_trace(4, 10));
        // Random replacement still cannot fit 4 lines into 2 ways.
        assert!(misses > 20);
        assert_eq!(cache.resident_lines(CoreId(0)), 2);
    }

    #[test]
    fn eviction_reports_victim() {
        let geom = small_geometry();
        let partition = WayPartition::new(vec![1, 7]);
        let mut cache = PartitionedCache::new(geom, &partition, ReplacementPolicy::Lru).unwrap();
        assert_eq!(
            cache.access(CoreId(0), Access::new(0, 0)),
            AccessOutcome::MissFilled
        );
        match cache.access(CoreId(0), Access::new(16, 1)) {
            AccessOutcome::MissEvicted { victim_line } => assert_eq!(victim_line, 0),
            other => panic!("expected eviction, got {other:?}"),
        }
    }
}
