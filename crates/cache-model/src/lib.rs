//! # cache-model
//!
//! Last-level cache substrate for the QoS-driven resource management
//! reproduction:
//!
//! * a detailed **set-associative, way-partitioned LLC** with LRU replacement
//!   ([`cache::PartitionedCache`]) used as the ground-truth cache simulator,
//! * a one-pass **LRU stack-distance profiler** ([`profile::StackDistanceProfiler`])
//!   that yields the miss count for *every* possible way allocation
//!   simultaneously (the property exploited by utility-based cache
//!   partitioning),
//! * the **Auxiliary Tag Directory** hardware model ([`atd::Atd`]) — a
//!   set-sampled shadow directory with per-way hit counters, as used by the
//!   paper to predict the cache-miss profile of each application at run time,
//! * the Paper II **MLP-aware ATD extension** ([`mlp_atd::MlpAtd`]) that
//!   detects overlapping misses and estimates the number of *leading* misses
//!   for every (core size, way allocation) combination.
//!
//! The crate operates on synthetic memory reference streams produced by the
//! `workload` crate; each access carries the cache-line address and the index
//! of the instruction that issued it.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod access;
pub mod atd;
pub mod cache;
pub mod mlp_atd;
pub mod profile;
pub mod replacement;

pub use access::{Access, AccessTrace};
pub use atd::{Atd, AtdConfig};
pub use cache::{AccessOutcome, CacheStats, PartitionedCache};
pub use mlp_atd::{LeadingMissMatrix, MlpAtd, MlpAtdConfig, OverlapParams};
pub use profile::{ReplayProfile, StackDistanceProfiler};
pub use replacement::{LruStack, ReplacementPolicy};
