//! Replacement policies for the set-associative cache model.
//!
//! The ground-truth LLC and the ATD both use true LRU (the ATD's per-way hit
//! counters rely on the LRU stack property). A random policy is provided for
//! sensitivity studies.

use serde::{Deserialize, Serialize};

/// Replacement policy selector for [`crate::cache::PartitionedCache`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ReplacementPolicy {
    /// True least-recently-used replacement.
    Lru,
    /// Pseudo-random replacement (xorshift over the victim ways).
    Random,
}

/// An LRU recency stack over at most `capacity` cache lines (tags).
///
/// Position 0 is the most recently used line. The *stack distance* of an
/// access is the position of its tag before the access (0-based), or `None`
/// for a cold miss; an access with stack distance `d` hits in any cache with
/// more than `d` ways and misses otherwise — the LRU stack property that lets
/// a single pass produce the miss count for every associativity at once.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct LruStack {
    /// Tags ordered from most recently used to least recently used.
    stack: Vec<u64>,
    capacity: usize,
}

impl LruStack {
    /// Creates an empty stack bounded to `capacity` entries.
    /// A capacity of `usize::MAX` keeps the full reuse history (used by the
    /// stack-distance profiler, which needs distances beyond the
    /// associativity as well).
    pub fn new(capacity: usize) -> Self {
        LruStack {
            stack: Vec::with_capacity(capacity.min(64)),
            capacity,
        }
    }

    /// Creates an unbounded stack.
    pub fn unbounded() -> Self {
        LruStack::new(usize::MAX)
    }

    /// References `tag`: returns its previous stack distance (`None` if the
    /// tag was not resident, i.e. a cold miss) and moves it to the MRU
    /// position, evicting the LRU entry if the capacity is exceeded.
    pub fn touch(&mut self, tag: u64) -> Option<usize> {
        let pos = self.stack.iter().position(|&t| t == tag);
        match pos {
            Some(p) => {
                // Move to front.
                self.stack.remove(p);
                self.stack.insert(0, tag);
                Some(p)
            }
            None => {
                self.stack.insert(0, tag);
                if self.stack.len() > self.capacity {
                    self.stack.pop();
                }
                None
            }
        }
    }

    /// Current number of resident tags.
    pub fn len(&self) -> usize {
        self.stack.len()
    }

    /// Whether the stack holds no tags.
    pub fn is_empty(&self) -> bool {
        self.stack.is_empty()
    }

    /// The tag at stack position `pos` (0 = most recently used).
    pub fn peek(&self, pos: usize) -> Option<u64> {
        self.stack.get(pos).copied()
    }

    /// Removes and returns the least recently used tag.
    pub fn evict_lru(&mut self) -> Option<u64> {
        self.stack.pop()
    }

    /// Whether `tag` is resident.
    pub fn contains(&self, tag: u64) -> bool {
        self.stack.contains(&tag)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stack_distances_follow_reuse() {
        let mut s = LruStack::unbounded();
        assert_eq!(s.touch(10), None); // cold
        assert_eq!(s.touch(20), None);
        assert_eq!(s.touch(30), None);
        // Reusing 10 after touching 20 and 30: distance 2.
        assert_eq!(s.touch(10), Some(2));
        // Immediately reusing 10: distance 0.
        assert_eq!(s.touch(10), Some(0));
        assert_eq!(s.len(), 3);
    }

    #[test]
    fn bounded_stack_evicts_lru() {
        let mut s = LruStack::new(2);
        s.touch(1);
        s.touch(2);
        s.touch(3); // evicts 1
        assert!(!s.contains(1));
        assert!(s.contains(2) && s.contains(3));
        assert_eq!(s.len(), 2);
        // Touching 1 again is a cold miss from the stack's perspective.
        assert_eq!(s.touch(1), None);
    }

    #[test]
    fn peek_and_evict() {
        let mut s = LruStack::unbounded();
        s.touch(1);
        s.touch(2);
        assert_eq!(s.peek(0), Some(2));
        assert_eq!(s.peek(1), Some(1));
        assert_eq!(s.evict_lru(), Some(1));
        assert_eq!(s.len(), 1);
        assert!(!s.is_empty());
    }

    #[test]
    fn hit_iff_ways_exceed_distance() {
        // Simulate a small trace against caches of different associativity
        // and check the stack property explicitly.
        let trace = [5u64, 6, 7, 5, 8, 6, 5, 9, 7];
        for ways in 1..=4usize {
            let mut full = LruStack::new(ways);
            let mut profiler = LruStack::unbounded();
            for &t in &trace {
                let hit_in_cache = full.touch(t).is_some();
                let dist = profiler.touch(t);
                let hit_by_property = matches!(dist, Some(d) if d < ways);
                assert_eq!(hit_in_cache, hit_by_property, "ways={ways} tag={t}");
            }
        }
    }
}
