//! Auxiliary Tag Directory (ATD) hardware model.
//!
//! The ATD (Qureshi & Patt, MICRO 2006) is a shadow tag directory that
//! emulates how the LLC would behave if the core owned the *entire* cache.
//! With per-way (UMON-LRU) hit counters it yields, at the end of every
//! interval, the number of misses the application would have had for every
//! possible way allocation. To keep the hardware cost negligible only a
//! sampled subset of the sets is shadowed (dynamic set sampling); the counts
//! are scaled by the sampling factor.

use crate::access::AccessTrace;
use crate::profile::StackDistanceProfiler;
use qosrm_types::{LlcGeometry, MissProfile};
use serde::{Deserialize, Serialize};

/// Configuration of the ATD hardware.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct AtdConfig {
    /// Dynamic set sampling factor: 1 out of `set_sampling` sets is shadowed.
    /// The paper-typical value is 32.
    pub set_sampling: usize,
    /// Bits per shadow tag entry (tag + valid + LRU state), used only for the
    /// hardware cost estimate.
    pub bits_per_entry: usize,
}

impl Default for AtdConfig {
    fn default() -> Self {
        AtdConfig {
            set_sampling: 32,
            bits_per_entry: 28,
        }
    }
}

impl AtdConfig {
    /// An ATD that shadows every set (no sampling error); useful in tests and
    /// for generating ground-truth profiles.
    pub fn exact() -> Self {
        AtdConfig {
            set_sampling: 1,
            bits_per_entry: 28,
        }
    }
}

/// Per-core Auxiliary Tag Directory.
///
/// The directory keeps its recency state across intervals, mirroring the real
/// hardware structure; [`Atd::observe_interval`] replays the accesses of one
/// interval and returns the miss profile of that interval, while
/// [`Atd::reset`] clears the whole directory (interval counters are reset
/// implicitly: `observe_interval` starts a fresh recording each call).
#[derive(Debug, Clone)]
pub struct Atd {
    config: AtdConfig,
    geometry: LlcGeometry,
    profiler: StackDistanceProfiler,
}

impl Atd {
    /// Creates an ATD for the given LLC geometry.
    pub fn new(geometry: LlcGeometry, config: AtdConfig) -> Self {
        let profiler = if config.set_sampling <= 1 {
            StackDistanceProfiler::new(&geometry)
        } else {
            StackDistanceProfiler::sampled(&geometry, config.set_sampling, 0)
        };
        Atd {
            config,
            geometry,
            profiler,
        }
    }

    /// The ATD configuration.
    pub fn config(&self) -> AtdConfig {
        self.config
    }

    /// Replays one interval worth of LLC accesses through the shadow
    /// directory and returns the miss profile (misses as a function of the
    /// way allocation, scaled to the full cache).
    pub fn observe_interval(&mut self, trace: &AccessTrace) -> MissProfile {
        let profile = self.profiler.replay(trace);
        profile.miss_curve(self.geometry.associativity)
    }

    /// Warms the directory without recording an interval profile.
    pub fn warm_up(&mut self, trace: &AccessTrace) {
        self.profiler.warm_up(trace);
    }

    /// Clears the recency state (e.g. on a context switch).
    pub fn reset(&mut self) {
        self.profiler.reset();
    }

    /// Number of sets shadowed by the directory.
    pub fn shadowed_sets(&self) -> usize {
        if self.config.set_sampling <= 1 {
            self.geometry.num_sets
        } else {
            self.geometry.num_sets.div_ceil(self.config.set_sampling)
        }
    }

    /// Estimated hardware cost of the directory in bytes: shadow tags for the
    /// sampled sets plus one hit counter per way.
    pub fn hardware_cost_bytes(&self) -> usize {
        let tag_bits =
            self.shadowed_sets() * self.geometry.associativity * self.config.bits_per_entry;
        let counter_bits = self.geometry.associativity * 32;
        (tag_bits + counter_bits).div_ceil(8)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::access::Access;

    fn geometry() -> LlcGeometry {
        LlcGeometry {
            num_sets: 64,
            associativity: 16,
            line_bytes: 64,
        }
    }

    /// A trace touching `lines` distinct lines uniformly over all sets,
    /// repeated `repeats` times.
    fn uniform_loop(lines: u64, repeats: u64) -> AccessTrace {
        let mut accesses = Vec::new();
        let mut inst = 0;
        for _ in 0..repeats {
            for l in 0..lines {
                accesses.push(Access::new(l, inst));
                inst += 25;
            }
        }
        AccessTrace::new(accesses, inst.max(1))
    }

    #[test]
    fn exact_atd_reproduces_working_set_knee() {
        let geom = geometry();
        let mut atd = Atd::new(geom, AtdConfig::exact());
        // Working set of 8 lines per set (8 ways needed).
        let trace = uniform_loop(64 * 8, 5);
        let profile = atd.observe_interval(&trace);
        assert!(profile.validate().is_ok());
        // With >= 8 ways, only the cold misses of this interval remain.
        assert_eq!(profile.misses_at(8), 64 * 8);
        assert_eq!(profile.misses_at(16), 64 * 8);
        // With fewer ways the loop thrashes.
        assert!(profile.misses_at(4) > 4 * profile.misses_at(8));
    }

    #[test]
    fn sampled_atd_approximates_exact_profile() {
        let geom = geometry();
        let trace = uniform_loop(64 * 6, 4);
        let mut exact = Atd::new(geom, AtdConfig::exact());
        let mut sampled = Atd::new(
            geom,
            AtdConfig {
                set_sampling: 8,
                bits_per_entry: 28,
            },
        );
        let e = exact.observe_interval(&trace);
        let s = sampled.observe_interval(&trace);
        for w in [1usize, 4, 8, 16] {
            let exact_m = e.misses_at(w) as f64;
            let sampled_m = s.misses_at(w) as f64;
            if exact_m > 0.0 {
                let rel_err = (sampled_m - exact_m).abs() / exact_m;
                assert!(rel_err < 0.25, "w={w}: exact={exact_m} sampled={sampled_m}");
            }
        }
    }

    #[test]
    fn warm_up_carries_state_across_intervals() {
        let geom = geometry();
        let mut atd = Atd::new(geom, AtdConfig::exact());
        let trace = uniform_loop(64 * 4, 1);
        atd.warm_up(&trace);
        let profile = atd.observe_interval(&trace);
        // Everything fits in 4 ways and the directory is warm: no misses at 4+.
        assert_eq!(profile.misses_at(16), 0);
        assert_eq!(profile.misses_at(4), 0);
        atd.reset();
        let cold = atd.observe_interval(&trace);
        assert_eq!(cold.misses_at(16), 64 * 4);
    }

    #[test]
    fn hardware_cost_scales_with_sampling() {
        let geom = geometry();
        let exact = Atd::new(geom, AtdConfig::exact());
        let sampled = Atd::new(geom, AtdConfig::default());
        assert!(sampled.hardware_cost_bytes() < exact.hardware_cost_bytes());
        assert_eq!(sampled.shadowed_sets(), 2);
        assert_eq!(exact.shadowed_sets(), 64);
        // The default sampled ATD for this small LLC stays under 1 KiB.
        assert!(sampled.hardware_cost_bytes() < 1024);
    }
}
