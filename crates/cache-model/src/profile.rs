//! One-pass LRU stack-distance profiling of a reference stream.
//!
//! Under LRU replacement, an access whose per-set stack distance is `d` hits
//! in every cache with more than `d` ways and misses in every cache with at
//! most `d` ways (the *stack property*). Profiling a trace once therefore
//! yields the miss count for **every** possible way allocation, which is the
//! mechanism both the ground-truth simulator and the Auxiliary Tag Directory
//! rely on.

use crate::access::AccessTrace;
use crate::mlp_atd::OverlapParams;
use crate::replacement::LruStack;
use qosrm_types::{LlcGeometry, MissProfile};
use serde::{Deserialize, Serialize};

/// Stack distance marking a cold miss (no previous reference to the line).
pub const COLD_DISTANCE: u32 = u32::MAX;

/// One profiled access: the instruction that issued it and its per-set LRU
/// stack distance ([`COLD_DISTANCE`] when the line had never been touched).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct AccessRecord {
    /// Instruction index of the access within the slice.
    pub inst_index: u64,
    /// LRU stack distance within the access's set.
    pub stack_distance: u32,
    /// Whether the access is address-dependent on the previous long-latency
    /// load (pointer chasing); dependent misses never overlap.
    pub dependent: bool,
}

impl AccessRecord {
    /// Whether this access misses in a cache with `ways` ways per set.
    #[inline]
    pub fn is_miss_at(&self, ways: usize) -> bool {
        self.stack_distance == COLD_DISTANCE || self.stack_distance as usize >= ways
    }
}

/// Profiler that replays a reference stream against per-set unbounded LRU
/// stacks and records every access's stack distance.
#[derive(Debug, Clone)]
pub struct StackDistanceProfiler {
    num_sets: usize,
    /// Optional set-sampling: only sets whose index satisfies
    /// `set % sampling == offset` are profiled (used by the ATD model).
    sampling: usize,
    offset: usize,
    sets: Vec<LruStack>,
}

impl StackDistanceProfiler {
    /// Creates a profiler covering every set of the given geometry.
    pub fn new(llc: &LlcGeometry) -> Self {
        StackDistanceProfiler {
            num_sets: llc.num_sets,
            sampling: 1,
            offset: 0,
            sets: (0..llc.num_sets).map(|_| LruStack::unbounded()).collect(),
        }
    }

    /// Creates a set-sampled profiler: only 1 out of `sampling` sets is
    /// profiled (the sets congruent to `offset`). Sampled profiles must be
    /// scaled by `sampling` to estimate whole-cache counts.
    pub fn sampled(llc: &LlcGeometry, sampling: usize, offset: usize) -> Self {
        let sampling = sampling.max(1);
        StackDistanceProfiler {
            num_sets: llc.num_sets,
            sampling,
            offset: offset % sampling,
            sets: (0..llc.num_sets).map(|_| LruStack::unbounded()).collect(),
        }
    }

    /// Whether the profiler observes accesses to `set`.
    #[inline]
    fn observes(&self, set: usize) -> bool {
        self.sampling == 1 || set % self.sampling == self.offset
    }

    /// Replays a trace and produces its [`ReplayProfile`].
    ///
    /// The profiler is stateful across calls: replaying a second trace models
    /// a warmed-up cache. Use a fresh profiler (or [`Self::reset`]) for an
    /// independent slice; the evaluation warms each representative slice with
    /// the preceding warm-up slice, as the paper does.
    pub fn replay(&mut self, trace: &AccessTrace) -> ReplayProfile {
        let mut records = Vec::with_capacity(trace.len());
        for access in trace.accesses() {
            let set = access.set_index(self.num_sets);
            if !self.observes(set) {
                continue;
            }
            let distance = match self.sets[set].touch(access.tag(self.num_sets)) {
                Some(d) => u32::try_from(d).unwrap_or(COLD_DISTANCE),
                None => COLD_DISTANCE,
            };
            records.push(AccessRecord {
                inst_index: access.inst_index,
                stack_distance: distance,
                dependent: access.dependent,
            });
        }
        ReplayProfile {
            records,
            instructions: trace.instructions(),
            total_accesses: trace.len() as u64,
            scale: self.sampling as u64,
        }
    }

    /// Replays a trace purely to warm the profiler state, without recording.
    pub fn warm_up(&mut self, trace: &AccessTrace) {
        for access in trace.accesses() {
            let set = access.set_index(self.num_sets);
            if self.observes(set) {
                self.sets[set].touch(access.tag(self.num_sets));
            }
        }
    }

    /// Clears all reuse history.
    pub fn reset(&mut self) {
        for s in &mut self.sets {
            *s = LruStack::unbounded();
        }
    }
}

/// The result of replaying one slice: per-access stack distances plus slice
/// metadata, from which miss curves and leading-miss matrices are derived.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ReplayProfile {
    records: Vec<AccessRecord>,
    instructions: u64,
    total_accesses: u64,
    /// Set-sampling factor: derived counts must be multiplied by this factor
    /// to estimate whole-cache counts (1 for a full profile).
    scale: u64,
}

impl ReplayProfile {
    /// Builds a profile directly from records (used by tests and generators).
    pub fn from_records(records: Vec<AccessRecord>, instructions: u64, scale: u64) -> Self {
        let total_accesses = records.len() as u64 * scale;
        ReplayProfile {
            records,
            instructions,
            total_accesses,
            scale: scale.max(1),
        }
    }

    /// The profiled access records, in program order.
    pub fn records(&self) -> &[AccessRecord] {
        &self.records
    }

    /// Instructions covered by the slice.
    pub fn instructions(&self) -> u64 {
        self.instructions
    }

    /// Total LLC accesses of the slice (whole cache, not only sampled sets).
    pub fn total_accesses(&self) -> u64 {
        self.total_accesses
    }

    /// The set-sampling scale factor of this profile.
    pub fn scale(&self) -> u64 {
        self.scale
    }

    /// Number of profiled (observed) accesses.
    pub fn observed_accesses(&self) -> u64 {
        self.records.len() as u64
    }

    /// Misses for a cache with `ways` ways per set (scaled to the whole
    /// cache when the profile is set-sampled).
    pub fn misses_at(&self, ways: usize) -> u64 {
        let raw = self.records.iter().filter(|r| r.is_miss_at(ways)).count() as u64;
        raw * self.scale
    }

    /// The full miss curve for way allocations `1..=max_ways`, computed in a
    /// single pass over the records.
    pub fn miss_curve(&self, max_ways: usize) -> MissProfile {
        // hist[d] = number of accesses with stack distance exactly d (d < max_ways).
        let mut hist = vec![0u64; max_ways];
        let mut beyond = 0u64; // distance >= max_ways or cold
        for r in &self.records {
            if r.stack_distance == COLD_DISTANCE || r.stack_distance as usize >= max_ways {
                beyond += 1;
            } else {
                hist[r.stack_distance as usize] += 1;
            }
        }
        let mut curve = Vec::with_capacity(max_ways);
        // misses(w) = beyond + sum_{d >= w, d < max_ways} hist[d]
        let mut tail: u64 = hist.iter().sum();
        for w in 1..=max_ways {
            tail -= hist[w - 1];
            curve.push((beyond + tail) * self.scale);
        }
        MissProfile::new(curve)
    }

    /// Number of *leading* (non-overlapped) misses for a cache with `ways`
    /// ways, under the overlap model `params` (scaled to the whole cache).
    ///
    /// A miss overlaps with the current leading miss if it is issued within
    /// the re-order-buffer window of that leading miss and fewer than `mshrs`
    /// misses are already outstanding in the overlap group; otherwise it
    /// starts a new group and counts as a leading miss. Overlapped misses are
    /// hidden behind the leading miss and do not contribute to memory stall
    /// time (the leading-loads performance model).
    pub fn leading_misses_at(&self, ways: usize, params: &OverlapParams) -> u64 {
        let window = params.rob_entries as u64;
        let mshrs = params.mshrs.max(1);
        let mut leading = 0u64;
        let mut group_start: Option<u64> = None;
        let mut group_size = 0usize;
        for r in &self.records {
            if !r.is_miss_at(ways) {
                continue;
            }
            let starts_new_group = r.dependent
                || match group_start {
                    Some(start) => {
                        r.inst_index.saturating_sub(start) > window || group_size >= mshrs
                    }
                    None => true,
                };
            if starts_new_group {
                leading += 1;
                group_start = Some(r.inst_index);
                group_size = 1;
            } else {
                group_size += 1;
            }
        }
        leading * self.scale
    }

    /// Average memory-level parallelism at `ways` ways under `params`.
    pub fn mlp_at(&self, ways: usize, params: &OverlapParams) -> f64 {
        let total = self.misses_at(ways);
        let leading = self.leading_misses_at(ways, params);
        if total == 0 || leading == 0 {
            1.0
        } else {
            total as f64 / leading as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::access::{Access, AccessTrace};

    fn geometry() -> LlcGeometry {
        LlcGeometry {
            num_sets: 16,
            associativity: 8,
            line_bytes: 64,
        }
    }

    /// A trace looping over `n` distinct lines that all map to set 0.
    fn same_set_loop(n: u64, repeats: u64) -> AccessTrace {
        let mut accesses = Vec::new();
        let mut inst = 0u64;
        for _ in 0..repeats {
            for i in 0..n {
                accesses.push(Access::new(i * 16, inst)); // stride 16 lines => same set
                inst += 100;
            }
        }
        AccessTrace::new(accesses, inst.max(1))
    }

    #[test]
    fn loop_miss_curve_matches_theory() {
        // A cyclic loop over 4 lines in one set: with >= 4 ways everything
        // after the cold misses hits; with < 4 ways LRU thrashes and every
        // access misses.
        let trace = same_set_loop(4, 10);
        let mut profiler = StackDistanceProfiler::new(&geometry());
        let profile = profiler.replay(&trace);
        let curve = profile.miss_curve(8);
        assert_eq!(curve.misses_at(4), 4); // only the cold misses
        assert_eq!(curve.misses_at(8), 4);
        assert_eq!(curve.misses_at(3), 40); // full thrash
        assert_eq!(curve.misses_at(1), 40);
        assert!(curve.validate().is_ok());
    }

    #[test]
    fn miss_curve_is_monotonic_and_matches_point_queries() {
        let trace = same_set_loop(6, 5);
        let mut profiler = StackDistanceProfiler::new(&geometry());
        let profile = profiler.replay(&trace);
        let curve = profile.miss_curve(8);
        for w in 1..=8usize {
            assert_eq!(curve.misses_at(w), profile.misses_at(w), "w={w}");
            if w > 1 {
                assert!(curve.misses_at(w) <= curve.misses_at(w - 1));
            }
        }
    }

    #[test]
    fn warm_up_removes_cold_misses() {
        let trace = same_set_loop(4, 1);
        let mut cold = StackDistanceProfiler::new(&geometry());
        let cold_profile = cold.replay(&trace);
        assert_eq!(cold_profile.misses_at(8), 4);

        let mut warmed = StackDistanceProfiler::new(&geometry());
        warmed.warm_up(&trace);
        let warm_profile = warmed.replay(&trace);
        assert_eq!(warm_profile.misses_at(8), 0);

        warmed.reset();
        let reset_profile = warmed.replay(&trace);
        assert_eq!(reset_profile.misses_at(8), 4);
    }

    #[test]
    fn sampled_profile_scales_counts() {
        // Accesses spread over all 16 sets, each set seeing the same pattern.
        let mut accesses = Vec::new();
        let mut inst = 0;
        for _rep in 0..3u64 {
            for set in 0..16u64 {
                for line in 0..2u64 {
                    accesses.push(Access::new(set + 16 * line, inst));
                    inst += 10;
                }
            }
        }
        let trace = AccessTrace::new(accesses, inst);
        let mut full = StackDistanceProfiler::new(&geometry());
        let full_misses = full.replay(&trace).misses_at(8);
        let mut sampled = StackDistanceProfiler::sampled(&geometry(), 4, 0);
        let sampled_misses = sampled.replay(&trace).misses_at(8);
        // Uniform traffic: the scaled sampled estimate matches exactly.
        assert_eq!(full_misses, sampled_misses);
    }

    #[test]
    fn leading_misses_respect_window_and_mshrs() {
        // 6 misses to one set: the first 3 within a 128-instruction window,
        // the last 3 far apart.
        let times = [0u64, 10, 20, 10_000, 20_000, 30_000];
        let accesses: Vec<Access> = times
            .iter()
            .enumerate()
            .map(|(line, &inst)| Access::new(line as u64 * 16, inst))
            .collect();
        let trace = AccessTrace::new(accesses, 40_000);
        let mut profiler = StackDistanceProfiler::new(&geometry());
        let profile = profiler.replay(&trace);
        assert_eq!(profile.misses_at(8), 6);

        let big = OverlapParams {
            rob_entries: 128,
            mshrs: 8,
        };
        assert_eq!(profile.leading_misses_at(8, &big), 4); // {0,10,20} overlap
        assert!((profile.mlp_at(8, &big) - 1.5).abs() < 1e-12);

        let tiny_window = OverlapParams {
            rob_entries: 4,
            mshrs: 8,
        };
        assert_eq!(profile.leading_misses_at(8, &tiny_window), 6);
        assert!((profile.mlp_at(8, &tiny_window) - 1.0).abs() < 1e-12);

        let one_mshr = OverlapParams {
            rob_entries: 128,
            mshrs: 1,
        };
        assert_eq!(profile.leading_misses_at(8, &one_mshr), 6);
    }

    #[test]
    fn mlp_grows_with_core_size() {
        // Bursty misses: groups of 4 misses close together.
        let mut accesses = Vec::new();
        let mut inst = 0u64;
        for burst in 0..10u64 {
            for i in 0..4u64 {
                accesses.push(Access::new((burst * 4 + i) * 16, inst + i * 8));
            }
            inst += 5_000;
        }
        let trace = AccessTrace::new(accesses, inst);
        let mut profiler = StackDistanceProfiler::new(&geometry());
        let profile = profiler.replay(&trace);

        let small = OverlapParams {
            rob_entries: 16,
            mshrs: 2,
        };
        let large = OverlapParams {
            rob_entries: 256,
            mshrs: 16,
        };
        assert!(profile.mlp_at(8, &large) > profile.mlp_at(8, &small));
    }

    #[test]
    fn dependent_misses_never_overlap() {
        // The same bursty pattern, but marked dependent: MLP stays 1 even on
        // a huge window.
        let accesses: Vec<Access> = (0..20u64)
            .map(|i| Access::dependent(i * 16, i * 8))
            .collect();
        let trace = AccessTrace::new(accesses, 1_000);
        let mut profiler = StackDistanceProfiler::new(&geometry());
        let profile = profiler.replay(&trace);
        let params = OverlapParams {
            rob_entries: 512,
            mshrs: 32,
        };
        assert_eq!(profile.leading_misses_at(8, &params), profile.misses_at(8));
        assert!((profile.mlp_at(8, &params) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn empty_profile_defaults() {
        let profile = ReplayProfile::from_records(vec![], 1000, 1);
        assert_eq!(profile.misses_at(4), 0);
        let params = OverlapParams {
            rob_entries: 128,
            mshrs: 8,
        };
        assert!((profile.mlp_at(4, &params) - 1.0).abs() < 1e-12);
        assert_eq!(profile.miss_curve(4).misses_at(1), 0);
    }
}
