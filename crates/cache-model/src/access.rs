//! Memory reference stream representation.

use serde::{Deserialize, Serialize};

/// One LLC access of the synthetic reference stream.
///
/// Only the cache-line address matters for the cache models; the instruction
/// index is carried along so the MLP models can decide whether two misses are
/// close enough (within the re-order buffer window) to overlap.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Access {
    /// Cache-line address (already divided by the line size).
    pub line_addr: u64,
    /// Index of the instruction that issued the access, counted from the
    /// beginning of the interval/slice.
    pub inst_index: u64,
    /// Whether the access's address depends on the result of the previous
    /// long-latency load (pointer chasing). A dependent miss can never
    /// overlap with earlier misses, regardless of the core's window/MSHRs.
    pub dependent: bool,
}

impl Access {
    /// Creates an (address-)independent access.
    #[inline]
    pub fn new(line_addr: u64, inst_index: u64) -> Self {
        Access {
            line_addr,
            inst_index,
            dependent: false,
        }
    }

    /// Creates a dependent (pointer-chasing) access.
    #[inline]
    pub fn dependent(line_addr: u64, inst_index: u64) -> Self {
        Access {
            line_addr,
            inst_index,
            dependent: true,
        }
    }

    /// Set index of this access for a cache with `num_sets` sets
    /// (`num_sets` must be a power of two).
    #[inline]
    pub fn set_index(&self, num_sets: usize) -> usize {
        debug_assert!(num_sets.is_power_of_two());
        (self.line_addr as usize) & (num_sets - 1)
    }

    /// Tag of this access for a cache with `num_sets` sets.
    #[inline]
    pub fn tag(&self, num_sets: usize) -> u64 {
        self.line_addr >> num_sets.trailing_zeros()
    }
}

/// A sequence of LLC accesses representing one representative slice of a
/// program phase, plus the total number of instructions the slice covers.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AccessTrace {
    accesses: Vec<Access>,
    instructions: u64,
}

impl AccessTrace {
    /// Creates a trace from accesses (must be sorted by instruction index)
    /// and the number of instructions the slice covers.
    pub fn new(accesses: Vec<Access>, instructions: u64) -> Self {
        debug_assert!(
            accesses
                .windows(2)
                .all(|w| w[0].inst_index <= w[1].inst_index),
            "accesses must be ordered by instruction index"
        );
        AccessTrace {
            accesses,
            instructions,
        }
    }

    /// The accesses in program order.
    #[inline]
    pub fn accesses(&self) -> &[Access] {
        &self.accesses
    }

    /// Number of LLC accesses in the trace.
    #[inline]
    pub fn len(&self) -> usize {
        self.accesses.len()
    }

    /// Whether the trace contains no accesses.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.accesses.is_empty()
    }

    /// Number of instructions the slice covers.
    #[inline]
    pub fn instructions(&self) -> u64 {
        self.instructions
    }

    /// LLC accesses per kilo-instruction of the slice.
    pub fn apki(&self) -> f64 {
        self.accesses.len() as f64 / (self.instructions.max(1) as f64 / 1000.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn set_and_tag_decomposition() {
        let a = Access::new(0b1011_0110, 10);
        assert_eq!(a.set_index(16), 0b0110);
        assert_eq!(a.tag(16), 0b1011);
        // Recombining tag and set yields the original line address.
        assert_eq!((a.tag(16) << 4) | a.set_index(16) as u64, a.line_addr);
    }

    #[test]
    fn trace_metrics() {
        let accesses = vec![Access::new(1, 0), Access::new(2, 50), Access::new(3, 900)];
        let t = AccessTrace::new(accesses, 1_000);
        assert_eq!(t.len(), 3);
        assert!(!t.is_empty());
        assert_eq!(t.instructions(), 1_000);
        assert!((t.apki() - 3.0).abs() < 1e-12);
    }

    #[test]
    fn empty_trace() {
        let t = AccessTrace::new(vec![], 100);
        assert!(t.is_empty());
        assert_eq!(t.len(), 0);
    }
}
