//! MLP-aware Auxiliary Tag Directory extension (Paper II).
//!
//! The original ATD counts the *total* number of cache misses for every way
//! allocation. For DVFS and core-size decisions, however, what matters is the
//! memory stall time, which is governed by the *leading* (non-overlapped)
//! misses: a miss that is issued while another miss is already outstanding is
//! (partially) hidden and does not extend execution time. Paper II proposes a
//! small hardware extension (< 300 bytes per core) that uses a heuristic to
//! detect such overlapping misses for every combination of core size and way
//! allocation, enabling the resource manager to predict MLP when it changes
//! the core configuration.

use crate::access::AccessTrace;
use crate::profile::{ReplayProfile, StackDistanceProfiler};
use qosrm_types::{CoreSizeIdx, CoreSizeParams, LlcGeometry, MissProfile, MlpProfile};
use serde::{Deserialize, Serialize};

/// Parameters that bound how aggressively misses can overlap on a given core
/// configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct OverlapParams {
    /// Re-order-buffer window in instructions: two misses further apart than
    /// this cannot be in flight together.
    pub rob_entries: usize,
    /// Miss-status holding registers: at most this many misses can overlap in
    /// one group.
    pub mshrs: usize,
}

impl From<&CoreSizeParams> for OverlapParams {
    fn from(p: &CoreSizeParams) -> Self {
        OverlapParams {
            rob_entries: p.rob_entries,
            mshrs: p.mshrs,
        }
    }
}

/// Leading-miss counts for every (core size, way allocation) combination of
/// one interval.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LeadingMissMatrix {
    /// `leading[s][w-1]` = leading misses with core size `s` and `w` ways.
    pub leading: Vec<Vec<u64>>,
}

impl LeadingMissMatrix {
    /// Converts the matrix into the [`MlpProfile`] observation type.
    pub fn into_profile(self) -> MlpProfile {
        MlpProfile::new(self.leading)
    }
}

/// Configuration of the MLP-aware ATD extension.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MlpAtdConfig {
    /// Dynamic set sampling factor shared with the base ATD.
    pub set_sampling: usize,
    /// Overlap parameters of every core-size configuration, ordered small to
    /// large (one row of leading-miss counters is maintained per size).
    pub core_sizes: Vec<OverlapParams>,
}

impl MlpAtdConfig {
    /// Builds a configuration from the platform's core-size list.
    pub fn from_core_sizes(core_sizes: &[CoreSizeParams], set_sampling: usize) -> Self {
        MlpAtdConfig {
            set_sampling,
            core_sizes: core_sizes.iter().map(OverlapParams::from).collect(),
        }
    }
}

/// Per-core MLP-aware ATD: tracks, for every core size and way allocation,
/// how many leading misses the application would have had.
#[derive(Debug, Clone)]
pub struct MlpAtd {
    config: MlpAtdConfig,
    geometry: LlcGeometry,
    profiler: StackDistanceProfiler,
}

impl MlpAtd {
    /// Creates the extension for the given LLC geometry.
    pub fn new(geometry: LlcGeometry, config: MlpAtdConfig) -> Self {
        let profiler = if config.set_sampling <= 1 {
            StackDistanceProfiler::new(&geometry)
        } else {
            StackDistanceProfiler::sampled(&geometry, config.set_sampling, 0)
        };
        MlpAtd {
            config,
            geometry,
            profiler,
        }
    }

    /// The configuration.
    pub fn config(&self) -> &MlpAtdConfig {
        &self.config
    }

    /// Replays one interval and returns both the total-miss profile and the
    /// leading-miss matrix (all counts scaled to the full cache).
    pub fn observe_interval(&mut self, trace: &AccessTrace) -> (MissProfile, LeadingMissMatrix) {
        let profile = self.profiler.replay(trace);
        let misses = profile.miss_curve(self.geometry.associativity);
        let matrix = Self::matrix_from_profile(&profile, &self.config, self.geometry.associativity);
        (misses, matrix)
    }

    /// Computes the leading-miss matrix from an existing replay profile
    /// (used by the simulation-database generator, which already has the
    /// profile at hand).
    pub fn matrix_from_profile(
        profile: &ReplayProfile,
        config: &MlpAtdConfig,
        max_ways: usize,
    ) -> LeadingMissMatrix {
        let leading = config
            .core_sizes
            .iter()
            .map(|params| {
                (1..=max_ways)
                    .map(|w| profile.leading_misses_at(w, params))
                    .collect()
            })
            .collect();
        LeadingMissMatrix { leading }
    }

    /// Warms the shadow directory without recording.
    pub fn warm_up(&mut self, trace: &AccessTrace) {
        self.profiler.warm_up(trace);
    }

    /// Clears the recency state.
    pub fn reset(&mut self) {
        self.profiler.reset();
    }

    /// Estimated hardware cost in bytes of the *extension* (the leading-miss
    /// counters and the per-group state), excluding the base ATD it builds
    /// on. The paper reports less than 300 bytes per core.
    pub fn hardware_cost_bytes(&self) -> usize {
        // One 32-bit counter per (core size, way) plus a small amount of
        // per-size group-tracking state (last leading-miss index and an
        // outstanding-count register).
        let counters = self.config.core_sizes.len() * self.geometry.associativity * 32;
        let tracking = self.config.core_sizes.len() * (32 + 8);
        (counters + tracking).div_ceil(8)
    }
}

/// Estimate of the MLP for a given core size from a leading-miss matrix and a
/// miss profile.
pub fn mlp_estimate(
    misses: &MissProfile,
    matrix: &LeadingMissMatrix,
    size: CoreSizeIdx,
    ways: usize,
) -> f64 {
    let total = misses.misses_at(ways);
    let leading = matrix.leading[size.index()][ways - 1];
    if total == 0 || leading == 0 {
        1.0
    } else {
        (total as f64 / leading as f64).max(1.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::access::Access;

    fn geometry() -> LlcGeometry {
        LlcGeometry {
            num_sets: 64,
            associativity: 16,
            line_bytes: 64,
        }
    }

    fn sizes() -> Vec<OverlapParams> {
        vec![
            OverlapParams {
                rob_entries: 64,
                mshrs: 4,
            },
            OverlapParams {
                rob_entries: 128,
                mshrs: 8,
            },
            OverlapParams {
                rob_entries: 256,
                mshrs: 16,
            },
        ]
    }

    /// Bursty streaming trace: groups of `burst` distinct new lines issued
    /// close together, far apart from the next group.
    fn bursty_trace(groups: u64, burst: u64) -> AccessTrace {
        let mut accesses = Vec::new();
        let mut inst = 0u64;
        let mut line = 0u64;
        for _ in 0..groups {
            for i in 0..burst {
                accesses.push(Access::new(line, inst + i * 10));
                line += 1;
            }
            inst += 10_000;
        }
        AccessTrace::new(accesses, inst.max(1))
    }

    #[test]
    fn larger_cores_expose_more_mlp() {
        let config = MlpAtdConfig {
            set_sampling: 1,
            core_sizes: sizes(),
        };
        let mut atd = MlpAtd::new(geometry(), config);
        let (misses, matrix) = atd.observe_interval(&bursty_trace(50, 12));
        // Streaming: every access misses regardless of ways.
        assert_eq!(misses.misses_at(16), 600);
        let mlp_small = mlp_estimate(&misses, &matrix, CoreSizeIdx(0), 16);
        let mlp_medium = mlp_estimate(&misses, &matrix, CoreSizeIdx(1), 16);
        let mlp_large = mlp_estimate(&misses, &matrix, CoreSizeIdx(2), 16);
        assert!(mlp_small < mlp_medium && mlp_medium < mlp_large);
        assert!((mlp_small - 4.0).abs() < 0.5); // limited by 4 MSHRs
        assert!(mlp_large >= 10.0); // whole 12-miss burst overlaps on the large core
    }

    #[test]
    fn leading_never_exceeds_total() {
        let config = MlpAtdConfig {
            set_sampling: 1,
            core_sizes: sizes(),
        };
        let mut atd = MlpAtd::new(geometry(), config);
        let (misses, matrix) = atd.observe_interval(&bursty_trace(30, 5));
        let profile = matrix.clone().into_profile();
        assert!(profile.validate(&misses).is_ok());
        for s in 0..3 {
            for w in 1..=16usize {
                assert!(matrix.leading[s][w - 1] <= misses.misses_at(w));
            }
        }
    }

    #[test]
    fn dependent_misses_have_unit_mlp() {
        // Misses spaced far apart (pointer chasing): MLP stays 1 on any core.
        let accesses: Vec<Access> = (0..200u64).map(|i| Access::new(i, i * 1_000)).collect();
        let trace = AccessTrace::new(accesses, 200_000);
        let config = MlpAtdConfig {
            set_sampling: 1,
            core_sizes: sizes(),
        };
        let mut atd = MlpAtd::new(geometry(), config);
        let (misses, matrix) = atd.observe_interval(&trace);
        for s in 0..3usize {
            let mlp = mlp_estimate(&misses, &matrix, CoreSizeIdx(s), 16);
            assert!((mlp - 1.0).abs() < 1e-9, "size {s} should have MLP 1");
        }
    }

    #[test]
    fn hardware_cost_is_small() {
        let config = MlpAtdConfig {
            set_sampling: 32,
            core_sizes: sizes(),
        };
        let atd = MlpAtd::new(LlcGeometry::default_4mib_16way(), config);
        // The paper budget: below 300 bytes per core.
        assert!(atd.hardware_cost_bytes() < 300);
    }

    #[test]
    fn from_core_size_params() {
        let params = CoreSizeParams::default_three_sizes();
        let config = MlpAtdConfig::from_core_sizes(&params, 32);
        assert_eq!(config.core_sizes.len(), 3);
        assert_eq!(config.core_sizes[0].mshrs, params[0].mshrs);
        assert_eq!(config.core_sizes[2].rob_entries, params[2].rob_entries);
        assert!(config.core_sizes[2].mshrs > config.core_sizes[0].mshrs);
    }
}
