//! Reconfiguration overheads charged when the resource manager changes a
//! core's setting.
//!
//! Three kinds of overhead are modelled, matching the overhead analysis of
//! the paper:
//!
//! * **DVFS transitions** — voltage ramp and PLL relock stall the core for a
//!   few microseconds.
//! * **Core re-configuration** (Paper II) — activating or deactivating
//!   micro-architectural resources requires draining the pipeline.
//! * **LLC repartitioning** — a core that loses ways gradually loses the
//!   lines cached in them and pays extra misses to refill its new partition;
//!   a core that gains ways must fill them with cold misses.

use qosrm_types::setting::SettingDelta;
use qosrm_types::{LlcGeometry, MemoryParams};
use serde::{Deserialize, Serialize};

/// Latency constants of the transition model.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TransitionCosts {
    /// Time the core is stalled by one DVFS transition, in seconds.
    pub dvfs_latency_s: f64,
    /// Time the core is stalled by one re-configuration, in seconds.
    pub reconfig_latency_s: f64,
    /// Fraction of the lines in a gained/lost way that actually need to be
    /// refetched (not all ways are fully live).
    pub refill_occupancy: f64,
}

impl Default for TransitionCosts {
    fn default() -> Self {
        TransitionCosts {
            dvfs_latency_s: 10e-6,
            reconfig_latency_s: 20e-6,
            refill_occupancy: 0.5,
        }
    }
}

/// Overhead charged to one core for one setting change.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct TransitionOverhead {
    /// Extra execution time in seconds.
    pub time_seconds: f64,
    /// Extra off-chip accesses caused by refilling repartitioned ways.
    pub extra_misses: u64,
    /// Number of DVFS transitions performed.
    pub dvfs_transitions: u64,
    /// Number of core re-configurations performed.
    pub core_reconfigs: u64,
}

impl TransitionOverhead {
    /// Whether any overhead was charged.
    pub fn is_zero(&self) -> bool {
        self.time_seconds == 0.0 && self.extra_misses == 0
    }
}

/// Computes transition overheads from setting deltas.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TransitionModel {
    costs: TransitionCosts,
    llc: LlcGeometry,
    memory: MemoryParams,
}

impl TransitionModel {
    /// Creates the model.
    pub fn new(costs: TransitionCosts, llc: LlcGeometry, memory: MemoryParams) -> Self {
        TransitionModel { costs, llc, memory }
    }

    /// The latency constants.
    pub fn costs(&self) -> &TransitionCosts {
        &self.costs
    }

    /// Overhead charged to one core for applying `delta`.
    ///
    /// Way gains/losses are charged as `|Δways| · num_sets · occupancy` extra
    /// misses plus the time to serve them (they trickle in over the next
    /// interval, largely overlapped, so only the unloaded latency of the
    /// *non-overlapped* fraction is charged as time).
    pub fn overhead(&self, delta: &SettingDelta) -> TransitionOverhead {
        let mut overhead = TransitionOverhead::default();
        if delta.freq_changed {
            overhead.dvfs_transitions = 1;
            overhead.time_seconds += self.costs.dvfs_latency_s;
        }
        if delta.core_size_changed {
            overhead.core_reconfigs = 1;
            overhead.time_seconds += self.costs.reconfig_latency_s;
        }
        if delta.ways_changed {
            let changed_ways = delta.ways_delta.unsigned_abs();
            let lines =
                (changed_ways as f64 * self.llc.num_sets as f64 * self.costs.refill_occupancy)
                    .round() as u64;
            overhead.extra_misses = lines;
            // Refills are heavily overlapped; charge 10 % of their raw latency.
            overhead.time_seconds += lines as f64 * self.memory.latency_ns * 1e-9 * 0.1;
        }
        overhead
    }

    /// Total overhead for a whole system transition (per-core deltas).
    pub fn system_overhead(&self, deltas: &[SettingDelta]) -> Vec<TransitionOverhead> {
        deltas.iter().map(|d| self.overhead(d)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn model() -> TransitionModel {
        TransitionModel::new(
            TransitionCosts::default(),
            LlcGeometry::default_4mib_16way(),
            MemoryParams::default_ddr4(),
        )
    }

    fn delta(freq: bool, ways: isize, size: bool) -> SettingDelta {
        SettingDelta {
            freq_changed: freq,
            ways_changed: ways != 0,
            core_size_changed: size,
            ways_delta: ways,
        }
    }

    #[test]
    fn no_change_no_overhead() {
        let o = model().overhead(&delta(false, 0, false));
        assert!(o.is_zero());
        assert_eq!(o.dvfs_transitions, 0);
    }

    #[test]
    fn dvfs_and_reconfig_cost_time() {
        let o = model().overhead(&delta(true, 0, true));
        assert_eq!(o.dvfs_transitions, 1);
        assert_eq!(o.core_reconfigs, 1);
        assert!((o.time_seconds - 30e-6).abs() < 1e-12);
        assert_eq!(o.extra_misses, 0);
    }

    #[test]
    fn way_changes_cost_refills() {
        let gain2 = model().overhead(&delta(false, 2, false));
        let lose2 = model().overhead(&delta(false, -2, false));
        assert_eq!(gain2.extra_misses, lose2.extra_misses);
        assert_eq!(gain2.extra_misses, 4096); // 2 ways * 4096 sets * 0.5
        assert!(gain2.time_seconds > 0.0);

        let gain4 = model().overhead(&delta(false, 4, false));
        assert!(gain4.extra_misses > gain2.extra_misses);
    }

    #[test]
    fn overheads_are_small_relative_to_interval() {
        // The paper argues the reconfiguration overheads are negligible
        // compared to a 100 M instruction interval (tens of milliseconds).
        let o = model().overhead(&delta(true, 4, true));
        assert!(o.time_seconds < 1e-3);
    }

    #[test]
    fn system_overhead_covers_all_cores() {
        let deltas = vec![
            delta(true, 0, false),
            delta(false, 2, false),
            delta(false, 0, false),
        ];
        let overheads = model().system_overhead(&deltas);
        assert_eq!(overheads.len(), 3);
        assert!(overheads[0].dvfs_transitions == 1);
        assert!(overheads[1].extra_misses > 0);
        assert!(overheads[2].is_zero());
    }
}
