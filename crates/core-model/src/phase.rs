//! Architectural characterization of one program phase.

use qosrm_types::{CoreSizeIdx, QosrmError};
use serde::{Deserialize, Serialize};

/// Everything the interval model needs to know about one program phase
/// (one representative slice), obtained by replaying the phase's reference
/// stream through the cache substrate and applying the ILP model.
///
/// Two views of the cache behaviour are kept:
///
/// * the **exact** counts (`misses_per_way`, `leading_misses`) used as ground
///   truth by the simulation database, and
/// * the **ATD-sampled** counts (`atd_misses_per_way`, `atd_leading_misses`)
///   that model what the set-sampled hardware monitors report to the resource
///   manager — these differ from the exact counts by the sampling error,
///   which is one of the sources of modeling error the paper analyses.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PhaseCharacterization {
    /// Instructions of one interval of this phase.
    pub instructions: u64,
    /// LLC accesses of one interval.
    pub llc_accesses: u64,
    /// Execution (non-stall) CPI for every core size.
    pub exec_cpi: Vec<f64>,
    /// Exact LLC misses for every way allocation (`[w-1]`).
    pub misses_per_way: Vec<u64>,
    /// Exact leading misses for every `(core size, way allocation)`.
    pub leading_misses: Vec<Vec<u64>>,
    /// ATD-reported (set-sampled) misses for every way allocation.
    pub atd_misses_per_way: Vec<u64>,
    /// ATD-reported (set-sampled) leading misses for every
    /// `(core size, way allocation)`.
    pub atd_leading_misses: Vec<Vec<u64>>,
}

impl PhaseCharacterization {
    /// Maximum way count covered.
    pub fn max_ways(&self) -> usize {
        self.misses_per_way.len()
    }

    /// Number of core sizes covered.
    pub fn num_core_sizes(&self) -> usize {
        self.exec_cpi.len()
    }

    /// Exact misses at `ways` ways.
    #[inline]
    pub fn misses_at(&self, ways: usize) -> u64 {
        self.misses_per_way[ways - 1]
    }

    /// Exact leading misses at `(size, ways)`.
    #[inline]
    pub fn leading_at(&self, size: CoreSizeIdx, ways: usize) -> u64 {
        self.leading_misses[size.index()][ways - 1]
    }

    /// Exact MLP at `(size, ways)`.
    pub fn mlp_at(&self, size: CoreSizeIdx, ways: usize) -> f64 {
        let total = self.misses_at(ways);
        let leading = self.leading_at(size, ways);
        if total == 0 || leading == 0 {
            1.0
        } else {
            (total as f64 / leading as f64).max(1.0)
        }
    }

    /// Misses per kilo-instruction at `ways` ways (exact).
    pub fn mpki_at(&self, ways: usize) -> f64 {
        self.misses_at(ways) as f64 / (self.instructions.max(1) as f64 / 1000.0)
    }

    /// Validates internal consistency.
    pub fn validate(&self) -> Result<(), QosrmError> {
        if self.instructions == 0 {
            return Err(QosrmError::InvalidWorkload(
                "phase has 0 instructions".into(),
            ));
        }
        if self.misses_per_way.is_empty() || self.exec_cpi.is_empty() {
            return Err(QosrmError::InvalidWorkload(
                "phase characterization is missing curves".into(),
            ));
        }
        let ways = self.misses_per_way.len();
        let sizes = self.exec_cpi.len();
        if self.atd_misses_per_way.len() != ways {
            return Err(QosrmError::InvalidWorkload(
                "ATD miss curve length differs from exact curve".into(),
            ));
        }
        if self.leading_misses.len() != sizes || self.atd_leading_misses.len() != sizes {
            return Err(QosrmError::InvalidWorkload(
                "leading-miss matrices must cover every core size".into(),
            ));
        }
        for row in self
            .leading_misses
            .iter()
            .chain(self.atd_leading_misses.iter())
        {
            if row.len() != ways {
                return Err(QosrmError::InvalidWorkload(
                    "leading-miss matrix row length differs from way count".into(),
                ));
            }
        }
        for pair in self.misses_per_way.windows(2) {
            if pair[1] > pair[0] {
                return Err(QosrmError::InvalidWorkload(
                    "exact miss curve must be non-increasing".into(),
                ));
            }
        }
        for (s, row) in self.leading_misses.iter().enumerate() {
            for (w, &leading) in row.iter().enumerate() {
                if leading > self.misses_per_way[w] {
                    return Err(QosrmError::InvalidWorkload(format!(
                        "leading misses exceed total misses at size {s}, ways {}",
                        w + 1
                    )));
                }
            }
        }
        for &cpi in &self.exec_cpi {
            if !(cpi.is_finite() && cpi > 0.0) {
                return Err(QosrmError::InvalidWorkload(
                    "execution CPI must be positive".into(),
                ));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    pub(crate) fn example_phase() -> PhaseCharacterization {
        PhaseCharacterization {
            instructions: 1_000_000,
            llc_accesses: 20_000,
            exec_cpi: vec![1.4, 1.0, 0.8],
            misses_per_way: vec![8000, 6000, 4000, 3000, 2500, 2200, 2000, 1900],
            leading_misses: vec![
                vec![7000, 5400, 3700, 2800, 2350, 2080, 1900, 1810],
                vec![5000, 3800, 2600, 2000, 1700, 1500, 1380, 1320],
                vec![3200, 2500, 1750, 1360, 1160, 1030, 950, 910],
            ],
            atd_misses_per_way: vec![8200, 6100, 4050, 3060, 2540, 2230, 2030, 1930],
            atd_leading_misses: vec![
                vec![7100, 5500, 3750, 2840, 2380, 2100, 1920, 1830],
                vec![5100, 3850, 2640, 2030, 1720, 1520, 1400, 1340],
                vec![3260, 2540, 1780, 1380, 1180, 1040, 960, 920],
            ],
        }
    }

    #[test]
    fn example_is_valid() {
        assert!(example_phase().validate().is_ok());
        let p = example_phase();
        assert_eq!(p.max_ways(), 8);
        assert_eq!(p.num_core_sizes(), 3);
        assert_eq!(p.misses_at(1), 8000);
        assert_eq!(p.leading_at(CoreSizeIdx(2), 1), 3200);
        assert!(p.mlp_at(CoreSizeIdx(2), 1) > p.mlp_at(CoreSizeIdx(0), 1));
        assert!((p.mpki_at(1) - 8.0).abs() < 1e-12);
    }

    #[test]
    fn validation_catches_inconsistencies() {
        let mut p = example_phase();
        p.misses_per_way[3] = 10_000; // non-monotone
        assert!(p.validate().is_err());

        let mut p = example_phase();
        p.leading_misses[0][0] = 9_000; // exceeds total
        assert!(p.validate().is_err());

        let mut p = example_phase();
        p.exec_cpi[1] = -1.0;
        assert!(p.validate().is_err());

        let mut p = example_phase();
        p.atd_misses_per_way.pop();
        assert!(p.validate().is_err());

        let mut p = example_phase();
        p.instructions = 0;
        assert!(p.validate().is_err());
    }
}
