//! # core-model
//!
//! Interval-based analytical processor-core model — the reproduction's
//! equivalent of the Sniper mechanistic core model used by the paper.
//!
//! The model follows the interval / leading-loads methodology: the execution
//! time of an interval is the sum of
//!
//! * a **compute component** `N · CPI_exec(core size) / f` that scales with
//!   the clock frequency and with the ILP the core configuration can extract,
//!   and
//! * a **memory stall component** `leading_misses(core size, ways) · L_eff`
//!   that is independent of the core frequency; only *leading* (non
//!   overlapped) misses stall the core, and the effective memory latency
//!   `L_eff` includes a bandwidth-queueing term.
//!
//! The crate also models the transition overheads charged when the resource
//! manager changes a setting (DVFS relock, core re-configuration, cache
//! refills after repartitioning).

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod ilp;
pub mod interval;
pub mod phase;
pub mod transition;

pub use ilp::{exec_cpi_curve, IlpParams};
pub use interval::{IntervalModel, IntervalOutcome};
pub use phase::PhaseCharacterization;
pub use transition::{TransitionCosts, TransitionModel, TransitionOverhead};
