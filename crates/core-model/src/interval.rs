//! The ground-truth interval performance model (Sniper substitute).

use crate::phase::PhaseCharacterization;
use qosrm_types::{CoreSizeIdx, FreqLevel, IntervalStats, MemoryParams, PlatformConfig, VfPoint};
use serde::{Deserialize, Serialize};

/// Timing outcome of executing one interval of a phase at a given
/// configuration.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct IntervalOutcome {
    /// Total interval time in seconds.
    pub time_seconds: f64,
    /// Compute (non-stalled) component in seconds.
    pub exec_seconds: f64,
    /// Memory-stall component in seconds.
    pub stall_seconds: f64,
    /// LLC misses during the interval.
    pub llc_misses: u64,
    /// Leading (stall-causing) misses during the interval.
    pub leading_misses: u64,
    /// Effective memory latency after bandwidth queueing, in nanoseconds.
    pub effective_latency_ns: f64,
}

impl IntervalOutcome {
    /// Instructions per second at this configuration.
    pub fn ips(&self, instructions: u64) -> f64 {
        instructions as f64 / self.time_seconds.max(f64::MIN_POSITIVE)
    }
}

/// The interval-based core performance model.
///
/// Unlike the simple analytical models inside the resource manager, the
/// ground-truth model includes a bandwidth-queueing term: when the miss
/// bandwidth demanded by a core approaches its equal share of the memory
/// bandwidth, the effective memory latency inflates. The resource manager's
/// models ignore this effect, which is one of the modeling-error sources the
/// paper's QoS-violation analysis studies.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct IntervalModel {
    memory: MemoryParams,
    num_cores: usize,
    /// Strength of the bandwidth-queueing latency inflation.
    queue_coefficient: f64,
}

impl IntervalModel {
    /// Creates the model for a platform.
    pub fn new(platform: &PlatformConfig) -> Self {
        IntervalModel {
            memory: platform.memory,
            num_cores: platform.num_cores,
            queue_coefficient: 1.0,
        }
    }

    /// Creates the model from explicit memory parameters (used in tests).
    pub fn with_memory(memory: MemoryParams, num_cores: usize) -> Self {
        IntervalModel {
            memory,
            num_cores,
            queue_coefficient: 1.0,
        }
    }

    /// Evaluates the timing of one interval of `phase` at configuration
    /// `(size, vf, ways)`.
    pub fn evaluate(
        &self,
        phase: &PhaseCharacterization,
        size: CoreSizeIdx,
        vf: VfPoint,
        ways: usize,
    ) -> IntervalOutcome {
        let n = phase.instructions as f64;
        let exec_cpi = phase.exec_cpi[size.index()];
        let exec_seconds = n * exec_cpi / vf.freq_hz();

        let misses = phase.misses_at(ways);
        let leading = phase.leading_at(size, ways);
        let base_latency_s = self.memory.latency_ns * 1e-9;

        // Fixed-point iteration (two rounds) of the bandwidth-queueing term:
        // the effective latency depends on the interval duration, which in
        // turn depends on the effective latency.
        let bw_share = self.memory.per_core_bandwidth_gbs(self.num_cores) * 1e9; // bytes/s
        let bytes = misses as f64 * self.memory.line_bytes as f64;
        let mut latency_s = base_latency_s;
        for _ in 0..2 {
            let time = (exec_seconds + leading as f64 * latency_s).max(1e-12);
            let demand = bytes / time;
            let utilization = (demand / bw_share).min(1.5);
            latency_s = base_latency_s * (1.0 + self.queue_coefficient * utilization);
        }

        let stall_seconds = leading as f64 * latency_s;
        IntervalOutcome {
            time_seconds: exec_seconds + stall_seconds,
            exec_seconds,
            stall_seconds,
            llc_misses: misses,
            leading_misses: leading,
            effective_latency_ns: latency_s * 1e9,
        }
    }

    /// Evaluates the interval and renders it as the hardware performance
    /// counter view the resource manager would observe.
    pub fn interval_stats(
        &self,
        phase: &PhaseCharacterization,
        size: CoreSizeIdx,
        freq: FreqLevel,
        vf: VfPoint,
        ways: usize,
    ) -> IntervalStats {
        let outcome = self.evaluate(phase, size, vf, ways);
        let cycles = (outcome.time_seconds * vf.freq_hz()).round() as u64;
        let exec_cycles = (outcome.exec_seconds * vf.freq_hz()).round() as u64;
        IntervalStats {
            instructions: phase.instructions,
            cycles,
            exec_cycles,
            llc_accesses: phase.llc_accesses,
            llc_misses: outcome.llc_misses,
            leading_misses: outcome.leading_misses,
            elapsed_seconds: outcome.time_seconds,
            freq,
            core_size: size,
            ways,
        }
    }

    /// The memory parameters the model was built with.
    pub fn memory(&self) -> &MemoryParams {
        &self.memory
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qosrm_types::CoreSizeIdx;

    fn phase() -> PhaseCharacterization {
        PhaseCharacterization {
            instructions: 100_000_000,
            llc_accesses: 2_000_000,
            exec_cpi: vec![1.4, 1.0, 0.8],
            misses_per_way: vec![
                1_000_000, 800_000, 600_000, 450_000, 380_000, 330_000, 300_000, 280_000, 265_000,
                255_000, 248_000, 243_000, 239_000, 236_000, 234_000, 233_000,
            ],
            leading_misses: vec![
                (0..16)
                    .map(|w| {
                        (vec![
                            1_000_000u64,
                            800_000,
                            600_000,
                            450_000,
                            380_000,
                            330_000,
                            300_000,
                            280_000,
                            265_000,
                            255_000,
                            248_000,
                            243_000,
                            239_000,
                            236_000,
                            234_000,
                            233_000,
                        ][w] as f64
                            * 0.9) as u64
                    })
                    .collect(),
                (0..16)
                    .map(|w| {
                        (vec![
                            1_000_000u64,
                            800_000,
                            600_000,
                            450_000,
                            380_000,
                            330_000,
                            300_000,
                            280_000,
                            265_000,
                            255_000,
                            248_000,
                            243_000,
                            239_000,
                            236_000,
                            234_000,
                            233_000,
                        ][w] as f64
                            * 0.55) as u64
                    })
                    .collect(),
                (0..16)
                    .map(|w| {
                        (vec![
                            1_000_000u64,
                            800_000,
                            600_000,
                            450_000,
                            380_000,
                            330_000,
                            300_000,
                            280_000,
                            265_000,
                            255_000,
                            248_000,
                            243_000,
                            239_000,
                            236_000,
                            234_000,
                            233_000,
                        ][w] as f64
                            * 0.35) as u64
                    })
                    .collect(),
            ],
            atd_misses_per_way: vec![
                1_000_000, 800_000, 600_000, 450_000, 380_000, 330_000, 300_000, 280_000, 265_000,
                255_000, 248_000, 243_000, 239_000, 236_000, 234_000, 233_000,
            ],
            atd_leading_misses: vec![vec![0; 16], vec![0; 16], vec![0; 16]],
        }
    }

    fn platform() -> PlatformConfig {
        PlatformConfig::paper2(4)
    }

    #[test]
    fn higher_frequency_shrinks_only_exec_time() {
        let p = platform();
        let model = IntervalModel::new(&p);
        let ph = phase();
        let slow = model.evaluate(&ph, CoreSizeIdx(1), p.vf.point(FreqLevel(0)), 4);
        let fast = model.evaluate(&ph, CoreSizeIdx(1), p.vf.point(p.vf.max_level()), 4);
        assert!(fast.exec_seconds < slow.exec_seconds);
        // Stall time is (nearly) frequency independent: it may only shrink
        // slightly because the shorter interval raises bandwidth pressure.
        assert!(fast.stall_seconds >= slow.stall_seconds * 0.99);
        assert!(fast.time_seconds < slow.time_seconds);
    }

    #[test]
    fn more_ways_reduce_time() {
        let p = platform();
        let model = IntervalModel::new(&p);
        let ph = phase();
        let few = model.evaluate(&ph, CoreSizeIdx(1), p.vf.point(p.vf.baseline()), 1);
        let many = model.evaluate(&ph, CoreSizeIdx(1), p.vf.point(p.vf.baseline()), 16);
        assert!(many.time_seconds < few.time_seconds);
        assert!(many.llc_misses < few.llc_misses);
    }

    #[test]
    fn bigger_core_reduces_both_components() {
        let p = platform();
        let model = IntervalModel::new(&p);
        let ph = phase();
        let small = model.evaluate(&ph, CoreSizeIdx(0), p.vf.point(p.vf.baseline()), 4);
        let large = model.evaluate(&ph, CoreSizeIdx(2), p.vf.point(p.vf.baseline()), 4);
        assert!(large.exec_seconds < small.exec_seconds);
        assert!(large.stall_seconds < small.stall_seconds);
        assert!(large.leading_misses < small.leading_misses);
    }

    #[test]
    fn queueing_inflates_latency_under_pressure() {
        let p = platform();
        let model = IntervalModel::new(&p);
        let mut ph = phase();
        // A very miss-heavy phase at a high frequency drives up bandwidth demand.
        for m in &mut ph.misses_per_way {
            *m *= 8;
        }
        for row in &mut ph.leading_misses {
            for m in row {
                *m *= 8;
            }
        }
        let outcome = model.evaluate(&ph, CoreSizeIdx(2), p.vf.point(p.vf.max_level()), 1);
        assert!(outcome.effective_latency_ns > model.memory().latency_ns * 1.2);

        let light = model.evaluate(&phase(), CoreSizeIdx(0), p.vf.point(FreqLevel(0)), 16);
        assert!(light.effective_latency_ns < outcome.effective_latency_ns);
    }

    #[test]
    fn interval_stats_reflect_outcome() {
        let p = platform();
        let model = IntervalModel::new(&p);
        let ph = phase();
        let stats = model.interval_stats(
            &ph,
            CoreSizeIdx(1),
            p.vf.baseline(),
            p.vf.point(p.vf.baseline()),
            4,
        );
        let outcome = model.evaluate(&ph, CoreSizeIdx(1), p.vf.point(p.vf.baseline()), 4);
        assert_eq!(stats.instructions, ph.instructions);
        assert_eq!(stats.llc_misses, outcome.llc_misses);
        assert!((stats.elapsed_seconds - outcome.time_seconds).abs() < 1e-12);
        assert!(stats.exec_cycles < stats.cycles);
        assert!(stats.measured_mlp() > 1.0);
        assert_eq!(stats.ways, 4);
    }

    #[test]
    fn ips_is_consistent() {
        let p = platform();
        let model = IntervalModel::new(&p);
        let ph = phase();
        let o = model.evaluate(&ph, CoreSizeIdx(1), p.vf.point(p.vf.baseline()), 8);
        let ips = o.ips(ph.instructions);
        assert!((ips * o.time_seconds - ph.instructions as f64).abs() < 1.0);
    }
}
