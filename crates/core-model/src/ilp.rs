//! Instruction-level-parallelism scaling of the execution CPI with the core
//! micro-architecture size.

use qosrm_types::{CoreSizeIdx, CoreSizeParams};
use serde::{Deserialize, Serialize};

/// ILP characteristics of a program phase.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct IlpParams {
    /// Execution (non-memory-stall) CPI on the baseline (medium) core.
    pub exec_cpi_baseline: f64,
    /// How strongly the execution CPI reacts to the issue width / window of
    /// the core: 0.0 = completely insensitive (e.g. a long dependence chain),
    /// 1.0 = scales with the full width ratio (abundant independent work).
    pub ilp_sensitivity: f64,
}

impl IlpParams {
    /// Creates ILP parameters, clamping the sensitivity into `[0, 1]`.
    pub fn new(exec_cpi_baseline: f64, ilp_sensitivity: f64) -> Self {
        IlpParams {
            exec_cpi_baseline: exec_cpi_baseline.max(1e-3),
            ilp_sensitivity: ilp_sensitivity.clamp(0.0, 1.0),
        }
    }
}

/// Computes the execution CPI of a phase for every core-size configuration.
///
/// The CPI scales with the issue-width ratio raised to the phase's ILP
/// sensitivity and is bounded below by the theoretical minimum `1 / width`:
///
/// `CPI_exec(s) = max(1 / width_s, CPI_base · (width_base / width_s)^sens)`
///
/// ILP extraction shows diminishing returns: *shrinking* the core below the
/// baseline exposes the full sensitivity (dependences that fit a 4-wide
/// window now stall a 2-wide one), while *growing* it above the baseline only
/// realizes half the exponent (the additional width mostly finds no extra
/// independent work). A parallelism-insensitive phase keeps its CPI at every
/// size.
pub fn exec_cpi_curve(
    ilp: &IlpParams,
    core_sizes: &[CoreSizeParams],
    baseline: CoreSizeIdx,
) -> Vec<f64> {
    let base_width = core_sizes[baseline.index()].issue_width as f64;
    core_sizes
        .iter()
        .map(|size| {
            let width = size.issue_width as f64;
            let sensitivity = if width > base_width {
                ilp.ilp_sensitivity * 0.5
            } else {
                ilp.ilp_sensitivity
            };
            let scaled = ilp.exec_cpi_baseline * (base_width / width).powf(sensitivity);
            scaled.max(1.0 / width)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sizes() -> Vec<CoreSizeParams> {
        CoreSizeParams::default_three_sizes()
    }

    #[test]
    fn insensitive_phase_is_flat() {
        let ilp = IlpParams::new(1.2, 0.0);
        let curve = exec_cpi_curve(&ilp, &sizes(), CoreSizeIdx(1));
        assert!((curve[0] - 1.2).abs() < 1e-12);
        assert!((curve[1] - 1.2).abs() < 1e-12);
        assert!((curve[2] - 1.2).abs() < 1e-12);
    }

    /// Core sizes with distinct issue widths (2 / 4 / 8) to exercise the
    /// width-scaling behaviour of the model directly.
    fn wide_sizes() -> Vec<CoreSizeParams> {
        let mut sizes = CoreSizeParams::default_three_sizes();
        sizes[0].issue_width = 2;
        sizes[1].issue_width = 4;
        sizes[2].issue_width = 8;
        sizes
    }

    #[test]
    fn sensitive_phase_scales_with_width() {
        let ilp = IlpParams::new(0.8, 1.0);
        let curve = exec_cpi_curve(&ilp, &wide_sizes(), CoreSizeIdx(1));
        // Small core (width 2 vs 4): CPI doubles. Large core (width 8):
        // improves with the halved exponent (1/sqrt(2)).
        assert!((curve[0] - 1.6).abs() < 1e-12);
        assert!((curve[1] - 0.8).abs() < 1e-12);
        assert!((curve[2] - 0.8 / 2f64.sqrt()).abs() < 1e-12);
        // Monotone non-increasing with size.
        assert!(curve[0] >= curve[1] && curve[1] >= curve[2]);
    }

    #[test]
    fn default_large_core_keeps_width_and_cpi() {
        // The default "large" configuration grows the window and MSHRs, not
        // the pipeline width, so the execution CPI is unchanged.
        let ilp = IlpParams::new(0.8, 0.6);
        let curve = exec_cpi_curve(&ilp, &sizes(), CoreSizeIdx(1));
        assert!((curve[2] - curve[1]).abs() < 1e-12);
        assert!(curve[0] > curve[1]);
    }

    #[test]
    fn cpi_is_bounded_by_issue_width() {
        let ilp = IlpParams::new(0.3, 1.0);
        let curve = exec_cpi_curve(&ilp, &sizes(), CoreSizeIdx(1));
        // 0.3 * 2 = 0.6 > 1/2 on the small core, fine; on the large core
        // 0.3 * 0.5 = 0.15 would exceed the width-8 bound of 0.125? No:
        // 0.15 > 0.125 so it is kept; check the bound anyway.
        for (i, &cpi) in curve.iter().enumerate() {
            assert!(cpi >= 1.0 / sizes()[i].issue_width as f64 - 1e-12);
        }
    }

    #[test]
    fn sensitivity_is_clamped() {
        let ilp = IlpParams::new(1.0, 7.0);
        assert!((ilp.ilp_sensitivity - 1.0).abs() < 1e-12);
        let ilp = IlpParams::new(1.0, -3.0);
        assert!((ilp.ilp_sensitivity - 0.0).abs() < 1e-12);
        let ilp = IlpParams::new(-1.0, 0.5);
        assert!(ilp.exec_cpi_baseline > 0.0);
    }
}
