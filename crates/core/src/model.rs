//! Analytical performance and energy models used by the resource manager.
//!
//! The models only use information available to the RMA at run time: the
//! hardware performance counters of the past interval, the ATD miss profile
//! and (Paper II) the MLP-aware ATD / ILP-monitor profiles. The paper
//! evaluates three performance models of increasing fidelity plus a perfect
//! oracle:
//!
//! * **Model 1** — memory stall time is the total number of misses times the
//!   average memory latency (no miss overlap).
//! * **Model 2** (Paper I) — the measured MLP of the past interval is assumed
//!   constant across configurations; stall time is `misses · latency / MLP`.
//! * **Model 3** (Paper II) — the MLP-aware ATD provides the number of
//!   leading (non-overlapped) misses per core size and way count; stall time
//!   is `leading_misses · latency`.
//! * **Perfect** — the ground-truth table of the upcoming interval is used
//!   directly (isolates the effect of modeling error).

use power_model::EnergyParams;
use qosrm_types::{CoreObservation, CoreSetting, CoreSizeIdx, FreqLevel, PlatformConfig};
use serde::{Deserialize, Serialize};

/// Which performance model the resource manager uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ModelKind {
    /// Model 1: stall time = total misses × flat memory latency.
    SimpleLatency,
    /// Model 2 (Paper I): constant MLP equal to the measured MLP of the past
    /// interval.
    ConstantMlp,
    /// Model 3 (Paper II): leading misses from the MLP-aware ATD.
    MlpAware,
    /// Oracle: use the ground-truth table supplied with the observation.
    Perfect,
}

/// A predicted interval outcome for one candidate configuration.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Prediction {
    /// Predicted interval time in seconds.
    pub time_seconds: f64,
    /// Predicted LLC misses.
    pub llc_misses: u64,
    /// Predicted energy in joules.
    pub energy_joules: f64,
}

/// The analytical performance model.
#[derive(Debug, Clone)]
pub struct PerformanceModel {
    kind: ModelKind,
    memory_latency_s: f64,
}

impl PerformanceModel {
    /// Creates a model of the given kind for a platform.
    pub fn new(kind: ModelKind, platform: &PlatformConfig) -> Self {
        PerformanceModel {
            kind,
            memory_latency_s: platform.memory.latency_ns * 1e-9,
        }
    }

    /// The model kind.
    pub fn kind(&self) -> ModelKind {
        self.kind
    }

    /// Predicted execution CPI of the observed application on core size
    /// `size`.
    ///
    /// With the Paper II ILP monitor the per-size estimate is read directly;
    /// without it the measured execution CPI of the past interval is used
    /// (valid because Paper I never changes the core size).
    pub fn exec_cpi(&self, observation: &CoreObservation, size: CoreSizeIdx) -> f64 {
        match &observation.scaling_profile {
            Some(profile) if size.index() < profile.num_core_sizes() => profile.exec_cpi(size),
            _ => observation.stats.exec_cpi(),
        }
    }

    /// Predicted LLC misses with `ways` allocated ways (from the ATD).
    pub fn misses(&self, observation: &CoreObservation, ways: usize) -> u64 {
        let profile = &observation.miss_profile;
        profile.misses_at(ways.min(profile.max_ways()))
    }

    /// Predicted interval time at configuration `(size, freq, ways)`.
    pub fn time(
        &self,
        observation: &CoreObservation,
        platform: &PlatformConfig,
        size: CoreSizeIdx,
        freq: FreqLevel,
        ways: usize,
    ) -> f64 {
        if self.kind == ModelKind::Perfect {
            if let Some(table) = &observation.perfect {
                return table.get(size, freq, ways).time_seconds;
            }
        }
        let n = observation.stats.instructions as f64;
        let freq_hz = platform.vf.point(freq).freq_hz();
        let exec_seconds = n * self.exec_cpi(observation, size) / freq_hz;
        let stall_seconds = self.stall_seconds(observation, size, ways);
        exec_seconds + stall_seconds
    }

    /// Predicted memory stall seconds at `(size, ways)`.
    pub fn stall_seconds(
        &self,
        observation: &CoreObservation,
        size: CoreSizeIdx,
        ways: usize,
    ) -> f64 {
        let misses = self.misses(observation, ways) as f64;
        match self.kind {
            ModelKind::SimpleLatency => misses * self.memory_latency_s,
            ModelKind::ConstantMlp => {
                let mlp = observation.stats.measured_mlp().max(1.0);
                misses * self.memory_latency_s / mlp
            }
            ModelKind::MlpAware => match &observation.mlp_profile {
                Some(profile) if size.index() < profile.num_core_sizes() => {
                    let ways = ways.min(profile.max_ways());
                    profile.leading_at(size, ways) as f64 * self.memory_latency_s
                }
                // Fall back to the constant-MLP assumption when the Paper II
                // hardware is absent.
                _ => {
                    let mlp = observation.stats.measured_mlp().max(1.0);
                    misses * self.memory_latency_s / mlp
                }
            },
            ModelKind::Perfect => {
                // Only reached when no perfect table was supplied; degrade to
                // the constant-MLP model.
                let mlp = observation.stats.measured_mlp().max(1.0);
                misses * self.memory_latency_s / mlp
            }
        }
    }
}

/// The analytical energy model: the same component structure as the
/// McPAT-substitute ground truth, evaluated on *predicted* time and misses.
#[derive(Debug, Clone)]
pub struct AnalyticalEnergyModel {
    params: EnergyParams,
}

impl AnalyticalEnergyModel {
    /// Creates the model from the platform's energy calibration.
    pub fn new(params: EnergyParams) -> Self {
        AnalyticalEnergyModel { params }
    }

    /// The energy calibration the model evaluates with (read by the batched
    /// [`crate::curve_builder::CurveBuilder`], which stages these parameters
    /// into per-axis rows instead of re-reading them per candidate).
    pub fn params(&self) -> &EnergyParams {
        &self.params
    }

    /// Predicted energy of one interval at configuration `(size, freq, ways)`
    /// given the predicted time and misses.
    #[allow(clippy::too_many_arguments)]
    pub fn energy(
        &self,
        observation: &CoreObservation,
        platform: &PlatformConfig,
        size: CoreSizeIdx,
        freq: FreqLevel,
        ways: usize,
        predicted_time: f64,
        predicted_misses: u64,
    ) -> f64 {
        let p = &self.params;
        let core = platform.core_size(size);
        let voltage = platform.vf.point(freq).voltage;
        let v_ratio2 = (voltage / p.nominal_voltage).powi(2);
        let n = observation.stats.instructions as f64;

        let core_dynamic = n * p.core_epi_nominal * core.dynamic_epi_scale * v_ratio2;
        let core_static =
            p.core_static_power_nominal * core.static_power_scale * v_ratio2 * predicted_time;
        let llc_dynamic = observation.stats.llc_accesses as f64 * p.llc_access_energy;
        let llc_static = p.llc_static_power_per_way * ways as f64 * predicted_time;
        let dram_dynamic = predicted_misses as f64 * p.dram_access_energy;
        let dram_background = p.dram_background_power / platform.num_cores as f64 * predicted_time;

        core_dynamic + core_static + llc_dynamic + llc_static + dram_dynamic + dram_background
    }
}

/// Convenience wrapper bundling the performance and energy models and
/// producing full [`Prediction`]s.
#[derive(Debug, Clone)]
pub struct PredictionModel {
    perf: PerformanceModel,
    energy: AnalyticalEnergyModel,
}

impl PredictionModel {
    /// Creates the combined model.
    pub fn new(kind: ModelKind, platform: &PlatformConfig, params: EnergyParams) -> Self {
        PredictionModel {
            perf: PerformanceModel::new(kind, platform),
            energy: AnalyticalEnergyModel::new(params),
        }
    }

    /// The performance model.
    pub fn performance(&self) -> &PerformanceModel {
        &self.perf
    }

    /// The energy model.
    pub fn energy_model(&self) -> &AnalyticalEnergyModel {
        &self.energy
    }

    /// Predicts time, misses and energy at one configuration.
    pub fn predict(
        &self,
        observation: &CoreObservation,
        platform: &PlatformConfig,
        size: CoreSizeIdx,
        freq: FreqLevel,
        ways: usize,
    ) -> Prediction {
        if self.perf.kind() == ModelKind::Perfect {
            if let Some(table) = &observation.perfect {
                let m = table.get(size, freq, ways);
                return Prediction {
                    time_seconds: m.time_seconds,
                    llc_misses: m.llc_misses,
                    energy_joules: m.energy_joules,
                };
            }
        }
        let time = self.perf.time(observation, platform, size, freq, ways);
        let misses = self.perf.misses(observation, ways);
        let energy = self
            .energy
            .energy(observation, platform, size, freq, ways, time, misses);
        Prediction {
            time_seconds: time,
            llc_misses: misses,
            energy_joules: energy,
        }
    }

    /// Predicts the outcome at a complete [`CoreSetting`].
    pub fn predict_at(
        &self,
        observation: &CoreObservation,
        platform: &PlatformConfig,
        setting: CoreSetting,
    ) -> Prediction {
        self.predict(
            observation,
            platform,
            setting.core_size,
            setting.freq,
            setting.ways,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qosrm_types::{
        AppId, CoreScalingProfile, IntervalStats, MissProfile, MlpProfile, SystemSetting,
    };

    fn platform() -> PlatformConfig {
        PlatformConfig::paper2(4)
    }

    fn observation(with_mlp: bool) -> CoreObservation {
        let p = platform();
        let baseline = SystemSetting::baseline(&p).core(qosrm_types::CoreId(0));
        let misses: Vec<u64> = (0..16).map(|w| 800_000 - 30_000 * w as u64).collect();
        let leading = vec![
            misses
                .iter()
                .map(|&m| (m as f64 * 0.95) as u64)
                .collect::<Vec<_>>(),
            misses
                .iter()
                .map(|&m| (m as f64 * 0.60) as u64)
                .collect::<Vec<_>>(),
            misses
                .iter()
                .map(|&m| (m as f64 * 0.35) as u64)
                .collect::<Vec<_>>(),
        ];
        CoreObservation {
            app: AppId(0),
            stats: IntervalStats {
                instructions: 100_000_000,
                cycles: 220_000_000,
                exec_cycles: 110_000_000,
                llc_accesses: 2_000_000,
                llc_misses: misses[baseline.ways - 1],
                leading_misses: leading[1][baseline.ways - 1],
                elapsed_seconds: 0.11,
                freq: baseline.freq,
                core_size: baseline.core_size,
                ways: baseline.ways,
            },
            miss_profile: MissProfile::new(misses),
            mlp_profile: if with_mlp {
                Some(MlpProfile::new(leading))
            } else {
                None
            },
            scaling_profile: if with_mlp {
                Some(CoreScalingProfile::new(vec![1.4, 1.1, 0.9]))
            } else {
                None
            },
            perfect: None,
        }
    }

    #[test]
    fn model1_predicts_longer_stalls_than_model2_and_3() {
        let p = platform();
        let obs = observation(true);
        let m1 = PerformanceModel::new(ModelKind::SimpleLatency, &p);
        let m2 = PerformanceModel::new(ModelKind::ConstantMlp, &p);
        let m3 = PerformanceModel::new(ModelKind::MlpAware, &p);
        let size = CoreSizeIdx(1);
        let s1 = m1.stall_seconds(&obs, size, 4);
        let s2 = m2.stall_seconds(&obs, size, 4);
        let s3 = m3.stall_seconds(&obs, size, 4);
        assert!(s1 > s2, "no-overlap model must predict the longest stall");
        assert!(s1 > s3);
        assert!(s2 > 0.0 && s3 > 0.0);
    }

    #[test]
    fn model3_sees_core_size_effect_on_stalls() {
        let p = platform();
        let obs = observation(true);
        let m3 = PerformanceModel::new(ModelKind::MlpAware, &p);
        let small = m3.stall_seconds(&obs, CoreSizeIdx(0), 4);
        let large = m3.stall_seconds(&obs, CoreSizeIdx(2), 4);
        assert!(large < small);

        // Model 2 cannot distinguish core sizes.
        let m2 = PerformanceModel::new(ModelKind::ConstantMlp, &p);
        assert_eq!(
            m2.stall_seconds(&obs, CoreSizeIdx(0), 4),
            m2.stall_seconds(&obs, CoreSizeIdx(2), 4)
        );
    }

    #[test]
    fn higher_frequency_reduces_predicted_time() {
        let p = platform();
        let obs = observation(true);
        let model = PredictionModel::new(ModelKind::ConstantMlp, &p, EnergyParams::default());
        let slow = model.predict(&obs, &p, CoreSizeIdx(1), FreqLevel(0), 4);
        let fast = model.predict(&obs, &p, CoreSizeIdx(1), FreqLevel(12), 4);
        assert!(fast.time_seconds < slow.time_seconds);
        assert!(fast.energy_joules > slow.energy_joules);
    }

    #[test]
    fn more_ways_reduce_predicted_misses_and_time() {
        let p = platform();
        let obs = observation(true);
        let model = PredictionModel::new(ModelKind::MlpAware, &p, EnergyParams::default());
        let few = model.predict(&obs, &p, CoreSizeIdx(1), FreqLevel(6), 2);
        let many = model.predict(&obs, &p, CoreSizeIdx(1), FreqLevel(6), 12);
        assert!(many.llc_misses < few.llc_misses);
        assert!(many.time_seconds < few.time_seconds);
    }

    #[test]
    fn missing_mlp_hardware_falls_back_to_constant_mlp() {
        let p = platform();
        let obs = observation(false);
        let m3 = PerformanceModel::new(ModelKind::MlpAware, &p);
        let m2 = PerformanceModel::new(ModelKind::ConstantMlp, &p);
        assert!(
            (m3.stall_seconds(&obs, CoreSizeIdx(1), 4) - m2.stall_seconds(&obs, CoreSizeIdx(1), 4))
                .abs()
                < 1e-12
        );
        // Without the ILP monitor the same CPI is used for every size.
        assert_eq!(
            m3.exec_cpi(&obs, CoreSizeIdx(0)),
            m3.exec_cpi(&obs, CoreSizeIdx(2))
        );
    }

    #[test]
    fn perfect_model_reads_the_table() {
        use qosrm_types::{ConfigMetrics, ConfigTable};
        let p = platform();
        let mut obs = observation(true);
        obs.perfect = Some(ConfigTable::from_fn(3, 13, 16, |s, f, w| ConfigMetrics {
            time_seconds: 0.001 * (s.index() + 1) as f64 * (f.index() + 1) as f64 * w as f64,
            energy_joules: 42.0,
            llc_misses: 7,
            leading_misses: 3,
        }));
        let model = PredictionModel::new(ModelKind::Perfect, &p, EnergyParams::default());
        let pred = model.predict(&obs, &p, CoreSizeIdx(1), FreqLevel(2), 5);
        assert!((pred.time_seconds - 0.001 * 2.0 * 3.0 * 5.0).abs() < 1e-12);
        assert!((pred.energy_joules - 42.0).abs() < 1e-12);
        assert_eq!(pred.llc_misses, 7);
    }
}
