//! Global optimization: distributing the LLC ways among the cores.
//!
//! Each core's local optimization produces an energy-versus-ways curve. The
//! global step finds the partition `{w_j}` with `Σ w_j = associativity` that
//! minimizes total predicted energy. Following the paper, the curves are
//! reduced **pairwise**: two curves are combined into one curve over their
//! joint way budget by a min-plus convolution that records the argmin split;
//! the reduction is applied recursively until a single curve remains, and the
//! chosen splits are then unwound to produce the per-core allocation. The
//! cost is `O(cores · ways²)`, independent of the number of VF levels and
//! core sizes already folded into the curves.

use crate::curve::{CurvePoint, EnergyCurve};

/// A node of the reduction tree.
enum Node<'a> {
    Leaf {
        core: usize,
        curve: &'a EnergyCurve,
    },
    Inner {
        /// `energy[w - 1]` = minimum combined energy with `w` total ways.
        energy: Vec<f64>,
        /// `split[w - 1]` = ways given to the left child at the optimum.
        split: Vec<usize>,
        left: Box<Node<'a>>,
        right: Box<Node<'a>>,
    },
}

impl Node<'_> {
    fn energy_at(&self, ways: usize) -> f64 {
        match self {
            Node::Leaf { curve, .. } => curve.energy(ways),
            Node::Inner { energy, .. } => {
                if ways == 0 || ways > energy.len() {
                    f64::INFINITY
                } else {
                    energy[ways - 1]
                }
            }
        }
    }

    fn max_ways(&self) -> usize {
        match self {
            Node::Leaf { curve, .. } => curve.max_ways(),
            Node::Inner { energy, .. } => energy.len(),
        }
    }

    fn num_leaves(&self) -> usize {
        match self {
            Node::Leaf { .. } => 1,
            Node::Inner { left, right, .. } => left.num_leaves() + right.num_leaves(),
        }
    }

    /// Unwinds the recorded splits, writing each core's allocation.
    fn assign(&self, ways: usize, out: &mut [Option<usize>]) {
        match self {
            Node::Leaf { core, .. } => out[*core] = Some(ways),
            Node::Inner {
                split, left, right, ..
            } => {
                let left_ways = split[ways - 1];
                left.assign(left_ways, out);
                right.assign(ways - left_ways, out);
            }
        }
    }
}

/// Combines two nodes by min-plus convolution over the way budget, capping
/// the combined curve at `cap` ways (the LLC associativity) since larger
/// budgets can never be requested.
fn combine<'a>(left: Node<'a>, right: Node<'a>, cap: usize) -> Node<'a> {
    let left_leaves = left.num_leaves();
    let right_leaves = right.num_leaves();
    let max_total = (left.max_ways() + right.max_ways()).min(cap);
    let mut energy = vec![f64::INFINITY; max_total];
    let mut split = vec![0usize; max_total];
    for total in 2..=max_total {
        // Every child must receive at least one way per leaf beneath it.
        let min_left = left_leaves;
        let max_left = total.saturating_sub(right_leaves).min(left.max_ways());
        for left_ways in min_left..=max_left {
            let right_ways = total - left_ways;
            if right_ways < right_leaves || right_ways > right.max_ways() {
                continue;
            }
            let e = left.energy_at(left_ways) + right.energy_at(right_ways);
            if e < energy[total - 1] {
                energy[total - 1] = e;
                split[total - 1] = left_ways;
            }
        }
    }
    Node::Inner {
        energy,
        split,
        left: Box::new(left),
        right: Box::new(right),
    }
}

/// Finds the energy-minimal distribution of `total_ways` LLC ways among the
/// cores described by `curves`.
///
/// Returns, per core, the allocated way count and the curve point (VF level,
/// core size, predicted energy) at that allocation, or `None` when no
/// feasible partition exists (some core cannot meet its QoS target at any
/// share it could receive).
pub fn optimize_partition(
    curves: &[EnergyCurve],
    total_ways: usize,
) -> Option<Vec<(usize, CurvePoint)>> {
    if curves.is_empty() || total_ways < curves.len() {
        return None;
    }
    // Build the reduction tree: pair adjacent nodes until one remains.
    let mut nodes: Vec<Node<'_>> = curves
        .iter()
        .enumerate()
        .map(|(core, curve)| Node::Leaf { core, curve })
        .collect();
    while nodes.len() > 1 {
        let mut next = Vec::with_capacity(nodes.len().div_ceil(2));
        let mut iter = nodes.into_iter();
        while let Some(left) = iter.next() {
            match iter.next() {
                Some(right) => next.push(combine(left, right, total_ways)),
                None => next.push(left),
            }
        }
        nodes = next;
    }
    let root = nodes.pop().expect("at least one node");
    if !root.energy_at(total_ways).is_finite() {
        return None;
    }

    let mut allocation: Vec<Option<usize>> = vec![None; curves.len()];
    root.assign(total_ways, &mut allocation);

    let mut result = Vec::with_capacity(curves.len());
    for (core, ways) in allocation.into_iter().enumerate() {
        let ways = ways?;
        let point = curves[core].point(ways)?;
        result.push((ways, point));
    }
    debug_assert_eq!(result.iter().map(|(w, _)| w).sum::<usize>(), total_ways);
    Some(result)
}

/// Brute-force reference optimizer used to validate
/// [`optimize_partition`] on small instances: enumerates every partition of
/// `total_ways` into one share of at least one way per core.
pub fn exhaustive_partition(
    curves: &[EnergyCurve],
    total_ways: usize,
) -> Option<(f64, Vec<usize>)> {
    fn recurse(
        curves: &[EnergyCurve],
        core: usize,
        remaining: usize,
        current: &mut Vec<usize>,
        best: &mut Option<(f64, Vec<usize>)>,
    ) {
        if core == curves.len() {
            if remaining != 0 {
                return;
            }
            let energy: f64 = current
                .iter()
                .enumerate()
                .map(|(i, &w)| curves[i].energy(w))
                .sum();
            if energy.is_finite() && best.as_ref().map(|(e, _)| energy < *e).unwrap_or(true) {
                *best = Some((energy, current.clone()));
            }
            return;
        }
        let cores_left = curves.len() - core - 1;
        let max_here = remaining
            .saturating_sub(cores_left)
            .min(curves[core].max_ways());
        for w in 1..=max_here {
            current.push(w);
            recurse(curves, core + 1, remaining - w, current, best);
            current.pop();
        }
    }
    let mut best = None;
    recurse(curves, 0, total_ways, &mut Vec::new(), &mut best);
    best
}

#[cfg(test)]
mod tests {
    use super::*;
    use qosrm_types::{CoreSizeIdx, FreqLevel};

    fn point(e: f64) -> Option<CurvePoint> {
        Some(CurvePoint {
            energy_joules: e,
            freq: FreqLevel(0),
            core_size: CoreSizeIdx(0),
            time_seconds: 0.1,
        })
    }

    /// Curve with energy `base - slope * w` (clamped at 0.1): a cache
    /// sensitive application keeps benefiting from ways.
    fn sloped_curve(base: f64, slope: f64, max_ways: usize) -> EnergyCurve {
        EnergyCurve::new(
            (1..=max_ways)
                .map(|w| point((base - slope * w as f64).max(0.1)))
                .collect(),
        )
    }

    /// Flat curve: a cache-insensitive application.
    fn flat_curve(energy: f64, max_ways: usize) -> EnergyCurve {
        EnergyCurve::new((1..=max_ways).map(|_| point(energy)).collect())
    }

    #[test]
    fn sensitive_app_receives_the_ways() {
        let curves = vec![sloped_curve(10.0, 0.5, 16), flat_curve(5.0, 16)];
        let result = optimize_partition(&curves, 16).unwrap();
        assert_eq!(result.len(), 2);
        assert_eq!(result[0].0 + result[1].0, 16);
        assert_eq!(
            result[0].0, 15,
            "the sloped curve should take all but one way"
        );
        assert_eq!(result[1].0, 1);
    }

    #[test]
    fn matches_exhaustive_search() {
        // Mix of shapes, including an infeasible region.
        let mut bumpy = vec![None, None];
        bumpy.extend((3..=16).map(|w| point(8.0 - 0.3 * w as f64 + ((w % 3) as f64) * 0.2)));
        let curves = vec![
            sloped_curve(12.0, 0.7, 16),
            flat_curve(4.0, 16),
            EnergyCurve::new(bumpy),
            sloped_curve(6.0, 0.2, 16),
        ];
        let fast = optimize_partition(&curves, 16).unwrap();
        let (best_energy, best_alloc) = exhaustive_partition(&curves, 16).unwrap();
        let fast_energy: f64 = fast.iter().map(|(_, p)| p.energy_joules).sum();
        assert!(
            (fast_energy - best_energy).abs() < 1e-9,
            "pairwise reduction must be optimal: {fast_energy} vs {best_energy}"
        );
        assert_eq!(fast.iter().map(|(w, _)| *w).sum::<usize>(), 16);
        // The allocation itself may differ when ties exist; energies must not.
        let exhaustive_energy: f64 = best_alloc
            .iter()
            .enumerate()
            .map(|(i, &w)| curves[i].energy(w))
            .sum();
        assert!((exhaustive_energy - best_energy).abs() < 1e-12);
    }

    #[test]
    fn eight_core_reduction_is_optimal() {
        let curves: Vec<EnergyCurve> = (0..8)
            .map(|i| sloped_curve(8.0 + i as f64, 0.1 + 0.1 * i as f64, 16))
            .collect();
        let fast = optimize_partition(&curves, 16).unwrap();
        let (best_energy, _) = exhaustive_partition(&curves, 16).unwrap();
        let fast_energy: f64 = fast.iter().map(|(_, p)| p.energy_joules).sum();
        assert!((fast_energy - best_energy).abs() < 1e-9);
        assert_eq!(fast.iter().map(|(w, _)| *w).sum::<usize>(), 16);
        for (w, _) in &fast {
            assert!(*w >= 1);
        }
    }

    #[test]
    fn infeasible_cores_force_none() {
        // One core cannot meet QoS with any allocation.
        let curves = vec![flat_curve(3.0, 16), EnergyCurve::new(vec![None; 16])];
        assert!(optimize_partition(&curves, 16).is_none());
        assert!(exhaustive_partition(&curves, 16).is_none());
    }

    #[test]
    fn partially_infeasible_curves_are_respected() {
        // Core 1 needs at least 6 ways.
        let mut needs_six = vec![None; 5];
        needs_six.extend((6..=16).map(|w| point(10.0 - 0.1 * w as f64)));
        let curves = vec![flat_curve(2.0, 16), EnergyCurve::new(needs_six)];
        let result = optimize_partition(&curves, 16).unwrap();
        assert!(result[1].0 >= 6);
        assert_eq!(result[0].0 + result[1].0, 16);
    }

    #[test]
    fn degenerate_inputs() {
        assert!(optimize_partition(&[], 16).is_none());
        let one = vec![flat_curve(1.0, 16)];
        let result = optimize_partition(&one, 16).unwrap();
        assert_eq!(result[0].0, 16);
        // Not enough ways for every core to get one.
        let many: Vec<EnergyCurve> = (0..5).map(|_| flat_curve(1.0, 4)).collect();
        assert!(optimize_partition(&many, 4).is_none());
    }

    #[test]
    fn single_core_takes_everything() {
        let curves = vec![sloped_curve(5.0, 0.3, 16)];
        let result = optimize_partition(&curves, 16).unwrap();
        assert_eq!(result[0].0, 16);
    }
}
