//! Global optimization: distributing the LLC ways among the cores.
//!
//! Each core's local optimization produces an energy-versus-ways curve. The
//! global step finds the partition `{w_j}` with `Σ w_j = associativity` that
//! minimizes total predicted energy. Following the paper, the curves are
//! reduced **pairwise**: two curves are combined into one curve over their
//! joint way budget by a min-plus convolution that records the argmin split;
//! the reduction is applied recursively until a single curve remains, and the
//! chosen splits are then unwound to produce the per-core allocation. The
//! cost is `O(cores · ways²)`, independent of the number of VF levels and
//! core sizes already folded into the curves.
//!
//! # Implementation notes
//!
//! The reduction is laid out in a **flat arena** rather than a boxed tree:
//! node metadata lives in one `Vec<NodeData>` indexed by `NodeId`, and the
//! combined energy/split tables of all inner nodes share two flat buffers
//! (each node owns a contiguous `[offset, offset + len)` slice). This keeps
//! the whole reduction in a handful of allocations and the convolution scans
//! on dense, cache-friendly rows.
//!
//! The convolution itself is **pruned with energy lower bounds**: every node
//! records the minimum energy over all of its feasible budgets, and a split
//! candidate is skipped when `left(w) + min(right)` already cannot beat the
//! incumbent. Because the bound is a true lower bound and the incumbent
//! comparison is strict (`<`), pruning never changes the computed energies
//! *or* the recorded argmin splits — results are bit-identical to the naive
//! scan, as [`optimize_partition_unpruned`] and the property tests in
//! `tests/properties.rs` verify.

use crate::curve::{CurvePoint, EnergyCurve};

/// Work counters of one global optimization call.
///
/// `ops` counts evaluated split candidates (one addition + comparison each);
/// `pruned` counts the candidates skipped by the lower-bound test. The
/// `bench_gate` perf harness tracks `ops` across releases: a rise without a
/// workload change means the pruning regressed.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PruneStats {
    /// Split candidates evaluated by the min-plus convolution.
    pub ops: u64,
    /// Split candidates skipped by the lower-bound test.
    pub pruned: u64,
}

/// Index of a node in the reduction arena.
type NodeId = usize;

/// Flat-arena node. Every node — leaf or inner — owns a dense row of the
/// shared `energy` buffer (`f64::INFINITY` marks infeasible budgets), so the
/// convolution scans contiguous memory with no per-candidate dispatch.
struct NodeData {
    /// For leaves, the input curve index; for inner nodes, `usize::MAX`.
    core: usize,
    /// Children (`NodeId`s); only meaningful for inner nodes.
    left: NodeId,
    right: NodeId,
    /// Start of this node's row in the shared `energy`/`split` buffers.
    offset: usize,
    /// Number of leaves beneath this node (every leaf needs ≥ 1 way).
    leaves: usize,
    /// Largest way budget covered by this node's curve (the row length).
    max_ways: usize,
    /// Lower bound: minimum energy over every feasible budget of this node,
    /// `f64::INFINITY` when nothing is feasible.
    min_energy: f64,
}

/// The reduction arena: all node metadata plus the shared combined-curve
/// storage.
struct Arena {
    nodes: Vec<NodeData>,
    /// `energy[node.offset + w - 1]` = minimum energy of `node` with `w`
    /// total ways.
    energy: Vec<f64>,
    /// `split[node.offset + w - 1]` = ways given to the left child at that
    /// optimum (inner nodes; leaf rows stay zero).
    split: Vec<usize>,
}

impl Arena {
    fn new(curves: &[EnergyCurve], cap: usize) -> Self {
        // cores leaves + (cores - 1) inner nodes, each row at most cap wide.
        let mut arena = Arena {
            nodes: Vec::with_capacity(2 * curves.len()),
            energy: Vec::with_capacity(2 * curves.len() * cap),
            split: Vec::with_capacity(2 * curves.len() * cap),
        };
        // Leaf rows: densify each input curve once so the convolution reads
        // plain `f64` rows for leaves and inner nodes alike.
        for (core, curve) in curves.iter().enumerate() {
            let offset = arena.energy.len();
            let mut min_energy = f64::INFINITY;
            for w in 1..=curve.max_ways() {
                let e = curve.energy(w);
                min_energy = min_energy.min(e);
                arena.energy.push(e);
            }
            arena.nodes.push(NodeData {
                core,
                left: NodeId::MAX,
                right: NodeId::MAX,
                offset,
                leaves: 1,
                max_ways: curve.max_ways(),
                min_energy,
            });
        }
        arena.split.resize(arena.energy.len(), 0);
        arena
    }

    #[inline]
    fn energy_at(&self, node: NodeId, ways: usize) -> f64 {
        let n = &self.nodes[node];
        if ways == 0 || ways > n.max_ways {
            f64::INFINITY
        } else {
            self.energy[n.offset + ways - 1]
        }
    }

    /// Combines two nodes by min-plus convolution over the way budget,
    /// capping the combined curve at `cap` ways (the LLC associativity)
    /// since larger budgets can never be requested.
    ///
    /// When `prune` is set, split candidates whose lower bound cannot beat
    /// the incumbent are skipped; the recorded energies and argmin splits are
    /// identical either way because the bound is conservative and the
    /// incumbent test is strict.
    fn combine(
        &mut self,
        left: NodeId,
        right: NodeId,
        cap: usize,
        prune: bool,
        stats: &mut PruneStats,
    ) -> NodeId {
        let (left_leaves, left_max, left_offset) = {
            let n = &self.nodes[left];
            (n.leaves, n.max_ways, n.offset)
        };
        let (right_leaves, right_max, right_offset, right_min) = {
            let n = &self.nodes[right];
            (n.leaves, n.max_ways, n.offset, n.min_energy)
        };
        let max_total = (left_max + right_max).min(cap);
        let offset = self.energy.len();
        self.energy.resize(offset + max_total, f64::INFINITY);
        self.split.resize(offset + max_total, 0);
        // Children rows live strictly before `offset`, so the output row can
        // be written while both input rows are read.
        let (prev, out_energy) = self.energy.split_at_mut(offset);
        let left_row = &prev[left_offset..left_offset + left_max];
        let right_row = &prev[right_offset..right_offset + right_max];
        let out_split = &mut self.split[offset..];

        let mut node_min = f64::INFINITY;
        for total in 2..=max_total {
            // Every child must receive at least one way per leaf beneath it
            // and no more than its row covers; the bounds encode what the
            // naive scan would skip, preserving the ascending candidate
            // order (and thus argmin tie-breaking).
            let lo = left_leaves.max(total.saturating_sub(right_max));
            let hi = total.saturating_sub(right_leaves).min(left_max);
            let mut best = f64::INFINITY;
            let mut best_split = 0usize;
            for left_ways in lo..=hi {
                let left_energy = left_row[left_ways - 1];
                // Lower bound: even paired with the cheapest share the right
                // child offers anywhere, this left share cannot beat the
                // incumbent — the exact sum (≥ the bound) cannot satisfy the
                // strict `<` below, so skipping preserves the argmin.
                if prune && left_energy + right_min >= best {
                    stats.pruned += 1;
                    continue;
                }
                stats.ops += 1;
                let e = left_energy + right_row[total - left_ways - 1];
                if e < best {
                    best = e;
                    best_split = left_ways;
                }
            }
            out_energy[total - 1] = best;
            out_split[total - 1] = best_split;
            node_min = node_min.min(best);
        }

        self.nodes.push(NodeData {
            core: usize::MAX,
            left,
            right,
            offset,
            leaves: left_leaves + right_leaves,
            max_ways: max_total,
            min_energy: node_min,
        });
        self.nodes.len() - 1
    }

    /// Unwinds the recorded splits from `root`, writing each core's
    /// allocation. Iterative (explicit stack) so deep reductions cannot
    /// overflow the call stack.
    fn assign(&self, root: NodeId, ways: usize, out: &mut [Option<usize>]) {
        let mut stack = vec![(root, ways)];
        while let Some((node, ways)) = stack.pop() {
            let n = &self.nodes[node];
            if n.core != usize::MAX {
                out[n.core] = Some(ways);
            } else {
                let left_ways = self.split[n.offset + ways - 1];
                stack.push((n.left, left_ways));
                stack.push((n.right, ways - left_ways));
            }
        }
    }
}

fn optimize_in_arena(
    curves: &[EnergyCurve],
    total_ways: usize,
    prune: bool,
) -> (Option<Vec<(usize, CurvePoint)>>, PruneStats) {
    let mut stats = PruneStats::default();
    if curves.is_empty() || total_ways < curves.len() {
        return (None, stats);
    }
    // Build the reduction in the arena: pair adjacent nodes until one
    // remains (the same pairing order as the original boxed tree).
    let mut arena = Arena::new(curves, total_ways);
    let mut frontier: Vec<NodeId> = (0..curves.len()).collect();
    let mut next = Vec::with_capacity(frontier.len().div_ceil(2));
    while frontier.len() > 1 {
        next.clear();
        let mut i = 0;
        while i < frontier.len() {
            if i + 1 < frontier.len() {
                next.push(arena.combine(
                    frontier[i],
                    frontier[i + 1],
                    total_ways,
                    prune,
                    &mut stats,
                ));
                i += 2;
            } else {
                next.push(frontier[i]);
                i += 1;
            }
        }
        std::mem::swap(&mut frontier, &mut next);
    }
    let root = frontier.pop().expect("at least one node");
    if !arena.energy_at(root, total_ways).is_finite() {
        return (None, stats);
    }

    let mut allocation: Vec<Option<usize>> = vec![None; curves.len()];
    arena.assign(root, total_ways, &mut allocation);

    let mut result = Vec::with_capacity(curves.len());
    for (core, ways) in allocation.into_iter().enumerate() {
        let Some(ways) = ways else {
            return (None, stats);
        };
        let Some(point) = curves[core].point(ways) else {
            return (None, stats);
        };
        result.push((ways, point));
    }
    debug_assert_eq!(result.iter().map(|(w, _)| w).sum::<usize>(), total_ways);
    (Some(result), stats)
}

/// Finds the energy-minimal distribution of `total_ways` LLC ways among the
/// cores described by `curves`.
///
/// Returns, per core, the allocated way count and the curve point (VF level,
/// core size, predicted energy) at that allocation, or `None` when no
/// feasible partition exists (some core cannot meet its QoS target at any
/// share it could receive).
pub fn optimize_partition(
    curves: &[EnergyCurve],
    total_ways: usize,
) -> Option<Vec<(usize, CurvePoint)>> {
    optimize_in_arena(curves, total_ways, true).0
}

/// Like [`optimize_partition`], additionally returning the [`PruneStats`]
/// work counters (used by the `bench_gate` perf harness).
pub fn optimize_partition_with_stats(
    curves: &[EnergyCurve],
    total_ways: usize,
) -> (Option<Vec<(usize, CurvePoint)>>, PruneStats) {
    optimize_in_arena(curves, total_ways, true)
}

/// Reference implementation running the full (unpruned) min-plus convolution.
///
/// Exists so tests can assert that lower-bound pruning is behaviour
/// preserving: [`optimize_partition`] must return bit-identical allocations
/// and energies for any curve set, including non-concave ones.
pub fn optimize_partition_unpruned(
    curves: &[EnergyCurve],
    total_ways: usize,
) -> Option<Vec<(usize, CurvePoint)>> {
    optimize_in_arena(curves, total_ways, false).0
}

/// Brute-force reference optimizer used to validate
/// [`optimize_partition`] on small instances: enumerates every partition of
/// `total_ways` into one share of at least one way per core.
pub fn exhaustive_partition(
    curves: &[EnergyCurve],
    total_ways: usize,
) -> Option<(f64, Vec<usize>)> {
    fn recurse(
        curves: &[EnergyCurve],
        core: usize,
        remaining: usize,
        current: &mut Vec<usize>,
        best: &mut Option<(f64, Vec<usize>)>,
    ) {
        if core == curves.len() {
            if remaining != 0 {
                return;
            }
            let energy: f64 = current
                .iter()
                .enumerate()
                .map(|(i, &w)| curves[i].energy(w))
                .sum();
            if energy.is_finite() && best.as_ref().map(|(e, _)| energy < *e).unwrap_or(true) {
                *best = Some((energy, current.clone()));
            }
            return;
        }
        let cores_left = curves.len() - core - 1;
        let max_here = remaining
            .saturating_sub(cores_left)
            .min(curves[core].max_ways());
        for w in 1..=max_here {
            current.push(w);
            recurse(curves, core + 1, remaining - w, current, best);
            current.pop();
        }
    }
    let mut best = None;
    recurse(curves, 0, total_ways, &mut Vec::new(), &mut best);
    best
}

#[cfg(test)]
mod tests {
    use super::*;
    use qosrm_types::{CoreSizeIdx, FreqLevel};

    fn point(e: f64) -> Option<CurvePoint> {
        Some(CurvePoint {
            energy_joules: e,
            freq: FreqLevel(0),
            core_size: CoreSizeIdx(0),
            time_seconds: 0.1,
            ways: 1,
        })
    }

    /// Curve with energy `base - slope * w` (clamped at 0.1): a cache
    /// sensitive application keeps benefiting from ways.
    fn sloped_curve(base: f64, slope: f64, max_ways: usize) -> EnergyCurve {
        EnergyCurve::new(
            (1..=max_ways)
                .map(|w| point((base - slope * w as f64).max(0.1)))
                .collect(),
        )
    }

    /// Flat curve: a cache-insensitive application.
    fn flat_curve(energy: f64, max_ways: usize) -> EnergyCurve {
        EnergyCurve::new((1..=max_ways).map(|_| point(energy)).collect())
    }

    #[test]
    fn sensitive_app_receives_the_ways() {
        let curves = vec![sloped_curve(10.0, 0.5, 16), flat_curve(5.0, 16)];
        let result = optimize_partition(&curves, 16).unwrap();
        assert_eq!(result.len(), 2);
        assert_eq!(result[0].0 + result[1].0, 16);
        assert_eq!(
            result[0].0, 15,
            "the sloped curve should take all but one way"
        );
        assert_eq!(result[1].0, 1);
    }

    #[test]
    fn matches_exhaustive_search() {
        // Mix of shapes, including an infeasible region.
        let mut bumpy = vec![None, None];
        bumpy.extend((3..=16).map(|w| point(8.0 - 0.3 * w as f64 + ((w % 3) as f64) * 0.2)));
        let curves = vec![
            sloped_curve(12.0, 0.7, 16),
            flat_curve(4.0, 16),
            EnergyCurve::new(bumpy),
            sloped_curve(6.0, 0.2, 16),
        ];
        let fast = optimize_partition(&curves, 16).unwrap();
        let (best_energy, best_alloc) = exhaustive_partition(&curves, 16).unwrap();
        let fast_energy: f64 = fast.iter().map(|(_, p)| p.energy_joules).sum();
        assert!(
            (fast_energy - best_energy).abs() < 1e-9,
            "pairwise reduction must be optimal: {fast_energy} vs {best_energy}"
        );
        assert_eq!(fast.iter().map(|(w, _)| *w).sum::<usize>(), 16);
        // The allocation itself may differ when ties exist; energies must not.
        let exhaustive_energy: f64 = best_alloc
            .iter()
            .enumerate()
            .map(|(i, &w)| curves[i].energy(w))
            .sum();
        assert!((exhaustive_energy - best_energy).abs() < 1e-12);
    }

    #[test]
    fn eight_core_reduction_is_optimal() {
        let curves: Vec<EnergyCurve> = (0..8)
            .map(|i| sloped_curve(8.0 + i as f64, 0.1 + 0.1 * i as f64, 16))
            .collect();
        let fast = optimize_partition(&curves, 16).unwrap();
        let (best_energy, _) = exhaustive_partition(&curves, 16).unwrap();
        let fast_energy: f64 = fast.iter().map(|(_, p)| p.energy_joules).sum();
        assert!((fast_energy - best_energy).abs() < 1e-9);
        assert_eq!(fast.iter().map(|(w, _)| *w).sum::<usize>(), 16);
        for (w, _) in &fast {
            assert!(*w >= 1);
        }
    }

    #[test]
    fn infeasible_cores_force_none() {
        // One core cannot meet QoS with any allocation.
        let curves = vec![flat_curve(3.0, 16), EnergyCurve::new(vec![None; 16])];
        assert!(optimize_partition(&curves, 16).is_none());
        assert!(exhaustive_partition(&curves, 16).is_none());
    }

    #[test]
    fn partially_infeasible_curves_are_respected() {
        // Core 1 needs at least 6 ways.
        let mut needs_six = vec![None; 5];
        needs_six.extend((6..=16).map(|w| point(10.0 - 0.1 * w as f64)));
        let curves = vec![flat_curve(2.0, 16), EnergyCurve::new(needs_six)];
        let result = optimize_partition(&curves, 16).unwrap();
        assert!(result[1].0 >= 6);
        assert_eq!(result[0].0 + result[1].0, 16);
    }

    #[test]
    fn degenerate_inputs() {
        assert!(optimize_partition(&[], 16).is_none());
        let one = vec![flat_curve(1.0, 16)];
        let result = optimize_partition(&one, 16).unwrap();
        assert_eq!(result[0].0, 16);
        // Not enough ways for every core to get one.
        let many: Vec<EnergyCurve> = (0..5).map(|_| flat_curve(1.0, 4)).collect();
        assert!(optimize_partition(&many, 4).is_none());
    }

    #[test]
    fn single_core_takes_everything() {
        let curves = vec![sloped_curve(5.0, 0.3, 16)];
        let result = optimize_partition(&curves, 16).unwrap();
        assert_eq!(result[0].0, 16);
    }

    #[test]
    fn pruning_preserves_exact_allocations_and_prunes_work() {
        // Non-concave curve set with ties and infeasible holes: the hardest
        // case for an argmin-preserving pruner.
        let mut bumpy = vec![None];
        bumpy.extend((2..=16).map(|w| point(9.0 - 0.4 * w as f64 + ((w % 4) as f64) * 0.3)));
        let curves = vec![
            sloped_curve(12.0, 0.7, 16),
            EnergyCurve::new(bumpy),
            flat_curve(4.0, 16),
            flat_curve(4.0, 16), // duplicate creates ties
            sloped_curve(6.0, 0.2, 16),
        ];
        let (pruned, stats) = optimize_partition_with_stats(&curves, 16);
        let unpruned = optimize_partition_unpruned(&curves, 16);
        assert_eq!(pruned, unpruned, "pruning changed the argmin result");
        assert!(stats.pruned > 0, "lower bounds should skip some candidates");
        assert!(stats.ops > 0);
    }

    #[test]
    fn stats_count_all_candidates_when_unpruned() {
        let curves = vec![flat_curve(1.0, 8), flat_curve(2.0, 8)];
        let (_, pruned_stats) = optimize_in_arena(&curves, 8, true);
        let (_, full_stats) = optimize_in_arena(&curves, 8, false);
        assert_eq!(full_stats.pruned, 0);
        assert_eq!(
            pruned_stats.ops + pruned_stats.pruned,
            full_stats.ops,
            "pruned + evaluated must cover the full candidate set"
        );
    }
}
