//! Global optimization: distributing the LLC ways among the cores.
//!
//! Each core's local optimization produces an energy-versus-ways curve. The
//! global step finds the partition `{w_j}` with `Σ w_j = associativity` that
//! minimizes total predicted energy. Following the paper, the curves are
//! reduced **pairwise**: two curves are combined into one curve over their
//! joint way budget by a min-plus convolution that records the argmin split;
//! the reduction is applied recursively until a single curve remains, and the
//! chosen splits are then unwound to produce the per-core allocation. The
//! cost is `O(cores · ways²)`, independent of the number of VF levels and
//! core sizes already folded into the curves.
//!
//! # Implementation notes
//!
//! The reduction is laid out in a **flat arena** rather than a boxed tree:
//! node metadata lives in one `Vec<NodeData>` indexed by `NodeId`, and the
//! combined energy/split tables of all inner nodes share two flat buffers
//! (each node owns a contiguous `[offset, offset + len)` slice). This keeps
//! the whole reduction in a handful of allocations and the convolution scans
//! on dense, cache-friendly rows.
//!
//! The convolution itself is **pruned with energy lower bounds**: every node
//! records the minimum energy over all of its feasible budgets, and a split
//! candidate is skipped when `left(w) + min(right)` already cannot beat the
//! incumbent. Because the bound is a true lower bound and the incumbent
//! comparison is strict (`<`), pruning never changes the computed energies
//! *or* the recorded argmin splits — results are bit-identical to the naive
//! scan, as [`optimize_partition_unpruned`] and the property tests in
//! `tests/properties.rs` verify.
//!
//! # Chunked kernel
//!
//! The candidate scan is laid out as a **flat, 4-wide-chunked pass**: the
//! right child's row is reversed once per combination so both operands of
//! every candidate sum are read with ascending unit-stride indices
//! (`left_row[k - 1] + right_rev[right_max - total + k]`), and each
//! 4-candidate chunk is processed branch-free — unrolled loads, sums in
//! the scalar path's exact `left + right` operand order (no FMA
//! reassociation), and explicit *pairwise* min/max trees that the SLP
//! vectorizer packs into two-lane ops (a serial fold would require float
//! reassociation, which the compiler rightly refuses). Without an
//! incumbent bound the scalar decision sequence is reproduced exactly
//! without branching: the running best at candidate `l` equals the prefix
//! minimum over **all** earlier sums (a pruned candidate can never update
//! it), so each prune flag is an OR of independent compares against
//! `best` and earlier sums, and the strict-`<` argmin is a first-tie scan
//! entered only when the chunk minimum beats `best`. With a finite
//! incumbent (the warm-start path) conservative chunk-level tests
//! dispatch between an all-pruned shortcut, an all-evaluated fast path,
//! and an exact scalar *replay* of the chunk. In every case the recorded
//! energies, argmin splits *and* the [`PruneStats`] counters are
//! bit-identical to the scalar loop, which is preserved as
//! [`optimize_partition_scalar`] for the perf gate and the property
//! tests.
//!
//! # Incremental re-optimization
//!
//! [`IncrementalOptimizer`] keeps the arena alive across invocations: when
//! only some input curves changed since the previous call, it re-densifies
//! the dirty leaf rows, recombines exactly the inner nodes on their paths
//! to the root, and reuses every other row verbatim (deterministic kernels
//! on bitwise-identical inputs reproduce rows bitwise, so reuse is exact).
//! The root recombination may additionally prune with a caller-supplied
//! upper bound (the previous allocation's energy); see
//! [`IncrementalOptimizer::optimize`] for why that bound is applied at the
//! root only.

use crate::curve::{CurvePoint, EnergyCurve};

/// Width of one convolution chunk: four `f64` lanes (one AVX2 register, two
/// SSE2 registers).
const LANES: usize = 4;

/// Work counters of one global optimization call.
///
/// `ops` counts evaluated split candidates (one addition + comparison each);
/// `pruned` counts the candidates skipped by the lower-bound test. The
/// `bench_gate` perf harness tracks `ops` across releases: a rise without a
/// workload change means the pruning regressed.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PruneStats {
    /// Split candidates evaluated by the min-plus convolution.
    pub ops: u64,
    /// Split candidates skipped by the lower-bound test.
    pub pruned: u64,
    /// Full 4-wide chunk passes executed by the chunked kernel (the scalar
    /// reference path leaves this at zero).
    pub lanes: u64,
}

/// Row-reuse counters of one [`IncrementalOptimizer::optimize`] call.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct WarmStats {
    /// Arena rows (leaf or inner) reused verbatim from the previous call.
    pub rows_reused: u64,
    /// Arena rows re-densified or recombined this call.
    pub rows_recomputed: u64,
}

/// Index of a node in the reduction arena.
type NodeId = usize;

/// Flat-arena node. Every node — leaf or inner — owns a dense row of the
/// shared `energy` buffer (`f64::INFINITY` marks infeasible budgets), so the
/// convolution scans contiguous memory with no per-candidate dispatch.
#[derive(Debug, Clone)]
struct NodeData {
    /// For leaves, the input curve index; for inner nodes, `usize::MAX`.
    core: usize,
    /// Children (`NodeId`s); only meaningful for inner nodes.
    left: NodeId,
    right: NodeId,
    /// Start of this node's row in the shared `energy`/`split` buffers.
    offset: usize,
    /// Number of leaves beneath this node (every leaf needs ≥ 1 way).
    leaves: usize,
    /// Largest way budget covered by this node's curve (the row length).
    max_ways: usize,
    /// Lower bound: minimum energy over every feasible budget of this node,
    /// `f64::INFINITY` when nothing is feasible.
    min_energy: f64,
}

/// The reduction arena: all node metadata plus the shared combined-curve
/// storage.
#[derive(Debug, Clone)]
struct Arena {
    nodes: Vec<NodeData>,
    /// `energy[node.offset + w - 1]` = minimum energy of `node` with `w`
    /// total ways.
    energy: Vec<f64>,
    /// `split[node.offset + w - 1]` = ways given to the left child at that
    /// optimum (inner nodes; leaf rows stay zero).
    split: Vec<usize>,
}

/// Which candidate-scan implementation a reduction runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Kernel {
    /// The flat 4-wide-chunked pass (production path).
    Chunked,
    /// The per-candidate scalar loop preserved as the perf-gate and
    /// property-test reference.
    Scalar,
}

/// One min-plus row combination with the chunked kernel: fills
/// `out_energy`/`out_split` for every combined budget `2..=max_total` and
/// returns the row minimum.
///
/// `right_rev` is caller-owned scratch holding nothing on entry; the right
/// row is copied into it reversed so both operands of a candidate sum are
/// read at ascending unit-stride indices (`right_row[total - k - 1]` becomes
/// `right_rev[right_max - total + k]`). Each chunk's four sums are computed
/// branch-free in the exact `left + right` operand order; the incumbent-free
/// path then derives every prune decision and the strict-`<` argmin from
/// independent compares (see the module notes), while the warm-start path
/// dispatches between chunk-level shortcuts and an exact scalar replay —
/// either way results *and* [`PruneStats`] match the scalar kernel bit for
/// bit (f64 addition is deterministic).
///
/// `incumbent` is an optional exact upper bound on the energy the caller
/// will read out of this row (pass `f64::INFINITY` for none): candidates
/// whose lower bound strictly exceeds it are skipped. The test is strict
/// (`>`), so a candidate tying the bound is still evaluated and the argmin
/// at any cell whose true minimum is `<= incumbent` is unchanged; cells
/// whose minimum exceeds the bound may record larger values, which is why
/// only the root row — whose non-requested cells feed nothing — ever gets
/// a finite incumbent (see [`IncrementalOptimizer::optimize`]).
#[allow(clippy::too_many_arguments)]
fn convolve_rows_chunked(
    left_row: &[f64],
    right_row: &[f64],
    right_rev: &mut Vec<f64>,
    left_leaves: usize,
    right_leaves: usize,
    right_min: f64,
    max_total: usize,
    out_energy: &mut [f64],
    out_split: &mut [usize],
    prune: bool,
    incumbent: f64,
    stats: &mut PruneStats,
) -> f64 {
    let left_max = left_row.len();
    let right_max = right_row.len();
    right_rev.clear();
    right_rev.extend(right_row.iter().rev());

    let mut node_min = f64::INFINITY;
    for total in 2..=max_total {
        // Every child must receive at least one way per leaf beneath it
        // and no more than its row covers; the bounds encode what the
        // naive scan would skip, preserving the ascending candidate
        // order (and thus argmin tie-breaking).
        let lo = left_leaves.max(total.saturating_sub(right_max));
        let hi = total.saturating_sub(right_leaves).min(left_max);
        let mut best = f64::INFINITY;
        let mut best_split = 0usize;
        if lo <= hi {
            let n = hi - lo + 1;
            // Candidate k = lo + i reads left_row[k - 1] and
            // right_row[total - k - 1] == right_rev[right_max - total + k];
            // both indices ascend with i.
            let ls = &left_row[lo - 1..lo - 1 + n];
            let rbase = right_max + lo - total;
            let rs = &right_rev[rbase..rbase + n];
            let mut i = 0;
            while i + LANES <= n {
                // Branch-free 4-wide chunk: unrolled unit-stride loads and
                // candidate sums in the scalar path's exact operand order
                // (`left + right`, no reassociation), then the chunk
                // extrema as explicit pairwise trees — fixed-shape
                // reductions the SLP vectorizer packs into two-lane
                // min/max ops, unlike a serial fold whose float
                // reassociation the compiler must refuse.
                let l0 = ls[i];
                let l1 = ls[i + 1];
                let l2 = ls[i + 2];
                let l3 = ls[i + 3];
                let s0 = l0 + rs[i];
                let s1 = l1 + rs[i + 1];
                let s2 = l2 + rs[i + 2];
                let s3 = l3 + rs[i + 3];
                if incumbent == f64::INFINITY {
                    // Without an incumbent bound the scalar decision
                    // sequence is *exactly* reproducible without branches:
                    // the running best at candidate `l` equals the prefix
                    // minimum `p_l = min(best, sums[..l])` over **all**
                    // earlier sums (a pruned candidate's sum is ≥ its
                    // bound ≥ the running best, so skipping it never
                    // changes the prefix minimum), candidate `l` is pruned
                    // iff `bound_l ≥ p_l`, and the first lane at the chunk
                    // minimum is never pruned — so flags, counters, and
                    // the strict-`<` argmin all fall out of four compares
                    // and a three-deep select chain.
                    // `x ≥ min(set)` ⇔ some member is ≤ x, so each flag is
                    // an OR of independent compares (reusing the min
                    // tree's `m01`) rather than a serial select chain —
                    // nothing in the chunk depends on anything but `best`.
                    let m01 = if s0 < s1 { s0 } else { s1 };
                    let m23 = if s2 < s3 { s2 } else { s3 };
                    let chunk_min = if m01 < m23 { m01 } else { m23 };
                    stats.lanes += 1;
                    if prune {
                        let b0 = l0 + right_min;
                        let b1 = l1 + right_min;
                        let b2 = l2 + right_min;
                        let b3 = l3 + right_min;
                        let pr = (b0 >= best) as u64
                            + ((b1 >= best) | (b1 >= s0)) as u64
                            + ((b2 >= best) | (b2 >= m01)) as u64
                            + ((b3 >= best) | (b3 >= m01) | (b3 >= s2)) as u64;
                        stats.pruned += pr;
                        stats.ops += LANES as u64 - pr;
                    } else {
                        stats.ops += LANES as u64;
                    }
                    // Rarely taken: the chunk only matters when it beats
                    // the incumbent best, so the cross-chunk dependency is
                    // a predicted-untaken branch, not a float min.
                    if chunk_min < best {
                        let sums = [s0, s1, s2, s3];
                        let mut mi = 0usize;
                        while sums[mi] > chunk_min {
                            mi += 1;
                        }
                        best = sums[mi];
                        best_split = lo + i + mi;
                    }
                    i += LANES;
                    continue;
                }
                let lmin01 = if l0 < l1 { l0 } else { l1 };
                let lmin23 = if l2 < l3 { l2 } else { l3 };
                let lmax01 = if l0 > l1 { l0 } else { l1 };
                let lmax23 = if l2 > l3 { l2 } else { l3 };
                let smin01 = if s0 < s1 { s0 } else { s1 };
                let smin23 = if s2 < s3 { s2 } else { s3 };
                let left_min = if lmin01 < lmin23 { lmin01 } else { lmin23 };
                let left_max = if lmax01 > lmax23 { lmax01 } else { lmax23 };
                let sum_min = if smin01 < smin23 { smin01 } else { smin23 };
                stats.lanes += 1;
                // All-pruned fast path: a pruned candidate never updates
                // `best` (its sum is ≥ its bound), so if even the chunk's
                // smallest bound fails against the running best, the
                // sequential scan prunes all four candidates and leaves
                // `best` untouched.
                if prune && left_min + right_min >= best {
                    stats.pruned += LANES as u64;
                    i += LANES;
                    continue;
                }
                let sums = [s0, s1, s2, s3];
                let bound_max = left_max + right_min;
                // Fast path: candidate `l` is pruned iff its bound fails
                // against the running best *at that candidate*, which is
                // `min(best, sums[..l])`. When the chunk's largest bound
                // beats `best`, every in-chunk sum and the incumbent, no
                // candidate can be pruned — so the scalar decision
                // sequence collapses to `ops += LANES` plus a first-tie
                // min scan (strict `<` keeps the earliest argmin, exactly
                // like the sequential updates).
                let no_prune =
                    (!prune || (bound_max < best && bound_max < sum_min)) && bound_max <= incumbent;
                if no_prune {
                    stats.ops += LANES as u64;
                    // The chunk only changes the outcome when its minimum
                    // improves `best`; locate the winning lane lazily (the
                    // earliest lane at the minimum — ties can't displace
                    // it under the sequential strict-`<` updates, and the
                    // recorded value is that lane's sum bit for bit).
                    if sum_min < best {
                        let mut mi = 0usize;
                        while sums[mi] > sum_min {
                            mi += 1;
                        }
                        best = sums[mi];
                        best_split = lo + i + mi;
                    }
                } else {
                    // Replay the scalar incumbent/prune decisions over the
                    // precomputed sums (sequential by construction: `best`
                    // carries between candidates).
                    for l in 0..LANES {
                        let left_energy = ls[i + l];
                        let bound = left_energy + right_min;
                        if prune && bound >= best {
                            stats.pruned += 1;
                            continue;
                        }
                        if bound > incumbent {
                            stats.pruned += 1;
                            continue;
                        }
                        stats.ops += 1;
                        let e = sums[l];
                        if e < best {
                            best = e;
                            best_split = lo + i + l;
                        }
                    }
                }
                i += LANES;
            }
            while i < n {
                let left_energy = ls[i];
                let bound = left_energy + right_min;
                if (prune && bound >= best) || bound > incumbent {
                    stats.pruned += 1;
                } else {
                    stats.ops += 1;
                    let e = ls[i] + rs[i];
                    if e < best {
                        best = e;
                        best_split = lo + i;
                    }
                }
                i += 1;
            }
        }
        out_energy[total - 1] = best;
        out_split[total - 1] = best_split;
        node_min = node_min.min(best);
    }
    node_min
}

/// The pre-chunking per-candidate scalar loop, preserved verbatim as the
/// perf-gate baseline ([`optimize_partition_scalar`]) and the bit-identity
/// reference for the chunked kernel's property tests.
#[allow(clippy::too_many_arguments)]
fn convolve_rows_scalar(
    left_row: &[f64],
    right_row: &[f64],
    left_leaves: usize,
    right_leaves: usize,
    right_min: f64,
    max_total: usize,
    out_energy: &mut [f64],
    out_split: &mut [usize],
    prune: bool,
    stats: &mut PruneStats,
) -> f64 {
    let left_max = left_row.len();
    let right_max = right_row.len();
    let mut node_min = f64::INFINITY;
    for total in 2..=max_total {
        let lo = left_leaves.max(total.saturating_sub(right_max));
        let hi = total.saturating_sub(right_leaves).min(left_max);
        let mut best = f64::INFINITY;
        let mut best_split = 0usize;
        for left_ways in lo..=hi {
            let left_energy = left_row[left_ways - 1];
            // Lower bound: even paired with the cheapest share the right
            // child offers anywhere, this left share cannot beat the
            // incumbent — the exact sum (≥ the bound) cannot satisfy the
            // strict `<` below, so skipping preserves the argmin.
            if prune && left_energy + right_min >= best {
                stats.pruned += 1;
                continue;
            }
            stats.ops += 1;
            let e = left_energy + right_row[total - left_ways - 1];
            if e < best {
                best = e;
                best_split = left_ways;
            }
        }
        out_energy[total - 1] = best;
        out_split[total - 1] = best_split;
        node_min = node_min.min(best);
    }
    node_min
}

impl Arena {
    fn new(curves: &[EnergyCurve], cap: usize) -> Self {
        // cores leaves + (cores - 1) inner nodes, each row at most cap wide.
        let mut arena = Arena {
            nodes: Vec::with_capacity(2 * curves.len()),
            energy: Vec::with_capacity(2 * curves.len() * cap),
            split: Vec::with_capacity(2 * curves.len() * cap),
        };
        // Leaf rows: densify each input curve once so the convolution reads
        // plain `f64` rows for leaves and inner nodes alike.
        for (core, curve) in curves.iter().enumerate() {
            let offset = arena.energy.len();
            let mut min_energy = f64::INFINITY;
            for w in 1..=curve.max_ways() {
                let e = curve.energy(w);
                min_energy = min_energy.min(e);
                arena.energy.push(e);
            }
            arena.nodes.push(NodeData {
                core,
                left: NodeId::MAX,
                right: NodeId::MAX,
                offset,
                leaves: 1,
                max_ways: curve.max_ways(),
                min_energy,
            });
        }
        arena.split.resize(arena.energy.len(), 0);
        arena
    }

    #[inline]
    fn energy_at(&self, node: NodeId, ways: usize) -> f64 {
        let n = &self.nodes[node];
        if ways == 0 || ways > n.max_ways {
            f64::INFINITY
        } else {
            self.energy[n.offset + ways - 1]
        }
    }

    /// Combines two nodes by min-plus convolution over the way budget,
    /// capping the combined curve at `cap` ways (the LLC associativity)
    /// since larger budgets can never be requested.
    ///
    /// When `prune` is set, split candidates whose lower bound cannot beat
    /// the incumbent are skipped; the recorded energies and argmin splits are
    /// identical either way because the bound is conservative and the
    /// incumbent test is strict.
    #[allow(clippy::too_many_arguments)]
    fn combine(
        &mut self,
        left: NodeId,
        right: NodeId,
        cap: usize,
        prune: bool,
        kernel: Kernel,
        incumbent: f64,
        scratch: &mut Vec<f64>,
        stats: &mut PruneStats,
    ) -> NodeId {
        let (left_leaves, left_max) = {
            let n = &self.nodes[left];
            (n.leaves, n.max_ways)
        };
        let (right_leaves, right_max) = {
            let n = &self.nodes[right];
            (n.leaves, n.max_ways)
        };
        let max_total = (left_max + right_max).min(cap);
        let offset = self.energy.len();
        self.energy.resize(offset + max_total, f64::INFINITY);
        self.split.resize(offset + max_total, 0);
        self.nodes.push(NodeData {
            core: usize::MAX,
            left,
            right,
            offset,
            leaves: left_leaves + right_leaves,
            max_ways: max_total,
            min_energy: f64::INFINITY,
        });
        let id = self.nodes.len() - 1;
        self.recombine(id, prune, kernel, incumbent, scratch, stats);
        id
    }

    /// Recomputes an inner node's combined row in place from its children's
    /// current rows (used both by [`Arena::combine`] on freshly allocated
    /// rows and by [`IncrementalOptimizer`] when patching dirty subtrees).
    fn recombine(
        &mut self,
        node: NodeId,
        prune: bool,
        kernel: Kernel,
        incumbent: f64,
        scratch: &mut Vec<f64>,
        stats: &mut PruneStats,
    ) {
        let (left, right, offset, max_total) = {
            let n = &self.nodes[node];
            (n.left, n.right, n.offset, n.max_ways)
        };
        let (left_leaves, left_max, left_offset) = {
            let n = &self.nodes[left];
            (n.leaves, n.max_ways, n.offset)
        };
        let (right_leaves, right_max, right_offset, right_min) = {
            let n = &self.nodes[right];
            (n.leaves, n.max_ways, n.offset, n.min_energy)
        };
        // Children are created before their parent, so their rows live
        // strictly before `offset` and the output row can be written while
        // both input rows are read.
        let (prev, out) = self.energy.split_at_mut(offset);
        let left_row = &prev[left_offset..left_offset + left_max];
        let right_row = &prev[right_offset..right_offset + right_max];
        let out_energy = &mut out[..max_total];
        let out_split = &mut self.split[offset..offset + max_total];

        let node_min = match kernel {
            Kernel::Chunked => convolve_rows_chunked(
                left_row,
                right_row,
                scratch,
                left_leaves,
                right_leaves,
                right_min,
                max_total,
                out_energy,
                out_split,
                prune,
                incumbent,
                stats,
            ),
            Kernel::Scalar => convolve_rows_scalar(
                left_row,
                right_row,
                left_leaves,
                right_leaves,
                right_min,
                max_total,
                out_energy,
                out_split,
                prune,
                stats,
            ),
        };
        self.nodes[node].min_energy = node_min;
    }

    /// Rewrites a leaf's row from `curve` (the curve's `max_ways` must equal
    /// the row width) and refreshes its minimum.
    fn redensify_leaf(&mut self, leaf: NodeId, curve: &EnergyCurve) {
        let (offset, max_ways) = {
            let n = &self.nodes[leaf];
            debug_assert_eq!(n.max_ways, curve.max_ways());
            (n.offset, n.max_ways)
        };
        let mut min_energy = f64::INFINITY;
        for w in 1..=max_ways {
            let e = curve.energy(w);
            min_energy = min_energy.min(e);
            self.energy[offset + w - 1] = e;
        }
        self.nodes[leaf].min_energy = min_energy;
    }

    /// Unwinds the recorded splits from `root`, writing each core's
    /// allocation. Iterative (explicit stack) so deep reductions cannot
    /// overflow the call stack.
    fn assign(&self, root: NodeId, ways: usize, out: &mut [Option<usize>]) {
        let mut stack = vec![(root, ways)];
        while let Some((node, ways)) = stack.pop() {
            let n = &self.nodes[node];
            if n.core != usize::MAX {
                out[n.core] = Some(ways);
            } else {
                let left_ways = self.split[n.offset + ways - 1];
                stack.push((n.left, left_ways));
                stack.push((n.right, ways - left_ways));
            }
        }
    }
}

/// Builds the full reduction in a fresh arena: pairs adjacent frontier
/// nodes until one remains (the same pairing order as the original boxed
/// tree) and returns the arena plus the root node.
fn build_reduction(
    curves: &[EnergyCurve],
    total_ways: usize,
    prune: bool,
    kernel: Kernel,
    incumbent: f64,
    scratch: &mut Vec<f64>,
    stats: &mut PruneStats,
) -> (Arena, NodeId) {
    let mut arena = Arena::new(curves, total_ways);
    let mut frontier: Vec<NodeId> = (0..curves.len()).collect();
    let mut next = Vec::with_capacity(frontier.len().div_ceil(2));
    while frontier.len() > 1 {
        next.clear();
        let mut i = 0;
        while i < frontier.len() {
            if i + 1 < frontier.len() {
                // The incumbent bound is only safe on the root row (its
                // unrequested cells feed no further combination): the final
                // combine is the one that merges the last two frontier
                // nodes.
                let is_root = next.is_empty() && i + 2 == frontier.len();
                let bound = if is_root { incumbent } else { f64::INFINITY };
                next.push(arena.combine(
                    frontier[i],
                    frontier[i + 1],
                    total_ways,
                    prune,
                    kernel,
                    bound,
                    scratch,
                    stats,
                ));
                i += 2;
            } else {
                next.push(frontier[i]);
                i += 1;
            }
        }
        std::mem::swap(&mut frontier, &mut next);
    }
    let root = frontier.pop().expect("at least one node");
    (arena, root)
}

/// Unwinds the optimum from a built arena into the per-core result vector.
fn extract_result(
    arena: &Arena,
    root: NodeId,
    curves: &[EnergyCurve],
    total_ways: usize,
) -> Option<Vec<(usize, CurvePoint)>> {
    if !arena.energy_at(root, total_ways).is_finite() {
        return None;
    }
    let mut allocation: Vec<Option<usize>> = vec![None; curves.len()];
    arena.assign(root, total_ways, &mut allocation);

    let mut result = Vec::with_capacity(curves.len());
    for (core, ways) in allocation.into_iter().enumerate() {
        let ways = ways?;
        let point = curves[core].point(ways)?;
        result.push((ways, point));
    }
    debug_assert_eq!(result.iter().map(|(w, _)| w).sum::<usize>(), total_ways);
    Some(result)
}

fn optimize_in_arena(
    curves: &[EnergyCurve],
    total_ways: usize,
    prune: bool,
    kernel: Kernel,
) -> (Option<Vec<(usize, CurvePoint)>>, PruneStats) {
    let mut stats = PruneStats::default();
    if curves.is_empty() || total_ways < curves.len() {
        return (None, stats);
    }
    let mut scratch = Vec::new();
    let (arena, root) = build_reduction(
        curves,
        total_ways,
        prune,
        kernel,
        f64::INFINITY,
        &mut scratch,
        &mut stats,
    );
    (extract_result(&arena, root, curves, total_ways), stats)
}

/// Finds the energy-minimal distribution of `total_ways` LLC ways among the
/// cores described by `curves`.
///
/// Returns, per core, the allocated way count and the curve point (VF level,
/// core size, predicted energy) at that allocation, or `None` when no
/// feasible partition exists (some core cannot meet its QoS target at any
/// share it could receive).
pub fn optimize_partition(
    curves: &[EnergyCurve],
    total_ways: usize,
) -> Option<Vec<(usize, CurvePoint)>> {
    optimize_in_arena(curves, total_ways, true, Kernel::Chunked).0
}

/// Like [`optimize_partition`], additionally returning the [`PruneStats`]
/// work counters (used by the `bench_gate` perf harness).
pub fn optimize_partition_with_stats(
    curves: &[EnergyCurve],
    total_ways: usize,
) -> (Option<Vec<(usize, CurvePoint)>>, PruneStats) {
    optimize_in_arena(curves, total_ways, true, Kernel::Chunked)
}

/// The pre-chunking pruned scalar path, preserved so the perf gate can
/// measure the chunked kernel's speedup against it and so property tests
/// can assert the two are bit-identical.
pub fn optimize_partition_scalar(
    curves: &[EnergyCurve],
    total_ways: usize,
) -> (Option<Vec<(usize, CurvePoint)>>, PruneStats) {
    optimize_in_arena(curves, total_ways, true, Kernel::Scalar)
}

/// Reference implementation running the full (unpruned) min-plus convolution
/// with the scalar kernel — the naive candidate scan.
///
/// Exists so tests can assert that lower-bound pruning and the chunked
/// kernel are behaviour preserving: [`optimize_partition`] must return
/// bit-identical allocations and energies for any curve set, including
/// non-concave ones.
pub fn optimize_partition_unpruned(
    curves: &[EnergyCurve],
    total_ways: usize,
) -> Option<Vec<(usize, CurvePoint)>> {
    optimize_in_arena(curves, total_ways, false, Kernel::Scalar).0
}

/// Sums per-core energies in the exact pairwise-reduction association order
/// (adjacent pairs per round, odd node carried), so the result is an f64
/// value the convolution itself could compute for that allocation. Using
/// this — rather than a flat left-to-right sum — as the incumbent bound
/// guarantees `bound >= optimum` *in f64 arithmetic*, not just
/// mathematically: the root-cell minimum is `<=` every candidate value it
/// scanned, and those values are built with this same association.
fn tree_order_energy(values: &mut Vec<f64>) -> f64 {
    debug_assert!(!values.is_empty());
    while values.len() > 1 {
        let mut write = 0;
        let mut read = 0;
        while read < values.len() {
            if read + 1 < values.len() {
                values[write] = values[read] + values[read + 1];
                read += 2;
            } else {
                values[write] = values[read];
                read += 1;
            }
            write += 1;
        }
        values.truncate(write);
    }
    values[0]
}

/// A persistent-arena optimizer for the incremental (delta) invocation path
/// of `CoordinatedRma`: between consecutive calls whose curve sets differ
/// in only a few cores, it re-densifies the dirty leaf rows, recombines the
/// inner nodes on their root paths, and reuses every other row verbatim.
///
/// Results are bit-identical to a cold [`optimize_partition`] call on the
/// same curves (locked by unit and property tests): reused rows were
/// produced by the same deterministic kernel from bitwise-identical curve
/// inputs, and recomputed rows run the production chunked kernel.
#[derive(Debug, Clone, Default)]
pub struct IncrementalOptimizer {
    /// The retained reduction (arena + root) of the previous call, if any.
    state: Option<(Arena, NodeId)>,
    /// Way budget the retained reduction was built for.
    total_ways: usize,
    /// Reversed-row scratch shared by all recombinations.
    scratch: Vec<f64>,
}

impl IncrementalOptimizer {
    /// Creates an optimizer with no retained state (the first call builds
    /// cold).
    pub fn new() -> Self {
        IncrementalOptimizer::default()
    }

    /// Drops the retained arena; the next call rebuilds cold.
    pub fn clear(&mut self) {
        self.state = None;
    }

    /// Optimizes `curves` over `total_ways`, reusing every arena row whose
    /// subtree inputs are unchanged. `dirty[i]` must be true whenever
    /// `curves[i]` may differ (in any bit) from the curve passed at the
    /// previous call; extra true entries cost work but never correctness.
    ///
    /// `incumbent` is an upper bound on the optimal total energy, or
    /// `f64::INFINITY` for none. The caller derives it from the previous
    /// allocation evaluated on the *current* curves (see
    /// [`incumbent_energy`]); it must be exact in f64 terms, which
    /// `incumbent_energy`'s tree-order summation guarantees. The bound is
    /// applied only to the root combination: a cell of any other row may be
    /// consumed by a later (or future warm) combination, so every non-root
    /// row must record exact minima, while the root row is recomputed
    /// whenever anything is dirty and only its requested cell — whose true
    /// minimum never exceeds a valid incumbent — is ever read.
    ///
    /// Returns the allocation (as [`optimize_partition`]), the convolution
    /// work counters for the rows actually recomputed, and the row-reuse
    /// counters.
    pub fn optimize(
        &mut self,
        curves: &[EnergyCurve],
        dirty: &[bool],
        total_ways: usize,
        incumbent: f64,
    ) -> (Option<Vec<(usize, CurvePoint)>>, PruneStats, WarmStats) {
        let mut stats = PruneStats::default();
        let mut warm = WarmStats::default();
        if curves.is_empty() || total_ways < curves.len() {
            self.state = None;
            return (None, stats, warm);
        }
        debug_assert_eq!(dirty.len(), curves.len());

        // The retained arena is reusable only when the reduction topology —
        // leaf count, per-leaf row widths and the way budget — is unchanged;
        // offsets and row lengths are then identical, so dirty rows can be
        // patched in place.
        let reusable = self.total_ways == total_ways
            && self.state.as_ref().is_some_and(|(arena, _)| {
                arena
                    .nodes
                    .iter()
                    .take_while(|n| n.core != usize::MAX)
                    .count()
                    == curves.len()
                    && curves
                        .iter()
                        .enumerate()
                        .all(|(i, c)| arena.nodes[i].max_ways == c.max_ways())
            });

        if !reusable {
            let (arena, root) = build_reduction(
                curves,
                total_ways,
                true,
                Kernel::Chunked,
                incumbent,
                &mut self.scratch,
                &mut stats,
            );
            warm.rows_recomputed = arena.nodes.len() as u64;
            let result = extract_result(&arena, root, curves, total_ways);
            self.state = Some((arena, root));
            self.total_ways = total_ways;
            return (result, stats, warm);
        }

        let (arena, root) = self.state.as_mut().expect("checked reusable");
        let root = *root;
        let num_leaves = curves.len();
        let mut node_dirty = vec![false; arena.nodes.len()];
        for (i, curve) in curves.iter().enumerate() {
            if dirty[i] {
                arena.redensify_leaf(i, curve);
                node_dirty[i] = true;
                warm.rows_recomputed += 1;
            } else {
                warm.rows_reused += 1;
            }
        }
        // Inner nodes follow their children in creation order, so a single
        // ascending pass recombines exactly the dirty root paths. The root
        // (the last node) is on every leaf's path, so it is recomputed —
        // with the incumbent bound — whenever any leaf changed.
        for id in num_leaves..arena.nodes.len() {
            let n = &arena.nodes[id];
            if node_dirty[n.left] || node_dirty[n.right] {
                let bound = if id == root { incumbent } else { f64::INFINITY };
                arena.recombine(
                    id,
                    true,
                    Kernel::Chunked,
                    bound,
                    &mut self.scratch,
                    &mut stats,
                );
                node_dirty[id] = true;
                warm.rows_recomputed += 1;
            } else {
                warm.rows_reused += 1;
            }
        }
        (extract_result(arena, root, curves, total_ways), stats, warm)
    }
}

/// Evaluates an allocation's total energy on `curves` in the reduction's
/// tree association order (the private `tree_order_energy`): the value is an
/// exact f64 upper bound on [`optimize_partition`]'s optimum whenever the
/// allocation is feasible, and `f64::INFINITY` — a no-op incumbent —
/// otherwise.
pub fn incumbent_energy(curves: &[EnergyCurve], allocation: &[usize]) -> f64 {
    if allocation.len() != curves.len() || curves.is_empty() {
        return f64::INFINITY;
    }
    let mut values: Vec<f64> = allocation
        .iter()
        .enumerate()
        .map(|(i, &w)| curves[i].energy(w))
        .collect();
    tree_order_energy(&mut values)
}

/// Brute-force reference optimizer used to validate
/// [`optimize_partition`] on small instances: enumerates every partition of
/// `total_ways` into one share of at least one way per core.
pub fn exhaustive_partition(
    curves: &[EnergyCurve],
    total_ways: usize,
) -> Option<(f64, Vec<usize>)> {
    fn recurse(
        curves: &[EnergyCurve],
        core: usize,
        remaining: usize,
        current: &mut Vec<usize>,
        best: &mut Option<(f64, Vec<usize>)>,
    ) {
        if core == curves.len() {
            if remaining != 0 {
                return;
            }
            let energy: f64 = current
                .iter()
                .enumerate()
                .map(|(i, &w)| curves[i].energy(w))
                .sum();
            if energy.is_finite() && best.as_ref().map(|(e, _)| energy < *e).unwrap_or(true) {
                *best = Some((energy, current.clone()));
            }
            return;
        }
        let cores_left = curves.len() - core - 1;
        let max_here = remaining
            .saturating_sub(cores_left)
            .min(curves[core].max_ways());
        for w in 1..=max_here {
            current.push(w);
            recurse(curves, core + 1, remaining - w, current, best);
            current.pop();
        }
    }
    let mut best = None;
    recurse(curves, 0, total_ways, &mut Vec::new(), &mut best);
    best
}

#[cfg(test)]
mod tests {
    use super::*;
    use qosrm_types::{CoreSizeIdx, FreqLevel};

    fn point(e: f64) -> Option<CurvePoint> {
        Some(CurvePoint {
            energy_joules: e,
            freq: FreqLevel(0),
            core_size: CoreSizeIdx(0),
            time_seconds: 0.1,
            ways: 1,
        })
    }

    /// Curve with energy `base - slope * w` (clamped at 0.1): a cache
    /// sensitive application keeps benefiting from ways.
    fn sloped_curve(base: f64, slope: f64, max_ways: usize) -> EnergyCurve {
        EnergyCurve::new(
            (1..=max_ways)
                .map(|w| point((base - slope * w as f64).max(0.1)))
                .collect(),
        )
    }

    /// Flat curve: a cache-insensitive application.
    fn flat_curve(energy: f64, max_ways: usize) -> EnergyCurve {
        EnergyCurve::new((1..=max_ways).map(|_| point(energy)).collect())
    }

    #[test]
    fn sensitive_app_receives_the_ways() {
        let curves = vec![sloped_curve(10.0, 0.5, 16), flat_curve(5.0, 16)];
        let result = optimize_partition(&curves, 16).unwrap();
        assert_eq!(result.len(), 2);
        assert_eq!(result[0].0 + result[1].0, 16);
        assert_eq!(
            result[0].0, 15,
            "the sloped curve should take all but one way"
        );
        assert_eq!(result[1].0, 1);
    }

    #[test]
    fn matches_exhaustive_search() {
        // Mix of shapes, including an infeasible region.
        let mut bumpy = vec![None, None];
        bumpy.extend((3..=16).map(|w| point(8.0 - 0.3 * w as f64 + ((w % 3) as f64) * 0.2)));
        let curves = vec![
            sloped_curve(12.0, 0.7, 16),
            flat_curve(4.0, 16),
            EnergyCurve::new(bumpy),
            sloped_curve(6.0, 0.2, 16),
        ];
        let fast = optimize_partition(&curves, 16).unwrap();
        let (best_energy, best_alloc) = exhaustive_partition(&curves, 16).unwrap();
        let fast_energy: f64 = fast.iter().map(|(_, p)| p.energy_joules).sum();
        assert!(
            (fast_energy - best_energy).abs() < 1e-9,
            "pairwise reduction must be optimal: {fast_energy} vs {best_energy}"
        );
        assert_eq!(fast.iter().map(|(w, _)| *w).sum::<usize>(), 16);
        // The allocation itself may differ when ties exist; energies must not.
        let exhaustive_energy: f64 = best_alloc
            .iter()
            .enumerate()
            .map(|(i, &w)| curves[i].energy(w))
            .sum();
        assert!((exhaustive_energy - best_energy).abs() < 1e-12);
    }

    #[test]
    fn eight_core_reduction_is_optimal() {
        let curves: Vec<EnergyCurve> = (0..8)
            .map(|i| sloped_curve(8.0 + i as f64, 0.1 + 0.1 * i as f64, 16))
            .collect();
        let fast = optimize_partition(&curves, 16).unwrap();
        let (best_energy, _) = exhaustive_partition(&curves, 16).unwrap();
        let fast_energy: f64 = fast.iter().map(|(_, p)| p.energy_joules).sum();
        assert!((fast_energy - best_energy).abs() < 1e-9);
        assert_eq!(fast.iter().map(|(w, _)| *w).sum::<usize>(), 16);
        for (w, _) in &fast {
            assert!(*w >= 1);
        }
    }

    #[test]
    fn infeasible_cores_force_none() {
        // One core cannot meet QoS with any allocation.
        let curves = vec![flat_curve(3.0, 16), EnergyCurve::new(vec![None; 16])];
        assert!(optimize_partition(&curves, 16).is_none());
        assert!(exhaustive_partition(&curves, 16).is_none());
    }

    #[test]
    fn partially_infeasible_curves_are_respected() {
        // Core 1 needs at least 6 ways.
        let mut needs_six = vec![None; 5];
        needs_six.extend((6..=16).map(|w| point(10.0 - 0.1 * w as f64)));
        let curves = vec![flat_curve(2.0, 16), EnergyCurve::new(needs_six)];
        let result = optimize_partition(&curves, 16).unwrap();
        assert!(result[1].0 >= 6);
        assert_eq!(result[0].0 + result[1].0, 16);
    }

    #[test]
    fn degenerate_inputs() {
        assert!(optimize_partition(&[], 16).is_none());
        let one = vec![flat_curve(1.0, 16)];
        let result = optimize_partition(&one, 16).unwrap();
        assert_eq!(result[0].0, 16);
        // Not enough ways for every core to get one.
        let many: Vec<EnergyCurve> = (0..5).map(|_| flat_curve(1.0, 4)).collect();
        assert!(optimize_partition(&many, 4).is_none());
    }

    #[test]
    fn single_core_takes_everything() {
        let curves = vec![sloped_curve(5.0, 0.3, 16)];
        let result = optimize_partition(&curves, 16).unwrap();
        assert_eq!(result[0].0, 16);
    }

    #[test]
    fn pruning_preserves_exact_allocations_and_prunes_work() {
        // Non-concave curve set with ties and infeasible holes: the hardest
        // case for an argmin-preserving pruner.
        let mut bumpy = vec![None];
        bumpy.extend((2..=16).map(|w| point(9.0 - 0.4 * w as f64 + ((w % 4) as f64) * 0.3)));
        let curves = vec![
            sloped_curve(12.0, 0.7, 16),
            EnergyCurve::new(bumpy),
            flat_curve(4.0, 16),
            flat_curve(4.0, 16), // duplicate creates ties
            sloped_curve(6.0, 0.2, 16),
        ];
        let (pruned, stats) = optimize_partition_with_stats(&curves, 16);
        let unpruned = optimize_partition_unpruned(&curves, 16);
        assert_eq!(pruned, unpruned, "pruning changed the argmin result");
        assert!(stats.pruned > 0, "lower bounds should skip some candidates");
        assert!(stats.ops > 0);
    }

    #[test]
    fn stats_count_all_candidates_when_unpruned() {
        let curves = vec![flat_curve(1.0, 8), flat_curve(2.0, 8)];
        let (_, pruned_stats) = optimize_in_arena(&curves, 8, true, Kernel::Chunked);
        let (_, full_stats) = optimize_in_arena(&curves, 8, false, Kernel::Scalar);
        assert_eq!(full_stats.pruned, 0);
        assert_eq!(
            pruned_stats.ops + pruned_stats.pruned,
            full_stats.ops,
            "pruned + evaluated must cover the full candidate set"
        );
    }

    /// The shapes of the other tests, reused for kernel- and warm-path
    /// equivalence checks.
    fn mixed_curves() -> Vec<EnergyCurve> {
        let mut bumpy = vec![None];
        bumpy.extend((2..=16).map(|w| point(9.0 - 0.4 * w as f64 + ((w % 4) as f64) * 0.3)));
        vec![
            sloped_curve(12.0, 0.7, 16),
            EnergyCurve::new(bumpy),
            flat_curve(4.0, 16),
            flat_curve(4.0, 16),
            sloped_curve(6.0, 0.2, 16),
        ]
    }

    #[test]
    fn chunked_kernel_matches_scalar_results_and_stats() {
        let curves = mixed_curves();
        for total in [8usize, 11, 16] {
            let (chunked, chunked_stats) = optimize_partition_with_stats(&curves, total);
            let (scalar, scalar_stats) = optimize_partition_scalar(&curves, total);
            assert_eq!(chunked, scalar, "kernels disagree at {total} ways");
            assert_eq!(chunked_stats.ops, scalar_stats.ops);
            assert_eq!(chunked_stats.pruned, scalar_stats.pruned);
            assert_eq!(scalar_stats.lanes, 0, "scalar path must not count lanes");
        }
        let (_, stats) = optimize_partition_with_stats(&curves, 16);
        assert!(stats.lanes > 0, "chunked path must execute chunk passes");
    }

    #[test]
    fn incremental_matches_cold_rebuild_per_patch() {
        let mut curves = mixed_curves();
        let mut warm_opt = IncrementalOptimizer::new();
        let all_dirty = vec![true; curves.len()];
        let (cold, _) = optimize_partition_with_stats(&curves, 16);
        let (first, _, warm_stats) = warm_opt.optimize(&curves, &all_dirty, 16, f64::INFINITY);
        assert_eq!(first, cold);
        assert_eq!(warm_stats.rows_reused, 0, "first call builds everything");

        // Patch one core at a time; every warm result must equal a cold
        // rebuild, with and without the previous allocation as incumbent.
        let mut last_alloc: Vec<usize> = first.unwrap().iter().map(|(w, _)| *w).collect();
        for step in 0..6usize {
            let core = step % curves.len();
            curves[core] = sloped_curve(10.0 + step as f64, 0.3 + 0.05 * step as f64, 16);
            let mut dirty = vec![false; curves.len()];
            dirty[core] = true;
            let incumbent = incumbent_energy(&curves, &last_alloc);
            let (warm, _, warm_stats) = warm_opt.optimize(&curves, &dirty, 16, incumbent);
            let cold = optimize_partition(&curves, 16);
            assert_eq!(warm, cold, "warm path diverged at step {step}");
            assert!(
                warm_stats.rows_reused > 0,
                "a single dirty core must reuse rows"
            );
            last_alloc = warm.unwrap().iter().map(|(w, _)| *w).collect();
        }

        // No dirty cores: the retained arena answers without recomputation.
        let no_dirty = vec![false; curves.len()];
        let incumbent = incumbent_energy(&curves, &last_alloc);
        let (warm, stats, warm_stats) = warm_opt.optimize(&curves, &no_dirty, 16, incumbent);
        assert_eq!(warm, optimize_partition(&curves, 16));
        assert_eq!(warm_stats.rows_recomputed, 0);
        assert_eq!(stats.ops, 0, "nothing dirty, nothing scanned");
    }

    #[test]
    fn incremental_rebuilds_on_topology_change() {
        let curves = mixed_curves();
        let mut warm_opt = IncrementalOptimizer::new();
        warm_opt.optimize(&curves, &vec![true; curves.len()], 16, f64::INFINITY);
        // Different core count: the mask says clean, but the retained arena
        // must be discarded and rebuilt cold.
        let fewer = curves[..3].to_vec();
        let (warm, _, warm_stats) = warm_opt.optimize(&fewer, &[false; 3], 16, f64::INFINITY);
        assert_eq!(warm, optimize_partition(&fewer, 16));
        assert_eq!(warm_stats.rows_reused, 0, "topology change must rebuild");
    }

    #[test]
    fn incumbent_energy_is_an_exact_upper_bound() {
        let curves = mixed_curves();
        let (alloc, _) = optimize_partition_with_stats(&curves, 16);
        let alloc = alloc.unwrap();
        let ways: Vec<usize> = alloc.iter().map(|(w, _)| *w).collect();
        let incumbent = incumbent_energy(&curves, &ways);
        // Re-optimizing with the optimum itself as the incumbent must not
        // perturb the result (the bound test is strict).
        let mut warm_opt = IncrementalOptimizer::new();
        let (warm, _, _) = warm_opt.optimize(&curves, &vec![true; curves.len()], 16, incumbent);
        assert_eq!(warm.unwrap(), alloc);
        // Infeasible allocations yield the no-op bound.
        assert_eq!(
            incumbent_energy(&curves, &vec![1; curves.len()]),
            f64::INFINITY,
            "curve 1 is infeasible at one way"
        );
        assert_eq!(incumbent_energy(&curves, &[]), f64::INFINITY);
    }
}
