//! The coordinated resource manager.

use crate::curve::EnergyCurve;
use crate::game::{self, GameConfig, PartitionAlgo};
use crate::global::{incumbent_energy, optimize_partition_with_stats, IncrementalOptimizer};
use crate::local::{LocalOptimizer, LocalOptimizerConfig};
use crate::memo::{self, CurveCache, CurveKey, ObservationDigests};
use crate::model::ModelKind;
use crate::overhead::OverheadModel;
use power_model::EnergyParams;
use qosrm_types::{
    CoreId, CoreObservation, CoreSetting, PlatformConfig, QosSpec, ResourceManager, SystemSetting,
};
use serde::{Deserialize, Serialize};
use std::sync::Arc;

/// Configuration of a [`CoordinatedRma`].
#[derive(Debug, Clone)]
pub struct RmaConfig {
    /// Whether the manager may repartition the LLC.
    pub control_partitioning: bool,
    /// Whether the manager may change per-core VF levels.
    pub control_dvfs: bool,
    /// Whether the manager may change the core micro-architecture size
    /// (Paper II).
    pub control_core_size: bool,
    /// Which analytical performance model to use.
    pub model: ModelKind,
    /// Per-application QoS specifications (indexed by core; applications
    /// beyond the vector length get the strict default).
    pub qos: Vec<QosSpec>,
    /// Energy calibration shared with the platform.
    pub energy_params: EnergyParams,
    /// Minimum relative predicted-energy improvement required before the LLC
    /// partition is changed. Repartitioning has a real cost (lines must be
    /// refilled), so ties and negligible gains keep the current partition.
    pub switch_threshold: f64,
    /// Which algorithm the global step uses to distribute LLC ways: the
    /// paper's cooperative arbiter or one of the game-theoretic solvers of
    /// [`crate::game`]. Only consulted when `control_partitioning` is set.
    ///
    /// Deliberately absent from the curve-cache configuration fingerprint:
    /// energy curves do not depend on how the global step distributes ways,
    /// so cooperative and game-theoretic managers share cache entries.
    pub partition_algo: PartitionAlgo,
    /// Whether the manager takes the incremental delta path: per-core
    /// observation digests are diffed against the previous interval, an
    /// unchanged core reuses its retained curve without rebuilding, and the
    /// cooperative global step re-runs a warm-row arena with the previous
    /// allocation as its pruning incumbent. Results are bit-identical to
    /// the cold path; only the *measured work* differs, which is why the
    /// flag defaults to off — the overhead experiments (E5/E9) report the
    /// cold per-invocation cost. Like `partition_algo`, deliberately absent
    /// from the configuration fingerprint.
    pub incremental: bool,
}

impl RmaConfig {
    /// Paper I's Combined RMA (RM2): per-core DVFS + LLC partitioning with
    /// the constant-MLP model.
    pub fn paper1(qos: Vec<QosSpec>) -> Self {
        RmaConfig {
            control_partitioning: true,
            control_dvfs: true,
            control_core_size: false,
            model: ModelKind::ConstantMlp,
            qos,
            energy_params: EnergyParams::default(),
            switch_threshold: 0.005,
            partition_algo: PartitionAlgo::Cooperative,
            incremental: false,
        }
    }

    /// Paper II's RM3: core size + DVFS + LLC partitioning with the
    /// MLP-aware model.
    pub fn paper2(qos: Vec<QosSpec>) -> Self {
        RmaConfig {
            control_partitioning: true,
            control_dvfs: true,
            control_core_size: true,
            model: ModelKind::MlpAware,
            qos,
            energy_params: EnergyParams::default(),
            switch_threshold: 0.005,
            partition_algo: PartitionAlgo::Cooperative,
            incremental: false,
        }
    }
}

/// Cumulative measured work counters of a [`CoordinatedRma`], reset by
/// [`ResourceManager::reset`].
///
/// Unlike [`LocalOptimizer::evaluations_per_invocation`] — a worst-case
/// bound — these count the work the manager *actually* performed, which is
/// what the overhead experiments (E5/E9) report.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct RmaWorkCounters {
    /// RMA invocations handled (`on_interval` calls).
    pub invocations: u64,
    /// Energy curves actually constructed (cache hits build nothing).
    pub curve_builds: u64,
    /// Analytical model evaluations performed across all curve builds
    /// (the builder's exact per-candidate count, including the one baseline
    /// prediction per build that defines the QoS target).
    pub local_evaluations: u64,
    /// Min-plus convolution cell updates evaluated by the global step.
    pub reduction_ops: u64,
    /// Convolution candidates skipped by the global step's lower-bound
    /// pruning.
    pub reduction_pruned: u64,
    /// Intervals where the manager could not certify the QoS target at the
    /// setting it had to keep: the curve had no feasible point at all
    /// (extreme modeling error), or — without partitioning control — the
    /// core's *current* way allocation was infeasible and the old setting
    /// was silently retained. Surfaced per run via
    /// [`rma-sim`](../../rma_sim/index.html)'s `SimulationResult`.
    pub qos_at_risk_intervals: u64,
    /// Best-response rounds executed by the game-theoretic partition
    /// algorithms (zero under the cooperative arbiter).
    pub game_rounds: u64,
    /// Single-core energy lookups performed while computing best responses.
    pub best_response_evaluations: u64,
    /// Candidate strategy vectors examined by the equilibrium-selection
    /// enumeration.
    pub equilibria_examined: u64,
    /// Invocations whose per-core observation digest matched the previous
    /// interval, so the retained curve was reused with no model evaluation
    /// at all (only ticks in incremental mode; see
    /// [`CoordinatedRma::with_incremental`]).
    pub delta_invocations: u64,
    /// Curves (re)built by the incremental path because the invoking core's
    /// observation digest changed — or no curve was retained — since the
    /// previous interval (only ticks in incremental mode).
    pub curves_patched: u64,
    /// Arena rows the warm-started global step reused verbatim instead of
    /// recomputing (only ticks in incremental mode).
    pub warm_rows_reused: u64,
    /// Full 4-wide chunk passes executed by the chunked min-plus kernel
    /// across all cooperative global steps.
    pub chunked_conv_lanes: u64,
}

impl std::fmt::Display for RmaWorkCounters {
    /// Renders every counter as one `key=value` line.
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        // Exhaustive destructuring (no `..`): adding a field to
        // RmaWorkCounters fails compilation here until the display covers
        // it, mirroring `digest_observation` in memo.rs.
        let RmaWorkCounters {
            invocations,
            curve_builds,
            local_evaluations,
            reduction_ops,
            reduction_pruned,
            qos_at_risk_intervals,
            game_rounds,
            best_response_evaluations,
            equilibria_examined,
            delta_invocations,
            curves_patched,
            warm_rows_reused,
            chunked_conv_lanes,
        } = *self;
        write!(
            f,
            "invocations={invocations} curve_builds={curve_builds} \
             local_evaluations={local_evaluations} reduction_ops={reduction_ops} \
             reduction_pruned={reduction_pruned} \
             qos_at_risk_intervals={qos_at_risk_intervals} \
             game_rounds={game_rounds} \
             best_response_evaluations={best_response_evaluations} \
             equilibria_examined={equilibria_examined} \
             delta_invocations={delta_invocations} \
             curves_patched={curves_patched} \
             warm_rows_reused={warm_rows_reused} \
             chunked_conv_lanes={chunked_conv_lanes}"
        )
    }
}

/// The coordinated QoS-driven resource manager.
///
/// One instance manages the whole system: it keeps the most recent energy
/// curve of every core and, at each invocation, recomputes the invoking
/// core's curve and re-runs the global optimization over all cores.
///
/// # Example
///
/// Build the paper's managers and inspect their cost (the co-phase
/// simulator drives them through [`qosrm_types::ResourceManager`]):
///
/// ```
/// use qosrm_core::CoordinatedRma;
/// use qosrm_types::{PlatformConfig, QosSpec, ResourceManager};
///
/// let platform = PlatformConfig::paper2(4);
/// let qos = vec![QosSpec::STRICT; 4];
///
/// let rm2 = CoordinatedRma::paper1(&platform, qos.clone());
/// let rm3 = CoordinatedRma::paper2(&platform, qos);
/// assert_eq!(rm2.name(), "CombinedRMA-Model2");
/// assert_eq!(rm3.name(), "CoordCoreRMA-Model3");
///
/// // Paper I reports < 40K instructions per 4-core invocation; RM3 pays
/// // more because it also explores the core-size dimension.
/// assert!(rm2.invocation_overhead_instructions(4) < 40_000);
/// assert!(rm3.invocation_overhead_instructions(4) > rm2.invocation_overhead_instructions(4));
/// ```
#[derive(Debug, Clone)]
pub struct CoordinatedRma {
    platform: PlatformConfig,
    config: RmaConfig,
    optimizer: LocalOptimizer,
    overhead: OverheadModel,
    curves: Vec<Option<EnergyCurve>>,
    name: String,
    /// Optional shared memoization cache for energy curves; see
    /// [`CoordinatedRma::with_curve_cache`].
    curve_cache: Option<Arc<CurveCache>>,
    /// Digest of everything besides `(qos, observation)` that determines a
    /// curve: platform, control knobs, model kind and energy calibration.
    config_key: CurveKey,
    /// Measured work counters (see [`RmaWorkCounters`]).
    counters: RmaWorkCounters,
    /// Per-core observation digests of the previous interval (delta path).
    digests: ObservationDigests,
    /// Cores whose curve changed since the global step last consumed the
    /// mask (delta path); sized like `curves`.
    pending_dirty: Vec<bool>,
    /// Warm-row arena retained between cooperative global steps (delta
    /// path).
    incremental_opt: IncrementalOptimizer,
    /// Way allocation of the previous cooperative global step, evaluated on
    /// the current curves as the pruning incumbent (delta path).
    last_ways: Option<Vec<usize>>,
}

impl CoordinatedRma {
    /// Creates a manager with an explicit configuration.
    pub fn new(platform: &PlatformConfig, config: RmaConfig) -> Self {
        let optimizer = LocalOptimizer::new(
            platform,
            LocalOptimizerConfig {
                control_dvfs: config.control_dvfs,
                control_core_size: config.control_core_size,
                model: config.model,
                energy_params: config.energy_params,
            },
        );
        let name = Self::default_name(&config);
        let config_key = memo::fingerprint(&(
            platform.clone(),
            config.control_dvfs,
            config.control_core_size,
            config.model,
            config.energy_params,
        ));
        CoordinatedRma {
            platform: platform.clone(),
            curves: vec![None; platform.num_cores],
            optimizer,
            overhead: OverheadModel::default(),
            config,
            name,
            curve_cache: None,
            config_key,
            counters: RmaWorkCounters::default(),
            digests: ObservationDigests::new(),
            pending_dirty: vec![false; platform.num_cores],
            incremental_opt: IncrementalOptimizer::new(),
            last_ways: None,
        }
    }

    fn default_name(config: &RmaConfig) -> String {
        let model = match config.model {
            ModelKind::SimpleLatency => "Model1",
            ModelKind::ConstantMlp => "Model2",
            ModelKind::MlpAware => "Model3",
            ModelKind::Perfect => "Perfect",
        };
        let scheme = match config.partition_algo {
            PartitionAlgo::NashBestResponse => return format!("NashBR-{model}"),
            PartitionAlgo::NashMinEnergyEquilibrium => return format!("NashEq-{model}"),
            PartitionAlgo::Cooperative => match (
                config.control_partitioning,
                config.control_dvfs,
                config.control_core_size,
            ) {
                (true, false, false) => "PartitioningRMA",
                (false, true, false) => "DvfsRMA",
                (true, true, false) => "CombinedRMA",
                (true, true, true) => "CoordCoreRMA",
                _ => "CustomRMA",
            },
        };
        format!("{scheme}-{model}")
    }

    /// RM1: LLC partitioning only (baseline VF and core size).
    pub fn partitioning_only(platform: &PlatformConfig, qos: Vec<QosSpec>) -> Self {
        CoordinatedRma::new(
            platform,
            RmaConfig {
                control_partitioning: true,
                control_dvfs: false,
                control_core_size: false,
                model: ModelKind::ConstantMlp,
                qos,
                energy_params: EnergyParams::default(),
                switch_threshold: 0.005,
                partition_algo: PartitionAlgo::Cooperative,
                incremental: false,
            },
        )
    }

    /// DVFS-only manager (no repartitioning). Under strict QoS it cannot
    /// lower any frequency, which is exactly the paper's argument for
    /// coordinated management.
    pub fn dvfs_only(platform: &PlatformConfig, qos: Vec<QosSpec>) -> Self {
        CoordinatedRma::new(
            platform,
            RmaConfig {
                control_partitioning: false,
                control_dvfs: true,
                control_core_size: false,
                model: ModelKind::ConstantMlp,
                qos,
                energy_params: EnergyParams::default(),
                switch_threshold: 0.005,
                partition_algo: PartitionAlgo::Cooperative,
                incremental: false,
            },
        )
    }

    /// RM2: the Paper I Combined RMA (DVFS + partitioning, Model 2).
    pub fn paper1(platform: &PlatformConfig, qos: Vec<QosSpec>) -> Self {
        CoordinatedRma::new(platform, RmaConfig::paper1(qos))
    }

    /// A selfish manager on the RM2 knobs (DVFS + partitioning, Model 2)
    /// whose global step runs iterated best response
    /// ([`crate::game::best_response`]) instead of the cooperative arbiter.
    /// Shares RM2's energy curves bit-for-bit, so E10 measures exactly the
    /// cost of selfishness.
    pub fn nash_best_response(platform: &PlatformConfig, qos: Vec<QosSpec>) -> Self {
        let mut config = RmaConfig::paper1(qos);
        config.partition_algo = PartitionAlgo::NashBestResponse;
        CoordinatedRma::new(platform, config)
    }

    /// A manager on the RM2 knobs whose global step applies the
    /// minimum-total-energy pure Nash equilibrium
    /// ([`crate::game::min_energy_equilibrium`]). Equilibrium enumeration
    /// is combinatorial in the core count — use on small (≤ 4-core)
    /// platforms.
    pub fn nash_equilibrium(platform: &PlatformConfig, qos: Vec<QosSpec>) -> Self {
        let mut config = RmaConfig::paper1(qos);
        config.partition_algo = PartitionAlgo::NashMinEnergyEquilibrium;
        CoordinatedRma::new(platform, config)
    }

    /// RM3: the Paper II manager (core size + DVFS + partitioning, Model 3).
    pub fn paper2(platform: &PlatformConfig, qos: Vec<QosSpec>) -> Self {
        CoordinatedRma::new(platform, RmaConfig::paper2(qos))
    }

    /// A manager with an explicit model choice (used by the model-accuracy
    /// experiments, e.g. RM3 driven by Model 1 / 2 / 3 or the perfect
    /// oracle).
    pub fn with_model(
        platform: &PlatformConfig,
        qos: Vec<QosSpec>,
        model: ModelKind,
        control_core_size: bool,
    ) -> Self {
        CoordinatedRma::new(
            platform,
            RmaConfig {
                control_partitioning: true,
                control_dvfs: true,
                control_core_size,
                model,
                qos,
                energy_params: EnergyParams::default(),
                switch_threshold: 0.005,
                partition_algo: PartitionAlgo::Cooperative,
                incremental: false,
            },
        )
    }

    /// Overrides the display name (used when tables compare several variants
    /// of the same scheme).
    pub fn with_name(mut self, name: impl Into<String>) -> Self {
        self.name = name.into();
        self
    }

    /// Attaches a shared energy-curve memoization cache.
    ///
    /// Curves are pure functions of `(configuration, QoS, observation)`, so
    /// a cache shared between managers — across the scenarios of a sweep and
    /// across threads — returns bit-identical curves while skipping the
    /// per-invocation model evaluations whenever an observation recurs. See
    /// [`CurveCache`] for the key derivation.
    pub fn with_curve_cache(mut self, cache: Arc<CurveCache>) -> Self {
        self.curve_cache = Some(cache);
        self
    }

    /// Enables the incremental delta path (see [`RmaConfig::incremental`]):
    /// per-core observation digests short-circuit curve rebuilds for
    /// unchanged cores, and the cooperative global step warm-starts from the
    /// retained reduction arena with the previous allocation as its pruning
    /// incumbent. Every setting the manager emits is bit-identical to the
    /// cold path — only the measured work counters differ
    /// (`delta_invocations`, `curves_patched`, `warm_rows_reused` tick, and
    /// `curve_builds` / `reduction_ops` shrink).
    pub fn with_incremental(mut self) -> Self {
        self.config.incremental = true;
        self
    }

    /// Drops all delta-path state: the next invocation diffs against
    /// nothing and the next global step rebuilds the arena cold.
    fn clear_delta_state(&mut self, num_cores: usize) {
        self.digests.reset();
        self.pending_dirty = vec![false; num_cores];
        self.incremental_opt.clear();
        self.last_ways = None;
    }

    /// The QoS specification of `core`.
    fn qos_of(&self, core: CoreId) -> QosSpec {
        self.config
            .qos
            .get(core.index())
            .copied()
            .unwrap_or_default()
    }

    /// The manager's configuration.
    pub fn config(&self) -> &RmaConfig {
        &self.config
    }

    /// Upper bound on the analytical model evaluations one invocation
    /// performs (the full candidate space). For the work actually done, see
    /// [`CoordinatedRma::work_counters`].
    pub fn evaluations_per_invocation(&self) -> usize {
        self.optimizer.evaluations_per_invocation()
    }

    /// The measured work counters accumulated since the last
    /// [`ResourceManager::reset`].
    pub fn work_counters(&self) -> RmaWorkCounters {
        self.counters
    }
}

impl ResourceManager for CoordinatedRma {
    fn name(&self) -> &str {
        &self.name
    }

    fn reset(&mut self, num_cores: usize) {
        self.curves = vec![None; num_cores];
        self.counters = RmaWorkCounters::default();
        self.clear_delta_state(num_cores);
    }

    fn on_interval(
        &mut self,
        core: CoreId,
        observation: &CoreObservation,
        current: &SystemSetting,
    ) -> SystemSetting {
        if self.curves.len() != current.num_cores() {
            self.curves = vec![None; current.num_cores()];
            self.clear_delta_state(current.num_cores());
        }

        // Step 1-3: models + local optimization produce this core's curve
        // (answered from the shared cache when the observation recurs).
        // Cache misses run the staged builder, whose exact evaluation count
        // feeds the measured overhead accounting.
        self.counters.invocations += 1;
        let qos = self.qos_of(core);
        // The delta path trusts the same 128-bit digest the curve cache
        // keys on: an unchanged digest means a bit-identical curve, so the
        // retained one is reused without any model evaluation and the core
        // stays clean for the warm-row global step below.
        let key = (self.config.incremental || self.curve_cache.is_some())
            .then(|| memo::curve_key(self.config_key, qos, observation));
        let reuse = self.config.incremental
            && self
                .digests
                .note(core.index(), key.expect("keyed when incremental"))
            && self.curves[core.index()].is_some();
        let curve = if reuse {
            self.counters.delta_invocations += 1;
            self.curves[core.index()].clone().expect("checked above")
        } else {
            if self.config.incremental {
                self.counters.curves_patched += 1;
                self.pending_dirty[core.index()] = true;
            }
            let optimizer = &self.optimizer;
            let counters = &mut self.counters;
            let mut build_counted = || {
                let build = optimizer.energy_curve_counted(observation, qos);
                counters.curve_builds += 1;
                counters.local_evaluations += build.evaluations as u64;
                build.curve
            };
            match &self.curve_cache {
                Some(cache) => cache.get_or_compute(key.expect("keyed when cached"), build_counted),
                None => build_counted(),
            }
        };
        if !curve.any_feasible() {
            // Defensive: even the baseline allocation appears infeasible
            // (can only happen through extreme modeling error); keep the
            // current setting for this interval and record that its QoS
            // cannot be certified.
            self.counters.qos_at_risk_intervals += 1;
            self.curves[core.index()] = None;
            return current.clone();
        }
        self.curves[core.index()] = Some(curve);

        if !self.config.control_partitioning {
            // No coordination over the cache: apply this core's best setting
            // at its current allocation and leave the others untouched.
            let ways = current.core(core).ways;
            let mut next = current.clone();
            if let Some(point) = self.curves[core.index()].as_ref().unwrap().point(ways) {
                *next.core_mut(core) = CoreSetting {
                    core_size: point.core_size,
                    freq: point.freq,
                    ways,
                };
            } else {
                // The current allocation is infeasible and the manager has
                // no partitioning authority to fix it: the old setting is
                // kept, but the interval is tallied instead of dropping the
                // signal.
                self.counters.qos_at_risk_intervals += 1;
            }
            return next;
        }

        // The paper's first-invocation rule: until every core has reported
        // one interval of statistics, keep the baseline setting.
        if self.curves.iter().any(Option::is_none) {
            return current.clone();
        }

        // Step 4: global allocation over all cores' latest curves — the
        // cooperative arbiter or, for the game-theoretic variants, a Nash
        // solver whose slack-allowed outcome is topped up to an exact-sum
        // allocation. Both paths feed the same hysteresis and validation
        // below.
        let curves: Vec<EnergyCurve> = self
            .curves
            .iter()
            .map(|c| c.clone().expect("checked above"))
            .collect();
        let total_ways = self.platform.llc.associativity;
        let allocation = match self.config.partition_algo {
            PartitionAlgo::Cooperative if self.config.incremental => {
                // Warm path: unchanged cores' arena rows are reused
                // verbatim, only dirty root paths are recombined, and the
                // previous allocation — re-evaluated on the current curves
                // in the reduction's association order, so it is an exact
                // f64 upper bound — prunes the root row. The allocation is
                // bit-identical to the cold path.
                let incumbent = match &self.last_ways {
                    Some(ways) => incumbent_energy(&curves, ways),
                    None => f64::INFINITY,
                };
                let (allocation, prune_stats, warm) = self.incremental_opt.optimize(
                    &curves,
                    &self.pending_dirty,
                    total_ways,
                    incumbent,
                );
                self.counters.reduction_ops += prune_stats.ops;
                self.counters.reduction_pruned += prune_stats.pruned;
                self.counters.chunked_conv_lanes += prune_stats.lanes;
                self.counters.warm_rows_reused += warm.rows_reused;
                self.pending_dirty.iter_mut().for_each(|d| *d = false);
                if let Some(allocation) = &allocation {
                    self.last_ways = Some(allocation.iter().map(|&(ways, _)| ways).collect());
                }
                allocation
            }
            PartitionAlgo::Cooperative => {
                let (allocation, prune_stats) = optimize_partition_with_stats(&curves, total_ways);
                self.counters.reduction_ops += prune_stats.ops;
                self.counters.reduction_pruned += prune_stats.pruned;
                self.counters.chunked_conv_lanes += prune_stats.lanes;
                allocation
            }
            PartitionAlgo::NashBestResponse => {
                let (outcome, stats) =
                    game::best_response(&curves, total_ways, &GameConfig::default());
                self.counters.game_rounds += stats.rounds;
                self.counters.best_response_evaluations += stats.evaluations;
                outcome.map(|o| o.exact_sum_allocation(total_ways))
            }
            PartitionAlgo::NashMinEnergyEquilibrium => {
                let (outcome, stats) = game::min_energy_equilibrium(&curves, total_ways);
                self.counters.game_rounds += stats.rounds;
                self.counters.best_response_evaluations += stats.evaluations;
                self.counters.equilibria_examined += stats.equilibria_examined;
                outcome.map(|o| o.exact_sum_allocation(total_ways))
            }
        };
        let Some(allocation) = allocation else {
            return current.clone();
        };

        // Repartitioning hysteresis: only move ways when the predicted gain
        // over re-tuning VF/core-size on the *current* partition exceeds the
        // switching threshold (repartitioning costs cache refills).
        let new_energy: f64 = allocation.iter().map(|(_, p)| p.energy_joules).sum();
        let current_partition_energy: Option<f64> = (0..curves.len())
            .map(|i| {
                curves[i]
                    .point(current.core(CoreId(i)).ways)
                    .map(|p| p.energy_joules)
            })
            .sum();
        let keep_partition = match current_partition_energy {
            Some(current_energy) => {
                new_energy > current_energy * (1.0 - self.config.switch_threshold)
            }
            None => false,
        };

        let settings = if keep_partition {
            (0..curves.len())
                .map(|i| {
                    let ways = current.core(CoreId(i)).ways;
                    let point = curves[i].point(ways).expect("checked feasible above");
                    CoreSetting {
                        core_size: point.core_size,
                        freq: point.freq,
                        ways,
                    }
                })
                .collect()
        } else {
            allocation
                .into_iter()
                .map(|(ways, point)| CoreSetting {
                    core_size: point.core_size,
                    freq: point.freq,
                    ways,
                })
                .collect()
        };
        let next = SystemSetting::new(settings);
        if next.validate(&self.platform).is_err() {
            return current.clone();
        }
        next
    }

    fn invocation_overhead_instructions(&self, num_cores: usize) -> u64 {
        let mut platform = self.platform.clone();
        platform.num_cores = num_cores;
        self.overhead
            .invocation_instructions(&platform, self.optimizer.evaluations_per_invocation())
    }

    fn qos_at_risk_intervals(&self) -> u64 {
        self.counters.qos_at_risk_intervals
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qosrm_types::{
        AppId, CoreScalingProfile, CoreSizeIdx, IntervalStats, MissProfile, MlpProfile,
    };

    fn platform() -> PlatformConfig {
        PlatformConfig::paper2(4)
    }

    /// A cache-sensitive observation (steep miss curve, dependent misses).
    fn cache_sensitive_observation(app: usize) -> CoreObservation {
        let p = platform();
        let baseline_ways = p.baseline_ways_per_core();
        let misses: Vec<u64> = (0..16)
            .map(|w| (1_500_000.0 * (0.85f64).powi(w)) as u64)
            .collect();
        let leading = vec![
            misses
                .iter()
                .map(|&m| (m as f64 * 0.97) as u64)
                .collect::<Vec<_>>(),
            misses
                .iter()
                .map(|&m| (m as f64 * 0.92) as u64)
                .collect::<Vec<_>>(),
            misses
                .iter()
                .map(|&m| (m as f64 * 0.88) as u64)
                .collect::<Vec<_>>(),
        ];
        observation_from(app, misses, leading, baseline_ways, vec![1.45, 1.2, 1.1])
    }

    /// A streaming observation (flat miss curve, bursty misses).
    fn streaming_observation(app: usize) -> CoreObservation {
        let p = platform();
        let baseline_ways = p.baseline_ways_per_core();
        let misses: Vec<u64> = (0..16).map(|_| 900_000u64).collect();
        let leading = vec![
            misses
                .iter()
                .map(|&m| (m as f64 * 0.70) as u64)
                .collect::<Vec<_>>(),
            misses
                .iter()
                .map(|&m| (m as f64 * 0.40) as u64)
                .collect::<Vec<_>>(),
            misses
                .iter()
                .map(|&m| (m as f64 * 0.20) as u64)
                .collect::<Vec<_>>(),
        ];
        observation_from(app, misses, leading, baseline_ways, vec![1.2, 0.9, 0.7])
    }

    /// A compute-bound observation (almost no misses).
    fn compute_observation(app: usize) -> CoreObservation {
        let p = platform();
        let baseline_ways = p.baseline_ways_per_core();
        let misses: Vec<u64> = (0..16).map(|_| 5_000u64).collect();
        let leading = vec![misses.clone(), misses.clone(), misses.clone()];
        observation_from(app, misses, leading, baseline_ways, vec![0.9, 0.6, 0.45])
    }

    fn observation_from(
        app: usize,
        misses: Vec<u64>,
        leading: Vec<Vec<u64>>,
        baseline_ways: usize,
        exec_cpi: Vec<f64>,
    ) -> CoreObservation {
        let p = platform();
        let freq = p.baseline_freq();
        let freq_hz = p.vf.point(freq).freq_hz();
        let instructions = 100_000_000u64;
        let exec_cycles = (instructions as f64 * exec_cpi[1]) as u64;
        let current_misses = misses[baseline_ways - 1];
        let current_leading = leading[1][baseline_ways - 1];
        let stall_seconds = current_leading as f64 * 70e-9;
        let elapsed = exec_cycles as f64 / freq_hz + stall_seconds;
        CoreObservation {
            app: AppId(app),
            stats: IntervalStats {
                instructions,
                cycles: (elapsed * freq_hz) as u64,
                exec_cycles,
                llc_accesses: 2_000_000,
                llc_misses: current_misses,
                leading_misses: current_leading,
                elapsed_seconds: elapsed,
                freq,
                core_size: p.baseline_core_size,
                ways: baseline_ways,
            },
            miss_profile: MissProfile::new(misses),
            mlp_profile: Some(MlpProfile::new(leading)),
            scaling_profile: Some(CoreScalingProfile::new(exec_cpi)),
            perfect: None,
        }
    }

    /// Feeds one observation per core and returns the setting decided at the
    /// last invocation.
    fn run_all_cores(
        manager: &mut CoordinatedRma,
        observations: Vec<CoreObservation>,
    ) -> SystemSetting {
        let p = platform();
        let mut setting = SystemSetting::baseline(&p);
        manager.reset(p.num_cores);
        for (i, obs) in observations.iter().enumerate() {
            setting = manager.on_interval(CoreId(i), obs, &setting);
        }
        setting
    }

    #[test]
    fn keeps_baseline_until_all_cores_reported() {
        let p = platform();
        let mut rma = CoordinatedRma::paper1(&p, vec![QosSpec::STRICT; 4]);
        rma.reset(4);
        let baseline = SystemSetting::baseline(&p);
        let s1 = rma.on_interval(CoreId(0), &cache_sensitive_observation(0), &baseline);
        assert_eq!(s1, baseline, "first invocation must keep the baseline");
        let s2 = rma.on_interval(CoreId(1), &compute_observation(1), &s1);
        assert_eq!(s2, baseline);
    }

    #[test]
    fn combined_rma_moves_cache_to_sensitive_apps() {
        let p = platform();
        let mut rma = CoordinatedRma::paper1(&p, vec![QosSpec::STRICT; 4]);
        let setting = run_all_cores(
            &mut rma,
            vec![
                cache_sensitive_observation(0),
                compute_observation(1),
                streaming_observation(2),
                compute_observation(3),
            ],
        );
        assert!(setting.validate(&p).is_ok());
        let ways0 = setting.core(CoreId(0)).ways;
        assert!(
            ways0 > p.baseline_ways_per_core(),
            "cache-sensitive app should gain ways, got {ways0}"
        );
        // The cache-sensitive app can then afford a lower frequency.
        assert!(setting.core(CoreId(0)).freq <= p.baseline_freq());
        // Total ways preserved.
        assert_eq!(
            setting.cores().iter().map(|c| c.ways).sum::<usize>(),
            p.llc.associativity
        );
    }

    #[test]
    fn compute_apps_keep_qos_by_staying_fast_enough() {
        let p = platform();
        let mut rma = CoordinatedRma::paper1(&p, vec![QosSpec::STRICT; 4]);
        let setting = run_all_cores(
            &mut rma,
            vec![
                cache_sensitive_observation(0),
                compute_observation(1),
                compute_observation(2),
                compute_observation(3),
            ],
        );
        // A compute-bound app is insensitive to the cache, so it may lose
        // ways, but its frequency must not drop below the baseline (its
        // execution time is frequency-bound and the QoS target is strict).
        for i in 1..4 {
            assert!(setting.core(CoreId(i)).freq >= p.baseline_freq());
        }
    }

    #[test]
    fn rm3_uses_smaller_or_equal_cores_for_compute_apps() {
        let p = platform();
        let mut rma = CoordinatedRma::paper2(&p, vec![QosSpec::STRICT; 4]);
        let setting = run_all_cores(
            &mut rma,
            vec![
                streaming_observation(0),
                streaming_observation(1),
                cache_sensitive_observation(2),
                compute_observation(3),
            ],
        );
        assert!(setting.validate(&p).is_ok());
        // RM3 must produce a setting at least as good as keeping the
        // baseline; in particular it exploits core sizing somewhere.
        let sizes: Vec<CoreSizeIdx> = setting.cores().iter().map(|c| c.core_size).collect();
        assert!(
            sizes.iter().any(|&s| s != p.baseline_core_size),
            "RM3 should exercise the core-size knob, got {sizes:?}"
        );
    }

    #[test]
    fn dvfs_only_cannot_slow_down_under_strict_qos() {
        let p = platform();
        let mut rma = CoordinatedRma::dvfs_only(&p, vec![QosSpec::STRICT; 4]);
        let setting = run_all_cores(
            &mut rma,
            vec![
                cache_sensitive_observation(0),
                streaming_observation(1),
                compute_observation(2),
                compute_observation(3),
            ],
        );
        // Without cache coordination there is no slack to exploit: every core
        // keeps (at least) the baseline frequency and the baseline partition.
        for i in 0..4 {
            assert!(setting.core(CoreId(i)).freq >= p.baseline_freq());
            assert_eq!(setting.core(CoreId(i)).ways, p.baseline_ways_per_core());
        }
    }

    #[test]
    fn relaxed_qos_lets_everything_slow_down() {
        let p = platform();
        let mut rma = CoordinatedRma::paper1(&p, vec![QosSpec::relaxed_by(0.4); 4]);
        let setting = run_all_cores(
            &mut rma,
            vec![
                cache_sensitive_observation(0),
                streaming_observation(1),
                compute_observation(2),
                compute_observation(3),
            ],
        );
        let below_baseline = setting
            .cores()
            .iter()
            .filter(|c| c.freq < p.baseline_freq())
            .count();
        assert!(
            below_baseline >= 2,
            "with 40% slack most cores should clock down, got {below_baseline}"
        );
    }

    #[test]
    fn names_reflect_scheme_and_model() {
        let p = platform();
        assert_eq!(
            CoordinatedRma::paper1(&p, vec![]).name(),
            "CombinedRMA-Model2"
        );
        assert_eq!(
            CoordinatedRma::paper2(&p, vec![]).name(),
            "CoordCoreRMA-Model3"
        );
        assert_eq!(
            CoordinatedRma::partitioning_only(&p, vec![]).name(),
            "PartitioningRMA-Model2"
        );
        assert_eq!(
            CoordinatedRma::dvfs_only(&p, vec![]).name(),
            "DvfsRMA-Model2"
        );
        assert_eq!(
            CoordinatedRma::with_model(&p, vec![], ModelKind::Perfect, true)
                .with_name("RM3-Oracle")
                .name(),
            "RM3-Oracle"
        );
        assert_eq!(
            CoordinatedRma::nash_best_response(&p, vec![]).name(),
            "NashBR-Model2"
        );
        assert_eq!(
            CoordinatedRma::nash_equilibrium(&p, vec![]).name(),
            "NashEq-Model2"
        );
    }

    #[test]
    fn nash_managers_produce_valid_settings_and_tick_game_counters() {
        let p = platform();
        let observations = || {
            vec![
                cache_sensitive_observation(0),
                compute_observation(1),
                streaming_observation(2),
                compute_observation(3),
            ]
        };

        let mut br = CoordinatedRma::nash_best_response(&p, vec![QosSpec::STRICT; 4]);
        let setting = run_all_cores(&mut br, observations());
        assert!(setting.validate(&p).is_ok());
        assert_eq!(
            setting.cores().iter().map(|c| c.ways).sum::<usize>(),
            p.llc.associativity,
            "slack must be redistributed into an exact-sum partition"
        );
        let counters = br.work_counters();
        assert!(counters.game_rounds > 0, "best response never iterated");
        assert!(counters.best_response_evaluations > 0);
        assert_eq!(counters.equilibria_examined, 0);
        assert_eq!(
            counters.reduction_ops, 0,
            "the cooperative arbiter must not run under a game algorithm"
        );

        let mut eq = CoordinatedRma::nash_equilibrium(&p, vec![QosSpec::STRICT; 4]);
        let setting = run_all_cores(&mut eq, observations());
        assert!(setting.validate(&p).is_ok());
        let counters = eq.work_counters();
        assert!(counters.equilibria_examined > 0, "no candidates examined");
        assert_eq!(counters.game_rounds, 0);

        // The cooperative manager never touches the game counters.
        let mut rm2 = CoordinatedRma::paper1(&p, vec![QosSpec::STRICT; 4]);
        run_all_cores(&mut rm2, observations());
        let counters = rm2.work_counters();
        assert_eq!(counters.game_rounds, 0);
        assert_eq!(counters.best_response_evaluations, 0);
        assert_eq!(counters.equilibria_examined, 0);
    }

    #[test]
    fn work_counter_display_covers_every_field() {
        let counters = RmaWorkCounters {
            invocations: 1,
            curve_builds: 2,
            local_evaluations: 3,
            reduction_ops: 4,
            reduction_pruned: 5,
            qos_at_risk_intervals: 6,
            game_rounds: 7,
            best_response_evaluations: 8,
            equilibria_examined: 9,
            delta_invocations: 10,
            curves_patched: 11,
            warm_rows_reused: 12,
            chunked_conv_lanes: 13,
        };
        let line = counters.to_string();
        for field in [
            "invocations=1",
            "curve_builds=2",
            "local_evaluations=3",
            "reduction_ops=4",
            "reduction_pruned=5",
            "qos_at_risk_intervals=6",
            "game_rounds=7",
            "best_response_evaluations=8",
            "equilibria_examined=9",
            "delta_invocations=10",
            "curves_patched=11",
            "warm_rows_reused=12",
            "chunked_conv_lanes=13",
        ] {
            assert!(line.contains(field), "{field} missing from {line:?}");
        }
    }

    #[test]
    fn incremental_manager_is_bit_identical_and_cheaper() {
        let p = platform();
        let mut cold = CoordinatedRma::paper1(&p, vec![QosSpec::STRICT; 4]);
        let mut delta = CoordinatedRma::paper1(&p, vec![QosSpec::STRICT; 4]).with_incremental();
        cold.reset(4);
        delta.reset(4);

        // Three rounds over all cores: a cold round, a fully-recurring
        // round (every digest matches), and a round where only core 2's
        // observation changed.
        let rounds = [
            vec![
                cache_sensitive_observation(0),
                compute_observation(1),
                streaming_observation(2),
                compute_observation(3),
            ],
            vec![
                cache_sensitive_observation(0),
                compute_observation(1),
                streaming_observation(2),
                compute_observation(3),
            ],
            vec![
                cache_sensitive_observation(0),
                compute_observation(1),
                cache_sensitive_observation(2),
                compute_observation(3),
            ],
        ];
        let mut cold_setting = SystemSetting::baseline(&p);
        let mut delta_setting = SystemSetting::baseline(&p);
        for (round, observations) in rounds.iter().enumerate() {
            for (i, obs) in observations.iter().enumerate() {
                cold_setting = cold.on_interval(CoreId(i), obs, &cold_setting);
                delta_setting = delta.on_interval(CoreId(i), obs, &delta_setting);
                assert_eq!(
                    delta_setting, cold_setting,
                    "delta path diverged at round {round}, core {i}"
                );
            }
        }

        let cold_counters = cold.work_counters();
        let delta_counters = delta.work_counters();
        assert_eq!(cold_counters.invocations, delta_counters.invocations);
        // Round 2 recurs entirely and round 3 recurs on three cores: seven
        // invocations reuse their curve, five rebuild.
        assert_eq!(delta_counters.delta_invocations, 7);
        assert_eq!(delta_counters.curves_patched, 5);
        assert_eq!(delta_counters.curve_builds, 5);
        assert_eq!(cold_counters.curve_builds, 12, "cold path always builds");
        assert!(
            delta_counters.reduction_ops < cold_counters.reduction_ops,
            "warm rows + incumbent pruning must cut convolution work \
             ({} vs {})",
            delta_counters.reduction_ops,
            cold_counters.reduction_ops
        );
        assert!(delta_counters.warm_rows_reused > 0);
        assert_eq!(cold_counters.warm_rows_reused, 0);
        assert_eq!(cold_counters.delta_invocations, 0);
        assert!(delta_counters.chunked_conv_lanes > 0);
        assert!(cold_counters.chunked_conv_lanes > 0);

        // reset() drops the delta state: the next invocation is cold again.
        delta.reset(4);
        let baseline = SystemSetting::baseline(&p);
        delta.on_interval(CoreId(0), &rounds[0][0], &baseline);
        let counters = delta.work_counters();
        assert_eq!(counters.delta_invocations, 0);
        assert_eq!(counters.curves_patched, 1);
    }

    #[test]
    fn non_partitioned_infeasible_allocation_is_tallied() {
        let p = platform();
        let mut rma = CoordinatedRma::dvfs_only(&p, vec![QosSpec::STRICT; 4]);
        rma.reset(4);
        let mut current = SystemSetting::baseline(&p);
        // Starve core 0 to one way (the ways it loses go to core 1, so the
        // partition stays valid): a cache-sensitive application cannot meet
        // a strict target there at any frequency.
        let taken = current.core(CoreId(0)).ways - 1;
        current.core_mut(CoreId(0)).ways = 1;
        current.core_mut(CoreId(1)).ways += taken;
        let next = rma.on_interval(CoreId(0), &cache_sensitive_observation(0), &current);
        assert_eq!(
            next, current,
            "without partitioning authority the old setting is kept"
        );
        assert_eq!(
            rma.qos_at_risk_intervals(),
            1,
            "the kept-at-risk interval is tallied"
        );
        // A feasible invocation adds nothing to the tally.
        rma.on_interval(CoreId(1), &compute_observation(1), &next);
        assert_eq!(rma.qos_at_risk_intervals(), 1);
        // reset() starts a fresh tally.
        rma.reset(4);
        assert_eq!(rma.qos_at_risk_intervals(), 0);
    }

    #[test]
    fn work_counters_track_measured_work() {
        use std::sync::Arc;
        let p = platform();
        let mut rma = CoordinatedRma::paper2(&p, vec![QosSpec::STRICT; 4]);
        run_all_cores(
            &mut rma,
            vec![
                cache_sensitive_observation(0),
                compute_observation(1),
                streaming_observation(2),
                compute_observation(3),
            ],
        );
        let counters = rma.work_counters();
        assert_eq!(counters.invocations, 4);
        assert_eq!(
            counters.curve_builds, 4,
            "no cache: every invocation builds"
        );
        // Measured evaluations are positive and bounded by the worst case.
        assert!(counters.local_evaluations > 0);
        assert!(
            counters.local_evaluations <= 4 * rma.evaluations_per_invocation() as u64,
            "measured work cannot exceed the dense bound"
        );
        // The global step ran at least once (all cores reported by the 4th
        // invocation) and its pruning was active.
        assert!(counters.reduction_ops > 0);

        // With a shared curve cache, a recurring observation skips the build
        // but still counts as an invocation.
        let cache = Arc::new(crate::memo::CurveCache::new());
        let mut cached =
            CoordinatedRma::paper1(&p, vec![QosSpec::STRICT; 4]).with_curve_cache(cache);
        cached.reset(4);
        let baseline = SystemSetting::baseline(&p);
        let obs = cache_sensitive_observation(0);
        cached.on_interval(CoreId(0), &obs, &baseline);
        cached.on_interval(CoreId(0), &obs, &baseline);
        let counters = cached.work_counters();
        assert_eq!(counters.invocations, 2);
        assert_eq!(counters.curve_builds, 1, "second lookup is a cache hit");
    }

    #[test]
    fn overhead_estimate_matches_paper_scale() {
        let p = platform();
        let rm2 = CoordinatedRma::paper1(&p, vec![QosSpec::STRICT; 4]);
        let rm3 = CoordinatedRma::paper2(&p, vec![QosSpec::STRICT; 4]);
        let rm2_cost = rm2.invocation_overhead_instructions(4);
        let rm3_cost = rm3.invocation_overhead_instructions(4);
        assert!(
            rm2_cost < 40_000,
            "Paper I reports < 40K instructions, got {rm2_cost}"
        );
        assert!(rm3_cost < 100_000);
        assert!(rm3_cost > rm2_cost);
        assert!(rm3.invocation_overhead_instructions(8) > rm3_cost);
        assert!(rm3.invocation_overhead_instructions(2) < rm2_cost * 2);
    }
}
