//! Software-overhead accounting of the resource management algorithm.
//!
//! The paper reports the cost of one RMA invocation of its C implementation
//! as executed instructions: below 40 K for a 4-core system (Paper I) and
//! 18 K / 40 K / 67 K for 2 / 4 / 8 cores with the richer Paper II algorithm
//! — in both cases well under 0.1 % of a 100 M-instruction interval. This
//! module provides the equivalent estimate for our implementation by counting
//! the dominant operations (model evaluations in the local step, cell updates
//! in the pairwise reduction) and multiplying by a per-operation instruction
//! cost; the criterion benches measure the actual wall-clock cost.

use qosrm_types::PlatformConfig;
use serde::{Deserialize, Serialize};

/// Instruction-cost model of one RMA invocation.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct OverheadModel {
    /// Instructions per analytical model evaluation (one candidate
    /// configuration: a handful of multiplies, a divide and comparisons).
    pub instructions_per_evaluation: u64,
    /// Instructions per cell update of the min-plus convolution.
    pub instructions_per_reduction_cell: u64,
    /// Fixed cost of collecting counters and applying the setting.
    pub fixed_instructions: u64,
}

impl Default for OverheadModel {
    fn default() -> Self {
        OverheadModel {
            instructions_per_evaluation: 25,
            instructions_per_reduction_cell: 12,
            fixed_instructions: 2_000,
        }
    }
}

impl OverheadModel {
    /// Estimated instructions of one invocation on `platform` when the local
    /// step evaluates `local_evaluations` candidate configurations.
    ///
    /// The global step combines one curve per core over `associativity` ways:
    /// `(cores - 1)` pairwise reductions of at most `associativity²` cells.
    pub fn invocation_instructions(
        &self,
        platform: &PlatformConfig,
        local_evaluations: usize,
    ) -> u64 {
        let ways = platform.llc.associativity as u64;
        let reductions = platform.num_cores.saturating_sub(1) as u64;
        self.fixed_instructions
            + self.instructions_per_evaluation * local_evaluations as u64
            + self.instructions_per_reduction_cell * reductions * ways * ways
    }

    /// The invocation cost as a fraction of an execution interval.
    pub fn fraction_of_interval(&self, platform: &PlatformConfig, local_evaluations: usize) -> f64 {
        self.invocation_instructions(platform, local_evaluations) as f64
            / platform.interval_instructions as f64
    }

    /// Estimated instructions of one invocation from *measured* work
    /// counters: the builder's exact model-evaluation count and the global
    /// step's actually-updated convolution cells
    /// (`qosrm_core::PruneStats::ops`), instead of the dense
    /// `associativity²`-per-reduction worst case that
    /// [`OverheadModel::invocation_instructions`] charges.
    pub fn invocation_instructions_measured(
        &self,
        local_evaluations: u64,
        reduction_cells: u64,
    ) -> u64 {
        self.fixed_instructions
            + self.instructions_per_evaluation * local_evaluations
            + self.instructions_per_reduction_cell * reduction_cells
    }

    /// The measured invocation cost as a fraction of an execution interval.
    pub fn fraction_of_interval_measured(
        &self,
        platform: &PlatformConfig,
        local_evaluations: u64,
        reduction_cells: u64,
    ) -> f64 {
        self.invocation_instructions_measured(local_evaluations, reduction_cells) as f64
            / platform.interval_instructions as f64
    }

    /// Estimated *average* instructions of one invocation on the
    /// incremental delta path, from a manager's cumulative measured
    /// counters (`qosrm_core::RmaWorkCounters`): the model evaluations and
    /// convolution cells already reflect the work the digest diff and the
    /// warm-row arena skipped, so the only addition is one digest
    /// derivation per invocation — charged at one instruction per digested
    /// byte-equivalent unit via `digest_units` (the observation's field
    /// count, a few dozen). Returns 0 for a manager that was never invoked.
    pub fn delta_invocation_instructions_measured(
        &self,
        invocations: u64,
        local_evaluations: u64,
        reduction_cells: u64,
        digest_units: u64,
    ) -> u64 {
        if invocations == 0 {
            return 0;
        }
        let total = invocations * (self.fixed_instructions + digest_units)
            + self.instructions_per_evaluation * local_evaluations
            + self.instructions_per_reduction_cell * reduction_cells;
        total.div_ceil(invocations)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn overhead_scales_with_core_count() {
        let model = OverheadModel::default();
        let evals = 16 * 3 * 13 + 1;
        let two = model.invocation_instructions(&PlatformConfig::paper2(2), evals);
        let four = model.invocation_instructions(&PlatformConfig::paper2(4), evals);
        let eight = model.invocation_instructions(&PlatformConfig::paper2(8), evals);
        assert!(two < four && four < eight);
        // Same order of magnitude as the paper's 18K/40K/67K measurements.
        assert!(two > 5_000 && two < 40_000, "two-core estimate {two}");
        assert!(four > 15_000 && four < 80_000, "four-core estimate {four}");
        assert!(
            eight > 25_000 && eight < 140_000,
            "eight-core estimate {eight}"
        );
    }

    #[test]
    fn overhead_is_negligible_fraction_of_interval() {
        let model = OverheadModel::default();
        let platform = PlatformConfig::paper2(8);
        let evals = 16 * 3 * 13 + 1;
        assert!(model.fraction_of_interval(&platform, evals) < 0.001);
    }

    #[test]
    fn measured_cost_is_bounded_by_worst_case() {
        let model = OverheadModel::default();
        let p = PlatformConfig::paper2(4);
        let worst_evals = 16 * 3 * 13 + 1;
        let worst = model.invocation_instructions(&p, worst_evals);
        // Measured counters can only be smaller: fewer evaluations (QoS
        // pruning) and fewer cells (lower-bound pruning).
        let measured = model.invocation_instructions_measured(300, 500);
        assert!(measured < worst);
        assert!(
            model.fraction_of_interval_measured(&p, 300, 500)
                < model.fraction_of_interval(&p, worst_evals)
        );
    }

    #[test]
    fn delta_path_average_reflects_skipped_work() {
        let model = OverheadModel::default();
        // Ten invocations, but the delta path only built two curves and
        // recombined a fraction of the reduction cells: the per-invocation
        // average must undercut the cold measured cost of a full build.
        let cold = model.invocation_instructions_measured(300, 500);
        let delta = model.delta_invocation_instructions_measured(10, 2 * 300, 2 * 500, 64);
        assert!(delta < cold, "delta average {delta} vs cold {cold}");
        // The digest derivation is charged on every invocation.
        assert!(delta > model.delta_invocation_instructions_measured(10, 2 * 300, 2 * 500, 0));
        assert_eq!(model.delta_invocation_instructions_measured(0, 0, 0, 64), 0);
    }

    #[test]
    fn paper1_configuration_is_cheaper() {
        let model = OverheadModel::default();
        let paper1_evals = 16 * 13 + 1;
        let paper2_evals = 16 * 3 * 13 + 1;
        let p = PlatformConfig::paper2(4);
        assert!(
            model.invocation_instructions(&p, paper1_evals)
                < model.invocation_instructions(&p, paper2_evals)
        );
    }
}
