//! # qosrm-core
//!
//! QoS-driven coordinated management of per-core DVFS, LLC way-partitioning
//! and core micro-architecture configuration — the resource managers proposed
//! by the paper (and its Paper II extension), implemented against the
//! [`qosrm_types::ResourceManager`] interface.
//!
//! ## How the manager works
//!
//! Every core invokes the resource management algorithm (RMA) after executing
//! a fixed number of instructions (one *interval*). The invocation proceeds
//! in four steps, mirroring Figure 3 of the paper:
//!
//! 1. **Observation** — the RMA reads the core's hardware performance
//!    counters, the Auxiliary Tag Directory (ATD) miss profile and, on a
//!    Paper II platform, the MLP-aware ATD and ILP-monitor profiles.
//! 2. **Prediction** — simple analytical models
//!    ([`model::PerformanceModel`], [`model::AnalyticalEnergyModel`]) predict
//!    the interval's execution time and energy for *every* candidate
//!    configuration `(core size, VF level, ways)`.
//! 3. **Local optimization** ([`local`]) — the QoS target (the predicted
//!    baseline performance, optionally relaxed) prunes the per-core space:
//!    for every way count `w` the cheapest `(core size, VF)` pair that still
//!    meets the target is kept, producing an energy-versus-ways curve.
//! 4. **Global optimization** ([`global`]) — the curves of all cores are
//!    reduced pairwise (a min-plus convolution with argmin backtracking)
//!    until the partition of the LLC ways that minimizes total energy is
//!    found; each core then receives its optimal ways together with the
//!    VF level and core size recorded on its curve.
//!
//! ## The managers
//!
//! [`rma::CoordinatedRma`] implements all the schemes the paper evaluates:
//!
//! | constructor | paper name | controls | model |
//! |---|---|---|---|
//! | [`rma::CoordinatedRma::partitioning_only`] | RM1 | LLC ways | constant-MLP |
//! | [`rma::CoordinatedRma::dvfs_only`] | DVFS-only | VF | constant-MLP |
//! | [`rma::CoordinatedRma::paper1`] | RM2 / Combined RMA | VF + ways | constant-MLP (Model 2) |
//! | [`rma::CoordinatedRma::paper2`] | RM3 | core size + VF + ways | MLP-aware (Model 3) |
//! | [`rma::CoordinatedRma::with_model`] | — | configurable | Model 1 / 2 / 3 / perfect |
//! | [`rma::CoordinatedRma::nash_best_response`] | — (NashBR) | VF + ways, selfish cores | constant-MLP |
//! | [`rma::CoordinatedRma::nash_equilibrium`] | — (NashEq) | VF + ways, best equilibrium | constant-MLP |
//!
//! The Nash variants replace step 4's cooperative arbiter with the
//! game-theoretic solvers of [`game`]; E10 reports their price of anarchy
//! against RM2.

#![deny(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod curve;
pub mod curve_builder;
pub mod game;
pub mod global;
pub mod local;
pub mod memo;
pub mod model;
pub mod overhead;
pub mod rma;

pub use curve::{CurvePoint, EnergyCurve};
pub use curve_builder::{CurveBuild, CurveBuilder};
pub use game::{
    best_response, distribute_slack, is_pure_nash, min_energy_equilibrium, total_energy,
    GameConfig, GameOutcome, GameStats, PartitionAlgo,
};
pub use global::{
    exhaustive_partition, incumbent_energy, optimize_partition, optimize_partition_scalar,
    optimize_partition_unpruned, optimize_partition_with_stats, IncrementalOptimizer, PruneStats,
    WarmStats,
};
pub use local::{LocalOptimizer, LocalOptimizerConfig};
pub use memo::{CurveCache, CurveKey, ObservationDigests};
pub use model::{AnalyticalEnergyModel, ModelKind, PerformanceModel, Prediction};
pub use overhead::OverheadModel;
pub use rma::{CoordinatedRma, RmaConfig, RmaWorkCounters};
