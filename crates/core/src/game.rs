//! Game-theoretic LLC way allocation: iterated best response and
//! minimum-total-energy pure-Nash-equilibrium selection over the per-core
//! energy curves of [`crate::local`].
//!
//! The paper's global step ([`crate::global`]) is *cooperative*: one arbiter
//! minimizes total energy over joint allocations. This module models the
//! same decision as a *game* between selfish cores — the setting of the
//! integer-programming-games literature (the ZERO-Regrets line of work):
//! each core picks a pure integer strategy, a way count which via its energy
//! curve folds in the cheapest QoS-feasible `(VF level, core size)` pair, to
//! minimize its *own* predicted energy holding the other cores' strategies
//! frozen.
//!
//! ## Strategy space
//!
//! A strategy vector gives core `i` a way count `w_i ≥ 1` with
//! `Σ w_i ≤ total_ways`; slack is allowed — a selfish core has no reason to
//! claim ways it does not benefit from, and unclaimed ways stay in a free
//! pool. With frozen opponents, core `i` may deviate to any `w` with
//! `1 ≤ w ≤ min(w_i + free, max_ways)` where `free = total_ways − Σ w_j`:
//! it can always shrink, and it can grow into the unclaimed pool. The
//! exact-sum space of the cooperative arbiter would make *every* feasible
//! allocation trivially an equilibrium (no core can grow without another
//! shrinking first), which is why the game keeps the slack.
//!
//! Applying an outcome still requires an exact-sum partition (the system
//! setting validation demands the way counts sum to the LLC associativity):
//! [`GameOutcome::exact_sum_allocation`] deterministically tops the
//! strategies up with the leftover free ways. The chosen curve point — and
//! therefore the VF/core-size decision — stays the one at the strategy
//! ways; the extra ways are simply left idle.
//!
//! ## Solvers and the independent checker
//!
//! * [`best_response`] — deterministic iterated best response: round-robin
//!   core order starting from the minimal feasible profile, bounded rounds,
//!   cycle detection. On the monotone curves the local optimizer produces,
//!   the first mover hoards the free pool — the classic selfish outcome
//!   whose cost the E10 experiment reports as the price of anarchy.
//! * [`min_energy_equilibrium`] — ZERO-Regrets-style equilibrium selection:
//!   enumerates every candidate strategy vector, filters to pure Nash
//!   equilibria using per-core prefix-minimum tables, and returns the
//!   equilibrium minimizing total energy. Enumeration is combinatorial in
//!   the core count (roughly `C(total_ways, cores)` candidates: ~1.8k at
//!   4 cores / 16 ways, ~13k at 8 / 16) — intended for small platforms,
//!   which is what E10 and the bench gate use.
//! * [`is_pure_nash`] — an exhaustive, solver-independent verifier of the
//!   equilibrium definition that the solvers never consult. It exists so
//!   property tests can adversarially validate every solver output.

use crate::curve::{CurvePoint, EnergyCurve};
use serde::{Deserialize, Serialize};
use std::collections::HashSet;

/// Which global allocation algorithm step 4 of the RMA runs.
///
/// The choice deliberately does **not** enter the manager's curve-cache
/// configuration fingerprint: energy curves are a per-core quantity that
/// does not depend on how the global step distributes ways, so cooperative
/// and game-theoretic managers share cache entries bit-for-bit.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub enum PartitionAlgo {
    /// The paper's cooperative arbiter: minimize *total* energy over joint
    /// exact-sum allocations ([`crate::global::optimize_partition`]).
    #[default]
    Cooperative,
    /// Selfish iterated best response ([`best_response`]); the last state is
    /// applied even when the round bound is hit without convergence.
    NashBestResponse,
    /// Minimum-total-energy pure Nash equilibrium
    /// ([`min_energy_equilibrium`]).
    NashMinEnergyEquilibrium,
}

/// Configuration of the iterated-best-response solver.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GameConfig {
    /// Maximum best-response rounds (one round = every core responds once,
    /// in core order) before the solver stops and returns the last state
    /// unconverged.
    pub max_rounds: usize,
}

impl Default for GameConfig {
    fn default() -> Self {
        GameConfig { max_rounds: 32 }
    }
}

/// Deterministic work counters of one solver call, accumulated into
/// [`crate::RmaWorkCounters`] by the manager and exact-compared by the
/// bench gate.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct GameStats {
    /// Best-response rounds executed.
    pub rounds: u64,
    /// Single-core energy lookups performed while computing best responses.
    pub evaluations: u64,
    /// Candidate strategy vectors examined by the equilibrium-selection
    /// enumeration.
    pub equilibria_examined: u64,
}

/// The result of a solver call: a strategy vector with its per-core curve
/// points and total predicted energy.
///
/// Serializable so determinism tests can lock byte-identity of repeated
/// solves.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GameOutcome {
    /// Way count chosen by each core (`Σ ≤ total_ways`, each `≥ 1`).
    pub strategies: Vec<usize>,
    /// The curve point backing each strategy (VF level, core size, energy).
    pub points: Vec<CurvePoint>,
    /// Total predicted energy of the strategy vector, in joules.
    pub total_energy: f64,
    /// Whether the solver reached a fixed point. Iterated best response
    /// reports `false` when the round bound or a cycle cut it short (the
    /// manager applies the last state regardless); equilibrium selection
    /// always converges.
    pub converged: bool,
}

impl GameOutcome {
    /// Converts the slack-allowed outcome into the exact-sum
    /// `(ways, point)` allocation the system-setting validation requires,
    /// by handing the leftover free ways out via [`distribute_slack`].
    ///
    /// Each core keeps the curve point of its *strategy* ways — the game's
    /// VF/core-size decision — and merely holds the topped-up allocation.
    pub fn exact_sum_allocation(&self, total_ways: usize) -> Vec<(usize, CurvePoint)> {
        distribute_slack(&self.strategies, total_ways, total_ways)
            .into_iter()
            .zip(self.points.iter().copied())
            .collect()
    }
}

/// Total predicted energy of a strategy vector: the sum of each core's
/// curve energy at its way count (`f64::INFINITY` as soon as any core is
/// infeasible at its strategy).
pub fn total_energy(curves: &[EnergyCurve], strategies: &[usize]) -> f64 {
    curves
        .iter()
        .zip(strategies)
        .map(|(curve, &w)| curve.energy(w))
        .sum()
}

/// Deterministically tops a slack-allowed strategy vector up to an exact
/// sum of `total_ways`: leftover ways are handed out one at a time in
/// round-robin core order starting at core 0, each core capped at
/// `max_ways`. Vectors already summing to `total_ways` (or exceeding it)
/// are returned unchanged.
pub fn distribute_slack(strategies: &[usize], total_ways: usize, max_ways: usize) -> Vec<usize> {
    let mut ways = strategies.to_vec();
    let used: usize = ways.iter().sum();
    let mut free = total_ways.saturating_sub(used);
    while free > 0 {
        let mut gave = false;
        for w in ways.iter_mut() {
            if free == 0 {
                break;
            }
            if *w < max_ways {
                *w += 1;
                free -= 1;
                gave = true;
            }
        }
        if !gave {
            break; // every core saturated at max_ways
        }
    }
    ways
}

/// The largest way count core may deviate to with frozen opponents: its own
/// allocation plus the free pool, clamped to the curve's domain.
fn deviation_budget(ways: usize, free: usize, max_ways: usize) -> usize {
    (ways + free).min(max_ways)
}

/// Exhaustively verifies that `strategies` is a pure Nash equilibrium of
/// the way-allocation game: every core is feasible at its strategy, the
/// vector fits in `total_ways`, and no core has a *strictly* cheaper
/// unilateral deviation within its budget (its own ways plus the free
/// pool).
///
/// This is the module's correctness core: an independent naive scan of the
/// definition that the solvers never call, so property tests can use it to
/// adversarially validate every solver output. Comparisons are exact
/// (strict `<`, no epsilon) — the curves are deterministic, so so is the
/// verdict.
pub fn is_pure_nash(curves: &[EnergyCurve], total_ways: usize, strategies: &[usize]) -> bool {
    if curves.is_empty() || strategies.len() != curves.len() {
        return false;
    }
    if strategies.contains(&0) {
        return false;
    }
    let used: usize = strategies.iter().sum();
    if used > total_ways {
        return false;
    }
    let free = total_ways - used;
    for (curve, &ways) in curves.iter().zip(strategies) {
        let current = curve.energy(ways);
        if !current.is_finite() {
            return false;
        }
        for deviation in 1..=deviation_budget(ways, free, curve.max_ways()) {
            if curve.energy(deviation) < current {
                return false;
            }
        }
    }
    true
}

/// Deterministic iterated best response over pure strategies.
///
/// Starts every core at its minimal feasible way count (`None` when any
/// curve is fully infeasible or the minimal profile does not fit in
/// `total_ways`), then repeats rounds of best responses in round-robin
/// core order: core `i` moves to the smallest way count minimizing its own
/// energy within its deviation budget (ties break towards fewer ways). A
/// round without any change is a fixed point (`converged = true`); hitting
/// [`GameConfig::max_rounds`] or revisiting an earlier state (a cycle)
/// stops the solver with `converged = false` and the last state — the
/// manager applies it anyway, mirroring a real runtime that cannot iterate
/// forever.
///
/// Every energy lookup during a best-response scan counts one
/// [`GameStats::evaluations`].
pub fn best_response(
    curves: &[EnergyCurve],
    total_ways: usize,
    config: &GameConfig,
) -> (Option<GameOutcome>, GameStats) {
    let mut stats = GameStats::default();
    if curves.is_empty() {
        return (None, stats);
    }
    let mut strategies = Vec::with_capacity(curves.len());
    for curve in curves {
        match curve.min_feasible_ways() {
            Some(w) => strategies.push(w),
            None => return (None, stats),
        }
    }
    if strategies.iter().sum::<usize>() > total_ways {
        return (None, stats);
    }

    let mut visited: HashSet<Vec<usize>> = HashSet::new();
    visited.insert(strategies.clone());
    let mut converged = false;
    for _ in 0..config.max_rounds {
        stats.rounds += 1;
        let mut changed = false;
        for i in 0..curves.len() {
            let used: usize = strategies.iter().sum();
            let budget = deviation_budget(strategies[i], total_ways - used, curves[i].max_ways());
            let mut best_ways = strategies[i];
            let mut best_energy = f64::INFINITY;
            for w in 1..=budget {
                stats.evaluations += 1;
                let energy = curves[i].energy(w);
                // Strict `<`: the first (smallest) argmin wins ties, so the
                // orbit is deterministic.
                if energy < best_energy {
                    best_energy = energy;
                    best_ways = w;
                }
            }
            if best_energy.is_finite() && best_ways != strategies[i] {
                strategies[i] = best_ways;
                changed = true;
            }
        }
        if !changed {
            converged = true;
            break;
        }
        if !visited.insert(strategies.clone()) {
            break; // cycle: stop on the repeated state
        }
    }

    // The start is feasible and a best response only ever moves to a finite
    // energy, so every strategy has a curve point.
    let points: Vec<CurvePoint> = curves
        .iter()
        .zip(&strategies)
        .map(|(curve, &w)| curve.point(w).expect("best response stays feasible"))
        .collect();
    let energy = total_energy(curves, &strategies);
    (
        Some(GameOutcome {
            strategies,
            points,
            total_energy: energy,
            converged,
        }),
        stats,
    )
}

/// Shared state of the equilibrium-selection enumeration.
struct Enumeration<'a> {
    /// Per-core energy tables over `1..=min(max_ways, total_ways)`
    /// (`energies[i][w - 1]`).
    energies: &'a [Vec<f64>],
    /// Per-core prefix minima: `prefix_min[i][w - 1]` is the cheapest
    /// energy core `i` can reach with at most `w` ways.
    prefix_min: &'a [Vec<f64>],
    total_ways: usize,
    stats: GameStats,
    /// Best equilibrium so far: `(total energy, strategies)`.
    best: Option<(f64, Vec<usize>)>,
}

impl Enumeration<'_> {
    /// Extends the partial vector `strategies` (cores `0..i` fixed, `used`
    /// ways consumed) over all completions, testing complete candidates for
    /// the equilibrium property.
    fn descend(&mut self, i: usize, used: usize, strategies: &mut Vec<usize>) {
        let n = self.energies.len();
        if i == n {
            self.stats.equilibria_examined += 1;
            let free = self.total_ways - used;
            let mut total = 0.0;
            for (core, &w) in strategies.iter().enumerate() {
                let energy = self.energies[core][w - 1];
                // Nash test via the prefix-minimum table: core `core` has a
                // strictly cheaper deviation iff the prefix minimum over its
                // budget undercuts its current energy. Structurally
                // different from `is_pure_nash`'s naive scan on purpose —
                // the checker stays independent of the solver.
                let budget = (w + free).min(self.energies[core].len());
                if self.prefix_min[core][budget - 1] < energy {
                    return;
                }
                total += energy;
            }
            // Enumeration is lexicographic, so a strict `<` keeps the
            // lexicographically smallest strategy vector on energy ties.
            if self.best.as_ref().is_none_or(|(best, _)| total < *best) {
                self.best = Some((total, strategies.clone()));
            }
            return;
        }
        let reserved = n - i - 1; // later cores need at least one way each
        for w in 1..=self.energies[i].len() {
            if used + w + reserved > self.total_ways {
                break;
            }
            if !self.energies[i][w - 1].is_finite() {
                continue;
            }
            strategies.push(w);
            self.descend(i + 1, used + w, strategies);
            strategies.pop();
        }
    }
}

/// ZERO-Regrets-style equilibrium selection: enumerates every candidate
/// strategy vector (each core `1..=total_ways` feasible ways, sum at most
/// `total_ways`), keeps the pure Nash equilibria, and returns the one with
/// the minimum total energy (lexicographically smallest strategies on
/// ties). `None` when no candidate exists (some curve fully infeasible, or
/// the minimal feasible profile does not fit).
///
/// In this game free disposal makes the social optimum itself an
/// equilibrium — a unilateral deviation that lowers one core's energy
/// also lowers the total, contradicting optimality — so the selected
/// equilibrium matches the slack-allowed cooperative optimum and the best
/// equilibrium's price of anarchy is 1 by construction. The enumeration is
/// combinatorial in the core count; see the module docs for sizes.
///
/// Every complete candidate vector counts one
/// [`GameStats::equilibria_examined`].
pub fn min_energy_equilibrium(
    curves: &[EnergyCurve],
    total_ways: usize,
) -> (Option<GameOutcome>, GameStats) {
    let stats = GameStats::default();
    if curves.is_empty() || total_ways < curves.len() {
        return (None, stats);
    }
    let energies: Vec<Vec<f64>> = curves
        .iter()
        .map(|curve| {
            (1..=curve.max_ways().min(total_ways))
                .map(|w| curve.energy(w))
                .collect()
        })
        .collect();
    if energies.iter().any(Vec::is_empty) {
        return (None, stats);
    }
    let prefix_min: Vec<Vec<f64>> = energies
        .iter()
        .map(|row| {
            let mut best = f64::INFINITY;
            row.iter()
                .map(|&e| {
                    best = best.min(e);
                    best
                })
                .collect()
        })
        .collect();

    let mut enumeration = Enumeration {
        energies: &energies,
        prefix_min: &prefix_min,
        total_ways,
        stats,
        best: None,
    };
    enumeration.descend(0, 0, &mut Vec::with_capacity(curves.len()));
    let stats = enumeration.stats;
    let Some((energy, strategies)) = enumeration.best else {
        return (None, stats);
    };
    let points: Vec<CurvePoint> = curves
        .iter()
        .zip(&strategies)
        .map(|(curve, &w)| curve.point(w).expect("equilibrium candidates are feasible"))
        .collect();
    (
        Some(GameOutcome {
            strategies,
            points,
            total_energy: energy,
            converged: true,
        }),
        stats,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use qosrm_types::{CoreSizeIdx, FreqLevel};

    /// Builds a curve from per-way energies; `f64::INFINITY` marks an
    /// infeasible allocation.
    fn curve(energies: &[f64]) -> EnergyCurve {
        EnergyCurve::new(
            energies
                .iter()
                .enumerate()
                .map(|(i, &e)| {
                    if e.is_finite() {
                        Some(CurvePoint {
                            energy_joules: e,
                            freq: FreqLevel(i % 13),
                            core_size: CoreSizeIdx(i % 3),
                            time_seconds: 0.05,
                            ways: i + 1,
                        })
                    } else {
                        None
                    }
                })
                .collect(),
        )
    }

    const INF: f64 = f64::INFINITY;

    #[test]
    fn first_mover_hoards_on_monotone_curves() {
        // Monotone non-increasing curves (the real, smoothed shape): core 0
        // responds first, grabs the whole free pool, and the rest sit at
        // their minimum — the greedy equilibrium E10's PoA story relies on.
        let curves = vec![
            curve(&[8.0, 6.0, 5.0, 4.5, 4.0, 3.8, 3.6, 3.5]),
            curve(&[4.0, 3.5, 3.2, 3.0, 2.9, 2.8, 2.7, 2.6]),
        ];
        let (outcome, stats) = best_response(&curves, 8, &GameConfig::default());
        let outcome = outcome.unwrap();
        assert!(outcome.converged);
        assert_eq!(outcome.strategies, vec![7, 1]);
        assert!(is_pure_nash(&curves, 8, &outcome.strategies));
        assert!(stats.rounds >= 2, "a settle round follows the first moves");
        assert!(stats.evaluations > 0);
        assert_eq!(stats.equilibria_examined, 0);
        assert!((outcome.total_energy - (3.6 + 4.0)).abs() < 1e-12);
    }

    #[test]
    fn ties_break_towards_fewer_ways() {
        // A flat tail: the smallest argmin wins, leaving slack unclaimed.
        let curves = vec![curve(&[5.0, 2.0, 2.0, 2.0]), curve(&[3.0, 3.0, 3.0, 3.0])];
        let (outcome, _) = best_response(&curves, 4, &GameConfig::default());
        let outcome = outcome.unwrap();
        assert!(outcome.converged);
        assert_eq!(outcome.strategies, vec![2, 1]);
        assert!(is_pure_nash(&curves, 4, &outcome.strategies));
    }

    #[test]
    fn infeasibility_returns_none() {
        // A fully infeasible curve.
        let curves = vec![curve(&[1.0, 1.0]), curve(&[INF, INF])];
        assert!(best_response(&curves, 4, &GameConfig::default())
            .0
            .is_none());
        assert!(min_energy_equilibrium(&curves, 4).0.is_none());
        // Minimal feasible profile does not fit.
        let tight = vec![curve(&[INF, INF, 1.0]), curve(&[INF, 2.0, 1.0])];
        assert!(best_response(&tight, 4, &GameConfig::default()).0.is_none());
        assert!(min_energy_equilibrium(&tight, 4).0.is_none());
        assert!(best_response(&[], 4, &GameConfig::default()).0.is_none());
    }

    #[test]
    fn round_bound_returns_last_state_unconverged() {
        let curves = vec![curve(&[3.0, 2.0, 1.0]), curve(&[3.0, 2.0, 1.0])];
        let (outcome, stats) = best_response(&curves, 4, &GameConfig { max_rounds: 0 });
        let outcome = outcome.unwrap();
        assert!(!outcome.converged);
        assert_eq!(outcome.strategies, vec![1, 1], "the start state is kept");
        assert_eq!(stats.rounds, 0);
    }

    #[test]
    fn checker_rejects_non_equilibria() {
        let curves = vec![
            curve(&[8.0, 6.0, 5.0, 4.5, 4.0, 3.8, 3.6, 3.5]),
            curve(&[4.0, 3.5, 3.2, 3.0, 2.9, 2.8, 2.7, 2.6]),
        ];
        // Free pool of 4 ways: both cores can strictly improve.
        assert!(!is_pure_nash(&curves, 8, &[2, 2]));
        // Length mismatch, zero ways, oversubscription, infeasible strategy.
        assert!(!is_pure_nash(&curves, 8, &[2]));
        assert!(!is_pure_nash(&curves, 8, &[0, 8]));
        assert!(!is_pure_nash(&curves, 8, &[7, 2]));
        let holey = vec![curve(&[INF, 2.0]), curve(&[1.0, 1.0])];
        assert!(!is_pure_nash(&holey, 2, &[1, 1]));
    }

    #[test]
    fn equilibrium_selection_matches_brute_force() {
        // Non-monotone curves with holes: enumerate all strategy vectors,
        // filter with the independent checker, take the cheapest — the
        // solver must agree exactly.
        let curves = vec![
            curve(&[6.0, 2.0, 4.0, INF, 1.5]),
            curve(&[3.0, INF, 1.0, 2.5, 2.0]),
            curve(&[5.0, 4.0, 4.5, 1.0, 3.0]),
        ];
        let total_ways = 8;
        let (outcome, stats) = min_energy_equilibrium(&curves, total_ways);
        let outcome = outcome.unwrap();
        assert!(outcome.converged);
        assert!(is_pure_nash(&curves, total_ways, &outcome.strategies));

        let mut best: Option<(f64, Vec<usize>)> = None;
        for a in 1..=5usize {
            for b in 1..=5usize {
                for c in 1..=5usize {
                    let s = vec![a, b, c];
                    if is_pure_nash(&curves, total_ways, &s) {
                        let e = total_energy(&curves, &s);
                        if best.as_ref().is_none_or(|(be, _)| e < *be) {
                            best = Some((e, s));
                        }
                    }
                }
            }
        }
        let (brute_energy, brute_strategies) = best.expect("an equilibrium exists");
        assert_eq!(outcome.strategies, brute_strategies);
        assert!((outcome.total_energy - brute_energy).abs() < 1e-12);
        assert!(stats.equilibria_examined > 0);
        assert_eq!(stats.rounds, 0);
    }

    #[test]
    fn slack_distribution_is_deterministic_and_exact() {
        assert_eq!(distribute_slack(&[1, 1], 8, 8), vec![4, 4]);
        assert_eq!(distribute_slack(&[2, 1], 8, 8), vec![5, 3]);
        assert_eq!(distribute_slack(&[3, 5], 8, 8), vec![3, 5]);
        // Per-core cap respected; undistributable slack is dropped.
        assert_eq!(distribute_slack(&[1, 1], 8, 3), vec![3, 3]);
        let outcome = GameOutcome {
            strategies: vec![5, 1, 1, 1],
            points: vec![
                curve(&[1.0, 1.0, 1.0, 1.0, 1.0]).point(5).unwrap(),
                curve(&[2.0]).point(1).unwrap(),
                curve(&[3.0]).point(1).unwrap(),
                curve(&[4.0]).point(1).unwrap(),
            ],
            total_energy: 10.0,
            converged: true,
        };
        let allocation = outcome.exact_sum_allocation(16);
        assert_eq!(allocation.iter().map(|(w, _)| w).sum::<usize>(), 16);
        assert_eq!(
            allocation.iter().map(|(w, _)| *w).collect::<Vec<_>>(),
            vec![7, 3, 3, 3]
        );
        // The points keep the strategy-time decision.
        assert!((allocation[1].1.energy_joules - 2.0).abs() < 1e-12);
    }

    #[test]
    fn outcomes_serialize_round_trip() {
        let curves = vec![curve(&[3.0, 2.0, 1.0]), curve(&[4.0, 3.5, 3.4])];
        let (outcome, _) = best_response(&curves, 4, &GameConfig::default());
        let outcome = outcome.unwrap();
        let json = serde_json::to_string(&outcome).unwrap();
        let back: GameOutcome = serde_json::from_str(&json).unwrap();
        assert_eq!(back, outcome);
    }
}
