//! Per-core energy-versus-ways curves.
//!
//! The local optimization step of the RMA reduces the three-dimensional
//! per-core configuration space to a one-dimensional curve: for every
//! possible LLC way allocation `w`, the minimum predicted energy over all
//! `(core size, VF level)` pairs that still satisfy the QoS target, together
//! with the argmin pair. The global optimizer then only has to distribute
//! ways among cores.

use qosrm_types::{CoreSizeIdx, FreqLevel, QosrmError};
use serde::{Deserialize, Serialize};

/// One feasible point of an energy curve: the cheapest configuration at a
/// given way count.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CurvePoint {
    /// Predicted interval energy in joules.
    pub energy_joules: f64,
    /// VF level achieving it.
    pub freq: FreqLevel,
    /// Core size achieving it.
    pub core_size: CoreSizeIdx,
    /// Predicted interval time at this configuration (for diagnostics).
    pub time_seconds: f64,
    /// Way allocation the prediction was evaluated at. Usually the point's
    /// position on the curve, but [`EnergyCurve::smooth_monotone`] carries a
    /// cheaper point forward to larger allocations, and the carried point
    /// keeps its *source* ways — so `time_seconds` is always the time
    /// predicted at `ways`, never a stale value relabelled to a larger
    /// allocation.
    pub ways: usize,
}

/// Energy-versus-ways curve of one core.
///
/// `points[w - 1]` holds the cheapest feasible configuration with `w` ways,
/// or `None` when no `(core size, VF)` pair meets the QoS target at that
/// allocation.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EnergyCurve {
    points: Vec<Option<CurvePoint>>,
}

impl EnergyCurve {
    /// Creates a curve from per-way points.
    pub fn new(points: Vec<Option<CurvePoint>>) -> Self {
        EnergyCurve { points }
    }

    /// Maximum way count covered by the curve.
    pub fn max_ways(&self) -> usize {
        self.points.len()
    }

    /// The point at `ways` ways (1-based), if feasible.
    pub fn point(&self, ways: usize) -> Option<CurvePoint> {
        if ways == 0 || ways > self.points.len() {
            None
        } else {
            self.points[ways - 1]
        }
    }

    /// Predicted energy at `ways`, `f64::INFINITY` when infeasible.
    pub fn energy(&self, ways: usize) -> f64 {
        self.point(ways)
            .map(|p| p.energy_joules)
            .unwrap_or(f64::INFINITY)
    }

    /// Whether at least one way count is feasible.
    pub fn any_feasible(&self) -> bool {
        self.points.iter().any(Option::is_some)
    }

    /// The smallest feasible way count, if any.
    pub fn min_feasible_ways(&self) -> Option<usize> {
        self.points.iter().position(Option::is_some).map(|i| i + 1)
    }

    /// Validates basic sanity: at least one feasible point and non-negative
    /// energies.
    pub fn validate(&self) -> Result<(), QosrmError> {
        if self.points.is_empty() {
            return Err(QosrmError::InvalidSetting("empty energy curve".into()));
        }
        if !self.any_feasible() {
            return Err(QosrmError::InvalidSetting(
                "energy curve has no feasible point".into(),
            ));
        }
        for p in self.points.iter().flatten() {
            if !(p.energy_joules.is_finite() && p.energy_joules >= 0.0) {
                return Err(QosrmError::InvalidSetting(
                    "energy curve contains non-finite energy".into(),
                ));
            }
        }
        Ok(())
    }

    /// Enforces that energy is non-increasing in the way count by replacing
    /// each point with the cheapest point at or below that allocation.
    ///
    /// More cache can never hurt (the manager may simply not use the extra
    /// ways), but the raw per-way optimization can produce small
    /// non-monotonicities when the discrete VF level jumps; smoothing keeps
    /// the global optimizer's reasoning sound.
    ///
    /// A carried-forward point keeps its [`CurvePoint::ways`] (and therefore
    /// its `time_seconds`, which was predicted at that smaller allocation):
    /// the configuration is simply reused with the extra ways left idle, and
    /// relabelling the time to the larger allocation would misreport it.
    /// Energies and the argmin configuration are unchanged by this
    /// bookkeeping.
    pub fn smooth_monotone(&mut self) {
        let mut best: Option<CurvePoint> = None;
        for slot in self.points.iter_mut() {
            match (best, *slot) {
                (Some(b), Some(p)) if p.energy_joules > b.energy_joules => *slot = Some(b),
                (_, Some(p)) => best = Some(p),
                (Some(b), None) => *slot = Some(b),
                (None, None) => {}
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn point(e: f64) -> Option<CurvePoint> {
        Some(CurvePoint {
            energy_joules: e,
            freq: FreqLevel(3),
            core_size: CoreSizeIdx(1),
            time_seconds: 0.1,
            ways: 1,
        })
    }

    #[test]
    fn accessors() {
        let curve = EnergyCurve::new(vec![None, point(5.0), point(4.0), point(4.5)]);
        assert_eq!(curve.max_ways(), 4);
        assert!(curve.point(1).is_none());
        assert_eq!(curve.energy(1), f64::INFINITY);
        assert!((curve.energy(3) - 4.0).abs() < 1e-12);
        assert_eq!(curve.min_feasible_ways(), Some(2));
        assert!(curve.any_feasible());
        assert!(curve.validate().is_ok());
        assert_eq!(curve.point(0), None);
        assert_eq!(curve.point(9), None);
    }

    #[test]
    fn validation_rejects_empty_and_infeasible() {
        assert!(EnergyCurve::new(vec![]).validate().is_err());
        assert!(EnergyCurve::new(vec![None, None]).validate().is_err());
        let nan = EnergyCurve::new(vec![point(f64::NAN)]);
        assert!(nan.validate().is_err());
    }

    #[test]
    fn smoothing_makes_energy_non_increasing() {
        let mut curve =
            EnergyCurve::new(vec![point(5.0), point(6.0), None, point(3.0), point(3.5)]);
        curve.smooth_monotone();
        let energies: Vec<f64> = (1..=5).map(|w| curve.energy(w)).collect();
        for pair in energies.windows(2) {
            assert!(pair[1] <= pair[0] + 1e-12);
        }
        // The infeasible hole was filled by the cheaper prefix point.
        assert!((curve.energy(3) - 5.0).abs() < 1e-12);
        assert!((curve.energy(5) - 3.0).abs() < 1e-12);
    }

    #[test]
    fn smoothing_carries_source_ways_with_the_point() {
        // The cheap point at 2 ways (time predicted there) is carried to
        // slots 3 and 4; its source allocation and time must travel with it.
        let cheap = CurvePoint {
            energy_joules: 1.0,
            freq: FreqLevel(2),
            core_size: CoreSizeIdx(0),
            time_seconds: 0.25,
            ways: 2,
        };
        let expensive = CurvePoint {
            energy_joules: 3.0,
            freq: FreqLevel(5),
            core_size: CoreSizeIdx(1),
            time_seconds: 0.10,
            ways: 3,
        };
        let mut curve = EnergyCurve::new(vec![None, Some(cheap), Some(expensive), None]);
        curve.smooth_monotone();
        for w in [3usize, 4] {
            let p = curve.point(w).unwrap();
            assert_eq!(p.ways, 2, "carried point keeps its source allocation");
            assert!((p.time_seconds - 0.25).abs() < 1e-15);
            assert!((p.energy_joules - 1.0).abs() < 1e-15);
        }
    }

    #[test]
    fn smoothing_keeps_leading_infeasible_region() {
        let mut curve = EnergyCurve::new(vec![None, None, point(2.0), point(2.5)]);
        curve.smooth_monotone();
        assert!(curve.point(1).is_none());
        assert!(curve.point(2).is_none());
        assert!((curve.energy(4) - 2.0).abs() < 1e-12);
    }
}
