//! Staged, batched construction of energy-versus-ways curves — the cold path
//! of an RMA invocation.
//!
//! [`crate::local::LocalOptimizer::energy_curve`] has to consider every
//! `(core size, VF level, ways)` candidate. The scalar reference
//! implementation calls [`crate::model::PredictionModel::predict`] once per
//! candidate, re-deriving quantities that do not actually vary along every
//! axis: the execution CPI depends only on the core size, the voltage ratio
//! only on the VF level, the miss count only on the way count, and the memory
//! stall time only on `(core size, ways)`. The [`CurveBuilder`] stages the
//! computation so each factor is computed exactly once along the axes it
//! depends on:
//!
//! 1. **per VF level** — `freq_hz` and the squared voltage ratio;
//! 2. **per core size** — the execution CPI and the instruction-count
//!    products feeding the core energy terms;
//! 3. **per `(size, level)`** — execution seconds and the core
//!    dynamic-energy / static-power factors;
//! 4. **per ways** — predicted misses, the DRAM dynamic energy and the
//!    LLC static-power factor;
//! 5. **per `(size, ways)`** — the memory stall seconds, which are
//!    frequency-independent in every analytical model.
//!
//! The remaining per-candidate work is two additions, three multiplies and a
//! comparison. On top of that, the QoS test is resolved per `(size, ways)`
//! *column* by a partition point: predicted time is non-increasing in the VF
//! level for a fixed `(size, ways)` (frequencies are ordered slowest to
//! fastest and the stall term is constant along the column), so the feasible
//! levels form a suffix of the level list and a binary search replaces the
//! per-level feasibility scan. Only feasible candidates are evaluated.
//!
//! Every staged factor is computed with exactly the operations, operand
//! order and rounding of the scalar path, so the produced curve — energies,
//! times and the `(core size, VF)` argmin per way count — is **bit-identical**
//! to `energy_curve_scalar_reference` (verified by the property tests in
//! `tests/properties.rs` and, indirectly, by the byte-compared experiment
//! goldens).
//!
//! The builder also reports the number of model evaluations it actually
//! performed, which the overhead accounting (E5/E9) uses instead of the
//! worst-case `ways × sizes × levels` bound.

use crate::curve::{CurvePoint, EnergyCurve};
use crate::model::{ModelKind, PredictionModel};
use qosrm_types::{ConfigTable, CoreObservation, CoreSizeIdx, FreqLevel, PlatformConfig};

/// An energy curve together with the work its construction performed.
#[derive(Debug, Clone, PartialEq)]
pub struct CurveBuild {
    /// The energy-versus-ways curve (already monotone-smoothed).
    pub curve: EnergyCurve,
    /// Number of model evaluations actually performed: one per candidate
    /// whose energy was computed (analytical models evaluate only the
    /// QoS-feasible suffix of each `(size, ways)` column; the Perfect-table
    /// path reads every cell, matching the scalar reference).
    pub evaluations: usize,
}

/// Batched builder of one core's energy-versus-ways curve.
///
/// Borrowing the model, platform and candidate lists keeps the builder free
/// to construct per invocation; all scratch rows are sized by the (small)
/// candidate space and allocated locally.
#[derive(Debug, Clone, Copy)]
pub struct CurveBuilder<'a> {
    model: &'a PredictionModel,
    platform: &'a PlatformConfig,
    sizes: &'a [CoreSizeIdx],
    freqs: &'a [FreqLevel],
}

impl<'a> CurveBuilder<'a> {
    /// Creates a builder over the given candidate core sizes and VF levels.
    ///
    /// `freqs` must be ordered slowest to fastest (the order
    /// `qosrm_types::VfTable::levels` produces); the feasibility partition
    /// point relies on it.
    pub fn new(
        model: &'a PredictionModel,
        platform: &'a PlatformConfig,
        sizes: &'a [CoreSizeIdx],
        freqs: &'a [FreqLevel],
    ) -> Self {
        CurveBuilder {
            model,
            platform,
            sizes,
            freqs,
        }
    }

    /// Builds the curve: for every way count, the cheapest `(size, VF)` pair
    /// whose predicted time meets `target`, bit-identical to the scalar
    /// reference implementation.
    pub fn build(&self, observation: &CoreObservation, target: f64) -> CurveBuild {
        if self.model.performance().kind() == ModelKind::Perfect {
            if let Some(table) = &observation.perfect {
                return self.build_from_table(table, target);
            }
        }
        self.build_analytic(observation, target)
    }

    /// The analytical-model path (Models 1–3, and the Perfect kind when no
    /// ground-truth table was supplied — `predict` then degrades to the
    /// constant-MLP analytical model, and so does the builder).
    fn build_analytic(&self, observation: &CoreObservation, target: f64) -> CurveBuild {
        let perf = self.model.performance();
        let params = self.model.energy_model().params();
        let max_ways = self.platform.llc.associativity;
        let num_sizes = self.sizes.len();
        let num_freqs = self.freqs.len();
        let n = observation.stats.instructions as f64;

        // All staged rows live in one scratch allocation (a cold curve is
        // built per cache-miss invocation, so per-build allocations are on
        // the measured path), carved into disjoint slices. The two lane
        // rows at the end receive the chunked pass's per-level times and
        // energies before the argmin scan.
        let sf = num_sizes * num_freqs;
        let mut scratch = vec![0.0f64; 4 * num_freqs + 3 * sf + (2 + num_sizes) * max_ways];
        let (freq_hz, rest) = scratch.split_at_mut(num_freqs);
        let (v_ratio2, rest) = rest.split_at_mut(num_freqs);
        let (exec_seconds, rest) = rest.split_at_mut(sf);
        let (core_dynamic, rest) = rest.split_at_mut(sf);
        let (static_power, rest) = rest.split_at_mut(sf);
        let (dram_dynamic, rest) = rest.split_at_mut(max_ways);
        let (llc_static_power, rest) = rest.split_at_mut(max_ways);
        let (stall, rest) = rest.split_at_mut(num_sizes * max_ways);
        let (time_lane, energy_lane) = rest.split_at_mut(num_freqs);

        // Stage 1 — per VF level: frequency and squared voltage ratio,
        // exactly as the scalar path derives them per candidate.
        for (j, &freq) in self.freqs.iter().enumerate() {
            let point = self.platform.vf.point(freq);
            freq_hz[j] = point.freq_hz();
            v_ratio2[j] = (point.voltage / params.nominal_voltage).powi(2);
        }

        // Stages 2 + 3 — per core size, then per (size, level). Operand
        // order mirrors the scalar expressions term by term so every f64
        // matches bitwise:
        //   exec_seconds = (n * exec_cpi) / freq_hz
        //   core_dynamic = ((n * epi) * dynamic_epi_scale) * v_ratio2
        //   static_power = ((P_static * static_power_scale) * v_ratio2)
        let n_epi = n * params.core_epi_nominal;
        for (i, &size) in self.sizes.iter().enumerate() {
            let core = self.platform.core_size(size);
            let n_cpi = n * perf.exec_cpi(observation, size);
            let dynamic_i = n_epi * core.dynamic_epi_scale;
            let static_i = params.core_static_power_nominal * core.static_power_scale;
            let row = i * num_freqs;
            for j in 0..num_freqs {
                exec_seconds[row + j] = n_cpi / freq_hz[j];
                core_dynamic[row + j] = dynamic_i * v_ratio2[j];
                static_power[row + j] = static_i * v_ratio2[j];
            }
        }

        // Stage 4 — per way count: misses and the ways-only energy terms.
        for ways in 1..=max_ways {
            let misses = perf.misses(observation, ways);
            dram_dynamic[ways - 1] = misses as f64 * params.dram_access_energy;
            llc_static_power[ways - 1] = params.llc_static_power_per_way * ways as f64;
        }
        let llc_dynamic = observation.stats.llc_accesses as f64 * params.llc_access_energy;
        let dram_bg_power = params.dram_background_power / self.platform.num_cores as f64;

        // Stage 5 — stall seconds per (size, ways): frequency-independent in
        // every analytical model, so computed once per column.
        for (i, &size) in self.sizes.iter().enumerate() {
            for ways in 1..=max_ways {
                stall[i * max_ways + ways - 1] = perf.stall_seconds(observation, size, ways);
            }
        }

        // Resolve each (size, ways) column: binary-search the first feasible
        // level, then evaluate the feasible suffix as a flat 4-wide-chunked
        // pass. The chunk loop computes every level's time and energy
        // branch-free into the lane rows — per element it performs exactly
        // the scalar expressions, term for term and in the same operand
        // order (no FMA reassociation), so each lane value is bit-identical
        // to what the scalar loop would compute. The argmin scan then walks
        // the lanes in candidate order (sizes ascending, levels slowest to
        // fastest) with the scalar strict-`<` incumbent test, so the
        // selected points are identical to `energy_curve_scalar_reference`.
        let mut evaluations = 0usize;
        let mut points: Vec<Option<CurvePoint>> = Vec::with_capacity(max_ways);
        const LANES: usize = 4;
        for ways in 1..=max_ways {
            let mut best: Option<CurvePoint> = None;
            let llc_static_w = llc_static_power[ways - 1];
            let dram_dynamic_w = dram_dynamic[ways - 1];
            for (i, &size) in self.sizes.iter().enumerate() {
                let stall_seconds = stall[i * max_ways + ways - 1];
                let row = i * num_freqs;
                let exec_row = &exec_seconds[row..row + num_freqs];
                // Predicted time is non-increasing in the level index, so
                // the infeasible levels form a prefix.
                let first_feasible =
                    exec_row.partition_point(|&exec| exec + stall_seconds > target);
                let n = num_freqs - first_feasible;
                let ex = &exec_row[first_feasible..];
                let cd = &core_dynamic[row + first_feasible..row + num_freqs];
                let sp = &static_power[row + first_feasible..row + num_freqs];
                let times = &mut time_lane[..n];
                let energies = &mut energy_lane[..n];
                let chunked = n - n % LANES;
                let mut k = 0;
                while k < chunked {
                    // One branch-free 4-wide chunk.
                    for l in k..k + LANES {
                        let time = ex[l] + stall_seconds;
                        let core_static = sp[l] * time;
                        let llc_static = llc_static_w * time;
                        let dram_background = dram_bg_power * time;
                        times[l] = time;
                        energies[l] = cd[l]
                            + core_static
                            + llc_dynamic
                            + llc_static
                            + dram_dynamic_w
                            + dram_background;
                    }
                    k += LANES;
                }
                for l in chunked..n {
                    let time = ex[l] + stall_seconds;
                    let core_static = sp[l] * time;
                    let llc_static = llc_static_w * time;
                    let dram_background = dram_bg_power * time;
                    times[l] = time;
                    energies[l] = cd[l]
                        + core_static
                        + llc_dynamic
                        + llc_static
                        + dram_dynamic_w
                        + dram_background;
                }
                evaluations += n;
                for l in 0..n {
                    let energy = energies[l];
                    if best.map(|b| energy < b.energy_joules).unwrap_or(true) {
                        best = Some(CurvePoint {
                            energy_joules: energy,
                            freq: self.freqs[first_feasible + l],
                            core_size: size,
                            time_seconds: times[l],
                            ways,
                        });
                    }
                }
            }
            points.push(best);
        }

        let mut curve = EnergyCurve::new(points);
        curve.smooth_monotone();
        CurveBuild { curve, evaluations }
    }

    /// The Perfect-model path: time and energy come straight from the
    /// ground-truth table. Table times carry no monotonicity guarantee, so
    /// every cell is read (each read is one evaluation, exactly what the
    /// scalar reference performs).
    fn build_from_table(&self, table: &ConfigTable, target: f64) -> CurveBuild {
        let max_ways = self.platform.llc.associativity;
        let mut evaluations = 0usize;
        let mut points: Vec<Option<CurvePoint>> = Vec::with_capacity(max_ways);
        for ways in 1..=max_ways {
            let mut best: Option<CurvePoint> = None;
            for &size in self.sizes {
                for &freq in self.freqs {
                    evaluations += 1;
                    let metrics = table.get(size, freq, ways);
                    if metrics.time_seconds > target {
                        continue;
                    }
                    if best
                        .map(|b| metrics.energy_joules < b.energy_joules)
                        .unwrap_or(true)
                    {
                        best = Some(CurvePoint {
                            energy_joules: metrics.energy_joules,
                            freq,
                            core_size: size,
                            time_seconds: metrics.time_seconds,
                            ways,
                        });
                    }
                }
            }
            points.push(best);
        }
        let mut curve = EnergyCurve::new(points);
        curve.smooth_monotone();
        CurveBuild { curve, evaluations }
    }
}
