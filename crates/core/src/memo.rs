//! Keyed memoization of per-application energy curves.
//!
//! Building one energy-versus-ways curve evaluates the analytical models
//! over the `(core size, VF level, ways)` candidate space — the dominant
//! cost of an RMA invocation (Section "overhead" of the paper: hundreds of
//! model evaluations per call). The cache answers *recurring* observations;
//! a miss falls through to the staged
//! [`CurveBuilder`](crate::curve_builder::CurveBuilder), which batches the
//! per-axis factors and prunes each `(size, ways)` column to its
//! QoS-feasible VF suffix by a partition point, so even the cold path stays
//! cheap. Across a scenario sweep the same application profiles recur
//! constantly: phase traces wrap around within one run, and different sweep
//! points (QoS targets, RMA variants) revisit identical observations. The curve is a pure function of
//!
//! * the optimizer configuration (platform + control knobs + model + energy
//!   calibration) — the *configuration fingerprint*,
//! * the per-core QoS specification, and
//! * the observation (statistics and ATD/MLP/ILP profiles),
//!
//! so a [`CurveCache`] keyed by a digest of those three inputs returns
//! bit-identical curves while skipping recomputation. The cache is sharded
//! and thread-safe: one instance is shared across all scenarios of a
//! parallel sweep (see `experiments::sweep`).
//!
//! Keys are 128-bit digests (two independent FNV-1a streams). The
//! configuration fingerprint — computed once per manager — digests the
//! canonical `serde` value tree via [`fingerprint`]; the per-invocation
//! observation is streamed into the digest field-by-field (no allocation)
//! by an exhaustive destructuring, so adding a field to `CoreObservation`
//! fails compilation here until the digest covers it. At the cache sizes a
//! sweep produces (well below 2³⁰ entries) collisions are vanishingly
//! unlikely.

use crate::curve::EnergyCurve;
use qosrm_types::{CoreObservation, QosSpec};
use serde::{Serialize, Value};
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

/// A 128-bit cache key (two independent 64-bit digests).
pub type CurveKey = (u64, u64);

/// Incremental 128-bit digest: two FNV-1a streams with distinct offsets.
#[derive(Debug, Clone, Copy)]
struct Digest {
    a: u64,
    b: u64,
}

impl Digest {
    fn new() -> Self {
        Digest {
            a: 0xcbf2_9ce4_8422_2325,
            b: 0x6c62_272e_07bb_0142,
        }
    }

    fn write_u8(&mut self, byte: u8) {
        self.a = (self.a ^ byte as u64).wrapping_mul(0x0000_0100_0000_01b3);
        self.b = (self.b ^ byte as u64).wrapping_mul(0x0000_0100_0000_0197);
    }

    fn write_u64(&mut self, value: u64) {
        for byte in value.to_le_bytes() {
            self.write_u8(byte);
        }
    }

    fn write_f64(&mut self, value: f64) {
        self.write_u64(value.to_bits());
    }

    fn write_str(&mut self, value: &str) {
        self.write_u64(value.len() as u64);
        for byte in value.bytes() {
            self.write_u8(byte);
        }
    }

    fn write_value(&mut self, value: &Value) {
        match value {
            Value::Null => self.write_u8(0),
            Value::Bool(b) => {
                self.write_u8(1);
                self.write_u8(*b as u8);
            }
            Value::UInt(n) => {
                self.write_u8(2);
                self.write_u64(*n);
            }
            Value::Int(n) => {
                self.write_u8(3);
                self.write_u64(*n as u64);
            }
            Value::Float(x) => {
                self.write_u8(4);
                self.write_f64(*x);
            }
            Value::Str(s) => {
                self.write_u8(5);
                self.write_str(s);
            }
            Value::Array(items) => {
                self.write_u8(6);
                self.write_u64(items.len() as u64);
                for item in items {
                    self.write_value(item);
                }
            }
            Value::Object(fields) => {
                self.write_u8(7);
                self.write_u64(fields.len() as u64);
                for (key, item) in fields {
                    self.write_str(key);
                    self.write_value(item);
                }
            }
        }
    }

    fn finish(self) -> CurveKey {
        (self.a, self.b)
    }
}

/// Digests any serializable value into a [`CurveKey`].
///
/// Used for the *configuration fingerprint* of a manager: platform, control
/// knobs, model kind and energy calibration, computed once at construction.
pub fn fingerprint<T: Serialize>(value: &T) -> CurveKey {
    let mut digest = Digest::new();
    digest.write_value(&value.to_value());
    digest.finish()
}

/// Derives the full cache key of one curve construction from the manager's
/// configuration fingerprint, the core's QoS specification and the
/// observation handed to the local optimizer.
///
/// The observation is digested field-by-field (no intermediate value tree):
/// this runs on every RMA invocation — including cache hits — so the key
/// derivation must not allocate.
pub fn curve_key(config: CurveKey, qos: QosSpec, observation: &CoreObservation) -> CurveKey {
    let mut digest = Digest::new();
    digest.write_u64(config.0);
    digest.write_u64(config.1);
    digest.write_f64(qos.allowed_slowdown);
    digest_observation(&mut digest, observation);
    digest.finish()
}

/// Streams every field of an observation into the digest. Option fields are
/// tagged so `None` never collides with an adjacent value.
fn digest_observation(digest: &mut Digest, observation: &CoreObservation) {
    // Exhaustive destructuring (no `..`): adding a field to CoreObservation
    // or IntervalStats fails compilation here until the digest covers it.
    let CoreObservation {
        app,
        stats,
        miss_profile,
        mlp_profile,
        scaling_profile,
        perfect,
    } = observation;
    let qosrm_types::IntervalStats {
        instructions,
        cycles,
        exec_cycles,
        llc_accesses,
        llc_misses,
        leading_misses,
        elapsed_seconds,
        freq,
        core_size,
        ways,
    } = *stats;

    digest.write_u64(app.0 as u64);
    digest.write_u64(instructions);
    digest.write_u64(cycles);
    digest.write_u64(exec_cycles);
    digest.write_u64(llc_accesses);
    digest.write_u64(llc_misses);
    digest.write_u64(leading_misses);
    digest.write_f64(elapsed_seconds);
    digest.write_u64(freq.0 as u64);
    digest.write_u64(core_size.0 as u64);
    digest.write_u64(ways as u64);

    let misses = miss_profile.as_slice();
    digest.write_u64(misses.len() as u64);
    for &m in misses {
        digest.write_u64(m);
    }

    match mlp_profile {
        None => digest.write_u8(0),
        Some(mlp) => {
            digest.write_u8(1);
            digest.write_u64(mlp.num_core_sizes() as u64);
            digest.write_u64(mlp.max_ways() as u64);
            for size in 0..mlp.num_core_sizes() {
                for ways in 1..=mlp.max_ways() {
                    digest.write_u64(mlp.leading_at(qosrm_types::CoreSizeIdx(size), ways));
                }
            }
        }
    }

    match scaling_profile {
        None => digest.write_u8(0),
        Some(scaling) => {
            digest.write_u8(1);
            digest.write_u64(scaling.as_slice().len() as u64);
            for &cpi in scaling.as_slice() {
                digest.write_f64(cpi);
            }
        }
    }

    match perfect {
        None => digest.write_u8(0),
        Some(table) => {
            digest.write_u8(1);
            digest.write_u64(table.num_core_sizes() as u64);
            digest.write_u64(table.num_freqs() as u64);
            digest.write_u64(table.num_ways() as u64);
            for size in 0..table.num_core_sizes() {
                for freq in 0..table.num_freqs() {
                    for ways in 1..=table.num_ways() {
                        let metrics = table.get(
                            qosrm_types::CoreSizeIdx(size),
                            qosrm_types::FreqLevel(freq),
                            ways,
                        );
                        digest.write_f64(metrics.time_seconds);
                        digest.write_f64(metrics.energy_joules);
                        digest.write_u64(metrics.llc_misses);
                        digest.write_u64(metrics.leading_misses);
                    }
                }
            }
        }
    }
}

/// Per-core observation digests of the previous RMA interval.
///
/// The incremental invocation path (see
/// [`crate::CoordinatedRma::with_incremental`]) needs to know *which* cores'
/// inputs changed between consecutive intervals, not just whether the whole
/// invocation recurred. This holds one full [`curve_key`] per core — the same
/// 128-bit digest the [`CurveCache`] trusts for curve identity — so "digest
/// unchanged" carries exactly the bit-identical-curve guarantee the cache
/// already relies on.
#[derive(Debug, Clone, Default)]
pub struct ObservationDigests {
    keys: Vec<Option<CurveKey>>,
}

impl ObservationDigests {
    /// Creates an empty digest set (every core reads as changed).
    pub fn new() -> Self {
        ObservationDigests::default()
    }

    /// Number of cores with a recorded digest.
    pub fn len(&self) -> usize {
        self.keys.len()
    }

    /// Whether no digests are recorded.
    pub fn is_empty(&self) -> bool {
        self.keys.is_empty()
    }

    /// Records `key` as core `core`'s digest for the current interval and
    /// reports whether it matches the digest recorded for the previous
    /// interval. A core never seen before (or cleared by [`reset`]) always
    /// reads as changed.
    ///
    /// [`reset`]: ObservationDigests::reset
    pub fn note(&mut self, core: usize, key: CurveKey) -> bool {
        if core >= self.keys.len() {
            self.keys.resize(core + 1, None);
        }
        let unchanged = self.keys[core] == Some(key);
        self.keys[core] = Some(key);
        unchanged
    }

    /// Forgets all recorded digests: the next interval diffs against
    /// nothing, so every core reads as changed (a cold invocation).
    pub fn reset(&mut self) {
        self.keys.clear();
    }
}

const NUM_SHARDS: usize = 16;

/// Default cache capacity in entries (~100 MB of 16-way curves). A long
/// experiment session keeps inserting distinct `(config, QoS, observation)`
/// keys forever, so an unbounded map would grow monotonically with total
/// RMA invocations; when a shard fills, it is wholesale-cleared (epoch
/// eviction) — cheap, and only a perf event, never a correctness one.
pub const DEFAULT_MAX_ENTRIES: usize = 131_072;

/// Thread-safe, sharded memoization cache for [`EnergyCurve`]s.
///
/// Shared (via `Arc`) between every manager instance of a scenario sweep;
/// see [`crate::CoordinatedRma::with_curve_cache`].
///
/// # Example
///
/// ```
/// use qosrm_core::CurveCache;
///
/// let cache = CurveCache::new();
/// assert_eq!(cache.len(), 0);
/// assert_eq!(cache.hit_rate(), 0.0);
/// ```
pub struct CurveCache {
    shards: Vec<Mutex<HashMap<CurveKey, EnergyCurve>>>,
    max_entries_per_shard: usize,
    hits: AtomicU64,
    misses: AtomicU64,
    evictions: AtomicU64,
    evicted_entries: AtomicU64,
}

impl CurveCache {
    /// Creates an empty cache bounded at [`DEFAULT_MAX_ENTRIES`].
    pub fn new() -> Self {
        CurveCache::with_max_entries(DEFAULT_MAX_ENTRIES)
    }

    /// Creates an empty cache holding at most `max_entries` curves (rounded
    /// up to a multiple of the shard count; at least one per shard). When a
    /// shard reaches its share it is cleared and refilled — bounded memory
    /// at the cost of occasional recomputation.
    pub fn with_max_entries(max_entries: usize) -> Self {
        CurveCache {
            shards: (0..NUM_SHARDS)
                .map(|_| Mutex::new(HashMap::new()))
                .collect(),
            max_entries_per_shard: max_entries.div_ceil(NUM_SHARDS).max(1),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
            evicted_entries: AtomicU64::new(0),
        }
    }

    fn shard(&self, key: CurveKey) -> &Mutex<HashMap<CurveKey, EnergyCurve>> {
        &self.shards[(key.0 % NUM_SHARDS as u64) as usize]
    }

    /// Returns the cached curve for `key`, or computes, stores and returns
    /// it. The computation runs outside the shard lock, so concurrent
    /// lookups of *different* keys never serialize on one computation
    /// (a rare duplicated computation of the same key is deterministic and
    /// therefore harmless).
    pub fn get_or_compute(
        &self,
        key: CurveKey,
        compute: impl FnOnce() -> EnergyCurve,
    ) -> EnergyCurve {
        if let Some(curve) = self
            .shard(key)
            .lock()
            .expect("curve shard poisoned")
            .get(&key)
        {
            self.hits.fetch_add(1, Ordering::Relaxed);
            return curve.clone();
        }
        self.misses.fetch_add(1, Ordering::Relaxed);
        let curve = compute();
        let mut shard = self.shard(key).lock().expect("curve shard poisoned");
        if shard.len() >= self.max_entries_per_shard {
            self.evictions.fetch_add(1, Ordering::Relaxed);
            self.evicted_entries
                .fetch_add(shard.len() as u64, Ordering::Relaxed);
            shard.clear();
        }
        shard.insert(key, curve.clone());
        curve
    }

    /// Number of cached curves.
    pub fn len(&self) -> usize {
        self.shards
            .iter()
            .map(|s| s.lock().expect("curve shard poisoned").len())
            .sum()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Lookups answered from the cache.
    pub fn hits(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }

    /// Lookups that required a computation.
    pub fn misses(&self) -> u64 {
        self.misses.load(Ordering::Relaxed)
    }

    /// Epoch-eviction events: times a full shard was cleared because it
    /// reached its capacity share. A long-lived serving process exposes
    /// this (with [`CurveCache::evicted_entries`]) so operators can tell a
    /// cold cache from one thrashing its capacity bound.
    pub fn evictions(&self) -> u64 {
        self.evictions.load(Ordering::Relaxed)
    }

    /// Total entries dropped by epoch evictions.
    pub fn evicted_entries(&self) -> u64 {
        self.evicted_entries.load(Ordering::Relaxed)
    }

    /// Fraction of lookups answered from the cache (0 when unused).
    pub fn hit_rate(&self) -> f64 {
        let hits = self.hits() as f64;
        let total = hits + self.misses() as f64;
        if total == 0.0 {
            0.0
        } else {
            hits / total
        }
    }

    /// Drops all cached curves and resets the statistics.
    pub fn clear(&self) {
        for shard in &self.shards {
            shard.lock().expect("curve shard poisoned").clear();
        }
        self.hits.store(0, Ordering::Relaxed);
        self.misses.store(0, Ordering::Relaxed);
        self.evictions.store(0, Ordering::Relaxed);
        self.evicted_entries.store(0, Ordering::Relaxed);
    }
}

impl Default for CurveCache {
    fn default() -> Self {
        CurveCache::new()
    }
}

impl std::fmt::Debug for CurveCache {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CurveCache")
            .field("entries", &self.len())
            .field("hits", &self.hits())
            .field("misses", &self.misses())
            .field("evictions", &self.evictions())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::curve::CurvePoint;
    use qosrm_types::{
        AppId, CoreScalingProfile, CoreSizeIdx, FreqLevel, IntervalStats, MissProfile, MlpProfile,
    };

    fn observation(llc_misses: u64) -> CoreObservation {
        CoreObservation {
            app: AppId(0),
            stats: IntervalStats {
                instructions: 1_000_000,
                cycles: 2_000_000,
                exec_cycles: 1_000_000,
                llc_accesses: 10_000,
                llc_misses,
                leading_misses: llc_misses / 2,
                elapsed_seconds: 0.001,
                freq: FreqLevel(6),
                core_size: CoreSizeIdx(1),
                ways: 4,
            },
            miss_profile: MissProfile::new(vec![llc_misses; 16]),
            mlp_profile: Some(MlpProfile::new(vec![vec![llc_misses / 2; 16]; 3])),
            scaling_profile: Some(CoreScalingProfile::new(vec![1.2, 1.0, 0.9])),
            perfect: None,
        }
    }

    fn curve(energy: f64) -> EnergyCurve {
        EnergyCurve::new(vec![Some(CurvePoint {
            energy_joules: energy,
            freq: FreqLevel(3),
            core_size: CoreSizeIdx(1),
            time_seconds: 0.1,
            ways: 1,
        })])
    }

    #[test]
    fn observation_digests_flag_only_changed_cores() {
        let mut digests = ObservationDigests::new();
        assert!(digests.is_empty());
        // First interval: nothing recorded yet, every core reads changed.
        assert!(!digests.note(0, (1, 1)));
        assert!(!digests.note(1, (2, 2)));
        assert_eq!(digests.len(), 2);
        // Second interval: core 0 recurs, core 1 changed.
        assert!(digests.note(0, (1, 1)));
        assert!(!digests.note(1, (3, 3)));
        // A core index never seen before reads changed and grows the set.
        assert!(!digests.note(4, (9, 9)));
        assert_eq!(digests.len(), 5);
        // Reset forgets everything: next interval is cold again.
        digests.reset();
        assert!(!digests.note(0, (1, 1)));
    }

    #[test]
    fn identical_inputs_share_one_entry() {
        let config = fingerprint(&"config-a".to_string());
        let a = curve_key(config, QosSpec::STRICT, &observation(500));
        let b = curve_key(config, QosSpec::STRICT, &observation(500));
        assert_eq!(a, b);
    }

    #[test]
    fn any_input_change_changes_the_key() {
        let config = fingerprint(&"config-a".to_string());
        let base = curve_key(config, QosSpec::STRICT, &observation(500));
        let other_obs = curve_key(config, QosSpec::STRICT, &observation(501));
        let other_qos = curve_key(config, QosSpec::relaxed_by(0.4), &observation(500));
        let other_config = curve_key(
            fingerprint(&"config-b".to_string()),
            QosSpec::STRICT,
            &observation(500),
        );
        assert_ne!(base, other_obs);
        assert_ne!(base, other_qos);
        assert_ne!(base, other_config);
    }

    #[test]
    fn cache_hits_skip_computation() {
        let cache = CurveCache::new();
        let key = (1, 2);
        let mut computed = 0;
        let first = cache.get_or_compute(key, || {
            computed += 1;
            curve(5.0)
        });
        let second = cache.get_or_compute(key, || {
            computed += 1;
            curve(99.0)
        });
        assert_eq!(computed, 1);
        assert_eq!(first, second);
        assert_eq!(cache.hits(), 1);
        assert_eq!(cache.misses(), 1);
        assert_eq!(cache.len(), 1);
        assert!((cache.hit_rate() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn capacity_bound_evicts_instead_of_growing() {
        // 16 shards x 1 entry each: the 17th distinct key that lands in an
        // occupied shard clears that shard first.
        let cache = CurveCache::with_max_entries(16);
        for i in 0..1000u64 {
            cache.get_or_compute((i, i), || curve(i as f64));
        }
        assert!(
            cache.len() <= 16,
            "cache exceeded its bound: {} entries",
            cache.len()
        );
        // Epoch evictions are counted for the serving telemetry.
        assert!(cache.evictions() > 0);
        assert!(cache.evicted_entries() >= cache.evictions());
        // Eviction is a perf event only: a re-request recomputes the same
        // curve.
        let again = cache.get_or_compute((0, 0), || curve(0.0));
        assert_eq!(again.energy(1), 0.0);
        cache.clear();
        assert_eq!(cache.evictions(), 0);
        assert_eq!(cache.evicted_entries(), 0);
    }

    #[test]
    fn clear_resets_entries_and_stats() {
        let cache = CurveCache::new();
        cache.get_or_compute((1, 1), || curve(1.0));
        cache.get_or_compute((2, 2), || curve(2.0));
        assert_eq!(cache.len(), 2);
        cache.clear();
        assert!(cache.is_empty());
        assert_eq!(cache.hits() + cache.misses(), 0);
    }

    #[test]
    fn shared_across_threads() {
        use std::sync::Arc;
        let cache = Arc::new(CurveCache::new());
        std::thread::scope(|scope| {
            for t in 0..4u64 {
                let cache = Arc::clone(&cache);
                scope.spawn(move || {
                    for i in 0..50u64 {
                        cache.get_or_compute((i, t % 2), || curve(i as f64));
                    }
                });
            }
        });
        assert!(cache.len() <= 100);
        assert_eq!(cache.hits() + cache.misses(), 200);
    }
}
