//! Local (per-core) optimization: QoS-driven pruning of the configuration
//! space into an energy-versus-ways curve.
//!
//! Curve construction is the dominant cost of a cache-miss RMA invocation
//! (the paper's overhead section counts it as hundreds of model evaluations
//! per call). The production path therefore goes through the staged
//! [`CurveBuilder`]: per-axis factors
//! (execution CPI per size, voltage ratio per level, misses per way count,
//! stall time per `(size, ways)`) are computed once, and the QoS test is
//! resolved per `(size, ways)` column by a feasibility partition point
//! instead of a per-level scan. The scalar triple loop is kept as
//! [`LocalOptimizer::energy_curve_scalar_reference`]; both paths produce
//! bit-identical curves (see `tests/properties.rs`).

use crate::curve::{CurvePoint, EnergyCurve};
use crate::curve_builder::{CurveBuild, CurveBuilder};
use crate::model::{ModelKind, PredictionModel};
use power_model::EnergyParams;
use qosrm_types::{CoreObservation, CoreSizeIdx, FreqLevel, PlatformConfig, QosSpec};

/// Configuration of the local optimizer.
#[derive(Debug, Clone)]
pub struct LocalOptimizerConfig {
    /// Whether the VF level may deviate from the baseline.
    pub control_dvfs: bool,
    /// Whether the core size may deviate from the baseline.
    pub control_core_size: bool,
    /// Which performance model to use.
    pub model: ModelKind,
    /// Energy calibration shared with the platform.
    pub energy_params: EnergyParams,
}

/// The per-core local optimizer.
#[derive(Debug, Clone)]
pub struct LocalOptimizer {
    platform: PlatformConfig,
    model: PredictionModel,
    /// Candidate core sizes under the configuration policy, fixed at
    /// construction (curve builds are on the cache-miss hot path and must
    /// not re-collect them).
    sizes: Vec<CoreSizeIdx>,
    /// Candidate VF levels, slowest to fastest, fixed at construction.
    freqs: Vec<FreqLevel>,
}

impl LocalOptimizer {
    /// Creates the optimizer.
    pub fn new(platform: &PlatformConfig, config: LocalOptimizerConfig) -> Self {
        let model = PredictionModel::new(config.model, platform, config.energy_params);
        let sizes = if config.control_core_size {
            platform.core_size_indices().collect()
        } else {
            vec![platform.baseline_core_size]
        };
        let freqs = if config.control_dvfs {
            platform.vf.levels().collect()
        } else {
            vec![platform.baseline_freq()]
        };
        LocalOptimizer {
            platform: platform.clone(),
            model,
            sizes,
            freqs,
        }
    }

    /// The prediction model in use.
    pub fn model(&self) -> &PredictionModel {
        &self.model
    }

    /// Predicted QoS target time for one interval: the predicted time at the
    /// baseline configuration, scaled by the application's allowed slowdown.
    ///
    /// Using the *predicted* baseline (rather than a measured one) keeps the
    /// target and the candidate predictions consistent under the same model,
    /// which is how the paper's RMA bounds the impact of modeling error.
    pub fn target_time(&self, observation: &CoreObservation, qos: QosSpec) -> f64 {
        let baseline_time = self.model.predict(
            observation,
            &self.platform,
            self.platform.baseline_core_size,
            self.platform.baseline_freq(),
            self.platform.baseline_ways_per_core(),
        );
        qos.target_time(baseline_time.time_seconds)
    }

    /// Candidate core sizes under the current configuration policy.
    fn candidate_sizes(&self) -> &[CoreSizeIdx] {
        &self.sizes
    }

    /// Candidate VF levels under the current configuration policy.
    fn candidate_freqs(&self) -> &[FreqLevel] {
        &self.freqs
    }

    /// Builds the energy-versus-ways curve of one core: for every way count,
    /// the cheapest `(core size, VF)` pair whose predicted time meets the
    /// target.
    ///
    /// The paper's heuristic only evaluates the *slowest* feasible VF level
    /// per `(size, ways)` pair, which is optimal when dynamic energy strictly
    /// dominates. Our energy model also charges leakage and background power
    /// over the (longer) predicted time, so the energy-optimal level can sit
    /// slightly above the slowest feasible one — the optimizer therefore
    /// evaluates every feasible level (the QoS target still prunes the
    /// infeasible ones) and keeps the cheapest, at the same asymptotic cost.
    ///
    /// This is the batched path (see [`crate::curve_builder`]); the result is
    /// bit-identical to [`LocalOptimizer::energy_curve_scalar_reference`].
    pub fn energy_curve(&self, observation: &CoreObservation, qos: QosSpec) -> EnergyCurve {
        self.energy_curve_counted(observation, qos).curve
    }

    /// Like [`LocalOptimizer::energy_curve`], additionally reporting the
    /// number of model evaluations actually performed (the target baseline
    /// prediction plus one per candidate whose energy was computed), which
    /// the overhead accounting (E5/E9) uses instead of the worst-case bound.
    pub fn energy_curve_counted(&self, observation: &CoreObservation, qos: QosSpec) -> CurveBuild {
        let target = self.target_time(observation, qos);
        let builder = CurveBuilder::new(&self.model, &self.platform, &self.sizes, &self.freqs);
        let mut build = builder.build(observation, target);
        // The target itself costs one baseline prediction.
        build.evaluations += 1;
        build
    }

    /// Scalar reference implementation of [`LocalOptimizer::energy_curve`]:
    /// one [`PredictionModel::predict`] call per `(size, VF, ways)`
    /// candidate.
    ///
    /// Kept as the behavioural oracle for the staged
    /// [`CurveBuilder`] — the property
    /// tests assert bit-identical output, and the `optimizer_scaling`
    /// criterion bench compares the two paths' cost. Not used in production.
    pub fn energy_curve_scalar_reference(
        &self,
        observation: &CoreObservation,
        qos: QosSpec,
    ) -> EnergyCurve {
        let target = self.target_time(observation, qos);
        let max_ways = self.platform.llc.associativity;
        let sizes = self.candidate_sizes();
        let freqs = self.candidate_freqs();

        let mut points: Vec<Option<CurvePoint>> = Vec::with_capacity(max_ways);
        for ways in 1..=max_ways {
            let mut best: Option<CurvePoint> = None;
            for &size in sizes {
                for &freq in freqs {
                    let prediction =
                        self.model
                            .predict(observation, &self.platform, size, freq, ways);
                    if prediction.time_seconds > target {
                        // Frequencies are ordered slowest to fastest: faster
                        // levels can only become feasible, so keep scanning.
                        continue;
                    }
                    let candidate = CurvePoint {
                        energy_joules: prediction.energy_joules,
                        freq,
                        core_size: size,
                        time_seconds: prediction.time_seconds,
                        ways,
                    };
                    if best
                        .map(|b| candidate.energy_joules < b.energy_joules)
                        .unwrap_or(true)
                    {
                        best = Some(candidate);
                    }
                }
            }
            points.push(best);
        }
        let mut curve = EnergyCurve::new(points);
        curve.smooth_monotone();
        curve
    }

    /// Upper bound on the model evaluations one curve construction performs:
    /// every `(ways, size)` pair scanning all VF levels, plus one baseline
    /// prediction for the target.
    ///
    /// This is a *worst-case bound*, not a measurement — the builder skips
    /// QoS-infeasible candidates entirely. Overhead accounting that claims
    /// measured numbers must use the count returned by
    /// [`LocalOptimizer::energy_curve_counted`] (see
    /// [`crate::CoordinatedRma::work_counters`]).
    pub fn evaluations_per_invocation(&self) -> usize {
        self.platform.llc.associativity
            * self.candidate_sizes().len()
            * self.candidate_freqs().len()
            + 1
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qosrm_types::{
        AppId, CoreId, CoreScalingProfile, IntervalStats, MissProfile, MlpProfile, SystemSetting,
    };

    fn platform() -> PlatformConfig {
        PlatformConfig::paper2(4)
    }

    /// A cache-sensitive, memory-intensive observation at the baseline
    /// setting.
    fn observation() -> CoreObservation {
        let p = platform();
        let baseline = SystemSetting::baseline(&p).core(CoreId(0));
        let misses: Vec<u64> = (0..16)
            .map(|w| (1_200_000.0 * (0.92f64).powi(w)) as u64)
            .collect();
        let leading = vec![
            misses
                .iter()
                .map(|&m| (m as f64 * 0.95) as u64)
                .collect::<Vec<_>>(),
            misses
                .iter()
                .map(|&m| (m as f64 * 0.60) as u64)
                .collect::<Vec<_>>(),
            misses
                .iter()
                .map(|&m| (m as f64 * 0.35) as u64)
                .collect::<Vec<_>>(),
        ];
        CoreObservation {
            app: AppId(0),
            stats: IntervalStats {
                instructions: 100_000_000,
                cycles: 230_000_000,
                exec_cycles: 110_000_000,
                llc_accesses: 2_500_000,
                llc_misses: misses[baseline.ways - 1],
                leading_misses: leading[1][baseline.ways - 1],
                elapsed_seconds: 0.115,
                freq: baseline.freq,
                core_size: baseline.core_size,
                ways: baseline.ways,
            },
            miss_profile: MissProfile::new(misses),
            mlp_profile: Some(MlpProfile::new(leading)),
            scaling_profile: Some(CoreScalingProfile::new(vec![1.5, 1.1, 0.85])),
            perfect: None,
        }
    }

    fn optimizer(control_dvfs: bool, control_core: bool, model: ModelKind) -> LocalOptimizer {
        LocalOptimizer::new(
            &platform(),
            LocalOptimizerConfig {
                control_dvfs,
                control_core_size: control_core,
                model,
                energy_params: EnergyParams::default(),
            },
        )
    }

    #[test]
    fn baseline_allocation_is_always_feasible() {
        let opt = optimizer(true, true, ModelKind::MlpAware);
        let curve = opt.energy_curve(&observation(), QosSpec::STRICT);
        let baseline_ways = platform().baseline_ways_per_core();
        assert!(curve.point(baseline_ways).is_some());
        assert!(curve.validate().is_ok());
    }

    #[test]
    fn more_ways_allow_lower_frequency() {
        let opt = optimizer(true, false, ModelKind::ConstantMlp);
        let curve = opt.energy_curve(&observation(), QosSpec::STRICT);
        let baseline_ways = platform().baseline_ways_per_core();
        let at_baseline = curve.point(baseline_ways).unwrap();
        let at_max = curve.point(16).unwrap();
        assert!(at_max.freq <= at_baseline.freq);
        assert!(at_max.energy_joules <= at_baseline.energy_joules);
    }

    #[test]
    fn fewer_ways_require_higher_frequency_or_become_infeasible() {
        let opt = optimizer(true, false, ModelKind::ConstantMlp);
        let curve = opt.energy_curve(&observation(), QosSpec::STRICT);
        let baseline_ways = platform().baseline_ways_per_core();
        let at_baseline = curve.point(baseline_ways).unwrap();
        // An infeasible point at one way is also acceptable.
        if let Some(p) = curve.point(1) {
            assert!(
                p.freq >= at_baseline.freq,
                "a starved cache-sensitive app must clock up"
            );
        }
    }

    #[test]
    fn without_dvfs_control_curve_uses_baseline_frequency() {
        let opt = optimizer(false, false, ModelKind::ConstantMlp);
        let curve = opt.energy_curve(&observation(), QosSpec::STRICT);
        for w in 1..=16usize {
            if let Some(p) = curve.point(w) {
                assert_eq!(p.freq, platform().baseline_freq());
                assert_eq!(p.core_size, platform().baseline_core_size);
            }
        }
        // Allocations below the baseline are infeasible at a fixed frequency
        // for this cache-sensitive application.
        assert!(curve.min_feasible_ways().unwrap() >= 2);
    }

    #[test]
    fn relaxed_qos_lowers_energy() {
        let opt = optimizer(true, true, ModelKind::MlpAware);
        let strict = opt.energy_curve(&observation(), QosSpec::STRICT);
        let relaxed = opt.energy_curve(&observation(), QosSpec::relaxed_by(0.4));
        let w = platform().baseline_ways_per_core();
        assert!(relaxed.energy(w) <= strict.energy(w));
        // With 40 % slack the application can run strictly slower.
        assert!(relaxed.point(w).unwrap().freq <= strict.point(w).unwrap().freq);
    }

    #[test]
    fn core_size_control_never_hurts() {
        let without = optimizer(true, false, ModelKind::MlpAware);
        let with = optimizer(true, true, ModelKind::MlpAware);
        let obs = observation();
        let c_without = without.energy_curve(&obs, QosSpec::STRICT);
        let c_with = with.energy_curve(&obs, QosSpec::STRICT);
        for w in 1..=16usize {
            assert!(
                c_with.energy(w) <= c_without.energy(w) + 1e-12,
                "adding a control knob cannot increase the optimum at w={w}"
            );
        }
    }

    #[test]
    fn target_time_scales_with_relaxation() {
        let opt = optimizer(true, true, ModelKind::ConstantMlp);
        let obs = observation();
        let strict = opt.target_time(&obs, QosSpec::STRICT);
        let relaxed = opt.target_time(&obs, QosSpec::relaxed_by(0.5));
        assert!((relaxed / strict - 1.5).abs() < 1e-9);
    }

    #[test]
    fn evaluation_bound_matches_space_size() {
        let opt = optimizer(true, true, ModelKind::MlpAware);
        assert_eq!(opt.evaluations_per_invocation(), 16 * 3 * 13 + 1);
        let rm1 = optimizer(false, false, ModelKind::ConstantMlp);
        assert_eq!(rm1.evaluations_per_invocation(), 16 + 1);
    }

    #[test]
    fn batched_curve_is_bit_identical_to_scalar_reference() {
        let obs = observation();
        for (dvfs, core) in [(true, true), (true, false), (false, false)] {
            for model in [
                ModelKind::SimpleLatency,
                ModelKind::ConstantMlp,
                ModelKind::MlpAware,
            ] {
                let opt = optimizer(dvfs, core, model);
                for qos in [QosSpec::STRICT, QosSpec::relaxed_by(0.3)] {
                    assert_eq!(
                        opt.energy_curve(&obs, qos),
                        opt.energy_curve_scalar_reference(&obs, qos),
                        "builder and scalar reference diverged \
                         (dvfs={dvfs}, core={core}, model={model:?})"
                    );
                }
            }
        }
    }

    /// Hand-counted evaluation tally on a one-dimensional case: with DVFS
    /// and core-size control off, the builder evaluates exactly one
    /// candidate per QoS-feasible way count, plus the baseline target
    /// prediction.
    #[test]
    fn evaluation_count_matches_hand_count() {
        let opt = optimizer(false, false, ModelKind::ConstantMlp);
        let obs = observation();
        let qos = QosSpec::STRICT;
        // Hand count: walk the candidate space with the public model.
        let p = platform();
        let target = opt.target_time(&obs, qos);
        let mut feasible = 0usize;
        for ways in 1..=16usize {
            let pred = opt
                .model()
                .predict(&obs, &p, p.baseline_core_size, p.baseline_freq(), ways);
            if pred.time_seconds <= target {
                feasible += 1;
            }
        }
        assert!(feasible > 0 && feasible < 16, "case must be non-trivial");
        let build = opt.energy_curve_counted(&obs, qos);
        assert_eq!(build.evaluations, feasible + 1);

        // Full space: the measured count is bounded by the worst case and
        // strictly below it here (the strict target prunes small ways).
        let full = optimizer(true, true, ModelKind::MlpAware);
        let build = full.energy_curve_counted(&obs, qos);
        assert!(build.evaluations <= full.evaluations_per_invocation());
        assert!(build.evaluations < full.evaluations_per_invocation());
        assert!(build.evaluations > 1);
    }

    /// The Perfect-table path reads every cell, so its measured count equals
    /// the worst-case bound.
    #[test]
    fn perfect_table_count_matches_full_space() {
        use qosrm_types::{ConfigMetrics, ConfigTable};
        let mut obs = observation();
        obs.perfect = Some(ConfigTable::from_fn(3, 13, 16, |s, f, w| ConfigMetrics {
            time_seconds: 0.2 / ((s.index() + 1) as f64 * (f.index() + 1) as f64)
                + 0.001 * (16 - w) as f64,
            energy_joules: 1.0 + w as f64 * 0.1,
            llc_misses: 10,
            leading_misses: 5,
        }));
        let opt = optimizer(true, true, ModelKind::Perfect);
        let build = opt.energy_curve_counted(&obs, QosSpec::STRICT);
        assert_eq!(build.evaluations, 16 * 3 * 13 + 1);
        assert_eq!(
            build.curve,
            opt.energy_curve_scalar_reference(&obs, QosSpec::STRICT)
        );
    }
}
