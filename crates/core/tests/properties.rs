//! Property-based tests of the resource manager's optimization machinery.

use proptest::prelude::*;
use qosrm_core::{
    best_response, exhaustive_partition, incumbent_energy, is_pure_nash, min_energy_equilibrium,
    optimize_partition, optimize_partition_scalar, optimize_partition_unpruned,
    optimize_partition_with_stats, total_energy, CoordinatedRma, CurvePoint, EnergyCurve,
    GameConfig, IncrementalOptimizer, LocalOptimizer, LocalOptimizerConfig, ModelKind,
};
use qosrm_types::{
    AppId, CoreId, CoreObservation, CoreScalingProfile, CoreSizeIdx, FreqLevel, IntervalStats,
    MissProfile, MlpProfile, PlatformConfig, QosSpec, ResourceManager, SystemSetting,
};

fn curve_strategy(max_ways: usize) -> impl Strategy<Value = EnergyCurve> {
    // Leading infeasible prefix of 0..=3 ways, then arbitrary positive
    // energies.
    (0usize..4, prop::collection::vec(0.1f64..20.0, max_ways)).prop_map(
        move |(infeasible, energies)| {
            let points = energies
                .into_iter()
                .enumerate()
                .map(|(i, e)| {
                    if i < infeasible {
                        None
                    } else {
                        Some(CurvePoint {
                            energy_joules: e,
                            freq: FreqLevel(i % 13),
                            core_size: CoreSizeIdx(i % 3),
                            time_seconds: 0.05,
                            ways: i + 1,
                        })
                    }
                })
                .collect();
            EnergyCurve::new(points)
        },
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// The pairwise reduction always returns either an optimal feasible
    /// partition (same total energy as brute force) or `None` exactly when
    /// brute force also finds nothing.
    #[test]
    fn pairwise_reduction_matches_exhaustive(
        curves in prop::collection::vec(curve_strategy(16), 2..5),
    ) {
        let total_ways = 16usize;
        let fast = optimize_partition(&curves, total_ways);
        let brute = exhaustive_partition(&curves, total_ways);
        match (fast, brute) {
            (Some(alloc), Some((best_energy, _))) => {
                let ways_sum: usize = alloc.iter().map(|(w, _)| *w).sum();
                prop_assert_eq!(ways_sum, total_ways);
                let energy: f64 = alloc.iter().map(|(_, p)| p.energy_joules).sum();
                prop_assert!((energy - best_energy).abs() < 1e-9,
                    "reduction found {energy}, exhaustive {best_energy}");
                for (w, _) in &alloc {
                    prop_assert!(*w >= 1);
                }
            }
            (None, None) => {}
            (fast, brute) => {
                prop_assert!(false, "feasibility disagreement: fast={fast:?} brute={brute:?}");
            }
        }
    }

    /// Lower-bound pruning of the min-plus convolution is behaviour
    /// preserving: on arbitrary random curves — non-concave energies, random
    /// leading infeasible prefixes — the pruned reduction returns exactly the
    /// same allocation (ways, VF level, core size and energy per core) as
    /// the naive full scan.
    #[test]
    fn pruned_convolution_equals_naive_min_plus(
        curves in prop::collection::vec(curve_strategy(16), 2..6),
        total_ways in 8usize..17,
    ) {
        let (pruned, _stats) = optimize_partition_with_stats(&curves, total_ways);
        let naive = optimize_partition_unpruned(&curves, total_ways);
        prop_assert_eq!(&pruned, &naive);
        // The public entry point is the pruned path.
        prop_assert_eq!(&pruned, &optimize_partition(&curves, total_ways));
    }

    /// Same equivalence on curves with interior infeasible holes (a QoS
    /// target satisfiable at some allocations but not others), the shape
    /// that makes naive scans skip candidates mid-row.
    #[test]
    fn pruned_convolution_equals_naive_with_holes(
        hole_masks in prop::collection::vec(0u64..65536, 2..5),
        energy_seed in prop::collection::vec(0.1f64..20.0, 16),
    ) {
        let curves: Vec<EnergyCurve> = hole_masks
            .iter()
            .enumerate()
            .map(|(c, &mask)| {
                EnergyCurve::new(
                    (0..16)
                        .map(|w| {
                            if mask & (1 << w) != 0 {
                                None
                            } else {
                                Some(CurvePoint {
                                    energy_joules: energy_seed[(w + c) % 16] + c as f64,
                                    freq: FreqLevel(w % 13),
                                    core_size: CoreSizeIdx(w % 3),
                                    time_seconds: 0.05,
                                    ways: w + 1,
                                })
                            }
                        })
                        .collect(),
                )
            })
            .collect();
        let pruned = optimize_partition(&curves, 16);
        let naive = optimize_partition_unpruned(&curves, 16);
        prop_assert_eq!(pruned, naive);
    }

    /// The 4-wide-chunked min-plus kernel is bit-identical to both the
    /// scalar pruned kernel and the naive unpruned scan on arbitrary random
    /// curves (non-concave energies, random leading infeasible prefixes),
    /// and its prune decisions replay the scalar sequence exactly (same
    /// cell-update and prune counts).
    #[test]
    fn chunked_convolution_is_bit_identical_across_kernels(
        curves in prop::collection::vec(curve_strategy(16), 2..6),
        total_ways in 8usize..17,
    ) {
        let (chunked, chunked_stats) = optimize_partition_with_stats(&curves, total_ways);
        let (scalar, scalar_stats) = optimize_partition_scalar(&curves, total_ways);
        prop_assert_eq!(&chunked, &scalar);
        prop_assert_eq!(&chunked, &optimize_partition_unpruned(&curves, total_ways));
        prop_assert_eq!(chunked_stats.ops, scalar_stats.ops);
        prop_assert_eq!(chunked_stats.pruned, scalar_stats.pruned);
        prop_assert_eq!(scalar_stats.lanes, 0);
    }

    /// The warm-row incremental optimizer is bit-identical to a cold full
    /// rebuild over arbitrary sequences of single-core curve patches, with
    /// the previous round's allocation seeding the pruning incumbent — the
    /// exact flow of the manager's delta path.
    #[test]
    fn incremental_arena_matches_cold_rebuild(
        curves in prop::collection::vec(curve_strategy(16), 2..6),
        patches in prop::collection::vec((0usize..6, curve_strategy(16)), 1..6),
        total_ways in 8usize..17,
    ) {
        let mut curves = curves;
        let mut warm = IncrementalOptimizer::new();
        let mut last_ways: Option<Vec<usize>> = None;
        let dirty = vec![true; curves.len()];
        let (first, _, _) = warm.optimize(&curves, &dirty, total_ways, f64::INFINITY);
        prop_assert_eq!(&first, &optimize_partition(&curves, total_ways));
        if let Some(alloc) = &first {
            last_ways = Some(alloc.iter().map(|&(w, _)| w).collect());
        }
        for (slot, replacement) in patches {
            let core = slot % curves.len();
            curves[core] = replacement;
            let mut dirty = vec![false; curves.len()];
            dirty[core] = true;
            let incumbent = match &last_ways {
                Some(ways) => incumbent_energy(&curves, ways),
                None => f64::INFINITY,
            };
            let (patched, _, warm_stats) = warm.optimize(&curves, &dirty, total_ways, incumbent);
            let cold = optimize_partition(&curves, total_ways);
            prop_assert_eq!(&patched, &cold);
            prop_assert!(warm_stats.rows_reused > 0 || curves.len() == 2,
                "a single-core patch must reuse sibling rows");
            if let Some(alloc) = &patched {
                last_ways = Some(alloc.iter().map(|&(w, _)| w).collect());
            }
        }
    }

    /// Smoothing a curve never increases any point's energy and produces a
    /// non-increasing curve beyond the first feasible allocation.
    #[test]
    fn smoothing_is_monotone_and_conservative(curve in curve_strategy(16)) {
        let mut smoothed = curve.clone();
        smoothed.smooth_monotone();
        let mut last = f64::INFINITY;
        for w in 1..=16usize {
            let s = smoothed.energy(w);
            prop_assert!(s <= curve.energy(w) + 1e-12);
            if s.is_finite() {
                prop_assert!(s <= last + 1e-12);
                last = s;
            }
        }
    }
}

/// Builds a synthetic observation with a parameterized miss curve.
fn observation(base_misses: u64, decay_percent: u64, mlp_ratio: u64) -> CoreObservation {
    observation_on(
        &PlatformConfig::paper2(4),
        base_misses,
        decay_percent,
        mlp_ratio,
        true,
    )
}

/// Like [`observation`], on an explicit platform and with the Paper II
/// profiles (MLP-aware ATD, ILP monitor) optionally absent.
fn observation_on(
    platform: &PlatformConfig,
    base_misses: u64,
    decay_percent: u64,
    mlp_ratio: u64,
    with_profiles: bool,
) -> CoreObservation {
    let baseline_ways = platform.baseline_ways_per_core();
    let decay = 1.0 - decay_percent as f64 / 100.0;
    let misses: Vec<u64> = (0..16)
        .map(|w| (base_misses as f64 * decay.powi(w)) as u64)
        .collect();
    let ratio = 1.0 + mlp_ratio as f64 / 10.0;
    let leading: Vec<Vec<u64>> = (0..3)
        .map(|s| {
            misses
                .iter()
                .map(|&m| (m as f64 / (1.0 + s as f64 * (ratio - 1.0))).round() as u64)
                .collect()
        })
        .collect();
    let freq = platform.baseline_freq();
    let freq_hz = platform.vf.point(freq).freq_hz();
    let exec_cycles = 110_000_000u64;
    let stall = leading[1][baseline_ways - 1] as f64 * 70e-9;
    let elapsed = exec_cycles as f64 / freq_hz + stall;
    CoreObservation {
        app: AppId(0),
        stats: IntervalStats {
            instructions: 100_000_000,
            cycles: (elapsed * freq_hz) as u64,
            exec_cycles,
            llc_accesses: 2_000_000,
            llc_misses: misses[baseline_ways - 1],
            leading_misses: leading[1][baseline_ways - 1],
            elapsed_seconds: elapsed,
            freq,
            core_size: platform.baseline_core_size,
            ways: baseline_ways,
        },
        miss_profile: MissProfile::new(misses),
        mlp_profile: with_profiles.then(|| MlpProfile::new(leading)),
        scaling_profile: with_profiles.then(|| CoreScalingProfile::new(vec![1.4, 1.1, 1.1])),
        perfect: None,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Local optimization invariants, across a range of application shapes:
    /// the baseline allocation is always feasible, the curve is monotone in
    /// energy, and relaxing the QoS target never increases the optimum.
    #[test]
    fn local_optimizer_invariants(
        base_misses in 10_000u64..2_000_000,
        decay_percent in 0u64..20,
        mlp_ratio in 0u64..30,
        relaxation in 0u64..6,
    ) {
        let platform = PlatformConfig::paper2(4);
        let optimizer = LocalOptimizer::new(
            &platform,
            LocalOptimizerConfig {
                control_dvfs: true,
                control_core_size: true,
                model: ModelKind::MlpAware,
                energy_params: power_model::EnergyParams::default(),
            },
        );
        let obs = observation(base_misses, decay_percent, mlp_ratio);
        let strict = optimizer.energy_curve(&obs, QosSpec::STRICT);
        let baseline_ways = platform.baseline_ways_per_core();
        prop_assert!(strict.point(baseline_ways).is_some(),
            "baseline allocation must always meet the baseline-defined target");
        for w in 2..=16usize {
            prop_assert!(strict.energy(w) <= strict.energy(w - 1) + 1e-12);
        }
        let relaxed = optimizer.energy_curve(&obs, QosSpec::relaxed_by(relaxation as f64 / 10.0));
        for w in 1..=16usize {
            prop_assert!(relaxed.energy(w) <= strict.energy(w) + 1e-12,
                "relaxing the target cannot make the optimum worse at {w} ways");
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// The manager's incremental delta path emits bit-identical settings to
    /// the cold manager across random sequences of per-core observation
    /// deltas: every round re-invokes all cores, but only the cores whose
    /// observation actually changed may rebuild their curve.
    #[test]
    fn delta_path_manager_matches_cold_rebuild(
        bases in prop::collection::vec(10_000u64..2_000_000, 4),
        decays in prop::collection::vec(0u64..20, 4),
        deltas in prop::collection::vec((0usize..4, 10_000u64..2_000_000), 1..5),
    ) {
        let platform = PlatformConfig::paper2(4);
        let mut cold = CoordinatedRma::paper1(&platform, vec![QosSpec::STRICT; 4]);
        let mut delta = CoordinatedRma::paper1(&platform, vec![QosSpec::STRICT; 4])
            .with_incremental();
        cold.reset(4);
        delta.reset(4);
        let mut observations: Vec<CoreObservation> = (0..4)
            .map(|i| observation_on(&platform, bases[i], decays[i], 5 + i as u64, true))
            .collect();
        let mut cold_setting = SystemSetting::baseline(&platform);
        let mut delta_setting = SystemSetting::baseline(&platform);
        let round_all = |cold: &mut CoordinatedRma,
                             delta: &mut CoordinatedRma,
                             observations: &[CoreObservation],
                             cold_setting: &mut SystemSetting,
                             delta_setting: &mut SystemSetting|
         -> Result<(), String> {
            for (i, obs) in observations.iter().enumerate() {
                *cold_setting = cold.on_interval(CoreId(i), obs, cold_setting);
                *delta_setting = delta.on_interval(CoreId(i), obs, delta_setting);
                prop_assert!(delta_setting == cold_setting,
                    "delta path diverged at core {}", i);
            }
            Ok(())
        };
        round_all(&mut cold, &mut delta, &observations,
            &mut cold_setting, &mut delta_setting)?;
        for (core, new_base) in deltas {
            observations[core] =
                observation_on(&platform, new_base, decays[core], 5 + core as u64, true);
            round_all(&mut cold, &mut delta, &observations,
                &mut cold_setting, &mut delta_setting)?;
        }
        // The delta path never builds more curves than the cold manager and
        // reuses at least the unchanged cores of the patch rounds.
        let cold_counters = cold.work_counters();
        let delta_counters = delta.work_counters();
        prop_assert_eq!(cold_counters.invocations, delta_counters.invocations);
        prop_assert!(delta_counters.curve_builds <= cold_counters.curve_builds);
        prop_assert!(delta_counters.delta_invocations > 0);
    }
}

/// Deterministic pseudo-random ground-truth table for the Perfect-model
/// axis: times vary non-monotonically in every dimension so the builder's
/// full-scan table path is exercised (the feasibility partition point must
/// NOT be applied to table times).
fn perfect_table(platform: &PlatformConfig, seed: u64) -> qosrm_types::ConfigTable {
    qosrm_types::ConfigTable::from_fn(
        platform.num_core_sizes(),
        platform.vf.num_levels(),
        platform.llc.associativity,
        |s, f, w| {
            let mut x = seed
                .wrapping_mul(0x9e37_79b9_7f4a_7c15)
                .wrapping_add((s.index() * 1000 + f.index() * 50 + w) as u64);
            x ^= x >> 33;
            x = x.wrapping_mul(0xff51_afd7_ed55_8ccd);
            x ^= x >> 33;
            qosrm_types::ConfigMetrics {
                time_seconds: 0.02 + (x % 1000) as f64 * 1e-4,
                energy_joules: 0.5 + ((x >> 10) % 1000) as f64 * 1e-2,
                llc_misses: x % 100_000,
                leading_misses: x % 50_000,
            }
        },
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// The staged `CurveBuilder` is bit-identical to the scalar reference
    /// across random observations, QoS relaxations, platform axes (Paper I
    /// medium-only cores, Paper II 4- and 8-core), every analytical model,
    /// and observations lacking the Paper II MLP/ILP profiles.
    #[test]
    fn batched_builder_is_bit_identical_to_scalar(
        base_misses in 10_000u64..2_000_000,
        decay_percent in 0u64..20,
        mlp_ratio in 0u64..30,
        relaxation in 0u64..6,
        with_profiles in 0usize..2,
        platform_axis in 0usize..3,
        model_axis in 0usize..4,
        control_dvfs in 0usize..2,
        control_core in 0usize..2,
    ) {
        let platform = match platform_axis {
            0 => PlatformConfig::paper1(4),
            1 => PlatformConfig::paper2(4),
            _ => PlatformConfig::paper2(8),
        };
        let model = [
            ModelKind::SimpleLatency,
            ModelKind::ConstantMlp,
            ModelKind::MlpAware,
            // No table on the observation: Perfect degrades to the
            // constant-MLP analytical path, which must also match.
            ModelKind::Perfect,
        ][model_axis];
        let obs = observation_on(
            &platform,
            base_misses,
            decay_percent,
            mlp_ratio,
            with_profiles == 1,
        );
        let optimizer = LocalOptimizer::new(
            &platform,
            LocalOptimizerConfig {
                control_dvfs: control_dvfs == 1,
                control_core_size: control_core == 1,
                model,
                energy_params: power_model::EnergyParams::default(),
            },
        );
        let qos = QosSpec::relaxed_by(relaxation as f64 / 10.0);
        let batched = optimizer.energy_curve(&obs, qos);
        let scalar = optimizer.energy_curve_scalar_reference(&obs, qos);
        prop_assert_eq!(batched, scalar);
    }

    /// Same bit-identity with a Perfect-model ground-truth table attached:
    /// table times are arbitrary (non-monotone in frequency), so this pins
    /// the builder's full-scan table path.
    #[test]
    fn batched_builder_is_bit_identical_on_perfect_tables(
        base_misses in 10_000u64..2_000_000,
        seed in 0u64..10_000,
        relaxation in 0u64..6,
        platform_axis in 0usize..2,
        control_core in 0usize..2,
    ) {
        let platform = match platform_axis {
            0 => PlatformConfig::paper1(4),
            _ => PlatformConfig::paper2(4),
        };
        let mut obs = observation_on(&platform, base_misses, 10, 5, true);
        obs.perfect = Some(perfect_table(&platform, seed));
        let optimizer = LocalOptimizer::new(
            &platform,
            LocalOptimizerConfig {
                control_dvfs: true,
                control_core_size: control_core == 1,
                model: ModelKind::Perfect,
                energy_params: power_model::EnergyParams::default(),
            },
        );
        let qos = QosSpec::relaxed_by(relaxation as f64 / 10.0);
        let batched = optimizer.energy_curve_counted(&obs, qos);
        let scalar = optimizer.energy_curve_scalar_reference(&obs, qos);
        prop_assert_eq!(&batched.curve, &scalar);
        // The table path reads every cell: its measured count is exactly the
        // worst-case bound.
        prop_assert_eq!(batched.evaluations, optimizer.evaluations_per_invocation());
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Every converged iterated-best-response outcome passes the
    /// independent exhaustive `is_pure_nash` verifier exactly — the
    /// solver never consults the checker, so this adversarially validates
    /// the solver's fixed points against the equilibrium definition on
    /// arbitrary random curves (non-monotone, random infeasible prefixes).
    #[test]
    fn converged_best_response_outcomes_are_pure_nash(
        curves in prop::collection::vec(curve_strategy(16), 2..5),
        total_ways in 8usize..17,
    ) {
        let (outcome, stats) = best_response(&curves, total_ways, &GameConfig::default());
        if let Some(outcome) = outcome {
            prop_assert!(stats.rounds >= 1);
            prop_assert!(stats.evaluations > 0);
            // The slack-allowed invariants hold regardless of convergence.
            let used: usize = outcome.strategies.iter().sum();
            prop_assert!(used <= total_ways);
            prop_assert!(outcome.strategies.iter().all(|&w| w >= 1));
            prop_assert!(
                (outcome.total_energy - total_energy(&curves, &outcome.strategies)).abs() < 1e-9
            );
            if outcome.converged {
                prop_assert!(
                    is_pure_nash(&curves, total_ways, &outcome.strategies),
                    "converged outcome {:?} is not a pure Nash equilibrium",
                    outcome.strategies
                );
            }
        }
    }

    /// Equilibrium selection returns the minimum-total-energy equilibrium:
    /// brute-force every strategy vector, keep those the independent checker
    /// certifies, and the solver's pick must match the cheapest exactly.
    #[test]
    fn equilibrium_selection_is_the_minimum_energy_equilibrium(
        curves in prop::collection::vec(curve_strategy(8), 2..4),
    ) {
        let total_ways = 8usize;
        let (outcome, stats) = min_energy_equilibrium(&curves, total_ways);

        let mut brute_best: Option<f64> = None;
        let mut vector = vec![1usize; curves.len()];
        loop {
            if is_pure_nash(&curves, total_ways, &vector) {
                let e = total_energy(&curves, &vector);
                if brute_best.is_none_or(|b| e < b) {
                    brute_best = Some(e);
                }
            }
            // Odometer over {1..=8}^n.
            let mut i = 0;
            loop {
                if i == vector.len() {
                    break;
                }
                vector[i] += 1;
                if vector[i] <= 8 {
                    break;
                }
                vector[i] = 1;
                i += 1;
            }
            if i == vector.len() {
                break;
            }
        }

        match (outcome, brute_best) {
            (Some(outcome), Some(best)) => {
                prop_assert!(outcome.converged);
                prop_assert!(stats.equilibria_examined > 0);
                prop_assert!(
                    is_pure_nash(&curves, total_ways, &outcome.strategies),
                    "selected outcome {:?} is not an equilibrium",
                    outcome.strategies
                );
                prop_assert!(
                    (outcome.total_energy - best).abs() < 1e-9,
                    "selected {} but the cheapest equilibrium costs {}",
                    outcome.total_energy,
                    best
                );
            }
            (None, None) => {}
            (outcome, brute) => prop_assert!(
                false,
                "existence disagreement: solver={outcome:?} brute={brute:?}"
            ),
        }
    }

    /// Price of anarchy is at least 1 (up to float noise): no best-response
    /// outcome beats the cooperative optimum on the smoothed curves, whose
    /// exact-sum optimum equals the slack-allowed one (free disposal). Both
    /// solvers also agree with the arbiter on feasibility.
    #[test]
    fn price_of_anarchy_is_at_least_one(
        curves in prop::collection::vec(curve_strategy(16), 2..5),
        total_ways in 8usize..17,
    ) {
        let mut smoothed = curves.clone();
        for c in &mut smoothed {
            c.smooth_monotone();
        }
        let coop = optimize_partition(&smoothed, total_ways);
        let (nash, _) = best_response(&curves, total_ways, &GameConfig::default());
        let (equilibrium, _) = min_energy_equilibrium(&curves, total_ways);
        prop_assert_eq!(coop.is_some(), nash.is_some());
        prop_assert_eq!(coop.is_some(), equilibrium.is_some());
        if let (Some(coop), Some(nash), Some(equilibrium)) = (coop, nash, equilibrium) {
            let coop_energy: f64 = coop.iter().map(|(_, p)| p.energy_joules).sum();
            prop_assert!(
                nash.total_energy >= coop_energy - 1e-9,
                "PoA < 1: best response found {} below the cooperative {}",
                nash.total_energy,
                coop_energy
            );
            prop_assert!(equilibrium.total_energy >= coop_energy - 1e-9);
            // The selected equilibrium is never worse than an arbitrary
            // best-response fixed point it coexists with.
            if nash.converged {
                prop_assert!(equilibrium.total_energy <= nash.total_energy + 1e-9);
            }
        }
    }

    /// Determinism: re-solving the same instance yields byte-identical
    /// serialized outcomes and identical work counters.
    #[test]
    fn game_outcomes_serialize_deterministically(
        curves in prop::collection::vec(curve_strategy(16), 2..5),
        total_ways in 8usize..17,
    ) {
        let first = best_response(&curves, total_ways, &GameConfig::default());
        let second = best_response(&curves, total_ways, &GameConfig::default());
        prop_assert_eq!(&first.1, &second.1);
        prop_assert_eq!(
            serde_json::to_string(&first.0).unwrap(),
            serde_json::to_string(&second.0).unwrap()
        );
        let first = min_energy_equilibrium(&curves, total_ways);
        let second = min_energy_equilibrium(&curves, total_ways);
        prop_assert_eq!(&first.1, &second.1);
        prop_assert_eq!(
            serde_json::to_string(&first.0).unwrap(),
            serde_json::to_string(&second.0).unwrap()
        );
    }
}
