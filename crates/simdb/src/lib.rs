//! # simdb
//!
//! The simulation-results database of the evaluation pipeline.
//!
//! The paper performs one expensive, embarrassingly parallel step up front:
//! detailed Sniper + McPAT simulation of every benchmark phase for every
//! resource setting, collected into a database that all subsequent
//! resource-management experiments reuse. This crate reproduces that step:
//!
//! * [`builder`] characterizes every phase of every requested benchmark in
//!   parallel (Rayon) using the `workload` and `cache-model` substrates;
//! * [`record`] stores the per-benchmark phase characterizations, phase
//!   traces and categories;
//! * [`ground_truth`] evaluates timing (via `core-model`) and energy (via
//!   `power-model`) for any `(phase, core size, VF level, ways)` point — the
//!   "query the database" operation of the RMA simulator;
//! * [`persist`] saves and loads the database as JSON so the expensive step
//!   can be cached across experiment runs.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod builder;
pub mod ground_truth;
pub mod persist;
pub mod record;

pub use builder::{build_database, BuildOptions};
pub use ground_truth::GroundTruth;
pub use record::{BenchmarkRecord, SimDb};
