//! Parallel construction of the simulation-results database.
//!
//! Characterizing a phase (generating its reference stream and replaying it
//! through the cache substrate) is the expensive step of the pipeline, and —
//! exactly as the paper notes for its Sniper runs — every (benchmark, phase)
//! pair is independent, so the build fans out over a Rayon thread pool.

use crate::record::{BenchmarkRecord, SimDb};
use qosrm_types::PlatformConfig;
use rayon::prelude::*;
use workload::{
    classify, BenchmarkProfile, CategoryThresholds, CharacterizationConfig, PhaseCharacterizer,
    WorkloadMix,
};

/// Options of the database build.
#[derive(Debug, Clone)]
pub struct BuildOptions {
    /// Characterization configuration (replay scale, ATD sampling, warm-up).
    pub characterization: CharacterizationConfig,
    /// Categorization thresholds.
    pub thresholds: CategoryThresholds,
}

impl BuildOptions {
    /// Default options for a platform.
    pub fn for_platform(platform: &PlatformConfig) -> Self {
        BuildOptions {
            characterization: CharacterizationConfig::for_platform(platform),
            thresholds: CategoryThresholds::default(),
        }
    }

    /// Coarse, fast options for unit tests.
    pub fn quick_for_tests(platform: &PlatformConfig) -> Self {
        BuildOptions {
            characterization: CharacterizationConfig::quick_for_tests(platform),
            thresholds: CategoryThresholds::default(),
        }
    }
}

/// Characterizes one benchmark into a database record.
fn build_record(
    profile: &BenchmarkProfile,
    characterizer: &PhaseCharacterizer,
    platform: &PlatformConfig,
    thresholds: &CategoryThresholds,
) -> BenchmarkRecord {
    let phases: Vec<_> = profile
        .phases
        .par_iter()
        .enumerate()
        .map(|(i, spec)| characterizer.characterize(spec, profile.phase_seed(i)))
        .collect();
    let trace = profile.phase_trace();
    let weights = trace.weights();
    let weighted: Vec<_> = phases
        .iter()
        .cloned()
        .zip(weights.iter().copied())
        .collect();
    let category = classify(&weighted, platform.baseline_ways_per_core(), thresholds);
    BenchmarkRecord {
        name: profile.name.clone(),
        phases,
        trace,
        category,
    }
}

/// Builds a database covering the given benchmarks.
pub fn build_database(
    platform: &PlatformConfig,
    benchmarks: &[BenchmarkProfile],
    options: &BuildOptions,
) -> SimDb {
    let characterizer = PhaseCharacterizer::new(platform, options.characterization.clone());
    let records: Vec<BenchmarkRecord> = benchmarks
        .par_iter()
        .map(|profile| build_record(profile, &characterizer, platform, &options.thresholds))
        .collect();
    SimDb::new(platform.clone(), records)
}

/// Builds a database covering exactly the benchmarks referenced by the given
/// workload mixes (each benchmark characterized once even if it appears in
/// several mixes).
pub fn build_database_for_mixes(
    platform: &PlatformConfig,
    mixes: &[WorkloadMix],
    options: &BuildOptions,
) -> SimDb {
    let mut names: Vec<&str> = mixes
        .iter()
        .flat_map(|m| m.benchmarks.iter().map(String::as_str))
        .collect();
    names.sort_unstable();
    names.dedup();
    let profiles: Vec<BenchmarkProfile> = names
        .iter()
        .filter_map(|n| workload::benchmark(n))
        .collect();
    build_database(platform, &profiles, options)
}

#[cfg(test)]
mod tests {
    use super::*;
    use workload::benchmark;

    #[test]
    fn builds_records_for_requested_benchmarks() {
        let platform = PlatformConfig::paper2(4);
        let options = BuildOptions::quick_for_tests(&platform);
        let benchmarks = vec![
            benchmark("mcf_like").unwrap(),
            benchmark("libquantum_like").unwrap(),
        ];
        let db = build_database(&platform, &benchmarks, &options);
        assert_eq!(db.len(), 2);
        assert!(db.validate().is_ok());
        let mcf = db.benchmark("mcf_like").unwrap();
        assert_eq!(mcf.phases.len(), 3);
        assert!(mcf.category.paper1.cache_sensitive);
        let libq = db.benchmark("libquantum_like").unwrap();
        assert!(!libq.category.paper1.cache_sensitive);
        assert!(libq.category.paper2.parallelism_sensitive);
    }

    #[test]
    fn mix_build_deduplicates_benchmarks() {
        let platform = PlatformConfig::paper2(4);
        let options = BuildOptions::quick_for_tests(&platform);
        let mixes = vec![
            WorkloadMix::new(
                "a",
                vec!["gamess_like", "povray_like", "gamess_like", "povray_like"],
            ),
            WorkloadMix::new(
                "b",
                vec!["povray_like", "gamess_like", "povray_like", "gamess_like"],
            ),
        ];
        let db = build_database_for_mixes(&platform, &mixes, &options);
        assert_eq!(db.len(), 2);
        assert!(db.benchmark("gamess_like").is_some());
        assert!(db.benchmark("povray_like").is_some());
    }

    #[test]
    fn build_is_deterministic() {
        let platform = PlatformConfig::paper2(4);
        let options = BuildOptions::quick_for_tests(&platform);
        let benchmarks = vec![benchmark("soplex_like").unwrap()];
        let a = build_database(&platform, &benchmarks, &options);
        let b = build_database(&platform, &benchmarks, &options);
        assert_eq!(
            a.benchmark("soplex_like").unwrap(),
            b.benchmark("soplex_like").unwrap()
        );
    }
}
