//! Persistence of the simulation-results database.
//!
//! The database build is the expensive step of the pipeline, so experiments
//! can cache it on disk as JSON and reload it instead of re-characterizing
//! the suite (the paper reuses its Sniper results database across all RMA
//! experiments in the same way).

use crate::record::SimDb;
use qosrm_types::QosrmError;
use serde::{Deserialize, Serialize};
use std::fs;
use std::path::Path;
use std::sync::atomic::{AtomicU64, Ordering};

/// Saves any serializable value to `path` as JSON, creating parent
/// directories as needed.
///
/// Shared by the database cache and by downstream result tables (e.g. the
/// sweep results of `experiments::sweep`), so everything the pipeline
/// persists goes through one code path. The write is atomic (see
/// [`write_atomic`]): a reader — including a later `load`/`resume` — never
/// observes a half-written file, even if the process is killed mid-save.
pub fn save_json<T: Serialize>(value: &T, path: &Path) -> Result<(), QosrmError> {
    let json = serde_json::to_string(value).map_err(|e| QosrmError::Io(e.to_string()))?;
    write_atomic(path, json.as_bytes())
}

/// [`save_json`] with the durability guarantees of [`write_atomic_durable`]:
/// the serialized bytes *and* the directory entry are fsynced before the
/// call returns. Used for crash-recovery state (streaming-run manifests and
/// shard logs) that must survive a power-cut or SIGKILL the instant the
/// writer reports completion.
pub fn save_json_durable<T: Serialize>(value: &T, path: &Path) -> Result<(), QosrmError> {
    let json = serde_json::to_string(value).map_err(|e| QosrmError::Io(e.to_string()))?;
    write_atomic_durable(path, json.as_bytes())
}

/// Distinguishes concurrent temp files of one process (the pid alone is not
/// enough when several threads save under the same directory).
static TEMP_COUNTER: AtomicU64 = AtomicU64::new(0);

/// Atomically replaces the file at `path` with `bytes`, creating parent
/// directories as needed.
///
/// The bytes are written to a unique sibling temp file which is then renamed
/// over `path` — on POSIX a rename within one directory is atomic, so a
/// crash at any point leaves either the old content, the new content, or a
/// stray `.tmp` file, never a truncated `path`.
pub fn write_atomic(path: &Path, bytes: &[u8]) -> Result<(), QosrmError> {
    write_atomic_impl(path, bytes, false)
}

/// [`write_atomic`] plus crash durability: the temp file is fsynced before
/// the rename, and the parent directory is fsynced after it.
///
/// Plain [`write_atomic`] guarantees a reader never sees a torn file, but
/// not that the file survives a crash: the rename can be journaled before
/// the data blocks reach the disk (a zero-length or stale file after a
/// power cut), and the rename itself lives in the directory, so without a
/// directory fsync a crash immediately after "write complete" can roll the
/// whole file back. A daemon that reports a shard as durable must close
/// both windows, in order: data → fsync(file) → rename → fsync(dir).
pub fn write_atomic_durable(path: &Path, bytes: &[u8]) -> Result<(), QosrmError> {
    write_atomic_impl(path, bytes, true)
}

fn write_atomic_impl(path: &Path, bytes: &[u8], durable: bool) -> Result<(), QosrmError> {
    if let Some(parent) = path.parent() {
        if !parent.as_os_str().is_empty() {
            fs::create_dir_all(parent)?;
        }
    }
    let file_name = path
        .file_name()
        .ok_or_else(|| QosrmError::Io(format!("cannot write to {}: no file name", path.display())))?
        .to_string_lossy()
        .into_owned();
    let tmp = path.with_file_name(format!(
        ".{file_name}.{}.{}.tmp",
        std::process::id(),
        TEMP_COUNTER.fetch_add(1, Ordering::Relaxed)
    ));
    let write = || -> std::io::Result<()> {
        let mut file = fs::File::create(&tmp)?;
        std::io::Write::write_all(&mut file, bytes)?;
        if durable {
            // The data must be on stable storage *before* the rename is,
            // or a crash can journal the rename ahead of the contents.
            file.sync_all()?;
        }
        Ok(())
    };
    if let Err(e) = write() {
        // Don't strand the temp file (e.g. a partial write on ENOSPC).
        let _ = fs::remove_file(&tmp);
        return Err(e.into());
    }
    fs::rename(&tmp, path).map_err(|e| {
        let _ = fs::remove_file(&tmp);
        QosrmError::Io(format!(
            "failed to move {} into place at {}: {e}",
            tmp.display(),
            path.display()
        ))
    })?;
    if durable {
        if let Some(parent) = path.parent() {
            if !parent.as_os_str().is_empty() {
                fsync_dir(parent)?;
            }
        }
    }
    Ok(())
}

/// Fsyncs a directory, committing its entries (renames, creations) to
/// stable storage. On Linux a directory opened read-only accepts fsync.
fn fsync_dir(dir: &Path) -> Result<(), QosrmError> {
    let handle = fs::File::open(dir)
        .map_err(|e| QosrmError::Io(format!("cannot open directory {}: {e}", dir.display())))?;
    handle
        .sync_all()
        .map_err(|e| QosrmError::Io(format!("cannot fsync directory {}: {e}", dir.display())))
}

/// Loads any deserializable value from the JSON file at `path`.
pub fn load_json<T: Deserialize>(path: &Path) -> Result<T, QosrmError> {
    let json = fs::read_to_string(path)?;
    serde_json::from_str(&json).map_err(|e| QosrmError::Io(e.to_string()))
}

/// Saves a database to `path` as JSON.
pub fn save(db: &SimDb, path: &Path) -> Result<(), QosrmError> {
    save_json(db, path)
}

/// Loads a database from `path`.
pub fn load(path: &Path) -> Result<SimDb, QosrmError> {
    let db: SimDb = load_json(path)?;
    db.validate()?;
    Ok(db)
}

/// Loads a cached database if `path` exists, otherwise builds it with
/// `build` and saves the result.
pub fn load_or_build(path: &Path, build: impl FnOnce() -> SimDb) -> Result<SimDb, QosrmError> {
    if path.exists() {
        if let Ok(db) = load(path) {
            return Ok(db);
        }
        // A corrupt or stale cache falls through to a rebuild.
    }
    let db = build();
    save(&db, path)?;
    Ok(db)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::{build_database, BuildOptions};
    use qosrm_types::PlatformConfig;
    use workload::benchmark;

    fn tiny_db() -> SimDb {
        let platform = PlatformConfig::paper2(4);
        let options = BuildOptions::quick_for_tests(&platform);
        build_database(&platform, &[benchmark("gamess_like").unwrap()], &options)
    }

    #[test]
    fn save_load_roundtrip() {
        let db = tiny_db();
        let dir = std::env::temp_dir().join("qosrm_simdb_test");
        let path = dir.join("roundtrip.json");
        save(&db, &path).unwrap();
        let loaded = load(&path).unwrap();
        assert_eq!(db, loaded);
        fs::remove_file(&path).ok();
    }

    #[test]
    fn load_missing_file_errors() {
        let path = Path::new("/definitely/not/a/real/path/db.json");
        assert!(load(path).is_err());
    }

    #[test]
    fn load_or_build_builds_once_then_caches() {
        let dir = std::env::temp_dir().join("qosrm_simdb_test");
        let path = dir.join("cache.json");
        fs::remove_file(&path).ok();
        let mut builds = 0;
        let db1 = load_or_build(&path, || {
            builds += 1;
            tiny_db()
        })
        .unwrap();
        assert_eq!(builds, 1);
        let db2 = load_or_build(&path, || {
            builds += 1;
            tiny_db()
        })
        .unwrap();
        assert_eq!(builds, 1, "second call must hit the cache");
        assert_eq!(db1, db2);
        fs::remove_file(&path).ok();
    }

    #[test]
    fn atomic_write_replaces_and_leaves_no_temp_files() {
        let dir = std::env::temp_dir().join("qosrm_simdb_atomic_test");
        fs::create_dir_all(&dir).unwrap();
        let path = dir.join("value.json");
        save_json(&vec![1u64, 2, 3], &path).unwrap();
        // Overwriting an existing file goes through the same temp+rename.
        save_json(&vec![4u64], &path).unwrap();
        let loaded: Vec<u64> = load_json(&path).unwrap();
        assert_eq!(loaded, vec![4]);
        let stray: Vec<_> = fs::read_dir(&dir)
            .unwrap()
            .filter_map(|e| e.ok())
            .filter(|e| e.file_name().to_string_lossy().ends_with(".tmp"))
            .collect();
        assert!(stray.is_empty(), "temp files left behind: {stray:?}");
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn durable_write_replaces_and_leaves_no_temp_files() {
        let dir = std::env::temp_dir().join("qosrm_simdb_durable_test");
        fs::create_dir_all(&dir).unwrap();
        let path = dir.join("value.json");
        write_atomic_durable(&path, b"[1,2]").unwrap();
        // Overwriting goes through the same temp + fsync + rename + dirsync.
        save_json_durable(&vec![7u64], &path).unwrap();
        let loaded: Vec<u64> = load_json(&path).unwrap();
        assert_eq!(loaded, vec![7]);
        let stray: Vec<_> = fs::read_dir(&dir)
            .unwrap()
            .filter_map(|e| e.ok())
            .filter(|e| e.file_name().to_string_lossy().ends_with(".tmp"))
            .collect();
        assert!(stray.is_empty(), "temp files left behind: {stray:?}");
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn corrupt_cache_is_rebuilt() {
        let dir = std::env::temp_dir().join("qosrm_simdb_test");
        fs::create_dir_all(&dir).unwrap();
        let path = dir.join("corrupt.json");
        fs::write(&path, "this is not json").unwrap();
        let db = load_or_build(&path, tiny_db).unwrap();
        assert_eq!(db.len(), 1);
        fs::remove_file(&path).ok();
    }
}
