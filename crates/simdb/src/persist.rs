//! Persistence of the simulation-results database.
//!
//! The database build is the expensive step of the pipeline, so experiments
//! can cache it on disk as JSON and reload it instead of re-characterizing
//! the suite (the paper reuses its Sniper results database across all RMA
//! experiments in the same way).

use crate::record::SimDb;
use qosrm_types::QosrmError;
use serde::{Deserialize, Serialize};
use std::fs;
use std::path::Path;

/// Saves any serializable value to `path` as JSON, creating parent
/// directories as needed.
///
/// Shared by the database cache and by downstream result tables (e.g. the
/// sweep results of `experiments::sweep`), so everything the pipeline
/// persists goes through one code path.
pub fn save_json<T: Serialize>(value: &T, path: &Path) -> Result<(), QosrmError> {
    let json = serde_json::to_string(value).map_err(|e| QosrmError::Io(e.to_string()))?;
    if let Some(parent) = path.parent() {
        if !parent.as_os_str().is_empty() {
            fs::create_dir_all(parent)?;
        }
    }
    fs::write(path, json)?;
    Ok(())
}

/// Loads any deserializable value from the JSON file at `path`.
pub fn load_json<T: Deserialize>(path: &Path) -> Result<T, QosrmError> {
    let json = fs::read_to_string(path)?;
    serde_json::from_str(&json).map_err(|e| QosrmError::Io(e.to_string()))
}

/// Saves a database to `path` as JSON.
pub fn save(db: &SimDb, path: &Path) -> Result<(), QosrmError> {
    save_json(db, path)
}

/// Loads a database from `path`.
pub fn load(path: &Path) -> Result<SimDb, QosrmError> {
    let db: SimDb = load_json(path)?;
    db.validate()?;
    Ok(db)
}

/// Loads a cached database if `path` exists, otherwise builds it with
/// `build` and saves the result.
pub fn load_or_build(path: &Path, build: impl FnOnce() -> SimDb) -> Result<SimDb, QosrmError> {
    if path.exists() {
        if let Ok(db) = load(path) {
            return Ok(db);
        }
        // A corrupt or stale cache falls through to a rebuild.
    }
    let db = build();
    save(&db, path)?;
    Ok(db)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::{build_database, BuildOptions};
    use qosrm_types::PlatformConfig;
    use workload::benchmark;

    fn tiny_db() -> SimDb {
        let platform = PlatformConfig::paper2(4);
        let options = BuildOptions::quick_for_tests(&platform);
        build_database(&platform, &[benchmark("gamess_like").unwrap()], &options)
    }

    #[test]
    fn save_load_roundtrip() {
        let db = tiny_db();
        let dir = std::env::temp_dir().join("qosrm_simdb_test");
        let path = dir.join("roundtrip.json");
        save(&db, &path).unwrap();
        let loaded = load(&path).unwrap();
        assert_eq!(db, loaded);
        fs::remove_file(&path).ok();
    }

    #[test]
    fn load_missing_file_errors() {
        let path = Path::new("/definitely/not/a/real/path/db.json");
        assert!(load(path).is_err());
    }

    #[test]
    fn load_or_build_builds_once_then_caches() {
        let dir = std::env::temp_dir().join("qosrm_simdb_test");
        let path = dir.join("cache.json");
        fs::remove_file(&path).ok();
        let mut builds = 0;
        let db1 = load_or_build(&path, || {
            builds += 1;
            tiny_db()
        })
        .unwrap();
        assert_eq!(builds, 1);
        let db2 = load_or_build(&path, || {
            builds += 1;
            tiny_db()
        })
        .unwrap();
        assert_eq!(builds, 1, "second call must hit the cache");
        assert_eq!(db1, db2);
        fs::remove_file(&path).ok();
    }

    #[test]
    fn corrupt_cache_is_rebuilt() {
        let dir = std::env::temp_dir().join("qosrm_simdb_test");
        fs::create_dir_all(&dir).unwrap();
        let path = dir.join("corrupt.json");
        fs::write(&path, "this is not json").unwrap();
        let db = load_or_build(&path, tiny_db).unwrap();
        assert_eq!(db.len(), 1);
        fs::remove_file(&path).ok();
    }
}
