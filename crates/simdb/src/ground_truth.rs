//! Ground-truth evaluation of any configuration point.
//!
//! Combines the interval timing model (`core-model`) and the energy model
//! (`power-model`) to answer the query the RMA simulator issues for every
//! interval: *how long does this phase take and how much energy does it use
//! at configuration `(core size, VF level, ways)`?* — the role played by the
//! Sniper + McPAT results database in the paper.

use crate::record::SimDb;
use core_model::{IntervalModel, IntervalOutcome, PhaseCharacterization};
use power_model::{EnergyBreakdown, EnergyModel, IntervalUsage};
use qosrm_types::{
    ConfigMetrics, ConfigTable, CoreSetting, CoreSizeIdx, FreqLevel, IntervalStats, PhaseId,
    PlatformConfig, QosrmError,
};

/// Ground-truth evaluator bound to a platform.
#[derive(Debug, Clone)]
pub struct GroundTruth {
    platform: PlatformConfig,
    interval_model: IntervalModel,
    energy_model: EnergyModel,
}

impl GroundTruth {
    /// Creates an evaluator with the default energy calibration.
    pub fn new(platform: &PlatformConfig) -> Self {
        GroundTruth {
            platform: platform.clone(),
            interval_model: IntervalModel::new(platform),
            energy_model: EnergyModel::default(),
        }
    }

    /// Creates an evaluator with an explicit energy model.
    pub fn with_energy_model(platform: &PlatformConfig, energy_model: EnergyModel) -> Self {
        GroundTruth {
            platform: platform.clone(),
            interval_model: IntervalModel::new(platform),
            energy_model,
        }
    }

    /// The platform.
    pub fn platform(&self) -> &PlatformConfig {
        &self.platform
    }

    /// The energy model.
    pub fn energy_model(&self) -> &EnergyModel {
        &self.energy_model
    }

    /// The interval timing model.
    pub fn interval_model(&self) -> &IntervalModel {
        &self.interval_model
    }

    /// Timing of one interval of `phase` at `(size, freq, ways)`.
    pub fn timing(
        &self,
        phase: &PhaseCharacterization,
        size: CoreSizeIdx,
        freq: FreqLevel,
        ways: usize,
    ) -> IntervalOutcome {
        self.interval_model
            .evaluate(phase, size, self.platform.vf.point(freq), ways)
    }

    /// Energy of one interval of `phase` at `(size, freq, ways)`, given its
    /// timing outcome.
    pub fn energy(
        &self,
        phase: &PhaseCharacterization,
        size: CoreSizeIdx,
        freq: FreqLevel,
        ways: usize,
        outcome: &IntervalOutcome,
    ) -> EnergyBreakdown {
        let core = self.platform.core_size(size);
        let usage = IntervalUsage {
            instructions: phase.instructions,
            time_seconds: outcome.time_seconds,
            voltage: self.platform.vf.point(freq).voltage,
            dynamic_epi_scale: core.dynamic_epi_scale,
            static_power_scale: core.static_power_scale,
            llc_accesses: phase.llc_accesses,
            llc_ways: ways,
            llc_misses: outcome.llc_misses,
            dram_background_share: 1.0 / self.platform.num_cores as f64,
        };
        self.energy_model.interval_energy(&usage)
    }

    /// Combined timing + energy metrics of one interval.
    pub fn metrics(
        &self,
        phase: &PhaseCharacterization,
        size: CoreSizeIdx,
        freq: FreqLevel,
        ways: usize,
    ) -> ConfigMetrics {
        let outcome = self.timing(phase, size, freq, ways);
        let energy = self.energy(phase, size, freq, ways, &outcome);
        ConfigMetrics {
            time_seconds: outcome.time_seconds,
            energy_joules: energy.total(),
            llc_misses: outcome.llc_misses,
            leading_misses: outcome.leading_misses,
        }
    }

    /// Metrics of one interval at a [`CoreSetting`].
    pub fn metrics_at(&self, phase: &PhaseCharacterization, setting: CoreSetting) -> ConfigMetrics {
        self.metrics(phase, setting.core_size, setting.freq, setting.ways)
    }

    /// The hardware performance-counter view of one interval at a setting
    /// (what the resource manager observes).
    pub fn interval_stats(
        &self,
        phase: &PhaseCharacterization,
        setting: CoreSetting,
    ) -> IntervalStats {
        self.interval_model.interval_stats(
            phase,
            setting.core_size,
            setting.freq,
            self.platform.vf.point(setting.freq),
            setting.ways,
        )
    }

    /// The full ground-truth configuration table of one phase (used by the
    /// perfect-model experiments).
    pub fn config_table(&self, phase: &PhaseCharacterization) -> ConfigTable {
        ConfigTable::from_fn(
            self.platform.num_core_sizes(),
            self.platform.vf.num_levels(),
            self.platform.llc.associativity,
            |size, freq, ways| self.metrics(phase, size, freq, ways),
        )
    }

    /// Convenience query against a database: metrics of `(benchmark, phase)`
    /// at `(size, freq, ways)`.
    pub fn query(
        &self,
        db: &SimDb,
        benchmark: &str,
        phase: PhaseId,
        size: CoreSizeIdx,
        freq: FreqLevel,
        ways: usize,
    ) -> Result<ConfigMetrics, QosrmError> {
        let record = db.require(benchmark)?;
        if phase.index() >= record.phases.len() {
            return Err(QosrmError::MissingRecord(format!(
                "{benchmark} has no phase {}",
                phase.index()
            )));
        }
        Ok(self.metrics(record.phase(phase), size, freq, ways))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn phase() -> PhaseCharacterization {
        PhaseCharacterization {
            instructions: 100_000_000,
            llc_accesses: 2_000_000,
            exec_cpi: vec![1.3, 1.0, 0.8],
            misses_per_way: (0..16).map(|w| 900_000 - 40_000 * w as u64).collect(),
            leading_misses: vec![
                (0..16)
                    .map(|w| ((900_000 - 40_000 * w as u64) as f64 * 0.9) as u64)
                    .collect(),
                (0..16)
                    .map(|w| ((900_000 - 40_000 * w as u64) as f64 * 0.6) as u64)
                    .collect(),
                (0..16)
                    .map(|w| ((900_000 - 40_000 * w as u64) as f64 * 0.4) as u64)
                    .collect(),
            ],
            atd_misses_per_way: (0..16).map(|w| 900_000 - 40_000 * w as u64).collect(),
            atd_leading_misses: vec![vec![0; 16], vec![0; 16], vec![0; 16]],
        }
    }

    fn ground_truth() -> GroundTruth {
        GroundTruth::new(&PlatformConfig::paper2(4))
    }

    #[test]
    fn lower_frequency_saves_energy_but_costs_time() {
        let gt = ground_truth();
        let ph = phase();
        let slow = gt.metrics(&ph, CoreSizeIdx(1), FreqLevel(0), 4);
        let base = gt.metrics(&ph, CoreSizeIdx(1), gt.platform().baseline_freq(), 4);
        assert!(slow.time_seconds > base.time_seconds);
        assert!(slow.energy_joules < base.energy_joules);
    }

    #[test]
    fn more_cache_reduces_misses_and_dram_energy() {
        let gt = ground_truth();
        let ph = phase();
        let few = gt.metrics(&ph, CoreSizeIdx(1), gt.platform().baseline_freq(), 2);
        let many = gt.metrics(&ph, CoreSizeIdx(1), gt.platform().baseline_freq(), 12);
        assert!(many.llc_misses < few.llc_misses);
        assert!(many.time_seconds < few.time_seconds);
    }

    #[test]
    fn config_table_covers_whole_space() {
        let gt = ground_truth();
        let table = gt.config_table(&phase());
        assert_eq!(table.num_core_sizes(), 3);
        assert_eq!(table.num_freqs(), 13);
        assert_eq!(table.num_ways(), 16);
        // Spot-check consistency with direct evaluation.
        let direct = gt.metrics(&phase(), CoreSizeIdx(2), FreqLevel(5), 7);
        let from_table = table.get(CoreSizeIdx(2), FreqLevel(5), 7);
        assert!((direct.time_seconds - from_table.time_seconds).abs() < 1e-15);
        assert!((direct.energy_joules - from_table.energy_joules).abs() < 1e-15);
    }

    #[test]
    fn interval_stats_match_setting() {
        let gt = ground_truth();
        let setting = CoreSetting {
            core_size: CoreSizeIdx(2),
            freq: FreqLevel(3),
            ways: 6,
        };
        let stats = gt.interval_stats(&phase(), setting);
        assert_eq!(stats.ways, 6);
        assert_eq!(stats.core_size, CoreSizeIdx(2));
        assert_eq!(stats.freq, FreqLevel(3));
        assert!(stats.elapsed_seconds > 0.0);
    }

    #[test]
    fn query_reports_missing_records() {
        let gt = ground_truth();
        let db = SimDb::new(PlatformConfig::paper2(4), vec![]);
        let err = gt.query(&db, "nope", PhaseId(0), CoreSizeIdx(0), FreqLevel(0), 1);
        assert!(err.is_err());
    }
}
