//! Database records.

use core_model::PhaseCharacterization;
use qosrm_types::{PhaseId, PlatformConfig, QosrmError};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use workload::{AppCategory, PhaseTrace};

/// Everything the RMA simulator needs to know about one benchmark.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BenchmarkRecord {
    /// Benchmark name.
    pub name: String,
    /// Characterization of every phase (indexed by [`PhaseId`]).
    pub phases: Vec<PhaseCharacterization>,
    /// Phase trace of a full execution.
    pub trace: PhaseTrace,
    /// Category under the Paper I / Paper II criteria.
    pub category: AppCategory,
}

impl BenchmarkRecord {
    /// The characterization of phase `phase`.
    pub fn phase(&self, phase: PhaseId) -> &PhaseCharacterization {
        &self.phases[phase.index()]
    }

    /// Number of intervals in one full execution of the benchmark.
    pub fn trace_intervals(&self) -> usize {
        self.trace.len()
    }

    /// Validates internal consistency.
    pub fn validate(&self) -> Result<(), QosrmError> {
        if self.phases.is_empty() {
            return Err(QosrmError::InvalidWorkload(format!(
                "{}: no phases in record",
                self.name
            )));
        }
        if self.trace.num_phases() != self.phases.len() {
            return Err(QosrmError::InvalidWorkload(format!(
                "{}: trace references {} phases, record has {}",
                self.name,
                self.trace.num_phases(),
                self.phases.len()
            )));
        }
        for p in &self.phases {
            p.validate()?;
        }
        Ok(())
    }
}

/// The simulation-results database: benchmark records plus the platform they
/// were characterized against.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SimDb {
    platform: PlatformConfig,
    benchmarks: BTreeMap<String, BenchmarkRecord>,
}

impl SimDb {
    /// Creates a database from records.
    pub fn new(platform: PlatformConfig, records: Vec<BenchmarkRecord>) -> Self {
        let benchmarks = records.into_iter().map(|r| (r.name.clone(), r)).collect();
        SimDb {
            platform,
            benchmarks,
        }
    }

    /// The platform the database was built for.
    pub fn platform(&self) -> &PlatformConfig {
        &self.platform
    }

    /// Number of benchmarks in the database.
    pub fn len(&self) -> usize {
        self.benchmarks.len()
    }

    /// Whether the database holds no benchmarks.
    pub fn is_empty(&self) -> bool {
        self.benchmarks.is_empty()
    }

    /// Names of the stored benchmarks.
    pub fn benchmark_names(&self) -> impl Iterator<Item = &str> {
        self.benchmarks.keys().map(String::as_str)
    }

    /// Looks up a benchmark record.
    pub fn benchmark(&self, name: &str) -> Option<&BenchmarkRecord> {
        self.benchmarks.get(name)
    }

    /// Looks up a benchmark record, returning an error naming the benchmark
    /// when it is missing.
    pub fn require(&self, name: &str) -> Result<&BenchmarkRecord, QosrmError> {
        self.benchmark(name)
            .ok_or_else(|| QosrmError::MissingRecord(format!("benchmark {name} not in database")))
    }

    /// Inserts (or replaces) a record.
    pub fn insert(&mut self, record: BenchmarkRecord) {
        self.benchmarks.insert(record.name.clone(), record);
    }

    /// Validates every record.
    pub fn validate(&self) -> Result<(), QosrmError> {
        self.platform.validate()?;
        for r in self.benchmarks.values() {
            r.validate()?;
        }
        Ok(())
    }

    /// Total number of stored phase characterizations.
    pub fn num_phases(&self) -> usize {
        self.benchmarks.values().map(|r| r.phases.len()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qosrm_types::PhaseId;
    use workload::{Paper1Category, Paper2Category};

    fn tiny_phase() -> PhaseCharacterization {
        PhaseCharacterization {
            instructions: 1_000_000,
            llc_accesses: 10_000,
            exec_cpi: vec![1.0],
            misses_per_way: vec![100, 80, 60, 50],
            leading_misses: vec![vec![90, 72, 55, 45]],
            atd_misses_per_way: vec![100, 80, 60, 50],
            atd_leading_misses: vec![vec![90, 72, 55, 45]],
        }
    }

    fn record(name: &str) -> BenchmarkRecord {
        BenchmarkRecord {
            name: name.to_string(),
            phases: vec![tiny_phase(), tiny_phase()],
            trace: PhaseTrace::generate(&[0.5, 0.5], 10, 3, 1).unwrap(),
            category: AppCategory {
                paper1: Paper1Category {
                    memory_intensive: false,
                    cache_sensitive: false,
                },
                paper2: Paper2Category {
                    cache_sensitive: false,
                    parallelism_sensitive: false,
                },
            },
        }
    }

    #[test]
    fn insert_and_lookup() {
        let platform = PlatformConfig::paper1(4);
        let mut db = SimDb::new(platform, vec![record("a"), record("b")]);
        assert_eq!(db.len(), 2);
        assert!(!db.is_empty());
        assert!(db.benchmark("a").is_some());
        assert!(db.benchmark("c").is_none());
        assert!(db.require("c").is_err());
        db.insert(record("c"));
        assert!(db.require("c").is_ok());
        assert_eq!(db.num_phases(), 6);
        assert!(db.validate().is_ok());
        assert_eq!(db.benchmark_names().count(), 3);
    }

    #[test]
    fn record_accessors_and_validation() {
        let r = record("x");
        assert!(r.validate().is_ok());
        assert_eq!(r.trace_intervals(), 10);
        assert_eq!(r.phase(PhaseId(1)).instructions, 1_000_000);

        let mut bad = record("y");
        bad.phases.pop(); // trace still references 2 phases
        assert!(bad.validate().is_err());
        let mut bad = record("z");
        bad.phases.clear();
        assert!(bad.validate().is_err());
    }
}
