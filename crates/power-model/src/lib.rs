//! # power-model
//!
//! McPAT-substitute component-level power and energy model.
//!
//! The paper uses McPAT alongside the Sniper simulator to estimate the power
//! of every simulated configuration. This crate plays the same role for the
//! reproduction: given the activity of one execution interval (instructions,
//! duration, LLC accesses, off-chip accesses) and the resource configuration
//! (core size, supply voltage, clock frequency, allocated LLC ways), it
//! produces an energy breakdown for
//!
//! * core dynamic energy (`E ∝ N · EPI(core size) · (V/V_nom)²`),
//! * core static (leakage) energy (`P ∝ size · V²`, integrated over time),
//! * LLC dynamic and static energy (per access / per powered way),
//! * DRAM access energy and the core's share of DRAM background power.
//!
//! Absolute values are calibrated to be plausible for a mid-2010s out-of-order
//! server core (a few hundred pJ per instruction, tens of nJ per DRAM access);
//! the experiments only rely on the *relative* trade-offs between the
//! components, which is what drives the resource manager's decisions.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod energy;
pub mod params;

pub use energy::{EnergyBreakdown, EnergyModel, IntervalUsage};
pub use params::EnergyParams;
