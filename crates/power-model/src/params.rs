//! Calibration constants of the energy model.

use serde::{Deserialize, Serialize};

/// Calibration constants of the [`crate::EnergyModel`].
///
/// All per-event energies are expressed at the nominal voltage
/// (`nominal_voltage`); dynamic energies scale with `(V / V_nom)²` and static
/// power with `size_scale · (V / V_nom)²`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct EnergyParams {
    /// Nominal supply voltage the per-event energies are calibrated at.
    pub nominal_voltage: f64,
    /// Core dynamic energy per instruction at nominal voltage for the
    /// baseline (medium) core configuration, in joules.
    pub core_epi_nominal: f64,
    /// Core static (leakage) power at nominal voltage for the baseline core
    /// configuration, in watts.
    pub core_static_power_nominal: f64,
    /// Dynamic energy of one LLC access, in joules.
    pub llc_access_energy: f64,
    /// Static power of one LLC way (across all sets), in watts.
    pub llc_static_power_per_way: f64,
    /// Energy of one off-chip (DRAM) access, in joules.
    pub dram_access_energy: f64,
    /// DRAM background (refresh + idle) power for the whole system, in watts.
    pub dram_background_power: f64,
    /// Energy cost of one DVFS transition (PLL relock + voltage ramp), in
    /// joules.
    pub dvfs_transition_energy: f64,
    /// Energy cost of one core re-configuration (pipeline drain, power
    /// gating), in joules.
    pub reconfig_transition_energy: f64,
}

impl EnergyParams {
    /// Default calibration: a 4-wide out-of-order core at 2 GHz / 1.0 V with
    /// roughly 1.5 nJ per instruction of dynamic energy, 0.5 W of leakage,
    /// 1.2 nJ per LLC access, 20 nJ per DRAM access and 0.8 W of DRAM
    /// background power. Dynamic (voltage-scaled) energy dominates, which is
    /// the regime the paper's DVFS/partitioning trade-offs operate in.
    pub fn default_server_class() -> Self {
        EnergyParams {
            nominal_voltage: 1.0,
            core_epi_nominal: 1.5e-9,
            core_static_power_nominal: 0.5,
            llc_access_energy: 1.2e-9,
            llc_static_power_per_way: 0.01,
            dram_access_energy: 20.0e-9,
            dram_background_power: 0.8,
            dvfs_transition_energy: 2.0e-6,
            reconfig_transition_energy: 5.0e-6,
        }
    }

    /// Validates that all constants are positive and finite.
    pub fn validate(&self) -> Result<(), qosrm_types::QosrmError> {
        let fields = [
            ("nominal_voltage", self.nominal_voltage),
            ("core_epi_nominal", self.core_epi_nominal),
            ("core_static_power_nominal", self.core_static_power_nominal),
            ("llc_access_energy", self.llc_access_energy),
            ("llc_static_power_per_way", self.llc_static_power_per_way),
            ("dram_access_energy", self.dram_access_energy),
            ("dram_background_power", self.dram_background_power),
            ("dvfs_transition_energy", self.dvfs_transition_energy),
            (
                "reconfig_transition_energy",
                self.reconfig_transition_energy,
            ),
        ];
        for (name, v) in fields {
            if !(v.is_finite() && v > 0.0) {
                return Err(qosrm_types::QosrmError::InvalidPlatform(format!(
                    "energy parameter {name} must be positive and finite, got {v}"
                )));
            }
        }
        Ok(())
    }
}

impl Default for EnergyParams {
    fn default() -> Self {
        EnergyParams::default_server_class()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_valid() {
        assert!(EnergyParams::default().validate().is_ok());
    }

    #[test]
    fn validation_rejects_nonpositive() {
        let p = EnergyParams {
            core_epi_nominal: 0.0,
            ..Default::default()
        };
        assert!(p.validate().is_err());
        let p = EnergyParams {
            dram_access_energy: f64::NAN,
            ..Default::default()
        };
        assert!(p.validate().is_err());
        let p = EnergyParams {
            llc_static_power_per_way: -1.0,
            ..Default::default()
        };
        assert!(p.validate().is_err());
    }

    #[test]
    fn dram_access_dwarfs_llc_access() {
        // The key relative relationship the resource manager exploits:
        // avoiding a DRAM access is worth much more than an LLC lookup.
        let p = EnergyParams::default();
        assert!(p.dram_access_energy > 10.0 * p.llc_access_energy);
    }
}
