//! Interval energy accounting.

use crate::params::EnergyParams;
use serde::{Deserialize, Serialize};

/// Activity and configuration of one core over one execution interval, as
/// needed to compute its energy.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct IntervalUsage {
    /// Instructions retired during the interval.
    pub instructions: u64,
    /// Duration of the interval in seconds.
    pub time_seconds: f64,
    /// Supply voltage of the core during the interval, in volts.
    pub voltage: f64,
    /// Relative dynamic energy per instruction of the core configuration
    /// (1.0 for the baseline/medium core).
    pub dynamic_epi_scale: f64,
    /// Relative static power of the core configuration (1.0 for medium).
    pub static_power_scale: f64,
    /// LLC accesses issued by the core.
    pub llc_accesses: u64,
    /// LLC ways allocated to the core (for the static LLC share).
    pub llc_ways: usize,
    /// Off-chip (DRAM) accesses caused by the core.
    pub llc_misses: u64,
    /// Fraction of the DRAM background power charged to this core
    /// (typically `1 / num_cores`).
    pub dram_background_share: f64,
}

/// Energy of one interval broken down by component, in joules.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct EnergyBreakdown {
    /// Core dynamic (switching) energy.
    pub core_dynamic: f64,
    /// Core static (leakage) energy.
    pub core_static: f64,
    /// LLC dynamic energy (lookups and fills).
    pub llc_dynamic: f64,
    /// Static energy of the LLC ways allocated to the core.
    pub llc_static: f64,
    /// DRAM access energy.
    pub dram_dynamic: f64,
    /// Share of the DRAM background energy.
    pub dram_background: f64,
    /// Transition energy (DVFS switches, core re-configuration, cache
    /// refills after repartitioning) charged to this interval.
    pub transition: f64,
}

impl EnergyBreakdown {
    /// Total energy of the interval.
    pub fn total(&self) -> f64 {
        self.core_dynamic
            + self.core_static
            + self.llc_dynamic
            + self.llc_static
            + self.dram_dynamic
            + self.dram_background
            + self.transition
    }

    /// Core-only share (dynamic + static).
    pub fn core_total(&self) -> f64 {
        self.core_dynamic + self.core_static
    }

    /// Memory-system share (LLC + DRAM).
    pub fn memory_total(&self) -> f64 {
        self.llc_dynamic + self.llc_static + self.dram_dynamic + self.dram_background
    }

    /// Adds another breakdown component-wise (for accumulating over intervals
    /// or over cores).
    pub fn accumulate(&mut self, other: &EnergyBreakdown) {
        self.core_dynamic += other.core_dynamic;
        self.core_static += other.core_static;
        self.llc_dynamic += other.llc_dynamic;
        self.llc_static += other.llc_static;
        self.dram_dynamic += other.dram_dynamic;
        self.dram_background += other.dram_background;
        self.transition += other.transition;
    }

    /// Average energy per instruction given the instruction count.
    pub fn epi(&self, instructions: u64) -> f64 {
        self.total() / instructions.max(1) as f64
    }
}

/// The McPAT-substitute energy model.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct EnergyModel {
    params: EnergyParams,
}

impl EnergyModel {
    /// Creates a model from calibration constants.
    pub fn new(params: EnergyParams) -> Self {
        EnergyModel { params }
    }

    /// The calibration constants.
    pub fn params(&self) -> &EnergyParams {
        &self.params
    }

    /// Voltage-scaling factor applied to dynamic energies: `(V / V_nom)²`.
    #[inline]
    pub fn dynamic_voltage_factor(&self, voltage: f64) -> f64 {
        let r = voltage / self.params.nominal_voltage;
        r * r
    }

    /// Voltage-scaling factor applied to static power. Leakage grows slightly
    /// super-linearly with voltage; a quadratic dependence is a common
    /// first-order approximation.
    #[inline]
    pub fn static_voltage_factor(&self, voltage: f64) -> f64 {
        let r = voltage / self.params.nominal_voltage;
        r * r
    }

    /// Energy of one interval with the given activity and configuration.
    pub fn interval_energy(&self, usage: &IntervalUsage) -> EnergyBreakdown {
        let p = &self.params;
        let dyn_v = self.dynamic_voltage_factor(usage.voltage);
        let stat_v = self.static_voltage_factor(usage.voltage);

        let core_dynamic =
            usage.instructions as f64 * p.core_epi_nominal * usage.dynamic_epi_scale * dyn_v;
        let core_static =
            p.core_static_power_nominal * usage.static_power_scale * stat_v * usage.time_seconds;
        let llc_dynamic = usage.llc_accesses as f64 * p.llc_access_energy;
        let llc_static = p.llc_static_power_per_way * usage.llc_ways as f64 * usage.time_seconds;
        let dram_dynamic = usage.llc_misses as f64 * p.dram_access_energy;
        let dram_background =
            p.dram_background_power * usage.dram_background_share * usage.time_seconds;

        EnergyBreakdown {
            core_dynamic,
            core_static,
            llc_dynamic,
            llc_static,
            dram_dynamic,
            dram_background,
            transition: 0.0,
        }
    }

    /// Energy of `n` DVFS transitions.
    pub fn dvfs_transition_energy(&self, transitions: u64) -> f64 {
        self.params.dvfs_transition_energy * transitions as f64
    }

    /// Energy of `n` core re-configurations.
    pub fn reconfig_transition_energy(&self, transitions: u64) -> f64 {
        self.params.reconfig_transition_energy * transitions as f64
    }

    /// Energy to refill `lines` cache lines after a repartitioning shrank a
    /// core's allocation (each refill is one extra DRAM access).
    pub fn repartition_refill_energy(&self, lines: u64) -> f64 {
        self.params.dram_access_energy * lines as f64
    }
}

impl Default for EnergyModel {
    fn default() -> Self {
        EnergyModel::new(EnergyParams::default())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn usage() -> IntervalUsage {
        IntervalUsage {
            instructions: 100_000_000,
            time_seconds: 0.07,
            voltage: 1.0,
            dynamic_epi_scale: 1.0,
            static_power_scale: 1.0,
            llc_accesses: 2_000_000,
            llc_ways: 4,
            llc_misses: 400_000,
            dram_background_share: 0.25,
        }
    }

    #[test]
    fn breakdown_sums_to_total() {
        let model = EnergyModel::default();
        let b = model.interval_energy(&usage());
        let manual = b.core_dynamic
            + b.core_static
            + b.llc_dynamic
            + b.llc_static
            + b.dram_dynamic
            + b.dram_background
            + b.transition;
        assert!((b.total() - manual).abs() < 1e-15);
        assert!(b.total() > 0.0);
        // Sanity of magnitude: tens of millijoules for a 100M-instruction interval.
        assert!(b.total() > 1e-3 && b.total() < 1.0);
    }

    #[test]
    fn voltage_scaling_is_quadratic() {
        let model = EnergyModel::default();
        let mut low = usage();
        low.voltage = 0.7;
        let mut high = usage();
        high.voltage = 1.2;
        let e_low = model.interval_energy(&low);
        let e_high = model.interval_energy(&high);
        let ratio = e_high.core_dynamic / e_low.core_dynamic;
        assert!((ratio - (1.2f64 / 0.7).powi(2)).abs() < 1e-9);
        // Memory-side energy does not depend on the core voltage.
        assert!((e_low.dram_dynamic - e_high.dram_dynamic).abs() < 1e-15);
    }

    #[test]
    fn smaller_core_uses_less_energy() {
        let model = EnergyModel::default();
        let mut small = usage();
        small.dynamic_epi_scale = 0.7;
        small.static_power_scale = 0.6;
        let e_small = model.interval_energy(&small);
        let e_medium = model.interval_energy(&usage());
        assert!(e_small.core_total() < e_medium.core_total());
    }

    #[test]
    fn fewer_misses_save_dram_energy() {
        let model = EnergyModel::default();
        let mut few = usage();
        few.llc_misses = 100_000;
        assert!(
            model.interval_energy(&few).dram_dynamic < model.interval_energy(&usage()).dram_dynamic
        );
    }

    #[test]
    fn accumulate_adds_componentwise() {
        let model = EnergyModel::default();
        let b = model.interval_energy(&usage());
        let mut acc = EnergyBreakdown::default();
        acc.accumulate(&b);
        acc.accumulate(&b);
        assert!((acc.total() - 2.0 * b.total()).abs() < 1e-12);
        assert!((acc.epi(200_000_000) - b.epi(100_000_000)).abs() < 1e-18);
    }

    #[test]
    fn transition_energies() {
        let model = EnergyModel::default();
        assert!(model.dvfs_transition_energy(2) > model.dvfs_transition_energy(1));
        assert!(model.reconfig_transition_energy(1) > 0.0);
        assert!(model.repartition_refill_energy(1000) > 0.0);
        assert_eq!(model.dvfs_transition_energy(0), 0.0);
    }

    #[test]
    fn longer_intervals_cost_more_static_energy() {
        let model = EnergyModel::default();
        let mut slow = usage();
        slow.time_seconds = 0.14;
        let e_slow = model.interval_energy(&slow);
        let e_fast = model.interval_energy(&usage());
        assert!(e_slow.core_static > e_fast.core_static);
        assert!((e_slow.core_static / e_fast.core_static - 2.0).abs() < 1e-9);
        assert!(e_slow.memory_total() > e_fast.memory_total());
    }
}
