//! # qosrm-types
//!
//! Shared vocabulary types for the *QoS-driven coordinated resource management*
//! library, a reproduction of
//! "QoS-Driven Coordinated Management of Resources to Save Energy in Multi-Core
//! Systems" (Nejat, Pericàs, Stenström — IPDPS 2019) and its Paper II extension
//! (coordinated core-configuration / DVFS / LLC-partitioning control).
//!
//! This crate intentionally has no heavyweight dependencies: it defines the data
//! types exchanged between
//!
//! * the **substrates** (cache model, core model, power model, workload
//!   generator, simulation database, co-phase RMA simulator), and
//! * the **resource managers** (the paper's contribution, in `qosrm-core`).
//!
//! The central abstraction is the [`ResourceManager`] trait: a resource manager
//! is invoked once per core at the end of each execution interval (a fixed
//! instruction count, 100 M instructions in the paper), observes the per-core
//! hardware statistics of the past interval ([`CoreObservation`]) and returns a
//! new system-wide resource setting ([`SystemSetting`]) consisting of a per-core
//! voltage–frequency level, a per-core micro-architecture size and an LLC
//! way-partition.

#![deny(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod cache;
pub mod config;
pub mod error;
pub mod freq;
pub mod ids;
pub mod manager;
pub mod qos;
pub mod setting;
pub mod stats;

pub use cache::{LlcGeometry, WayMask, WayPartition};
pub use config::{CoreSizeParams, MemoryParams, PlatformConfig, DEFAULT_INTERVAL_INSTRUCTIONS};
pub use error::QosrmError;
pub use freq::{FreqLevel, VfPoint, VfTable};
pub use ids::{AppId, CoreId, CoreSizeIdx, PhaseId};
pub use manager::{ConfigMetrics, ConfigTable, CoreObservation, ResourceManager};
pub use qos::{QosSpec, QosViolation};
pub use setting::{CoreSetting, SettingDelta, SystemSetting};
pub use stats::{CoreScalingProfile, IntervalStats, MissProfile, MlpProfile};

/// Result alias used across the workspace.
pub type Result<T> = std::result::Result<T, QosrmError>;
