//! Per-interval hardware statistics observed by the resource manager.
//!
//! These types model what the paper's hardware support exposes to the RMA
//! software at the end of every execution interval:
//!
//! * ordinary performance counters ([`IntervalStats`]),
//! * the Auxiliary Tag Directory miss profile ([`MissProfile`], Paper I), and
//! * the MLP-aware ATD extension ([`MlpProfile`], Paper II) together with the
//!   ILP-scaling monitor ([`CoreScalingProfile`]).

use crate::error::QosrmError;
use crate::freq::FreqLevel;
use crate::ids::CoreSizeIdx;
use serde::{Deserialize, Serialize};

/// Hardware performance-counter statistics of one finished execution interval
/// on one core.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct IntervalStats {
    /// Instructions retired during the interval (equal to the platform
    /// interval length except in truncated final intervals).
    pub instructions: u64,
    /// Total core cycles spent in the interval.
    pub cycles: u64,
    /// Core cycles not stalled on LLC misses (the "execution" component of
    /// the interval CPI stack).
    pub exec_cycles: u64,
    /// Accesses to the shared LLC.
    pub llc_accesses: u64,
    /// LLC misses (off-chip memory accesses).
    pub llc_misses: u64,
    /// Leading (non-overlapped) LLC misses: misses that started while no other
    /// miss was outstanding. `llc_misses / leading_misses` is the measured
    /// average MLP of the interval.
    pub leading_misses: u64,
    /// Wall-clock duration of the interval in seconds.
    pub elapsed_seconds: f64,
    /// VF level the core ran at during the interval.
    pub freq: FreqLevel,
    /// Core-size configuration during the interval.
    pub core_size: CoreSizeIdx,
    /// LLC ways allocated to the core during the interval.
    pub ways: usize,
}

impl IntervalStats {
    /// Average cycles per instruction over the interval.
    pub fn cpi(&self) -> f64 {
        self.cycles as f64 / self.instructions.max(1) as f64
    }

    /// Average non-stall (execution) cycles per instruction.
    pub fn exec_cpi(&self) -> f64 {
        self.exec_cycles as f64 / self.instructions.max(1) as f64
    }

    /// Misses per kilo-instruction at the interval's cache allocation.
    pub fn mpki(&self) -> f64 {
        self.llc_misses as f64 / (self.instructions.max(1) as f64 / 1000.0)
    }

    /// LLC accesses per kilo-instruction.
    pub fn apki(&self) -> f64 {
        self.llc_accesses as f64 / (self.instructions.max(1) as f64 / 1000.0)
    }

    /// Measured average memory-level parallelism: misses per leading miss.
    /// Returns 1.0 when there were no misses.
    pub fn measured_mlp(&self) -> f64 {
        if self.llc_misses == 0 || self.leading_misses == 0 {
            1.0
        } else {
            (self.llc_misses as f64 / self.leading_misses as f64).max(1.0)
        }
    }

    /// Average instructions per second achieved in the interval.
    pub fn ips(&self) -> f64 {
        self.instructions as f64 / self.elapsed_seconds.max(f64::MIN_POSITIVE)
    }

    /// Average time per instruction (the metric used by the co-phase
    /// simulator to find the next global event).
    pub fn tpi(&self) -> f64 {
        self.elapsed_seconds / self.instructions.max(1) as f64
    }
}

/// Cache-miss profile produced by the Auxiliary Tag Directory: the number of
/// LLC misses the core *would have had* during the past interval for every
/// possible way allocation `w = 1..=associativity`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MissProfile {
    misses: Vec<u64>,
}

impl MissProfile {
    /// Creates a profile from `misses[w-1]` = misses with `w` ways.
    pub fn new(misses: Vec<u64>) -> Self {
        MissProfile { misses }
    }

    /// Maximum way count covered by the profile (the LLC associativity).
    pub fn max_ways(&self) -> usize {
        self.misses.len()
    }

    /// Misses with `ways` allocated ways. `ways` must be in
    /// `1..=max_ways()`.
    pub fn misses_at(&self, ways: usize) -> u64 {
        self.misses[ways - 1]
    }

    /// Misses per kilo-instruction with `ways` allocated ways.
    pub fn mpki_at(&self, ways: usize, instructions: u64) -> f64 {
        self.misses_at(ways) as f64 / (instructions.max(1) as f64 / 1000.0)
    }

    /// The underlying per-way miss counts.
    pub fn as_slice(&self) -> &[u64] {
        &self.misses
    }

    /// Validates that the profile is non-empty and non-increasing in the way
    /// count (adding ways can never add misses under LRU — the stack
    /// property).
    pub fn validate(&self) -> Result<(), QosrmError> {
        if self.misses.is_empty() {
            return Err(QosrmError::InvalidSetting("empty miss profile".into()));
        }
        for pair in self.misses.windows(2) {
            if pair[1] > pair[0] {
                return Err(QosrmError::InvalidSetting(
                    "miss profile must be non-increasing in ways".into(),
                ));
            }
        }
        Ok(())
    }

    /// Variation of MPKI across the profile relative to the value at
    /// `baseline_ways`, used by the paper to classify applications as cache
    /// sensitive or insensitive.
    pub fn sensitivity_around(&self, baseline_ways: usize, instructions: u64) -> f64 {
        let base = self.mpki_at(baseline_ways, instructions).max(1e-9);
        let lo = self.mpki_at(1, instructions);
        let hi = self.mpki_at(self.max_ways(), instructions);
        (lo - hi).abs() / base
    }
}

/// MLP-aware miss profile produced by the Paper II ATD extension: for each
/// core-size configuration and each way allocation, the number of *leading*
/// (non-overlapped) misses during the past interval.
///
/// Leading misses determine the memory stall time: misses that overlap with a
/// leading miss are hidden behind it and do not lengthen execution.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MlpProfile {
    /// `leading[s][w-1]` = leading misses with core size `s` and `w` ways.
    leading: Vec<Vec<u64>>,
}

impl MlpProfile {
    /// Creates a profile from `leading[s][w-1]`.
    pub fn new(leading: Vec<Vec<u64>>) -> Self {
        MlpProfile { leading }
    }

    /// Number of core sizes covered.
    pub fn num_core_sizes(&self) -> usize {
        self.leading.len()
    }

    /// Maximum way count covered.
    pub fn max_ways(&self) -> usize {
        self.leading.first().map(|v| v.len()).unwrap_or(0)
    }

    /// Leading misses with core size `size` and `ways` ways.
    pub fn leading_at(&self, size: CoreSizeIdx, ways: usize) -> u64 {
        self.leading[size.index()][ways - 1]
    }

    /// Estimated MLP with core size `size` and `ways` ways, given the total
    /// miss profile.
    pub fn mlp_at(&self, size: CoreSizeIdx, ways: usize, misses: &MissProfile) -> f64 {
        let total = misses.misses_at(ways);
        let leading = self.leading_at(size, ways);
        if total == 0 || leading == 0 {
            1.0
        } else {
            (total as f64 / leading as f64).max(1.0)
        }
    }

    /// Validates consistency with a miss profile: leading misses can never
    /// exceed total misses and must be non-increasing in the way count.
    pub fn validate(&self, misses: &MissProfile) -> Result<(), QosrmError> {
        if self.leading.is_empty() {
            return Err(QosrmError::InvalidSetting("empty MLP profile".into()));
        }
        for per_size in &self.leading {
            if per_size.len() != misses.max_ways() {
                return Err(QosrmError::InvalidSetting(
                    "MLP profile way range differs from miss profile".into(),
                ));
            }
            for (w, &leading) in per_size.iter().enumerate() {
                if leading > misses.misses_at(w + 1) {
                    return Err(QosrmError::InvalidSetting(format!(
                        "leading misses exceed total misses at {} ways",
                        w + 1
                    )));
                }
            }
        }
        Ok(())
    }

    /// Variation in MLP when moving between the smallest and the largest core
    /// size at the given way allocation; used by Paper II to classify
    /// applications as parallelism sensitive or insensitive.
    pub fn parallelism_sensitivity(&self, ways: usize, misses: &MissProfile) -> f64 {
        if self.leading.len() < 2 {
            return 0.0;
        }
        let small = self.mlp_at(CoreSizeIdx(0), ways, misses);
        let large = self.mlp_at(CoreSizeIdx(self.leading.len() - 1), ways, misses);
        if small <= 0.0 {
            0.0
        } else {
            (large - small) / small
        }
    }
}

/// Estimate of the non-stall (execution) CPI of the running application for
/// every available core-size configuration, produced by the ILP monitor that
/// accompanies the Paper II re-configurable core.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CoreScalingProfile {
    exec_cpi: Vec<f64>,
}

impl CoreScalingProfile {
    /// Creates a profile from `exec_cpi[s]` = execution CPI with core size `s`.
    pub fn new(exec_cpi: Vec<f64>) -> Self {
        CoreScalingProfile { exec_cpi }
    }

    /// Execution CPI estimate for core size `size`.
    pub fn exec_cpi(&self, size: CoreSizeIdx) -> f64 {
        self.exec_cpi[size.index()]
    }

    /// Number of core sizes covered.
    pub fn num_core_sizes(&self) -> usize {
        self.exec_cpi.len()
    }

    /// The underlying estimates.
    pub fn as_slice(&self) -> &[f64] {
        &self.exec_cpi
    }

    /// Validates that CPI estimates are positive and non-increasing with core
    /// size (a bigger core can never have a larger execution CPI in our
    /// model).
    pub fn validate(&self) -> Result<(), QosrmError> {
        if self.exec_cpi.is_empty() {
            return Err(QosrmError::InvalidSetting("empty scaling profile".into()));
        }
        if self.exec_cpi.iter().any(|&c| c <= 0.0 || !c.is_finite()) {
            return Err(QosrmError::InvalidSetting(
                "execution CPI estimates must be positive and finite".into(),
            ));
        }
        for pair in self.exec_cpi.windows(2) {
            if pair[1] > pair[0] * (1.0 + 1e-9) {
                return Err(QosrmError::InvalidSetting(
                    "execution CPI must be non-increasing with core size".into(),
                ));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn stats() -> IntervalStats {
        IntervalStats {
            instructions: 100_000_000,
            cycles: 150_000_000,
            exec_cycles: 100_000_000,
            llc_accesses: 2_000_000,
            llc_misses: 500_000,
            leading_misses: 250_000,
            elapsed_seconds: 0.075,
            freq: FreqLevel(6),
            core_size: CoreSizeIdx(1),
            ways: 4,
        }
    }

    #[test]
    fn derived_metrics() {
        let s = stats();
        assert!((s.cpi() - 1.5).abs() < 1e-12);
        assert!((s.exec_cpi() - 1.0).abs() < 1e-12);
        assert!((s.mpki() - 5.0).abs() < 1e-12);
        assert!((s.apki() - 20.0).abs() < 1e-12);
        assert!((s.measured_mlp() - 2.0).abs() < 1e-12);
        assert!((s.ips() - 100_000_000.0 / 0.075).abs() < 1.0);
        assert!((s.tpi() - 0.075 / 1e8).abs() < 1e-15);
    }

    #[test]
    fn mlp_defaults_to_one_without_misses() {
        let mut s = stats();
        s.llc_misses = 0;
        s.leading_misses = 0;
        assert!((s.measured_mlp() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn miss_profile_accessors_and_validation() {
        let p = MissProfile::new(vec![1000, 800, 600, 500]);
        assert_eq!(p.max_ways(), 4);
        assert_eq!(p.misses_at(1), 1000);
        assert_eq!(p.misses_at(4), 500);
        assert!((p.mpki_at(2, 1_000_000) - 0.8).abs() < 1e-12);
        assert!(p.validate().is_ok());

        let bad = MissProfile::new(vec![100, 200]);
        assert!(bad.validate().is_err());
        let empty = MissProfile::new(vec![]);
        assert!(empty.validate().is_err());
    }

    #[test]
    fn miss_profile_sensitivity() {
        let sensitive = MissProfile::new(vec![10_000, 6_000, 3_000, 500]);
        let insensitive = MissProfile::new(vec![1_000, 1_000, 1_000, 1_000]);
        let n = 1_000_000u64;
        assert!(sensitive.sensitivity_around(2, n) > insensitive.sensitivity_around(2, n));
        assert!(insensitive.sensitivity_around(2, n) < 1e-9);
    }

    #[test]
    fn mlp_profile_consistency() {
        let misses = MissProfile::new(vec![1000, 800, 600, 500]);
        let mlp = MlpProfile::new(vec![
            vec![900, 750, 580, 490], // small core: little overlap
            vec![500, 400, 300, 250], // large core: MLP 2
        ]);
        assert!(mlp.validate(&misses).is_ok());
        assert!((mlp.mlp_at(CoreSizeIdx(1), 1, &misses) - 2.0).abs() < 1e-12);
        assert!(mlp.mlp_at(CoreSizeIdx(0), 1, &misses) < 1.2);
        assert!(mlp.parallelism_sensitivity(1, &misses) > 0.5);

        let bad = MlpProfile::new(vec![vec![2000, 800, 600, 500]]);
        assert!(bad.validate(&misses).is_err());
        let wrong_len = MlpProfile::new(vec![vec![100, 80]]);
        assert!(wrong_len.validate(&misses).is_err());
    }

    #[test]
    fn scaling_profile_validation() {
        let ok = CoreScalingProfile::new(vec![1.2, 0.9, 0.7]);
        assert!(ok.validate().is_ok());
        assert!((ok.exec_cpi(CoreSizeIdx(0)) - 1.2).abs() < 1e-12);
        assert_eq!(ok.num_core_sizes(), 3);

        let bad = CoreScalingProfile::new(vec![0.7, 0.9]);
        assert!(bad.validate().is_err());
        let nonpos = CoreScalingProfile::new(vec![0.0]);
        assert!(nonpos.validate().is_err());
    }
}
