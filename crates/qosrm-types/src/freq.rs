//! Voltage–frequency (VF) levels and the platform V-f table.
//!
//! The paper assumes per-core DVFS with a discrete set of voltage–frequency
//! operating points. The baseline setting used to define the QoS target is a
//! mid-range level (2.0 GHz in the evaluation). Energy-wise the important
//! property is that dynamic power scales as `C·V²·f` and that lowering `f`
//! allows lowering `V`, so running slower is super-linearly cheaper.

use crate::error::QosrmError;
use serde::{Deserialize, Serialize};

/// Index of a voltage–frequency level in the platform [`VfTable`].
///
/// Level 0 is the slowest (lowest voltage) operating point; higher indices are
/// monotonically faster and higher-voltage.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct FreqLevel(pub usize);

impl FreqLevel {
    /// Returns the raw level index.
    #[inline]
    pub fn index(self) -> usize {
        self.0
    }
}

impl std::fmt::Display for FreqLevel {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "f{}", self.0)
    }
}

/// One operating point of the V-f table.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct VfPoint {
    /// Core clock frequency in GHz.
    pub freq_ghz: f64,
    /// Supply voltage in volts at this frequency.
    pub voltage: f64,
}

impl VfPoint {
    /// Clock period in nanoseconds.
    #[inline]
    pub fn period_ns(&self) -> f64 {
        1.0 / self.freq_ghz
    }

    /// Frequency in Hz.
    #[inline]
    pub fn freq_hz(&self) -> f64 {
        self.freq_ghz * 1e9
    }
}

/// The platform voltage–frequency table: the discrete DVFS operating points
/// available on every core, plus the index of the baseline (QoS-defining)
/// level.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct VfTable {
    points: Vec<VfPoint>,
    baseline: FreqLevel,
}

impl VfTable {
    /// Creates a V-f table from explicit operating points.
    ///
    /// Points must be sorted by strictly increasing frequency and voltage must
    /// be non-decreasing; `baseline` must index into `points`.
    pub fn new(points: Vec<VfPoint>, baseline: FreqLevel) -> Result<Self, QosrmError> {
        if points.is_empty() {
            return Err(QosrmError::InvalidPlatform("empty V-f table".into()));
        }
        if baseline.index() >= points.len() {
            return Err(QosrmError::InvalidPlatform(format!(
                "baseline level {} out of range ({} levels)",
                baseline.index(),
                points.len()
            )));
        }
        for pair in points.windows(2) {
            if pair[1].freq_ghz <= pair[0].freq_ghz {
                return Err(QosrmError::InvalidPlatform(
                    "V-f table frequencies must be strictly increasing".into(),
                ));
            }
            if pair[1].voltage < pair[0].voltage {
                return Err(QosrmError::InvalidPlatform(
                    "V-f table voltages must be non-decreasing".into(),
                ));
            }
        }
        for p in &points {
            if p.freq_ghz <= 0.0 || p.voltage <= 0.0 {
                return Err(QosrmError::InvalidPlatform(
                    "V-f points must have positive frequency and voltage".into(),
                ));
            }
        }
        Ok(VfTable { points, baseline })
    }

    /// The default table used throughout the evaluation: 13 levels from
    /// 0.8 GHz to 3.2 GHz in 0.2 GHz steps with a near-linear voltage ramp
    /// from 0.70 V to 1.20 V, baseline at 2.0 GHz (level 6).
    pub fn default_13_levels() -> Self {
        let mut points = Vec::with_capacity(13);
        for i in 0..13usize {
            let freq_ghz = 0.8 + 0.2 * i as f64;
            // Linear V ramp between (0.8 GHz, 0.70 V) and (3.2 GHz, 1.20 V).
            let voltage = 0.70 + (freq_ghz - 0.8) / (3.2 - 0.8) * (1.20 - 0.70);
            points.push(VfPoint { freq_ghz, voltage });
        }
        VfTable::new(points, FreqLevel(6)).expect("default table is valid")
    }

    /// Number of available VF levels.
    #[inline]
    pub fn num_levels(&self) -> usize {
        self.points.len()
    }

    /// The baseline (QoS-defining) level.
    #[inline]
    pub fn baseline(&self) -> FreqLevel {
        self.baseline
    }

    /// Returns a copy of this table with a different baseline level
    /// (used by the baseline-VF sensitivity experiment).
    pub fn with_baseline(&self, baseline: FreqLevel) -> Result<Self, QosrmError> {
        VfTable::new(self.points.clone(), baseline)
    }

    /// The operating point at `level`.
    ///
    /// # Panics
    /// Panics if `level` is out of range; use [`VfTable::get`] for a checked
    /// lookup.
    #[inline]
    pub fn point(&self, level: FreqLevel) -> VfPoint {
        self.points[level.index()]
    }

    /// Checked lookup of the operating point at `level`.
    pub fn get(&self, level: FreqLevel) -> Option<VfPoint> {
        self.points.get(level.index()).copied()
    }

    /// Iterator over `(level, point)` pairs from slowest to fastest.
    pub fn iter(&self) -> impl Iterator<Item = (FreqLevel, VfPoint)> + '_ {
        self.points
            .iter()
            .enumerate()
            .map(|(i, p)| (FreqLevel(i), *p))
    }

    /// All levels from slowest to fastest.
    pub fn levels(&self) -> impl Iterator<Item = FreqLevel> {
        (0..self.points.len()).map(FreqLevel)
    }

    /// The highest available level.
    #[inline]
    pub fn max_level(&self) -> FreqLevel {
        FreqLevel(self.points.len() - 1)
    }

    /// Finds the slowest level whose frequency is at least `freq_ghz`,
    /// or `None` if even the fastest level is slower.
    pub fn slowest_at_least(&self, freq_ghz: f64) -> Option<FreqLevel> {
        self.points
            .iter()
            .position(|p| p.freq_ghz >= freq_ghz)
            .map(FreqLevel)
    }

    /// Ratio of the voltage at `level` to the baseline voltage.
    pub fn voltage_ratio(&self, level: FreqLevel) -> f64 {
        self.point(level).voltage / self.point(self.baseline).voltage
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_table_shape() {
        let t = VfTable::default_13_levels();
        assert_eq!(t.num_levels(), 13);
        assert!((t.point(FreqLevel(0)).freq_ghz - 0.8).abs() < 1e-12);
        assert!((t.point(t.max_level()).freq_ghz - 3.2).abs() < 1e-9);
        assert!((t.point(t.baseline()).freq_ghz - 2.0).abs() < 1e-9);
        assert!((t.point(FreqLevel(0)).voltage - 0.70).abs() < 1e-12);
        assert!((t.point(t.max_level()).voltage - 1.20).abs() < 1e-9);
    }

    #[test]
    fn monotonicity_is_enforced() {
        let bad = vec![
            VfPoint {
                freq_ghz: 1.0,
                voltage: 0.8,
            },
            VfPoint {
                freq_ghz: 0.9,
                voltage: 0.9,
            },
        ];
        assert!(VfTable::new(bad, FreqLevel(0)).is_err());

        let bad_v = vec![
            VfPoint {
                freq_ghz: 1.0,
                voltage: 0.9,
            },
            VfPoint {
                freq_ghz: 1.2,
                voltage: 0.8,
            },
        ];
        assert!(VfTable::new(bad_v, FreqLevel(0)).is_err());
    }

    #[test]
    fn baseline_out_of_range_rejected() {
        let pts = vec![VfPoint {
            freq_ghz: 1.0,
            voltage: 0.8,
        }];
        assert!(VfTable::new(pts, FreqLevel(3)).is_err());
    }

    #[test]
    fn empty_table_rejected() {
        assert!(VfTable::new(vec![], FreqLevel(0)).is_err());
    }

    #[test]
    fn slowest_at_least_finds_level() {
        let t = VfTable::default_13_levels();
        let lvl = t.slowest_at_least(1.9).unwrap();
        assert!((t.point(lvl).freq_ghz - 2.0).abs() < 1e-9);
        assert_eq!(t.slowest_at_least(0.1).unwrap(), FreqLevel(0));
        assert!(t.slowest_at_least(5.0).is_none());
    }

    #[test]
    fn voltage_ratio_baseline_is_one() {
        let t = VfTable::default_13_levels();
        assert!((t.voltage_ratio(t.baseline()) - 1.0).abs() < 1e-12);
        assert!(t.voltage_ratio(FreqLevel(0)) < 1.0);
        assert!(t.voltage_ratio(t.max_level()) > 1.0);
    }

    #[test]
    fn with_baseline_changes_only_baseline() {
        let t = VfTable::default_13_levels();
        let t2 = t.with_baseline(FreqLevel(4)).unwrap();
        assert_eq!(t2.baseline(), FreqLevel(4));
        assert_eq!(t2.num_levels(), t.num_levels());
    }

    #[test]
    fn period_and_hz() {
        let p = VfPoint {
            freq_ghz: 2.0,
            voltage: 1.0,
        };
        assert!((p.period_ns() - 0.5).abs() < 1e-12);
        assert!((p.freq_hz() - 2.0e9).abs() < 1.0);
    }
}
