//! Error type shared by the workspace crates.

use std::fmt;

/// Errors produced by the resource-management library and its substrates.
#[derive(Debug, Clone, PartialEq)]
pub enum QosrmError {
    /// A resource setting is outside the platform's configuration space
    /// (e.g. a frequency level that does not exist, or a way allocation of 0).
    InvalidSetting(String),
    /// A platform description is internally inconsistent
    /// (e.g. the way partition does not sum to the LLC associativity).
    InvalidPlatform(String),
    /// A workload description is internally inconsistent
    /// (e.g. an empty phase trace or a phase id outside the phase list).
    InvalidWorkload(String),
    /// A query referenced a phase or configuration missing from the
    /// simulation-results database.
    MissingRecord(String),
    /// An I/O or serialization error while persisting or loading artefacts.
    Io(String),
    /// The co-phase simulator reached its global event cap before every
    /// application completed a round (a misbehaving or livelocked manager).
    EventLimitExceeded {
        /// Name of the resource manager driving the run.
        manager: String,
        /// The event cap that was hit (`SimulationOptions::max_events`).
        max_events: usize,
        /// Number of cores that had not finished their round at the cap.
        unfinished_cores: usize,
    },
}

impl fmt::Display for QosrmError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            QosrmError::InvalidSetting(msg) => write!(f, "invalid resource setting: {msg}"),
            QosrmError::InvalidPlatform(msg) => write!(f, "invalid platform configuration: {msg}"),
            QosrmError::InvalidWorkload(msg) => write!(f, "invalid workload: {msg}"),
            QosrmError::MissingRecord(msg) => write!(f, "missing simulation record: {msg}"),
            QosrmError::Io(msg) => write!(f, "i/o error: {msg}"),
            QosrmError::EventLimitExceeded {
                manager,
                max_events,
                unfinished_cores,
            } => write!(
                f,
                "simulation under manager {manager} exceeded the {max_events}-event cap \
                 with {unfinished_cores} unfinished core(s)"
            ),
        }
    }
}

impl std::error::Error for QosrmError {}

impl From<std::io::Error> for QosrmError {
    fn from(err: std::io::Error) -> Self {
        QosrmError::Io(err.to_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_contains_message() {
        let err = QosrmError::InvalidSetting("ways must be >= 1".to_string());
        assert!(err.to_string().contains("ways must be >= 1"));
        let err = QosrmError::MissingRecord("phase3".to_string());
        assert!(err.to_string().contains("phase3"));
    }

    #[test]
    fn event_limit_names_manager_and_cap() {
        let err = QosrmError::EventLimitExceeded {
            manager: "CombinedRMA-Model2".to_string(),
            max_events: 2_000_000,
            unfinished_cores: 3,
        };
        let text = err.to_string();
        assert!(text.contains("CombinedRMA-Model2"));
        assert!(text.contains("2000000"));
        assert!(text.contains("3 unfinished"));
    }

    #[test]
    fn io_error_converts() {
        let io = std::io::Error::new(std::io::ErrorKind::NotFound, "nope");
        let err: QosrmError = io.into();
        assert!(matches!(err, QosrmError::Io(_)));
    }
}
