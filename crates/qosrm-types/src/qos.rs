//! Quality-of-service targets and violation records.
//!
//! The paper expresses QoS as a *performance constraint*: an application must
//! not run slower than it would with the baseline resource allocation. The
//! constraint can optionally be relaxed by a bounded factor (the QoS
//! relaxation experiments allow up to 80 % longer execution time).

use crate::error::QosrmError;
use crate::ids::AppId;
use serde::{Deserialize, Serialize};

/// Per-application QoS specification.
///
/// `allowed_slowdown` is the factor by which the application's execution time
/// may exceed the baseline execution time: `1.0` means "at least baseline
/// performance" (the default in Paper I/II), `1.4` means up to 40 % longer
/// execution time is tolerated.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct QosSpec {
    /// Allowed slowdown relative to the baseline allocation (>= 1.0).
    pub allowed_slowdown: f64,
}

impl QosSpec {
    /// Strict QoS: no slowdown relative to the baseline is tolerated.
    pub const STRICT: QosSpec = QosSpec {
        allowed_slowdown: 1.0,
    };

    /// Creates a QoS spec allowing the given relative slowdown (e.g. `0.4`
    /// allows 40 % longer execution time).
    pub fn relaxed_by(fraction: f64) -> Self {
        QosSpec {
            allowed_slowdown: 1.0 + fraction.max(0.0),
        }
    }

    /// Target execution time for an interval whose baseline time is
    /// `baseline_seconds`.
    pub fn target_time(&self, baseline_seconds: f64) -> f64 {
        baseline_seconds * self.allowed_slowdown
    }

    /// Validates the spec.
    pub fn validate(&self) -> Result<(), QosrmError> {
        if !self.allowed_slowdown.is_finite() || self.allowed_slowdown < 1.0 {
            return Err(QosrmError::InvalidSetting(format!(
                "allowed_slowdown must be >= 1.0, got {}",
                self.allowed_slowdown
            )));
        }
        Ok(())
    }
}

impl Default for QosSpec {
    fn default() -> Self {
        QosSpec::STRICT
    }
}

/// A measured QoS violation: the application's full execution took longer than
/// its QoS target allows.
///
/// Following the paper, violations smaller than 1 % are considered negligible
/// and are not reported.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct QosViolation {
    /// The application whose constraint was violated.
    pub app: AppId,
    /// Execution time under the resource manager, in seconds.
    pub measured_seconds: f64,
    /// Maximum execution time allowed by the QoS target, in seconds.
    pub target_seconds: f64,
}

impl QosViolation {
    /// Relative magnitude of the violation
    /// (`measured / target - 1`, e.g. `0.03` = 3 % too slow).
    pub fn magnitude(&self) -> f64 {
        self.measured_seconds / self.target_seconds - 1.0
    }

    /// Whether the violation exceeds the paper's 1 % reporting threshold.
    pub fn is_significant(&self) -> bool {
        self.magnitude() > 0.01
    }
}

/// Threshold below which a measured slowdown is not counted as a violation
/// (the paper: "values below 1 % are considered negligible").
pub const VIOLATION_SIGNIFICANCE_THRESHOLD: f64 = 0.01;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn strict_and_relaxed_targets() {
        assert!((QosSpec::STRICT.target_time(2.0) - 2.0).abs() < 1e-12);
        let r = QosSpec::relaxed_by(0.4);
        assert!((r.allowed_slowdown - 1.4).abs() < 1e-12);
        assert!((r.target_time(2.0) - 2.8).abs() < 1e-12);
        // Negative relaxations clamp to strict.
        assert!((QosSpec::relaxed_by(-0.5).allowed_slowdown - 1.0).abs() < 1e-12);
    }

    #[test]
    fn validation() {
        assert!(QosSpec::STRICT.validate().is_ok());
        assert!(QosSpec {
            allowed_slowdown: 0.9
        }
        .validate()
        .is_err());
        assert!(QosSpec {
            allowed_slowdown: f64::NAN
        }
        .validate()
        .is_err());
    }

    #[test]
    fn violation_magnitude() {
        let v = QosViolation {
            app: AppId(0),
            measured_seconds: 1.03,
            target_seconds: 1.0,
        };
        assert!((v.magnitude() - 0.03).abs() < 1e-12);
        assert!(v.is_significant());

        let tiny = QosViolation {
            app: AppId(1),
            measured_seconds: 1.005,
            target_seconds: 1.0,
        };
        assert!(!tiny.is_significant());
    }

    #[test]
    fn default_is_strict() {
        assert_eq!(QosSpec::default(), QosSpec::STRICT);
    }
}
