//! Resource settings: the decision variables of the resource manager.

use crate::cache::WayPartition;
use crate::config::PlatformConfig;
use crate::error::QosrmError;
use crate::freq::FreqLevel;
use crate::ids::{CoreId, CoreSizeIdx};
use serde::{Deserialize, Serialize};

/// The resource setting of a single core: its micro-architecture size, its
/// voltage–frequency level and the number of LLC ways allocated to it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct CoreSetting {
    /// Core micro-architecture configuration (Paper II; fixed to the baseline
    /// size in Paper I experiments).
    pub core_size: CoreSizeIdx,
    /// Voltage–frequency level.
    pub freq: FreqLevel,
    /// Number of LLC ways allocated to this core.
    pub ways: usize,
}

/// The system-wide resource setting chosen by the resource manager:
/// one [`CoreSetting`] per core, with the way allocations forming a valid
/// partition of the shared LLC.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct SystemSetting {
    cores: Vec<CoreSetting>,
}

impl SystemSetting {
    /// Creates a system setting from per-core settings.
    pub fn new(cores: Vec<CoreSetting>) -> Self {
        SystemSetting { cores }
    }

    /// The baseline setting of a platform: every core at the baseline core
    /// size and baseline VF level, with the LLC partitioned equally.
    pub fn baseline(platform: &PlatformConfig) -> Self {
        let ways = platform.baseline_ways_per_core();
        let cores = (0..platform.num_cores)
            .map(|_| CoreSetting {
                core_size: platform.baseline_core_size,
                freq: platform.baseline_freq(),
                ways,
            })
            .collect();
        SystemSetting { cores }
    }

    /// Number of cores covered by the setting.
    #[inline]
    pub fn num_cores(&self) -> usize {
        self.cores.len()
    }

    /// The setting of core `core`.
    #[inline]
    pub fn core(&self, core: CoreId) -> CoreSetting {
        self.cores[core.index()]
    }

    /// Mutable access to the setting of core `core`.
    #[inline]
    pub fn core_mut(&mut self, core: CoreId) -> &mut CoreSetting {
        &mut self.cores[core.index()]
    }

    /// All per-core settings.
    #[inline]
    pub fn cores(&self) -> &[CoreSetting] {
        &self.cores
    }

    /// The way partition induced by the per-core settings.
    pub fn way_partition(&self) -> WayPartition {
        WayPartition::new(self.cores.iter().map(|c| c.ways).collect())
    }

    /// Validates the setting against a platform: every core's size, VF level
    /// and way count must exist and the way counts must form a valid
    /// partition of the LLC.
    pub fn validate(&self, platform: &PlatformConfig) -> Result<(), QosrmError> {
        if self.cores.len() != platform.num_cores {
            return Err(QosrmError::InvalidSetting(format!(
                "setting covers {} cores, platform has {}",
                self.cores.len(),
                platform.num_cores
            )));
        }
        for (i, c) in self.cores.iter().enumerate() {
            if c.core_size.index() >= platform.num_core_sizes() {
                return Err(QosrmError::InvalidSetting(format!(
                    "core {i}: core size {} out of range",
                    c.core_size.index()
                )));
            }
            if c.freq.index() >= platform.vf.num_levels() {
                return Err(QosrmError::InvalidSetting(format!(
                    "core {i}: VF level {} out of range",
                    c.freq.index()
                )));
            }
            if c.ways == 0 || c.ways > platform.llc.associativity {
                return Err(QosrmError::InvalidSetting(format!(
                    "core {i}: way allocation {} out of range",
                    c.ways
                )));
            }
        }
        self.way_partition().validate(&platform.llc)?;
        Ok(())
    }

    /// Counts, per core, which of the three resource dimensions changed
    /// between `self` and `other`. Used by the simulator to charge
    /// reconfiguration overheads.
    pub fn diff(&self, other: &SystemSetting) -> Vec<SettingDelta> {
        let mut deltas = Vec::with_capacity(self.cores.len());
        self.diff_into(other, &mut deltas);
        deltas
    }

    /// Like [`SystemSetting::diff`], but writes into a caller-provided buffer
    /// so hot loops (the co-phase simulator charges reconfiguration overheads
    /// on every setting change) can reuse one allocation across events.
    pub fn diff_into(&self, other: &SystemSetting, out: &mut Vec<SettingDelta>) {
        debug_assert_eq!(self.cores.len(), other.cores.len());
        out.clear();
        out.extend(
            self.cores
                .iter()
                .zip(other.cores.iter())
                .map(|(a, b)| SettingDelta {
                    freq_changed: a.freq != b.freq,
                    ways_changed: a.ways != b.ways,
                    core_size_changed: a.core_size != b.core_size,
                    ways_delta: b.ways as isize - a.ways as isize,
                }),
        );
    }
}

/// Per-core summary of what changed between two consecutive system settings.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct SettingDelta {
    /// The VF level changed (a DVFS transition must be paid).
    pub freq_changed: bool,
    /// The LLC way allocation changed (some lines will be refetched).
    pub ways_changed: bool,
    /// The core configuration changed (pipeline drain / resource gating).
    pub core_size_changed: bool,
    /// Signed change in way count (positive = more ways).
    pub ways_delta: isize,
}

impl SettingDelta {
    /// Whether anything at all changed for this core.
    pub fn any(&self) -> bool {
        self.freq_changed || self.ways_changed || self.core_size_changed
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::PlatformConfig;

    #[test]
    fn baseline_is_valid_and_equal() {
        for n in [2usize, 4, 8] {
            let p = PlatformConfig::paper2(n);
            let s = SystemSetting::baseline(&p);
            assert!(s.validate(&p).is_ok());
            assert_eq!(s.num_cores(), n);
            let ways = p.llc.associativity / n;
            for c in s.cores() {
                assert_eq!(c.ways, ways);
                assert_eq!(c.freq, p.baseline_freq());
                assert_eq!(c.core_size, p.baseline_core_size);
            }
        }
    }

    #[test]
    fn validation_rejects_bad_settings() {
        let p = PlatformConfig::paper2(4);
        let mut s = SystemSetting::baseline(&p);
        s.core_mut(CoreId(0)).ways = 0;
        assert!(s.validate(&p).is_err());

        let mut s = SystemSetting::baseline(&p);
        s.core_mut(CoreId(0)).ways = 5; // now sums to 17
        assert!(s.validate(&p).is_err());

        let mut s = SystemSetting::baseline(&p);
        s.core_mut(CoreId(1)).freq = FreqLevel(99);
        assert!(s.validate(&p).is_err());

        let mut s = SystemSetting::baseline(&p);
        s.core_mut(CoreId(2)).core_size = CoreSizeIdx(7);
        assert!(s.validate(&p).is_err());
    }

    #[test]
    fn diff_reports_changes() {
        let p = PlatformConfig::paper2(4);
        let a = SystemSetting::baseline(&p);
        let mut b = a.clone();
        b.core_mut(CoreId(0)).freq = FreqLevel(2);
        b.core_mut(CoreId(1)).ways = 6;
        b.core_mut(CoreId(2)).ways = 2;
        let deltas = a.diff(&b);
        assert!(deltas[0].freq_changed && !deltas[0].ways_changed);
        assert!(deltas[1].ways_changed && deltas[1].ways_delta == 2);
        assert!(deltas[2].ways_changed && deltas[2].ways_delta == -2);
        assert!(!deltas[3].any());
    }

    #[test]
    fn diff_into_reuses_the_buffer_and_matches_diff() {
        let p = PlatformConfig::paper2(4);
        let a = SystemSetting::baseline(&p);
        let mut b = a.clone();
        b.core_mut(CoreId(0)).freq = FreqLevel(2);
        let mut buffer = vec![
            SettingDelta {
                freq_changed: true,
                ways_changed: true,
                core_size_changed: true,
                ways_delta: 9,
            };
            7
        ];
        a.diff_into(&b, &mut buffer);
        assert_eq!(buffer, a.diff(&b));
        assert_eq!(buffer.len(), 4);
    }

    #[test]
    fn way_partition_matches_settings() {
        let p = PlatformConfig::paper1(4);
        let s = SystemSetting::baseline(&p);
        assert_eq!(s.way_partition().as_slice(), &[4, 4, 4, 4]);
    }
}
