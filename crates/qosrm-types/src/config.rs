//! Platform description: cores, core-size configurations, DVFS table, LLC and
//! memory parameters.
//!
//! A [`PlatformConfig`] fully describes the configuration space the resource
//! manager optimizes over. The default platform mirrors the evaluation setup
//! of the paper: 4 or 8 out-of-order cores with per-core DVFS (13 levels,
//! 0.8–3.2 GHz), a 16-way shared LLC partitioned at way granularity and a
//! memory controller that partitions bandwidth equally among the cores.

use crate::cache::LlcGeometry;
use crate::error::QosrmError;
use crate::freq::{FreqLevel, VfTable};
use crate::ids::CoreSizeIdx;
use serde::{Deserialize, Serialize};

/// Number of instructions in one execution interval between invocations of
/// the resource manager (100 M in the paper).
pub const DEFAULT_INTERVAL_INSTRUCTIONS: u64 = 100_000_000;

/// Micro-architectural parameters of one core-size configuration.
///
/// Paper II considers a re-configurable core in which sections of the
/// micro-architecture (ROB segments, issue queue entries, MSHRs, functional
/// units) can be deactivated to save energy. We model each configuration with
/// the parameters that drive the analytical performance model: the width and
/// window that bound ILP, and the MSHR count that bounds MLP.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CoreSizeParams {
    /// Human-readable name (`"small"`, `"medium"`, `"large"`).
    pub name: String,
    /// Maximum dispatch/issue width in instructions per cycle.
    pub issue_width: usize,
    /// Re-order buffer capacity in instructions; bounds the window over which
    /// independent long-latency misses can overlap.
    pub rob_entries: usize,
    /// Miss-status holding registers; bounds memory-level parallelism.
    pub mshrs: usize,
    /// Relative dynamic energy per instruction of this configuration compared
    /// to the medium (baseline) configuration at nominal voltage.
    pub dynamic_epi_scale: f64,
    /// Relative static (leakage) power of this configuration compared to the
    /// medium configuration.
    pub static_power_scale: f64,
}

impl CoreSizeParams {
    /// The three-point small / medium / large configuration set used in the
    /// evaluation. The medium configuration is the baseline.
    pub fn default_three_sizes() -> Vec<CoreSizeParams> {
        vec![
            CoreSizeParams {
                name: "small".to_string(),
                issue_width: 2,
                rob_entries: 48,
                mshrs: 3,
                dynamic_epi_scale: 0.88,
                static_power_scale: 0.75,
            },
            CoreSizeParams {
                name: "medium".to_string(),
                issue_width: 4,
                rob_entries: 128,
                mshrs: 6,
                dynamic_epi_scale: 1.0,
                static_power_scale: 1.0,
            },
            // The large configuration re-activates the gated halves of the
            // ROB, issue queue and MSHR file: the pipeline width is unchanged
            // (the gain is mostly memory-level parallelism), and the energy
            // cost of the extra storage structures is moderate.
            CoreSizeParams {
                name: "large".to_string(),
                issue_width: 4,
                rob_entries: 256,
                mshrs: 16,
                dynamic_epi_scale: 1.08,
                static_power_scale: 1.25,
            },
        ]
    }

    /// A single-configuration list (medium only), used for Paper I
    /// experiments where the core size is fixed.
    pub fn medium_only() -> Vec<CoreSizeParams> {
        vec![CoreSizeParams::default_three_sizes().swap_remove(1)]
    }
}

/// Main-memory parameters.
///
/// The paper assumes a memory controller that partitions the available
/// bandwidth equally among the cores (the simulation framework cannot model a
/// bandwidth partition shared by several cores), so the queueing term is
/// evaluated against a per-core bandwidth share.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MemoryParams {
    /// Unloaded (idle) latency of one memory access, in nanoseconds.
    pub latency_ns: f64,
    /// Total DRAM bandwidth in GB/s.
    pub total_bandwidth_gbs: f64,
    /// Cache line size in bytes (for converting miss rates to bandwidth).
    pub line_bytes: usize,
}

impl MemoryParams {
    /// Default DDR4-like parameters.
    pub fn default_ddr4() -> Self {
        MemoryParams {
            latency_ns: 70.0,
            total_bandwidth_gbs: 25.6,
            line_bytes: 64,
        }
    }

    /// Bandwidth share of one core (equal partition), in GB/s.
    pub fn per_core_bandwidth_gbs(&self, num_cores: usize) -> f64 {
        self.total_bandwidth_gbs / num_cores.max(1) as f64
    }
}

/// Full description of the simulated multi-core platform and its configuration
/// space.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PlatformConfig {
    /// Number of cores (= number of applications in the workload).
    pub num_cores: usize,
    /// Shared LLC geometry.
    pub llc: LlcGeometry,
    /// Per-core DVFS table.
    pub vf: VfTable,
    /// Available core-size configurations, ordered small to large.
    pub core_sizes: Vec<CoreSizeParams>,
    /// Index of the baseline core size within `core_sizes`.
    pub baseline_core_size: CoreSizeIdx,
    /// Main-memory parameters.
    pub memory: MemoryParams,
    /// Instructions per execution interval between RMA invocations.
    pub interval_instructions: u64,
}

impl PlatformConfig {
    /// The Paper I evaluation platform: `num_cores` medium cores with
    /// per-core DVFS and a 16-way shared LLC (core size is not
    /// re-configurable).
    pub fn paper1(num_cores: usize) -> Self {
        PlatformConfig {
            num_cores,
            llc: LlcGeometry::default_4mib_16way(),
            vf: VfTable::default_13_levels(),
            core_sizes: CoreSizeParams::medium_only(),
            baseline_core_size: CoreSizeIdx(0),
            memory: MemoryParams::default_ddr4(),
            interval_instructions: DEFAULT_INTERVAL_INSTRUCTIONS,
        }
    }

    /// The Paper II evaluation platform: `num_cores` re-configurable cores
    /// (small / medium / large) with per-core DVFS and a 16-way shared LLC.
    pub fn paper2(num_cores: usize) -> Self {
        PlatformConfig {
            num_cores,
            llc: LlcGeometry::default_4mib_16way(),
            vf: VfTable::default_13_levels(),
            core_sizes: CoreSizeParams::default_three_sizes(),
            baseline_core_size: CoreSizeIdx(1),
            memory: MemoryParams::default_ddr4(),
            interval_instructions: DEFAULT_INTERVAL_INSTRUCTIONS,
        }
    }

    /// A small platform for fast unit tests (fewer sets, shorter intervals).
    pub fn small_for_tests(num_cores: usize) -> Self {
        let mut p = PlatformConfig::paper2(num_cores);
        p.llc = LlcGeometry::small_for_tests();
        p.interval_instructions = 1_000_000;
        p
    }

    /// Parameters of the core size `idx`.
    pub fn core_size(&self, idx: CoreSizeIdx) -> &CoreSizeParams {
        &self.core_sizes[idx.index()]
    }

    /// Parameters of the baseline core size.
    pub fn baseline_core(&self) -> &CoreSizeParams {
        self.core_size(self.baseline_core_size)
    }

    /// Number of available core-size configurations.
    pub fn num_core_sizes(&self) -> usize {
        self.core_sizes.len()
    }

    /// Iterator over the available core-size indices.
    pub fn core_size_indices(&self) -> impl Iterator<Item = CoreSizeIdx> {
        (0..self.core_sizes.len()).map(CoreSizeIdx)
    }

    /// Baseline number of LLC ways per core (equal partition).
    pub fn baseline_ways_per_core(&self) -> usize {
        self.llc.associativity / self.num_cores
    }

    /// Baseline VF level.
    pub fn baseline_freq(&self) -> FreqLevel {
        self.vf.baseline()
    }

    /// Size of the per-core configuration space
    /// (`core sizes × VF levels × way counts`).
    pub fn per_core_config_space(&self) -> usize {
        self.core_sizes.len() * self.vf.num_levels() * self.llc.associativity
    }

    /// Validates internal consistency of the platform description.
    pub fn validate(&self) -> Result<(), QosrmError> {
        if self.num_cores == 0 {
            return Err(QosrmError::InvalidPlatform("num_cores must be > 0".into()));
        }
        self.llc.validate()?;
        if !self.llc.associativity.is_multiple_of(self.num_cores) {
            return Err(QosrmError::InvalidPlatform(format!(
                "LLC associativity {} is not divisible by {} cores (baseline equal partition impossible)",
                self.llc.associativity, self.num_cores
            )));
        }
        if self.core_sizes.is_empty() {
            return Err(QosrmError::InvalidPlatform(
                "at least one core size configuration is required".into(),
            ));
        }
        if self.baseline_core_size.index() >= self.core_sizes.len() {
            return Err(QosrmError::InvalidPlatform(
                "baseline core size index out of range".into(),
            ));
        }
        for (i, cs) in self.core_sizes.iter().enumerate() {
            if cs.issue_width == 0 || cs.rob_entries == 0 || cs.mshrs == 0 {
                return Err(QosrmError::InvalidPlatform(format!(
                    "core size {i} has zero-sized resources"
                )));
            }
            if cs.dynamic_epi_scale <= 0.0 || cs.static_power_scale <= 0.0 {
                return Err(QosrmError::InvalidPlatform(format!(
                    "core size {i} has non-positive energy scales"
                )));
            }
        }
        for pair in self.core_sizes.windows(2) {
            if pair[1].rob_entries < pair[0].rob_entries || pair[1].mshrs < pair[0].mshrs {
                return Err(QosrmError::InvalidPlatform(
                    "core sizes must be ordered from small to large".into(),
                ));
            }
        }
        if self.memory.latency_ns <= 0.0 || self.memory.total_bandwidth_gbs <= 0.0 {
            return Err(QosrmError::InvalidPlatform(
                "memory parameters must be positive".into(),
            ));
        }
        if self.interval_instructions == 0 {
            return Err(QosrmError::InvalidPlatform(
                "interval_instructions must be > 0".into(),
            ));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_platforms_are_valid() {
        assert!(PlatformConfig::paper1(4).validate().is_ok());
        assert!(PlatformConfig::paper1(8).validate().is_ok());
        assert!(PlatformConfig::paper2(4).validate().is_ok());
        assert!(PlatformConfig::paper2(8).validate().is_ok());
        assert!(PlatformConfig::small_for_tests(2).validate().is_ok());
    }

    #[test]
    fn paper1_has_single_core_size() {
        let p = PlatformConfig::paper1(4);
        assert_eq!(p.num_core_sizes(), 1);
        assert_eq!(p.baseline_core().name, "medium");
        assert_eq!(p.baseline_ways_per_core(), 4);
    }

    #[test]
    fn paper2_has_three_core_sizes() {
        let p = PlatformConfig::paper2(8);
        assert_eq!(p.num_core_sizes(), 3);
        assert_eq!(p.baseline_core().name, "medium");
        assert_eq!(p.baseline_ways_per_core(), 2);
        assert_eq!(p.per_core_config_space(), 3 * 13 * 16);
    }

    #[test]
    fn validation_rejects_inconsistencies() {
        let mut p = PlatformConfig::paper1(4);
        p.num_cores = 0;
        assert!(p.validate().is_err());

        let mut p = PlatformConfig::paper1(4);
        p.num_cores = 5; // 16 ways not divisible by 5
        assert!(p.validate().is_err());

        let mut p = PlatformConfig::paper2(4);
        p.baseline_core_size = CoreSizeIdx(9);
        assert!(p.validate().is_err());

        let mut p = PlatformConfig::paper2(4);
        p.core_sizes.reverse(); // large before small
        assert!(p.validate().is_err());

        let mut p = PlatformConfig::paper1(4);
        p.interval_instructions = 0;
        assert!(p.validate().is_err());
    }

    #[test]
    fn memory_bandwidth_share() {
        let m = MemoryParams::default_ddr4();
        assert!((m.per_core_bandwidth_gbs(4) - 6.4).abs() < 1e-9);
        assert!((m.per_core_bandwidth_gbs(0) - 25.6).abs() < 1e-9);
    }

    #[test]
    fn core_size_ordering() {
        let sizes = CoreSizeParams::default_three_sizes();
        assert!(sizes[0].mshrs < sizes[1].mshrs && sizes[1].mshrs < sizes[2].mshrs);
        assert!(sizes[0].dynamic_epi_scale < 1.0 && sizes[2].dynamic_epi_scale > 1.0);
    }
}
