//! Shared last-level cache (LLC) geometry and way-partitioning types.
//!
//! The paper partitions the shared LLC among cores at way granularity
//! (as in Qureshi & Patt's utility-based cache partitioning): each core is
//! assigned a subset of the ways of every set, expressed as a bit-mask, and a
//! core's fills may only evict lines from its own ways.

use crate::error::QosrmError;
use serde::{Deserialize, Serialize};

/// Geometry of the shared last-level cache.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct LlcGeometry {
    /// Number of sets.
    pub num_sets: usize,
    /// Associativity (number of ways per set). Way partitioning operates at
    /// this granularity.
    pub associativity: usize,
    /// Cache line size in bytes.
    pub line_bytes: usize,
}

impl LlcGeometry {
    /// The default geometry used in the evaluation: a 16-way, 4 MiB LLC with
    /// 64-byte lines (4096 sets).
    pub fn default_4mib_16way() -> Self {
        LlcGeometry {
            num_sets: 4096,
            associativity: 16,
            line_bytes: 64,
        }
    }

    /// A reduced geometry for fast unit tests (64 sets, 16 ways).
    pub fn small_for_tests() -> Self {
        LlcGeometry {
            num_sets: 64,
            associativity: 16,
            line_bytes: 64,
        }
    }

    /// Total capacity in bytes.
    pub fn capacity_bytes(&self) -> usize {
        self.num_sets * self.associativity * self.line_bytes
    }

    /// Capacity of a single way across all sets, in bytes.
    pub fn way_bytes(&self) -> usize {
        self.num_sets * self.line_bytes
    }

    /// Number of cache lines that fit in `ways` ways.
    pub fn lines_in_ways(&self, ways: usize) -> usize {
        self.num_sets * ways
    }

    /// Validates that the geometry is usable.
    pub fn validate(&self) -> Result<(), QosrmError> {
        if self.num_sets == 0 || self.associativity == 0 || self.line_bytes == 0 {
            return Err(QosrmError::InvalidPlatform(
                "LLC geometry fields must be non-zero".into(),
            ));
        }
        if !self.num_sets.is_power_of_two() {
            return Err(QosrmError::InvalidPlatform(
                "LLC number of sets must be a power of two".into(),
            ));
        }
        if self.associativity > 64 {
            return Err(QosrmError::InvalidPlatform(
                "way masks support at most 64 ways".into(),
            ));
        }
        Ok(())
    }
}

/// A bit-mask over the ways of the LLC identifying the ways a core may
/// allocate into.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct WayMask(pub u64);

impl WayMask {
    /// An empty mask (no ways).
    pub const EMPTY: WayMask = WayMask(0);

    /// A contiguous mask of `count` ways starting at way `start`.
    pub fn contiguous(start: usize, count: usize) -> Self {
        if count == 0 {
            return WayMask(0);
        }
        debug_assert!(start + count <= 64);
        let ones = if count >= 64 {
            u64::MAX
        } else {
            (1u64 << count) - 1
        };
        WayMask(ones << start)
    }

    /// Number of ways in the mask.
    #[inline]
    pub fn count(&self) -> usize {
        self.0.count_ones() as usize
    }

    /// Whether way `w` is part of the mask.
    #[inline]
    pub fn contains(&self, way: usize) -> bool {
        way < 64 && (self.0 >> way) & 1 == 1
    }

    /// Iterator over the way indices in the mask, in increasing order.
    pub fn ways(&self) -> impl Iterator<Item = usize> + '_ {
        let bits = self.0;
        (0..64usize).filter(move |w| (bits >> w) & 1 == 1)
    }

    /// Whether this mask overlaps another.
    #[inline]
    pub fn intersects(&self, other: &WayMask) -> bool {
        self.0 & other.0 != 0
    }
}

/// A partition of the LLC ways among the cores: `ways[i]` is the number of
/// ways assigned to core `i`.
///
/// A valid partition assigns at least one way to every core and exactly
/// `associativity` ways in total (the paper never leaves ways unused: the
/// global optimizer distributes the full associativity).
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct WayPartition {
    ways: Vec<usize>,
}

impl WayPartition {
    /// Creates a partition from the per-core way counts.
    pub fn new(ways: Vec<usize>) -> Self {
        WayPartition { ways }
    }

    /// The equal (baseline) partition of `associativity` ways among
    /// `num_cores` cores. Requires that the associativity is divisible by the
    /// number of cores, as in the paper's 4-core (4 ways each) and 8-core
    /// (2 ways each) configurations.
    pub fn equal(num_cores: usize, associativity: usize) -> Result<Self, QosrmError> {
        if num_cores == 0 {
            return Err(QosrmError::InvalidPlatform("no cores".into()));
        }
        if !associativity.is_multiple_of(num_cores) {
            return Err(QosrmError::InvalidPlatform(format!(
                "associativity {associativity} not divisible by {num_cores} cores"
            )));
        }
        Ok(WayPartition {
            ways: vec![associativity / num_cores; num_cores],
        })
    }

    /// Number of cores covered by the partition.
    #[inline]
    pub fn num_cores(&self) -> usize {
        self.ways.len()
    }

    /// Way count of core `core`.
    #[inline]
    pub fn ways_of(&self, core: usize) -> usize {
        self.ways[core]
    }

    /// The per-core way counts.
    #[inline]
    pub fn as_slice(&self) -> &[usize] {
        &self.ways
    }

    /// Total number of ways assigned.
    pub fn total_ways(&self) -> usize {
        self.ways.iter().sum()
    }

    /// Sets the way count of a core.
    pub fn set_ways(&mut self, core: usize, ways: usize) {
        self.ways[core] = ways;
    }

    /// Validates the partition against an LLC geometry: every core gets at
    /// least one way and the counts sum to the associativity.
    pub fn validate(&self, llc: &LlcGeometry) -> Result<(), QosrmError> {
        if self.ways.is_empty() {
            return Err(QosrmError::InvalidSetting("empty way partition".into()));
        }
        if self.ways.contains(&0) {
            return Err(QosrmError::InvalidSetting(
                "every core must receive at least one LLC way".into(),
            ));
        }
        let total = self.total_ways();
        if total != llc.associativity {
            return Err(QosrmError::InvalidSetting(format!(
                "way partition sums to {total}, expected associativity {}",
                llc.associativity
            )));
        }
        Ok(())
    }

    /// Materializes the partition as contiguous, disjoint way masks
    /// (core 0 gets the lowest ways, core 1 the next block, and so on).
    pub fn to_masks(&self) -> Vec<WayMask> {
        let mut masks = Vec::with_capacity(self.ways.len());
        let mut start = 0usize;
        for &count in &self.ways {
            masks.push(WayMask::contiguous(start, count));
            start += count;
        }
        masks
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn geometry_capacity() {
        let g = LlcGeometry::default_4mib_16way();
        assert_eq!(g.capacity_bytes(), 4 * 1024 * 1024);
        assert_eq!(g.way_bytes(), 256 * 1024);
        assert_eq!(g.lines_in_ways(2), 8192);
        assert!(g.validate().is_ok());
    }

    #[test]
    fn geometry_validation_rejects_bad_shapes() {
        let mut g = LlcGeometry::default_4mib_16way();
        g.num_sets = 1000; // not a power of two
        assert!(g.validate().is_err());
        let mut g = LlcGeometry::default_4mib_16way();
        g.associativity = 0;
        assert!(g.validate().is_err());
        let mut g = LlcGeometry::default_4mib_16way();
        g.associativity = 128;
        assert!(g.validate().is_err());
    }

    #[test]
    fn way_mask_contiguous() {
        let m = WayMask::contiguous(4, 3);
        assert_eq!(m.count(), 3);
        assert!(m.contains(4) && m.contains(5) && m.contains(6));
        assert!(!m.contains(3) && !m.contains(7));
        assert_eq!(m.ways().collect::<Vec<_>>(), vec![4, 5, 6]);
        assert_eq!(WayMask::contiguous(0, 0), WayMask::EMPTY);
    }

    #[test]
    fn equal_partition() {
        let p = WayPartition::equal(4, 16).unwrap();
        assert_eq!(p.as_slice(), &[4, 4, 4, 4]);
        assert_eq!(p.total_ways(), 16);
        assert!(WayPartition::equal(3, 16).is_err());
        assert!(WayPartition::equal(0, 16).is_err());
    }

    #[test]
    fn partition_validation() {
        let llc = LlcGeometry::default_4mib_16way();
        let ok = WayPartition::new(vec![10, 2, 3, 1]);
        assert!(ok.validate(&llc).is_ok());
        let zero = WayPartition::new(vec![12, 0, 3, 1]);
        assert!(zero.validate(&llc).is_err());
        let sum = WayPartition::new(vec![4, 4, 4, 3]);
        assert!(sum.validate(&llc).is_err());
        let empty = WayPartition::new(vec![]);
        assert!(empty.validate(&llc).is_err());
    }

    #[test]
    fn masks_are_disjoint_and_cover() {
        let p = WayPartition::new(vec![5, 3, 6, 2]);
        let masks = p.to_masks();
        assert_eq!(masks.len(), 4);
        let mut seen = WayMask::EMPTY;
        for (i, m) in masks.iter().enumerate() {
            assert_eq!(m.count(), p.ways_of(i));
            assert!(!m.intersects(&seen));
            seen = WayMask(seen.0 | m.0);
        }
        assert_eq!(seen.count(), 16);
    }
}
