//! The [`ResourceManager`] trait: the interface between the co-phase
//! simulator (or a real system's interrupt handler) and the resource
//! management algorithms.

use crate::freq::FreqLevel;
use crate::ids::{AppId, CoreId, CoreSizeIdx};
use crate::setting::SystemSetting;
use crate::stats::{CoreScalingProfile, IntervalStats, MissProfile, MlpProfile};
use serde::{Deserialize, Serialize};

/// Ground-truth performance and energy of one core for a single
/// (core size, VF level, ways) configuration point.
///
/// Used in *perfect-model* mode, where the resource manager is given the exact
/// behaviour of the upcoming interval instead of relying on its analytical
/// models (the paper uses this mode to isolate the effect of modeling error).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ConfigMetrics {
    /// Interval execution time in seconds.
    pub time_seconds: f64,
    /// Interval energy (core + LLC + DRAM share) in joules.
    pub energy_joules: f64,
    /// LLC misses during the interval.
    pub llc_misses: u64,
    /// Leading (non-overlapped) LLC misses during the interval.
    pub leading_misses: u64,
}

/// Ground-truth metrics for every configuration in the per-core configuration
/// space, indexed by `(core size, VF level, ways)`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ConfigTable {
    num_core_sizes: usize,
    num_freqs: usize,
    num_ways: usize,
    metrics: Vec<ConfigMetrics>,
}

impl ConfigTable {
    /// Builds a table by evaluating `f` on every configuration point.
    pub fn from_fn(
        num_core_sizes: usize,
        num_freqs: usize,
        num_ways: usize,
        mut f: impl FnMut(CoreSizeIdx, FreqLevel, usize) -> ConfigMetrics,
    ) -> Self {
        let mut metrics = Vec::with_capacity(num_core_sizes * num_freqs * num_ways);
        for s in 0..num_core_sizes {
            for fl in 0..num_freqs {
                for w in 1..=num_ways {
                    metrics.push(f(CoreSizeIdx(s), FreqLevel(fl), w));
                }
            }
        }
        ConfigTable {
            num_core_sizes,
            num_freqs,
            num_ways,
            metrics,
        }
    }

    #[inline]
    fn index(&self, size: CoreSizeIdx, freq: FreqLevel, ways: usize) -> usize {
        debug_assert!(ways >= 1 && ways <= self.num_ways);
        (size.index() * self.num_freqs + freq.index()) * self.num_ways + (ways - 1)
    }

    /// Metrics of the configuration `(size, freq, ways)`.
    #[inline]
    pub fn get(&self, size: CoreSizeIdx, freq: FreqLevel, ways: usize) -> ConfigMetrics {
        self.metrics[self.index(size, freq, ways)]
    }

    /// Number of core sizes covered.
    pub fn num_core_sizes(&self) -> usize {
        self.num_core_sizes
    }

    /// Number of VF levels covered.
    pub fn num_freqs(&self) -> usize {
        self.num_freqs
    }

    /// Maximum way count covered.
    pub fn num_ways(&self) -> usize {
        self.num_ways
    }
}

/// Everything a core exposes to the resource manager when it finishes an
/// execution interval.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CoreObservation {
    /// The application currently running on the core.
    pub app: AppId,
    /// Performance-counter statistics of the finished interval.
    pub stats: IntervalStats,
    /// ATD cache-miss profile (misses as a function of allocated ways).
    pub miss_profile: MissProfile,
    /// MLP-aware ATD profile (Paper II hardware); `None` on a Paper I
    /// platform without the extension.
    pub mlp_profile: Option<MlpProfile>,
    /// Execution-CPI estimates per core size (Paper II ILP monitor); `None`
    /// on a Paper I platform.
    pub scaling_profile: Option<CoreScalingProfile>,
    /// Ground truth for the upcoming interval, present only in perfect-model
    /// experiments.
    pub perfect: Option<ConfigTable>,
}

/// A resource management algorithm (RMA).
///
/// The co-phase simulator invokes [`ResourceManager::on_interval`] every time
/// a core finishes an execution interval (a fixed number of instructions).
/// The manager receives the core's observation of the past interval and the
/// currently applied system setting and returns the setting to apply for the
/// next interval. Managers are stateful: they remember the most recent energy
/// curves of the other cores so the global optimization can trade resources
/// between applications.
pub trait ResourceManager {
    /// Short human-readable name used in result tables (e.g. `"CombinedRMA"`).
    fn name(&self) -> &str;

    /// Called when `core` finishes an interval. Returns the new system-wide
    /// resource setting.
    fn on_interval(
        &mut self,
        core: CoreId,
        observation: &CoreObservation,
        current: &SystemSetting,
    ) -> SystemSetting;

    /// Estimated software cost of one invocation, in executed instructions,
    /// for a system with `num_cores` cores. The default mirrors the paper's
    /// measured cost of the C implementation (about 10 K instructions per
    /// core minus reuse across shared steps).
    fn invocation_overhead_instructions(&self, num_cores: usize) -> u64 {
        8_000 + 8_000 * num_cores as u64
    }

    /// Called once before the first interval so the manager can initialize
    /// per-core state. The default does nothing.
    fn reset(&mut self, _num_cores: usize) {}

    /// Number of intervals (since the last [`ResourceManager::reset`]) where
    /// the manager had to keep a setting whose QoS target it could not
    /// certify — e.g. a manager without partitioning authority observing
    /// that a core's current way allocation is infeasible. The simulator
    /// surfaces this tally in its `SimulationResult` so the signal is not
    /// silently dropped. Defaults to 0 for managers that always certify.
    fn qos_at_risk_intervals(&self) -> u64 {
        0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::CoreSizeIdx;

    #[test]
    fn config_table_indexing_roundtrip() {
        let t = ConfigTable::from_fn(2, 3, 4, |s, f, w| ConfigMetrics {
            time_seconds: (s.index() * 100 + f.index() * 10 + w) as f64,
            energy_joules: 1.0,
            llc_misses: 0,
            leading_misses: 0,
        });
        assert_eq!(t.num_core_sizes(), 2);
        assert_eq!(t.num_freqs(), 3);
        assert_eq!(t.num_ways(), 4);
        for s in 0..2 {
            for f in 0..3 {
                for w in 1..=4 {
                    let m = t.get(CoreSizeIdx(s), FreqLevel(f), w);
                    assert_eq!(m.time_seconds, (s * 100 + f * 10 + w) as f64);
                }
            }
        }
    }

    struct Noop;
    impl ResourceManager for Noop {
        fn name(&self) -> &str {
            "noop"
        }
        fn on_interval(
            &mut self,
            _core: CoreId,
            _obs: &CoreObservation,
            current: &SystemSetting,
        ) -> SystemSetting {
            current.clone()
        }
    }

    #[test]
    fn default_overhead_scales_with_cores() {
        let m = Noop;
        assert!(m.invocation_overhead_instructions(8) > m.invocation_overhead_instructions(2));
    }
}
