//! Strongly-typed identifiers used across the workspace.
//!
//! Using newtypes instead of raw integers prevents accidentally mixing up
//! a core index with an application index or a phase index, which are all
//! plain `usize` values underneath.

use serde::{Deserialize, Serialize};
use std::fmt;

/// Identifier of a processor core in the simulated multi-core system.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct CoreId(pub usize);

/// Identifier of an application (one entry of a multi-programmed workload).
///
/// In all experiments of the paper one application is pinned to one core, so
/// `AppId(i)` runs on `CoreId(i)`; the types are still kept distinct because
/// the co-phase simulator restarts finished applications while statistics are
/// only collected for the first full round.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct AppId(pub usize);

/// Identifier of a program phase produced by the SimPoint-like phase analysis.
///
/// Phases are local to a benchmark: `PhaseId(2)` of `mcf_like` is unrelated to
/// `PhaseId(2)` of `povray_like`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct PhaseId(pub usize);

/// Index into the platform's list of available core micro-architecture sizes
/// (e.g. 0 = small, 1 = medium, 2 = large).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct CoreSizeIdx(pub usize);

impl CoreId {
    /// Returns the raw index.
    #[inline]
    pub fn index(self) -> usize {
        self.0
    }
}

impl AppId {
    /// Returns the raw index.
    #[inline]
    pub fn index(self) -> usize {
        self.0
    }
}

impl PhaseId {
    /// Returns the raw index.
    #[inline]
    pub fn index(self) -> usize {
        self.0
    }
}

impl CoreSizeIdx {
    /// Returns the raw index.
    #[inline]
    pub fn index(self) -> usize {
        self.0
    }
}

impl fmt::Display for CoreId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "core{}", self.0)
    }
}

impl fmt::Display for AppId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "app{}", self.0)
    }
}

impl fmt::Display for PhaseId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "phase{}", self.0)
    }
}

impl fmt::Display for CoreSizeIdx {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "size{}", self.0)
    }
}

impl From<usize> for CoreId {
    fn from(v: usize) -> Self {
        CoreId(v)
    }
}

impl From<usize> for AppId {
    fn from(v: usize) -> Self {
        AppId(v)
    }
}

impl From<usize> for PhaseId {
    fn from(v: usize) -> Self {
        PhaseId(v)
    }
}

impl From<usize> for CoreSizeIdx {
    fn from(v: usize) -> Self {
        CoreSizeIdx(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_formats() {
        assert_eq!(CoreId(3).to_string(), "core3");
        assert_eq!(AppId(1).to_string(), "app1");
        assert_eq!(PhaseId(0).to_string(), "phase0");
        assert_eq!(CoreSizeIdx(2).to_string(), "size2");
    }

    #[test]
    fn conversions_roundtrip() {
        assert_eq!(CoreId::from(7).index(), 7);
        assert_eq!(AppId::from(7).index(), 7);
        assert_eq!(PhaseId::from(7).index(), 7);
        assert_eq!(CoreSizeIdx::from(7).index(), 7);
    }

    #[test]
    fn ordering_follows_index() {
        assert!(CoreId(0) < CoreId(1));
        assert!(PhaseId(3) > PhaseId(2));
    }
}
