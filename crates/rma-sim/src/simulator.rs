//! The co-phase event-driven simulator.
//!
//! # Hot-loop design
//!
//! The event loop is the inner loop of every experiment, so it avoids
//! re-deriving state that cannot have changed between events:
//!
//! * **Dirty-core tracking** — a core's interval time, full-interval energy
//!   breakdown and observable statistics are pure functions of its current
//!   `(phase, setting)`. They are cached per core and recomputed only
//!   when the core finishes an interval (its phase advances) or a
//!   reconfiguration actually touches it, instead of once per core per
//!   global event.
//! * **Preallocated buffers** — the per-interval record log is allocated
//!   once at its exact final size, the reconfiguration delta buffer is
//!   reused across setting changes, and each core owns a reusable
//!   [`CoreObservation`] whose ATD/MLP/ILP profiles are materialized from a
//!   per-phase cache only when the finished phase changes (perfect-model
//!   configuration tables are likewise built once per phase and cloned).
//!
//! All cached values are produced by the same pure model calls the naive
//! loop would make, so results are bit-identical to a cache-free run (the
//! determinism and sweep-equivalence integration tests lock this in).

use crate::baseline::BaselineManager;
use crate::result::{AppResult, IntervalRecord, SimulationResult};
use core_model::{TransitionCosts, TransitionModel};
use power_model::EnergyBreakdown;
use qosrm_types::{
    AppId, ConfigTable, CoreId, CoreObservation, CoreScalingProfile, CoreSetting, CoreSizeIdx,
    FreqLevel, IntervalStats, MissProfile, MlpProfile, PhaseId, PlatformConfig, QosrmError,
    ResourceManager, SettingDelta, SystemSetting,
};
use serde::{Deserialize, Serialize};
use simdb::{BenchmarkRecord, GroundTruth, SimDb};
use workload::WorkloadMix;

/// Options of a simulation run.
///
/// Serializable so a scenario spec file (`experiments::spec`) can pin the
/// exact simulation configuration of a sweep.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SimulationOptions {
    /// Give the manager the ground-truth configuration table of the upcoming
    /// interval (perfect-model experiments).
    pub provide_perfect_tables: bool,
    /// Give the manager the MLP-ATD and ILP-monitor observations (the
    /// Paper II hardware support). Without it only the plain ATD miss profile
    /// is available, as in Paper I.
    pub provide_mlp_profiles: bool,
    /// Safety cap on the number of global events. Hitting the cap fails the
    /// run with [`QosrmError::EventLimitExceeded`] naming the manager — a
    /// manager that keeps the system livelocked must not silently produce a
    /// truncated result.
    pub max_events: usize,
    /// Transition-cost constants.
    pub transition_costs: TransitionCosts,
}

impl Default for SimulationOptions {
    fn default() -> Self {
        SimulationOptions {
            provide_perfect_tables: false,
            provide_mlp_profiles: true,
            max_events: 2_000_000,
            transition_costs: TransitionCosts::default(),
        }
    }
}

/// Per-core run-time state.
struct CoreState {
    record: BenchmarkRecord,
    /// Index of the interval currently executing (counts from 0 over the
    /// whole run; the phase trace wraps around after the first round).
    interval_idx: usize,
    /// Instructions completed in the current interval.
    progress: f64,
    /// Stall time (seconds) still to be served before the interval resumes
    /// (reconfiguration and RMA software overheads).
    pending_overhead: f64,
    /// Global time at which the current interval started.
    interval_start: f64,
    /// Whether the application has completed its first full round.
    done: bool,
    /// Execution time of the first round.
    round_time: f64,
    /// Energy of the first round.
    round_energy: EnergyBreakdown,
    /// Intervals completed in the first round.
    round_intervals: usize,
    /// Whether the cached `(phase, setting)` state below is stale: set when
    /// the core's phase advances or a reconfiguration touches the core.
    dirty: bool,
    /// The `(phase, setting)` the cached state below was computed for; a
    /// dirty core whose key is unchanged (same phase again, untouched
    /// setting) skips the model calls entirely.
    cached_key: Option<(PhaseId, CoreSetting)>,
    /// Cached interval execution time at the current `(phase, setting)`.
    interval_time: f64,
    /// Cached full-interval energy breakdown at the current
    /// `(phase, setting)`.
    interval_energy: EnergyBreakdown,
}

impl CoreState {
    /// Recomputes the cached `(phase, setting)` derived state. A dirty mark
    /// is conservative — when the key turns out unchanged (the phase trace
    /// repeated a phase, or a reconfiguration left this core alone), the
    /// cached values are already exact and the model calls are skipped.
    fn refresh(&mut self, ground_truth: &GroundTruth, setting: CoreSetting) {
        let phase_id = self.record.trace.phase_at(self.interval_idx);
        self.dirty = false;
        if self.cached_key == Some((phase_id, setting)) {
            return;
        }
        let (time, energy) = {
            let phase = self.record.phase(phase_id);
            let outcome = ground_truth.timing(phase, setting.core_size, setting.freq, setting.ways);
            let energy = ground_truth.energy(
                phase,
                setting.core_size,
                setting.freq,
                setting.ways,
                &outcome,
            );
            (outcome.time_seconds, energy)
        };
        self.interval_time = time;
        self.interval_energy = energy;
        self.cached_key = Some((phase_id, setting));
    }
}

/// Profiles a core exposes for one phase; they do not depend on the setting,
/// so they are built once per phase and reused for every interval of it.
struct CachedProfiles {
    miss: MissProfile,
    mlp: Option<MlpProfile>,
    scaling: Option<CoreScalingProfile>,
}

/// Reusable per-core observation buffer: the [`CoreObservation`] handed to
/// the manager is updated in place instead of being rebuilt per event.
struct ObsBuffer {
    obs: CoreObservation,
    /// The `(phase, setting)` the buffered `stats` were computed for.
    stats_key: Option<(PhaseId, CoreSetting)>,
    /// Phase whose profiles are currently materialized in `obs`.
    materialized: Option<PhaseId>,
    /// Lazily built per-phase profile cache.
    profiles: Vec<Option<CachedProfiles>>,
    /// Lazily built per-phase perfect-model tables (empty unless the run
    /// provides perfect tables).
    perfect: Vec<Option<ConfigTable>>,
}

impl ObsBuffer {
    fn new(app: usize, num_phases: usize) -> Self {
        ObsBuffer {
            obs: CoreObservation {
                app: AppId(app),
                // Placeholder overwritten before the first manager call.
                stats: IntervalStats {
                    instructions: 0,
                    cycles: 0,
                    exec_cycles: 0,
                    llc_accesses: 0,
                    llc_misses: 0,
                    leading_misses: 0,
                    elapsed_seconds: 0.0,
                    freq: FreqLevel(0),
                    core_size: CoreSizeIdx(0),
                    ways: 1,
                },
                miss_profile: MissProfile::new(vec![0]),
                mlp_profile: None,
                scaling_profile: None,
                perfect: None,
            },
            stats_key: None,
            materialized: None,
            profiles: (0..num_phases).map(|_| None).collect(),
            perfect: (0..num_phases).map(|_| None).collect(),
        }
    }

    /// Updates the buffered observation for the just-finished interval and
    /// returns it.
    #[allow(clippy::too_many_arguments)]
    fn prepare(
        &mut self,
        ground_truth: &GroundTruth,
        record: &BenchmarkRecord,
        finished_phase: PhaseId,
        finished_setting: CoreSetting,
        next_phase: PhaseId,
        options: &SimulationOptions,
    ) -> &CoreObservation {
        let phase = record.phase(finished_phase);
        if self.stats_key != Some((finished_phase, finished_setting)) {
            self.obs.stats = ground_truth.interval_stats(phase, finished_setting);
            self.stats_key = Some((finished_phase, finished_setting));
        }
        if self.materialized != Some(finished_phase) {
            let cached =
                self.profiles[finished_phase.index()].get_or_insert_with(|| CachedProfiles {
                    miss: MissProfile::new(phase.atd_misses_per_way.clone()),
                    mlp: options
                        .provide_mlp_profiles
                        .then(|| MlpProfile::new(phase.atd_leading_misses.clone())),
                    scaling: options
                        .provide_mlp_profiles
                        .then(|| CoreScalingProfile::new(phase.exec_cpi.clone())),
                });
            self.obs.miss_profile = cached.miss.clone();
            self.obs.mlp_profile = cached.mlp.clone();
            self.obs.scaling_profile = cached.scaling.clone();
            self.materialized = Some(finished_phase);
        }
        self.obs.perfect = if options.provide_perfect_tables {
            // Perfect foresight of the upcoming interval's phase; the table
            // covers the whole configuration space, so build it once per
            // phase and clone it per event.
            let table = self.perfect[next_phase.index()]
                .get_or_insert_with(|| ground_truth.config_table(record.phase(next_phase)));
            Some(table.clone())
        } else {
            None
        };
        &self.obs
    }
}

/// The co-phase simulator for one workload on one platform.
///
/// # Example
///
/// Simulate a 2-application workload under RM2 and compare against the
/// baseline run (quick characterization keeps the doctest fast):
///
/// ```
/// use qosrm_core::CoordinatedRma;
/// use qosrm_types::{PlatformConfig, QosSpec};
/// use rma_sim::{CophaseSimulator, SimulationOptions};
/// use simdb::builder::{build_database_for_mixes, BuildOptions};
/// use workload::WorkloadMix;
///
/// let platform = PlatformConfig::small_for_tests(2);
/// let mix = WorkloadMix::new("demo", vec!["mcf_like", "gamess_like"]);
/// let db = build_database_for_mixes(
///     &platform,
///     std::slice::from_ref(&mix),
///     &BuildOptions::quick_for_tests(&platform),
/// );
///
/// let simulator = CophaseSimulator::new(&db, &mix, SimulationOptions::default()).unwrap();
/// let baseline = simulator.run_baseline().unwrap();
/// let qos = vec![QosSpec::STRICT; 2];
/// let mut manager = CoordinatedRma::paper1(&platform, qos.clone());
/// let (comparison, managed) = simulator
///     .run_comparison(&mut manager, &baseline, &qos)
///     .unwrap();
///
/// assert_eq!(managed.per_app.len(), 2);
/// assert!(comparison.energy_savings.is_finite());
/// ```
pub struct CophaseSimulator {
    db: SimDb,
    ground_truth: GroundTruth,
    mix: WorkloadMix,
    options: SimulationOptions,
}

impl CophaseSimulator {
    /// Creates a simulator for `mix`, taking the platform from the database.
    pub fn new(
        db: &SimDb,
        mix: &WorkloadMix,
        options: SimulationOptions,
    ) -> Result<Self, QosrmError> {
        let platform = db.platform().clone();
        if mix.num_cores() != platform.num_cores {
            return Err(QosrmError::InvalidWorkload(format!(
                "workload {} has {} applications, platform has {} cores",
                mix.name,
                mix.num_cores(),
                platform.num_cores
            )));
        }
        for b in &mix.benchmarks {
            db.require(b)?;
        }
        Ok(CophaseSimulator {
            db: db.clone(),
            ground_truth: GroundTruth::new(&platform),
            mix: mix.clone(),
            options,
        })
    }

    /// The platform being simulated.
    pub fn platform(&self) -> &PlatformConfig {
        self.db.platform()
    }

    /// Runs the workload under the baseline (no-op) manager.
    pub fn run_baseline(&self) -> Result<SimulationResult, QosrmError> {
        let mut manager = BaselineManager;
        self.run(&mut manager)
    }

    /// Runs the workload under `manager` and compares it against an already
    /// computed `baseline` run of the same workload.
    ///
    /// The baseline run depends only on the database, the workload and the
    /// simulation options — not on the manager or the QoS targets — so sweep
    /// loops that evaluate many managers over one workload compute it once
    /// and reuse it here instead of re-simulating it per comparison (see
    /// `experiments::sweep`).
    pub fn run_comparison(
        &self,
        manager: &mut dyn ResourceManager,
        baseline: &SimulationResult,
        qos: &[qosrm_types::QosSpec],
    ) -> Result<(crate::result::Comparison, SimulationResult), QosrmError> {
        let managed = self.run(manager)?;
        let comparison = crate::result::compare(baseline, &managed, qos);
        Ok((comparison, managed))
    }

    /// Runs the workload under `manager` until every application has
    /// completed one full round.
    ///
    /// Fails with [`QosrmError::EventLimitExceeded`] when the manager keeps
    /// the system from finishing within
    /// [`SimulationOptions::max_events`] global events.
    pub fn run(&self, manager: &mut dyn ResourceManager) -> Result<SimulationResult, QosrmError> {
        let platform = self.db.platform().clone();
        let num_cores = platform.num_cores;
        manager.reset(num_cores);

        let transition_model =
            TransitionModel::new(self.options.transition_costs, platform.llc, platform.memory);

        let mut cores: Vec<CoreState> = self
            .mix
            .benchmarks
            .iter()
            .map(|name| CoreState {
                record: self.db.require(name).expect("validated in new()").clone(),
                interval_idx: 0,
                progress: 0.0,
                pending_overhead: 0.0,
                interval_start: 0.0,
                done: false,
                round_time: 0.0,
                round_energy: EnergyBreakdown::default(),
                round_intervals: 0,
                dirty: true,
                cached_key: None,
                interval_time: 0.0,
                interval_energy: EnergyBreakdown::default(),
            })
            .collect();
        let mut observations: Vec<ObsBuffer> = cores
            .iter()
            .enumerate()
            .map(|(i, c)| ObsBuffer::new(i, c.record.phases.len()))
            .collect();

        let mut setting = SystemSetting::baseline(&platform);
        let mut time = 0.0f64;
        // The record log reaches exactly one entry per first-round interval;
        // allocating it up front keeps emission free of reallocation.
        let expected_intervals: usize = cores.iter().map(|c| c.record.trace_intervals()).sum();
        let mut intervals = Vec::with_capacity(expected_intervals);
        let mut deltas: Vec<SettingDelta> = Vec::with_capacity(num_cores);
        let mut rma_invocations = 0u64;
        let mut rma_overhead_instructions = 0u64;
        let mut setting_changes = 0u64;
        let interval_instructions = platform.interval_instructions as f64;

        let mut events = 0usize;
        while !cores.iter().all(|c| c.done) {
            if events == self.options.max_events {
                return Err(QosrmError::EventLimitExceeded {
                    manager: manager.name().to_string(),
                    max_events: self.options.max_events,
                    unfinished_cores: cores.iter().filter(|c| !c.done).count(),
                });
            }
            events += 1;

            // Refresh the cores whose (phase, setting) changed since the
            // last event, and find the next global event: the earliest
            // interval completion (first core wins ties, as before).
            let mut next_core = 0usize;
            let mut dt = f64::INFINITY;
            for (i, core) in cores.iter_mut().enumerate() {
                if core.dirty {
                    core.refresh(&self.ground_truth, setting.core(CoreId(i)));
                }
                let remaining_fraction =
                    (interval_instructions - core.progress) / interval_instructions;
                let remaining = core.pending_overhead + remaining_fraction * core.interval_time;
                if remaining < dt {
                    dt = remaining;
                    next_core = i;
                }
            }

            // Advance every core by dt, accounting progress and energy.
            time += dt;
            for core in cores.iter_mut() {
                let mut exec_dt = dt;
                if core.pending_overhead > 0.0 {
                    let served = core.pending_overhead.min(exec_dt);
                    core.pending_overhead -= served;
                    exec_dt -= served;
                }
                let executed =
                    (exec_dt / core.interval_time.max(f64::MIN_POSITIVE)) * interval_instructions;
                core.progress += executed;
                if !core.done {
                    core.round_time += dt;
                    // Charge energy proportionally to executed instructions.
                    let fraction = (executed / interval_instructions).min(1.0);
                    let energy = &core.interval_energy;
                    let scaled = EnergyBreakdown {
                        core_dynamic: energy.core_dynamic * fraction,
                        core_static: energy.core_static * fraction,
                        llc_dynamic: energy.llc_dynamic * fraction,
                        llc_static: energy.llc_static * fraction,
                        dram_dynamic: energy.dram_dynamic * fraction,
                        dram_background: energy.dram_background * fraction,
                        ..Default::default()
                    };
                    core.round_energy.accumulate(&scaled);
                }
            }

            // The finishing core completes its interval.
            let finished_phase_id;
            let finished_setting = setting.core(CoreId(next_core));
            {
                let core = &mut cores[next_core];
                finished_phase_id = core.record.trace.phase_at(core.interval_idx);
                if !core.done {
                    intervals.push(IntervalRecord {
                        app: AppId(next_core),
                        interval_index: core.interval_idx,
                        phase: finished_phase_id,
                        time_seconds: time - core.interval_start,
                        setting: finished_setting,
                    });
                    core.round_intervals += 1;
                }
                core.interval_idx += 1;
                core.progress = 0.0;
                core.interval_start = time;
                // The phase advanced, so the cached interval state is stale.
                core.dirty = true;
                if !core.done && core.interval_idx >= core.record.trace_intervals() {
                    core.done = true;
                }
            }

            // Invoke the resource manager on the finishing core.
            let observation = observations[next_core].prepare(
                &self.ground_truth,
                &cores[next_core].record,
                finished_phase_id,
                finished_setting,
                cores[next_core]
                    .record
                    .trace
                    .phase_at(cores[next_core].interval_idx),
                &self.options,
            );
            let new_setting = manager.on_interval(CoreId(next_core), observation, &setting);
            rma_invocations += 1;
            let overhead_instr = manager.invocation_overhead_instructions(num_cores);
            rma_overhead_instructions += overhead_instr;
            // RMA software overhead runs on the invoking core.
            let freq_hz = platform
                .vf
                .point(setting.core(CoreId(next_core)).freq)
                .freq_hz();
            cores[next_core].pending_overhead += overhead_instr as f64 / freq_hz;

            // Apply the new setting if it is valid and different.
            if new_setting != setting && new_setting.validate(&platform).is_ok() {
                setting.diff_into(&new_setting, &mut deltas);
                for (i, delta) in deltas.iter().enumerate() {
                    if !delta.any() {
                        continue;
                    }
                    let overhead = transition_model.overhead(delta);
                    cores[i].pending_overhead += overhead.time_seconds;
                    cores[i].dirty = true;
                    if !cores[i].done {
                        let mut transition_energy = 0.0;
                        transition_energy += self
                            .ground_truth
                            .energy_model()
                            .dvfs_transition_energy(overhead.dvfs_transitions);
                        transition_energy += self
                            .ground_truth
                            .energy_model()
                            .reconfig_transition_energy(overhead.core_reconfigs);
                        transition_energy += self
                            .ground_truth
                            .energy_model()
                            .repartition_refill_energy(overhead.extra_misses);
                        cores[i].round_energy.transition += transition_energy;
                    }
                }
                setting_changes += 1;
                setting = new_setting;
            }
        }

        let mut breakdown = EnergyBreakdown::default();
        for c in &cores {
            breakdown.accumulate(&c.round_energy);
        }
        let per_app: Vec<AppResult> = cores
            .iter()
            .enumerate()
            .map(|(i, c)| AppResult {
                app: AppId(i),
                benchmark: c.record.name.clone(),
                execution_seconds: c.round_time,
                energy_joules: c.round_energy.total(),
                intervals: c.round_intervals,
            })
            .collect();
        let system_energy_joules = per_app.iter().map(|a| a.energy_joules).sum();

        Ok(SimulationResult {
            workload: self.mix.name.clone(),
            manager: manager.name().to_string(),
            per_app,
            system_energy_joules,
            energy_breakdown: breakdown,
            rma_invocations,
            rma_overhead_instructions,
            setting_changes,
            qos_at_risk_intervals: manager.qos_at_risk_intervals(),
            intervals,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::baseline::StaticSettingManager;
    use simdb::{build_database, BuildOptions};
    use workload::benchmark;

    fn test_db(num_cores: usize) -> SimDb {
        let platform = PlatformConfig::paper2(num_cores);
        let options = BuildOptions::quick_for_tests(&platform);
        let benchmarks = vec![
            benchmark("mcf_like").unwrap(),
            benchmark("libquantum_like").unwrap(),
            benchmark("gamess_like").unwrap(),
            benchmark("soplex_like").unwrap(),
        ];
        build_database(&platform, &benchmarks, &options)
    }

    fn mix() -> WorkloadMix {
        WorkloadMix::new(
            "test-mix",
            vec!["mcf_like", "libquantum_like", "gamess_like", "soplex_like"],
        )
    }

    #[test]
    fn baseline_run_completes_every_application() {
        let db = test_db(4);
        let sim = CophaseSimulator::new(&db, &mix(), SimulationOptions::default()).unwrap();
        let result = sim.run_baseline().unwrap();
        assert_eq!(result.per_app.len(), 4);
        for (i, app) in result.per_app.iter().enumerate() {
            let record = db.benchmark(&mix().benchmarks[i]).unwrap();
            assert_eq!(app.intervals, record.trace_intervals(), "{}", app.benchmark);
            assert!(app.execution_seconds > 0.0);
            assert!(app.energy_joules > 0.0);
        }
        assert!(result.system_energy_joules > 0.0);
        assert_eq!(result.setting_changes, 0);
        // The baseline manager always certifies (it never deviates from the
        // QoS-defining setting), so the surfaced tally is zero.
        assert_eq!(result.qos_at_risk_intervals, 0);
        assert!(result.rma_invocations > 0);
        // Per-interval records cover every first-round interval.
        let expected: usize = result.per_app.iter().map(|a| a.intervals).sum();
        assert_eq!(result.intervals.len(), expected);
    }

    #[test]
    fn mismatched_core_count_is_rejected() {
        let db = test_db(4);
        let bad = WorkloadMix::new("bad", vec!["mcf_like", "gamess_like"]);
        assert!(CophaseSimulator::new(&db, &bad, SimulationOptions::default()).is_err());
        let unknown = WorkloadMix::new("bad2", vec!["a", "b", "c", "d"]);
        assert!(CophaseSimulator::new(&db, &unknown, SimulationOptions::default()).is_err());
    }

    #[test]
    fn lower_frequency_saves_energy_but_slows_down() {
        let db = test_db(4);
        let sim = CophaseSimulator::new(&db, &mix(), SimulationOptions::default()).unwrap();
        let baseline = sim.run_baseline().unwrap();

        let platform = db.platform().clone();
        let mut slow_setting = SystemSetting::baseline(&platform);
        for i in 0..4 {
            slow_setting.core_mut(CoreId(i)).freq = FreqLevel(0);
        }
        let mut slow_manager = StaticSettingManager::new(slow_setting);
        let slow = sim.run(&mut slow_manager).unwrap();

        assert!(slow.system_energy_joules < baseline.system_energy_joules);
        for i in 0..4 {
            assert!(
                slow.per_app[i].execution_seconds > baseline.per_app[i].execution_seconds,
                "app {i} should slow down at the lowest frequency"
            );
        }
        assert!(slow.setting_changes >= 1);
    }

    #[test]
    fn results_are_deterministic() {
        let db = test_db(4);
        let sim = CophaseSimulator::new(&db, &mix(), SimulationOptions::default()).unwrap();
        let a = sim.run_baseline().unwrap();
        let b = sim.run_baseline().unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn hitting_the_event_cap_is_a_typed_error() {
        let db = test_db(4);
        let options = SimulationOptions {
            max_events: 7,
            ..Default::default()
        };
        let sim = CophaseSimulator::new(&db, &mix(), options).unwrap();
        let err = sim.run_baseline().unwrap_err();
        match err {
            QosrmError::EventLimitExceeded {
                manager,
                max_events,
                unfinished_cores,
            } => {
                assert_eq!(manager, "Baseline");
                assert_eq!(max_events, 7);
                assert!(unfinished_cores >= 1);
            }
            other => panic!("expected EventLimitExceeded, got {other}"),
        }
    }

    #[test]
    fn perfect_tables_are_provided_when_requested() {
        struct Probe {
            saw_perfect: bool,
            saw_mlp: bool,
        }
        impl ResourceManager for Probe {
            fn name(&self) -> &str {
                "probe"
            }
            fn on_interval(
                &mut self,
                _core: CoreId,
                obs: &CoreObservation,
                current: &SystemSetting,
            ) -> SystemSetting {
                self.saw_perfect |= obs.perfect.is_some();
                self.saw_mlp |= obs.mlp_profile.is_some();
                current.clone()
            }
        }
        let db = test_db(4);
        let options = SimulationOptions {
            provide_perfect_tables: true,
            provide_mlp_profiles: false,
            ..Default::default()
        };
        let sim = CophaseSimulator::new(&db, &mix(), options).unwrap();
        let mut probe = Probe {
            saw_perfect: false,
            saw_mlp: false,
        };
        sim.run(&mut probe).unwrap();
        assert!(probe.saw_perfect);
        assert!(!probe.saw_mlp);
    }
}
