//! The co-phase event-driven simulator.

use crate::baseline::BaselineManager;
use crate::result::{AppResult, IntervalRecord, SimulationResult};
use core_model::{TransitionCosts, TransitionModel};
use power_model::EnergyBreakdown;
use qosrm_types::{
    AppId, ConfigTable, CoreId, CoreObservation, CoreScalingProfile, CoreSetting, MissProfile,
    MlpProfile, PlatformConfig, QosrmError, ResourceManager, SystemSetting,
};
use simdb::{BenchmarkRecord, GroundTruth, SimDb};
use workload::WorkloadMix;

/// Options of a simulation run.
#[derive(Debug, Clone)]
pub struct SimulationOptions {
    /// Give the manager the ground-truth configuration table of the upcoming
    /// interval (perfect-model experiments).
    pub provide_perfect_tables: bool,
    /// Give the manager the MLP-ATD and ILP-monitor observations (the
    /// Paper II hardware support). Without it only the plain ATD miss profile
    /// is available, as in Paper I.
    pub provide_mlp_profiles: bool,
    /// Safety cap on the number of global events (prevents livelock if a
    /// manager misbehaves).
    pub max_events: usize,
    /// Transition-cost constants.
    pub transition_costs: TransitionCosts,
}

impl Default for SimulationOptions {
    fn default() -> Self {
        SimulationOptions {
            provide_perfect_tables: false,
            provide_mlp_profiles: true,
            max_events: 2_000_000,
            transition_costs: TransitionCosts::default(),
        }
    }
}

/// Per-core run-time state.
struct CoreState {
    record: BenchmarkRecord,
    /// Index of the interval currently executing (counts from 0 over the
    /// whole run; the phase trace wraps around after the first round).
    interval_idx: usize,
    /// Instructions completed in the current interval.
    progress: f64,
    /// Stall time (seconds) still to be served before the interval resumes
    /// (reconfiguration and RMA software overheads).
    pending_overhead: f64,
    /// Global time at which the current interval started.
    interval_start: f64,
    /// Whether the application has completed its first full round.
    done: bool,
    /// Execution time of the first round.
    round_time: f64,
    /// Energy of the first round.
    round_energy: EnergyBreakdown,
    /// Intervals completed in the first round.
    round_intervals: usize,
}

/// The co-phase simulator for one workload on one platform.
///
/// # Example
///
/// Simulate a 2-application workload under RM2 and compare against the
/// baseline run (quick characterization keeps the doctest fast):
///
/// ```
/// use qosrm_core::CoordinatedRma;
/// use qosrm_types::{PlatformConfig, QosSpec};
/// use rma_sim::{CophaseSimulator, SimulationOptions};
/// use simdb::builder::{build_database_for_mixes, BuildOptions};
/// use workload::WorkloadMix;
///
/// let platform = PlatformConfig::small_for_tests(2);
/// let mix = WorkloadMix::new("demo", vec!["mcf_like", "gamess_like"]);
/// let db = build_database_for_mixes(
///     &platform,
///     std::slice::from_ref(&mix),
///     &BuildOptions::quick_for_tests(&platform),
/// );
///
/// let simulator = CophaseSimulator::new(&db, &mix, SimulationOptions::default()).unwrap();
/// let baseline = simulator.run_baseline();
/// let qos = vec![QosSpec::STRICT; 2];
/// let mut manager = CoordinatedRma::paper1(&platform, qos.clone());
/// let (comparison, managed) = simulator.run_comparison(&mut manager, &baseline, &qos);
///
/// assert_eq!(managed.per_app.len(), 2);
/// assert!(comparison.energy_savings.is_finite());
/// ```
pub struct CophaseSimulator {
    db: SimDb,
    ground_truth: GroundTruth,
    mix: WorkloadMix,
    options: SimulationOptions,
}

impl CophaseSimulator {
    /// Creates a simulator for `mix`, taking the platform from the database.
    pub fn new(
        db: &SimDb,
        mix: &WorkloadMix,
        options: SimulationOptions,
    ) -> Result<Self, QosrmError> {
        let platform = db.platform().clone();
        if mix.num_cores() != platform.num_cores {
            return Err(QosrmError::InvalidWorkload(format!(
                "workload {} has {} applications, platform has {} cores",
                mix.name,
                mix.num_cores(),
                platform.num_cores
            )));
        }
        for b in &mix.benchmarks {
            db.require(b)?;
        }
        Ok(CophaseSimulator {
            db: db.clone(),
            ground_truth: GroundTruth::new(&platform),
            mix: mix.clone(),
            options,
        })
    }

    /// The platform being simulated.
    pub fn platform(&self) -> &PlatformConfig {
        self.db.platform()
    }

    /// Runs the workload under the baseline (no-op) manager.
    pub fn run_baseline(&self) -> SimulationResult {
        let mut manager = BaselineManager;
        self.run(&mut manager)
    }

    /// Runs the workload under `manager` and compares it against an already
    /// computed `baseline` run of the same workload.
    ///
    /// The baseline run depends only on the database, the workload and the
    /// simulation options — not on the manager or the QoS targets — so sweep
    /// loops that evaluate many managers over one workload compute it once
    /// and reuse it here instead of re-simulating it per comparison (see
    /// `experiments::sweep`).
    pub fn run_comparison(
        &self,
        manager: &mut dyn ResourceManager,
        baseline: &SimulationResult,
        qos: &[qosrm_types::QosSpec],
    ) -> (crate::result::Comparison, SimulationResult) {
        let managed = self.run(manager);
        let comparison = crate::result::compare(baseline, &managed, qos);
        (comparison, managed)
    }

    /// Runs the workload under `manager` until every application has
    /// completed one full round.
    pub fn run(&self, manager: &mut dyn ResourceManager) -> SimulationResult {
        let platform = self.db.platform().clone();
        let num_cores = platform.num_cores;
        manager.reset(num_cores);

        let transition_model =
            TransitionModel::new(self.options.transition_costs, platform.llc, platform.memory);

        let mut cores: Vec<CoreState> = self
            .mix
            .benchmarks
            .iter()
            .map(|name| CoreState {
                record: self.db.require(name).expect("validated in new()").clone(),
                interval_idx: 0,
                progress: 0.0,
                pending_overhead: 0.0,
                interval_start: 0.0,
                done: false,
                round_time: 0.0,
                round_energy: EnergyBreakdown::default(),
                round_intervals: 0,
            })
            .collect();

        let mut setting = SystemSetting::baseline(&platform);
        let mut time = 0.0f64;
        let mut intervals = Vec::new();
        let mut rma_invocations = 0u64;
        let mut rma_overhead_instructions = 0u64;
        let mut setting_changes = 0u64;
        let interval_instructions = platform.interval_instructions as f64;

        for _event in 0..self.options.max_events {
            if cores.iter().all(|c| c.done) {
                break;
            }

            // Per-core interval time at the current setting and phase.
            let interval_times: Vec<f64> = cores
                .iter()
                .enumerate()
                .map(|(i, c)| {
                    let phase = c.record.phase(c.record.trace.phase_at(c.interval_idx));
                    self.ground_truth
                        .metrics_at(phase, setting.core(CoreId(i)))
                        .time_seconds
                })
                .collect();

            // Next global event: the earliest interval completion.
            let (next_core, dt) = cores
                .iter()
                .enumerate()
                .map(|(i, c)| {
                    let remaining_fraction =
                        (interval_instructions - c.progress) / interval_instructions;
                    let remaining = c.pending_overhead + remaining_fraction * interval_times[i];
                    (i, remaining)
                })
                .min_by(|a, b| a.1.partial_cmp(&b.1).unwrap())
                .expect("at least one core");

            // Advance every core by dt, accounting progress and energy.
            time += dt;
            for (i, core) in cores.iter_mut().enumerate() {
                let mut exec_dt = dt;
                if core.pending_overhead > 0.0 {
                    let served = core.pending_overhead.min(exec_dt);
                    core.pending_overhead -= served;
                    exec_dt -= served;
                }
                let executed =
                    (exec_dt / interval_times[i].max(f64::MIN_POSITIVE)) * interval_instructions;
                core.progress += executed;
                if !core.done {
                    core.round_time += dt;
                    // Charge energy proportionally to executed instructions.
                    let phase = core
                        .record
                        .phase(core.record.trace.phase_at(core.interval_idx));
                    let core_setting = setting.core(CoreId(i));
                    let outcome = self.ground_truth.timing(
                        phase,
                        core_setting.core_size,
                        core_setting.freq,
                        core_setting.ways,
                    );
                    let energy = self.ground_truth.energy(
                        phase,
                        core_setting.core_size,
                        core_setting.freq,
                        core_setting.ways,
                        &outcome,
                    );
                    let fraction = (executed / interval_instructions).min(1.0);
                    let scaled = EnergyBreakdown {
                        core_dynamic: energy.core_dynamic * fraction,
                        core_static: energy.core_static * fraction,
                        llc_dynamic: energy.llc_dynamic * fraction,
                        llc_static: energy.llc_static * fraction,
                        dram_dynamic: energy.dram_dynamic * fraction,
                        dram_background: energy.dram_background * fraction,
                        ..Default::default()
                    };
                    core.round_energy.accumulate(&scaled);
                }
            }

            // The finishing core completes its interval.
            let finished_phase_id;
            let finished_setting = setting.core(CoreId(next_core));
            {
                let core = &mut cores[next_core];
                finished_phase_id = core.record.trace.phase_at(core.interval_idx);
                if !core.done {
                    intervals.push(IntervalRecord {
                        app: AppId(next_core),
                        interval_index: core.interval_idx,
                        phase: finished_phase_id,
                        time_seconds: time - core.interval_start,
                        setting: finished_setting,
                    });
                    core.round_intervals += 1;
                }
                core.interval_idx += 1;
                core.progress = 0.0;
                core.interval_start = time;
                if !core.done && core.interval_idx >= core.record.trace_intervals() {
                    core.done = true;
                }
            }

            // Invoke the resource manager on the finishing core.
            let observation = self.build_observation(
                &cores[next_core],
                next_core,
                finished_setting,
                finished_phase_id,
            );
            let new_setting = manager.on_interval(CoreId(next_core), &observation, &setting);
            rma_invocations += 1;
            let overhead_instr = manager.invocation_overhead_instructions(num_cores);
            rma_overhead_instructions += overhead_instr;
            // RMA software overhead runs on the invoking core.
            let freq_hz = platform
                .vf
                .point(setting.core(CoreId(next_core)).freq)
                .freq_hz();
            cores[next_core].pending_overhead += overhead_instr as f64 / freq_hz;

            // Apply the new setting if it is valid and different.
            if new_setting != setting && new_setting.validate(&platform).is_ok() {
                let deltas = setting.diff(&new_setting);
                for (i, delta) in deltas.iter().enumerate() {
                    if !delta.any() {
                        continue;
                    }
                    let overhead = transition_model.overhead(delta);
                    cores[i].pending_overhead += overhead.time_seconds;
                    if !cores[i].done {
                        let mut transition_energy = 0.0;
                        transition_energy += self
                            .ground_truth
                            .energy_model()
                            .dvfs_transition_energy(overhead.dvfs_transitions);
                        transition_energy += self
                            .ground_truth
                            .energy_model()
                            .reconfig_transition_energy(overhead.core_reconfigs);
                        transition_energy += self
                            .ground_truth
                            .energy_model()
                            .repartition_refill_energy(overhead.extra_misses);
                        cores[i].round_energy.transition += transition_energy;
                    }
                }
                setting_changes += 1;
                setting = new_setting;
            }
        }

        let mut breakdown = EnergyBreakdown::default();
        for c in &cores {
            breakdown.accumulate(&c.round_energy);
        }
        let per_app: Vec<AppResult> = cores
            .iter()
            .enumerate()
            .map(|(i, c)| AppResult {
                app: AppId(i),
                benchmark: c.record.name.clone(),
                execution_seconds: c.round_time,
                energy_joules: c.round_energy.total(),
                intervals: c.round_intervals,
            })
            .collect();
        let system_energy_joules = per_app.iter().map(|a| a.energy_joules).sum();

        SimulationResult {
            workload: self.mix.name.clone(),
            manager: manager.name().to_string(),
            per_app,
            system_energy_joules,
            energy_breakdown: breakdown,
            rma_invocations,
            rma_overhead_instructions,
            setting_changes,
            intervals,
        }
    }

    /// Builds the observation the finishing core hands to the manager.
    fn build_observation(
        &self,
        core: &CoreState,
        core_idx: usize,
        finished_setting: CoreSetting,
        finished_phase: qosrm_types::PhaseId,
    ) -> CoreObservation {
        let phase = core.record.phase(finished_phase);
        let stats = self.ground_truth.interval_stats(phase, finished_setting);
        let miss_profile = MissProfile::new(phase.atd_misses_per_way.clone());
        let mlp_profile = if self.options.provide_mlp_profiles {
            Some(MlpProfile::new(phase.atd_leading_misses.clone()))
        } else {
            None
        };
        let scaling_profile = if self.options.provide_mlp_profiles {
            Some(CoreScalingProfile::new(phase.exec_cpi.clone()))
        } else {
            None
        };
        let perfect: Option<ConfigTable> = if self.options.provide_perfect_tables {
            // Perfect foresight of the upcoming interval's phase.
            let next_phase = core.record.trace.phase_at(core.interval_idx);
            Some(
                self.ground_truth
                    .config_table(core.record.phase(next_phase)),
            )
        } else {
            None
        };
        CoreObservation {
            app: AppId(core_idx),
            stats,
            miss_profile,
            mlp_profile,
            scaling_profile,
            perfect,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::baseline::StaticSettingManager;
    use qosrm_types::FreqLevel;
    use simdb::{build_database, BuildOptions};
    use workload::benchmark;

    fn test_db(num_cores: usize) -> SimDb {
        let platform = PlatformConfig::paper2(num_cores);
        let options = BuildOptions::quick_for_tests(&platform);
        let benchmarks = vec![
            benchmark("mcf_like").unwrap(),
            benchmark("libquantum_like").unwrap(),
            benchmark("gamess_like").unwrap(),
            benchmark("soplex_like").unwrap(),
        ];
        build_database(&platform, &benchmarks, &options)
    }

    fn mix() -> WorkloadMix {
        WorkloadMix::new(
            "test-mix",
            vec!["mcf_like", "libquantum_like", "gamess_like", "soplex_like"],
        )
    }

    #[test]
    fn baseline_run_completes_every_application() {
        let db = test_db(4);
        let sim = CophaseSimulator::new(&db, &mix(), SimulationOptions::default()).unwrap();
        let result = sim.run_baseline();
        assert_eq!(result.per_app.len(), 4);
        for (i, app) in result.per_app.iter().enumerate() {
            let record = db.benchmark(&mix().benchmarks[i]).unwrap();
            assert_eq!(app.intervals, record.trace_intervals(), "{}", app.benchmark);
            assert!(app.execution_seconds > 0.0);
            assert!(app.energy_joules > 0.0);
        }
        assert!(result.system_energy_joules > 0.0);
        assert_eq!(result.setting_changes, 0);
        assert!(result.rma_invocations > 0);
        // Per-interval records cover every first-round interval.
        let expected: usize = result.per_app.iter().map(|a| a.intervals).sum();
        assert_eq!(result.intervals.len(), expected);
    }

    #[test]
    fn mismatched_core_count_is_rejected() {
        let db = test_db(4);
        let bad = WorkloadMix::new("bad", vec!["mcf_like", "gamess_like"]);
        assert!(CophaseSimulator::new(&db, &bad, SimulationOptions::default()).is_err());
        let unknown = WorkloadMix::new("bad2", vec!["a", "b", "c", "d"]);
        assert!(CophaseSimulator::new(&db, &unknown, SimulationOptions::default()).is_err());
    }

    #[test]
    fn lower_frequency_saves_energy_but_slows_down() {
        let db = test_db(4);
        let sim = CophaseSimulator::new(&db, &mix(), SimulationOptions::default()).unwrap();
        let baseline = sim.run_baseline();

        let platform = db.platform().clone();
        let mut slow_setting = SystemSetting::baseline(&platform);
        for i in 0..4 {
            slow_setting.core_mut(CoreId(i)).freq = FreqLevel(0);
        }
        let mut slow_manager = StaticSettingManager::new(slow_setting);
        let slow = sim.run(&mut slow_manager);

        assert!(slow.system_energy_joules < baseline.system_energy_joules);
        for i in 0..4 {
            assert!(
                slow.per_app[i].execution_seconds > baseline.per_app[i].execution_seconds,
                "app {i} should slow down at the lowest frequency"
            );
        }
        assert!(slow.setting_changes >= 1);
    }

    #[test]
    fn results_are_deterministic() {
        let db = test_db(4);
        let sim = CophaseSimulator::new(&db, &mix(), SimulationOptions::default()).unwrap();
        let a = sim.run_baseline();
        let b = sim.run_baseline();
        assert_eq!(a, b);
    }

    #[test]
    fn perfect_tables_are_provided_when_requested() {
        struct Probe {
            saw_perfect: bool,
            saw_mlp: bool,
        }
        impl ResourceManager for Probe {
            fn name(&self) -> &str {
                "probe"
            }
            fn on_interval(
                &mut self,
                _core: CoreId,
                obs: &CoreObservation,
                current: &SystemSetting,
            ) -> SystemSetting {
                self.saw_perfect |= obs.perfect.is_some();
                self.saw_mlp |= obs.mlp_profile.is_some();
                current.clone()
            }
        }
        let db = test_db(4);
        let options = SimulationOptions {
            provide_perfect_tables: true,
            provide_mlp_profiles: false,
            ..Default::default()
        };
        let sim = CophaseSimulator::new(&db, &mix(), options).unwrap();
        let mut probe = Probe {
            saw_perfect: false,
            saw_mlp: false,
        };
        sim.run(&mut probe);
        assert!(probe.saw_perfect);
        assert!(!probe.saw_mlp);
    }
}
