//! Simulation results and baseline comparison.

use power_model::EnergyBreakdown;
use qosrm_types::{AppId, CoreSetting, PhaseId, QosSpec, QosViolation};
use serde::{Deserialize, Serialize};

/// Per-application outcome of one simulated execution (statistics cover the
/// application's first complete round, as in the paper).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AppResult {
    /// Application identifier (= core it is pinned to).
    pub app: AppId,
    /// Benchmark name.
    pub benchmark: String,
    /// Execution time of the first full round, in seconds.
    pub execution_seconds: f64,
    /// Energy attributed to this application over its first round, in joules.
    pub energy_joules: f64,
    /// Number of intervals in the first round.
    pub intervals: usize,
}

/// One completed execution interval (used by the per-interval QoS-violation
/// analysis of Paper II).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct IntervalRecord {
    /// Application that completed the interval.
    pub app: AppId,
    /// Index of the interval within the application's execution.
    pub interval_index: usize,
    /// Phase the interval belonged to.
    pub phase: PhaseId,
    /// Wall-clock duration of the interval, in seconds.
    pub time_seconds: f64,
    /// The resource setting of the core when the interval completed.
    pub setting: CoreSetting,
}

/// Result of one simulated execution of a workload under one manager.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SimulationResult {
    /// Workload name.
    pub workload: String,
    /// Manager name.
    pub manager: String,
    /// Per-application results (index = core index).
    pub per_app: Vec<AppResult>,
    /// Total system energy (sum of per-application first-round energies).
    pub system_energy_joules: f64,
    /// Component breakdown of the system energy.
    pub energy_breakdown: EnergyBreakdown,
    /// Number of RMA invocations performed.
    pub rma_invocations: u64,
    /// Total RMA software overhead charged, in instructions.
    pub rma_overhead_instructions: u64,
    /// Number of invocations that changed at least one core's setting.
    pub setting_changes: u64,
    /// Intervals where the manager kept a setting whose QoS target it could
    /// not certify (see
    /// [`qosrm_types::ResourceManager::qos_at_risk_intervals`]): without
    /// partitioning authority an infeasible current allocation is silently
    /// retained, and this tally surfaces that signal instead of dropping it.
    pub qos_at_risk_intervals: u64,
    /// Per-interval records of the first round of every application.
    pub intervals: Vec<IntervalRecord>,
}

impl SimulationResult {
    /// Execution time of application `app`'s first round.
    pub fn execution_seconds(&self, app: AppId) -> f64 {
        self.per_app[app.index()].execution_seconds
    }

    /// Longest first-round execution time across applications (the makespan).
    pub fn makespan_seconds(&self) -> f64 {
        self.per_app
            .iter()
            .map(|a| a.execution_seconds)
            .fold(0.0, f64::max)
    }
}

/// Statistics of per-interval QoS violations (Paper II model-accuracy
/// analysis): an interval is violated when it ran longer than its target
/// (the baseline duration of the same interval scaled by the allowed
/// slowdown).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct IntervalViolationStats {
    /// Number of intervals compared.
    pub total_intervals: usize,
    /// Number of violated intervals (beyond the 1 % significance threshold).
    pub violations: usize,
    /// Mean violation magnitude over the *violated* intervals.
    pub mean_magnitude: f64,
    /// Standard deviation of the violation magnitude over violated intervals.
    pub std_magnitude: f64,
    /// Largest violation magnitude.
    pub max_magnitude: f64,
}

impl IntervalViolationStats {
    /// Probability that an interval violates its target.
    pub fn probability(&self) -> f64 {
        if self.total_intervals == 0 {
            0.0
        } else {
            self.violations as f64 / self.total_intervals as f64
        }
    }

    /// Expected violation magnitude over *all* intervals (zero for intervals
    /// that met their target), the metric Paper II reports as the expected
    /// value of violations.
    pub fn expected_magnitude(&self) -> f64 {
        self.probability() * self.mean_magnitude
    }
}

/// Comparison of a managed run against the baseline run of the same workload.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Comparison {
    /// Workload name.
    pub workload: String,
    /// Manager name.
    pub manager: String,
    /// System energy savings relative to baseline (`1 - E_managed / E_base`).
    pub energy_savings: f64,
    /// Per-application slowdown of the full execution relative to baseline
    /// (`t_managed / t_base - 1`).
    pub per_app_slowdown: Vec<f64>,
    /// Applications whose full-execution QoS constraint was violated beyond
    /// the 1 % significance threshold.
    pub violations: Vec<QosViolation>,
    /// Per-interval violation statistics.
    pub interval_stats: IntervalViolationStats,
    /// Intervals the managed run's resource manager flagged as QoS-at-risk
    /// (current allocation infeasible for some core, or no feasible curve
    /// point at all). Mirrors
    /// [`SimulationResult::qos_at_risk_intervals`] so per-scenario sweep
    /// outcomes carry the manager-side risk tally, which downstream search
    /// uses as a fitness objective.
    pub qos_at_risk_intervals: u64,
}

impl Comparison {
    /// Number of significant QoS violations.
    pub fn num_violations(&self) -> usize {
        self.violations.len()
    }

    /// Mean magnitude of the significant violations (0 when there are none).
    pub fn mean_violation(&self) -> f64 {
        if self.violations.is_empty() {
            0.0
        } else {
            self.violations.iter().map(|v| v.magnitude()).sum::<f64>()
                / self.violations.len() as f64
        }
    }

    /// Largest violation magnitude (0 when there are none).
    pub fn max_violation(&self) -> f64 {
        self.violations
            .iter()
            .map(|v| v.magnitude())
            .fold(0.0, f64::max)
    }
}

/// Compares a managed run against its baseline run.
///
/// Both runs must cover the same workload (same applications, same phase
/// traces); `qos` gives the per-application allowed slowdown.
pub fn compare(
    baseline: &SimulationResult,
    managed: &SimulationResult,
    qos: &[QosSpec],
) -> Comparison {
    assert_eq!(
        baseline.per_app.len(),
        managed.per_app.len(),
        "baseline and managed runs must cover the same applications"
    );

    let energy_savings = if baseline.system_energy_joules > 0.0 {
        1.0 - managed.system_energy_joules / baseline.system_energy_joules
    } else {
        0.0
    };

    let mut per_app_slowdown = Vec::with_capacity(baseline.per_app.len());
    let mut violations = Vec::new();
    for (base, run) in baseline.per_app.iter().zip(managed.per_app.iter()) {
        let slowdown = run.execution_seconds / base.execution_seconds.max(f64::MIN_POSITIVE) - 1.0;
        per_app_slowdown.push(slowdown);
        let spec = qos.get(base.app.index()).copied().unwrap_or_default();
        let target = spec.target_time(base.execution_seconds);
        let violation = QosViolation {
            app: base.app,
            measured_seconds: run.execution_seconds,
            target_seconds: target,
        };
        if violation.is_significant() {
            violations.push(violation);
        }
    }

    let interval_stats = interval_violations(baseline, managed, qos);

    Comparison {
        workload: managed.workload.clone(),
        manager: managed.manager.clone(),
        energy_savings,
        per_app_slowdown,
        violations,
        interval_stats,
        qos_at_risk_intervals: managed.qos_at_risk_intervals,
    }
}

/// Computes the per-interval violation statistics by matching intervals of
/// the managed run with the same `(app, interval index)` in the baseline run.
fn interval_violations(
    baseline: &SimulationResult,
    managed: &SimulationResult,
    qos: &[QosSpec],
) -> IntervalViolationStats {
    use std::collections::HashMap;
    let baseline_times: HashMap<(usize, usize), f64> = baseline
        .intervals
        .iter()
        .map(|r| ((r.app.index(), r.interval_index), r.time_seconds))
        .collect();

    let mut magnitudes = Vec::new();
    let mut total = 0usize;
    for r in &managed.intervals {
        let Some(&base_time) = baseline_times.get(&(r.app.index(), r.interval_index)) else {
            continue;
        };
        total += 1;
        let spec = qos.get(r.app.index()).copied().unwrap_or_default();
        let target = spec.target_time(base_time);
        let magnitude = r.time_seconds / target.max(f64::MIN_POSITIVE) - 1.0;
        if magnitude > qosrm_types::qos::VIOLATION_SIGNIFICANCE_THRESHOLD {
            magnitudes.push(magnitude);
        }
    }

    let violations = magnitudes.len();
    let mean = if violations > 0 {
        magnitudes.iter().sum::<f64>() / violations as f64
    } else {
        0.0
    };
    let std = if violations > 1 {
        (magnitudes
            .iter()
            .map(|m| (m - mean) * (m - mean))
            .sum::<f64>()
            / violations as f64)
            .sqrt()
    } else {
        0.0
    };
    let max = magnitudes.iter().copied().fold(0.0, f64::max);

    IntervalViolationStats {
        total_intervals: total,
        violations,
        mean_magnitude: mean,
        std_magnitude: std,
        max_magnitude: max,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qosrm_types::{CoreSizeIdx, FreqLevel};

    fn app_result(app: usize, time: f64, energy: f64) -> AppResult {
        AppResult {
            app: AppId(app),
            benchmark: format!("bench{app}"),
            execution_seconds: time,
            energy_joules: energy,
            intervals: 10,
        }
    }

    fn interval(app: usize, idx: usize, time: f64) -> IntervalRecord {
        IntervalRecord {
            app: AppId(app),
            interval_index: idx,
            phase: PhaseId(0),
            time_seconds: time,
            setting: CoreSetting {
                core_size: CoreSizeIdx(0),
                freq: FreqLevel(0),
                ways: 4,
            },
        }
    }

    fn result(
        manager: &str,
        apps: Vec<AppResult>,
        intervals: Vec<IntervalRecord>,
    ) -> SimulationResult {
        let system_energy_joules = apps.iter().map(|a| a.energy_joules).sum();
        SimulationResult {
            workload: "w".into(),
            manager: manager.into(),
            per_app: apps,
            system_energy_joules,
            energy_breakdown: EnergyBreakdown::default(),
            rma_invocations: 0,
            rma_overhead_instructions: 0,
            setting_changes: 0,
            qos_at_risk_intervals: 0,
            intervals,
        }
    }

    #[test]
    fn savings_and_violations() {
        let baseline = result(
            "Baseline",
            vec![app_result(0, 10.0, 100.0), app_result(1, 12.0, 80.0)],
            vec![interval(0, 0, 1.0), interval(1, 0, 1.2)],
        );
        let managed = result(
            "RMA",
            vec![app_result(0, 10.05, 80.0), app_result(1, 12.8, 70.0)],
            vec![interval(0, 0, 1.05), interval(1, 0, 1.3)],
        );
        let qos = vec![QosSpec::STRICT; 2];
        let cmp = compare(&baseline, &managed, &qos);
        assert!((cmp.energy_savings - (1.0 - 150.0 / 180.0)).abs() < 1e-12);
        // App 0 slowed by 0.5 % -> not significant; app 1 by 6.7 % -> violation.
        assert_eq!(cmp.num_violations(), 1);
        assert_eq!(cmp.violations[0].app, AppId(1));
        assert!(cmp.mean_violation() > 0.05);
        assert!(cmp.max_violation() >= cmp.mean_violation());
        // Interval stats: app0 interval +5 % violated, app1 +8.3 % violated.
        assert_eq!(cmp.interval_stats.total_intervals, 2);
        assert_eq!(cmp.interval_stats.violations, 2);
        assert!(cmp.interval_stats.probability() > 0.99);
    }

    #[test]
    fn relaxed_qos_removes_violations() {
        let baseline = result("Baseline", vec![app_result(0, 10.0, 100.0)], vec![]);
        let managed = result("RMA", vec![app_result(0, 13.0, 60.0)], vec![]);
        let strict = compare(&baseline, &managed, &[QosSpec::STRICT]);
        assert_eq!(strict.num_violations(), 1);
        let relaxed = compare(&baseline, &managed, &[QosSpec::relaxed_by(0.4)]);
        assert_eq!(relaxed.num_violations(), 0);
        assert!((relaxed.per_app_slowdown[0] - 0.3).abs() < 1e-9);
    }

    #[test]
    fn makespan_and_accessors() {
        let r = result(
            "Baseline",
            vec![app_result(0, 10.0, 1.0), app_result(1, 14.0, 1.0)],
            vec![],
        );
        assert!((r.makespan_seconds() - 14.0).abs() < 1e-12);
        assert!((r.execution_seconds(AppId(0)) - 10.0).abs() < 1e-12);
    }

    #[test]
    fn interval_stats_probability_handles_empty() {
        let stats = IntervalViolationStats {
            total_intervals: 0,
            violations: 0,
            mean_magnitude: 0.0,
            std_magnitude: 0.0,
            max_magnitude: 0.0,
        };
        assert_eq!(stats.probability(), 0.0);
        assert_eq!(stats.expected_magnitude(), 0.0);
    }
}
