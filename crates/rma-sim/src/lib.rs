//! # rma-sim
//!
//! The co-phase resource-management simulator (thesis Chapter 2).
//!
//! Detailed architectural simulation of full benchmark executions is too slow
//! to evaluate resource-management policies over thousands of billions of
//! instructions. The paper therefore builds a two-level framework: detailed
//! per-phase simulation once (the `simdb` crate), and a fast *proxy*
//! simulation of the multi-programmed execution that replays the phase traces
//! of all applications against the pre-computed database under the control of
//! a resource management algorithm (RMA). This crate implements that proxy:
//!
//! * [`simulator::CophaseSimulator`] advances all cores in global-event order
//!   (the next event is the earliest interval completion), invokes the RMA on
//!   the core that finished, applies the new system setting, and charges
//!   DVFS / re-configuration / repartitioning overheads;
//! * [`baseline`] provides the trivial managers the experiments compare
//!   against (keep the baseline setting, or keep any fixed setting);
//! * [`result`] collects per-application execution times and energies and
//!   computes energy savings and QoS violations relative to a baseline run.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod baseline;
pub mod result;
pub mod simulator;

pub use baseline::{BaselineManager, StaticSettingManager};
pub use result::{
    compare, AppResult, Comparison, IntervalRecord, IntervalViolationStats, SimulationResult,
};
pub use simulator::{CophaseSimulator, SimulationOptions};
