//! Trivial resource managers used as comparison points.

use qosrm_types::{CoreId, CoreObservation, ResourceManager, SystemSetting};

/// A manager that never changes anything: every application keeps the
/// baseline core size, VF level and equal LLC share. The QoS targets of the
/// paper are defined by this manager's execution times.
#[derive(Debug, Default, Clone)]
pub struct BaselineManager;

impl ResourceManager for BaselineManager {
    fn name(&self) -> &str {
        "Baseline"
    }

    fn on_interval(
        &mut self,
        _core: CoreId,
        _observation: &CoreObservation,
        current: &SystemSetting,
    ) -> SystemSetting {
        current.clone()
    }

    fn invocation_overhead_instructions(&self, _num_cores: usize) -> u64 {
        0
    }
}

/// A manager that applies one fixed setting at the first opportunity and
/// keeps it forever (used for sensitivity studies, e.g. running the whole
/// workload at a lower VF level).
#[derive(Debug, Clone)]
pub struct StaticSettingManager {
    setting: SystemSetting,
}

impl StaticSettingManager {
    /// Creates a manager pinned to `setting`.
    pub fn new(setting: SystemSetting) -> Self {
        StaticSettingManager { setting }
    }
}

impl ResourceManager for StaticSettingManager {
    fn name(&self) -> &str {
        "StaticSetting"
    }

    fn on_interval(
        &mut self,
        _core: CoreId,
        _observation: &CoreObservation,
        _current: &SystemSetting,
    ) -> SystemSetting {
        self.setting.clone()
    }

    fn invocation_overhead_instructions(&self, _num_cores: usize) -> u64 {
        0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qosrm_types::{AppId, CoreSizeIdx, FreqLevel, IntervalStats, MissProfile, PlatformConfig};

    fn observation() -> CoreObservation {
        CoreObservation {
            app: AppId(0),
            stats: IntervalStats {
                instructions: 1000,
                cycles: 1500,
                exec_cycles: 1000,
                llc_accesses: 10,
                llc_misses: 5,
                leading_misses: 5,
                elapsed_seconds: 1e-6,
                freq: FreqLevel(0),
                core_size: CoreSizeIdx(0),
                ways: 4,
            },
            miss_profile: MissProfile::new(vec![5, 5, 5, 5]),
            mlp_profile: None,
            scaling_profile: None,
            perfect: None,
        }
    }

    #[test]
    fn baseline_keeps_current_setting() {
        let platform = PlatformConfig::paper1(4);
        let current = SystemSetting::baseline(&platform);
        let mut manager = BaselineManager;
        let next = manager.on_interval(CoreId(0), &observation(), &current);
        assert_eq!(next, current);
        assert_eq!(manager.invocation_overhead_instructions(8), 0);
        assert_eq!(manager.name(), "Baseline");
    }

    #[test]
    fn static_manager_applies_its_setting() {
        let platform = PlatformConfig::paper1(4);
        let baseline = SystemSetting::baseline(&platform);
        let mut target = baseline.clone();
        target.core_mut(CoreId(0)).freq = FreqLevel(2);
        let mut manager = StaticSettingManager::new(target.clone());
        let next = manager.on_interval(CoreId(1), &observation(), &baseline);
        assert_eq!(next, target);
    }
}
