//! Property coverage of the seeded mix synthesizer: every generated family
//! is a valid sweep axis, and generation is deterministic per
//! `(seed, index)` — independent of the family size, which is what lets
//! sharded/resumed sweeps regenerate identical workloads.

use proptest::prelude::*;
use workload::{validate_mix_axis, MixPopulation, SynthSpec};

fn population(idx: u8) -> MixPopulation {
    match idx % 5 {
        0 => MixPopulation::StreamingHeavy,
        1 => MixPopulation::CacheSensitive,
        2 => MixPopulation::ComputeBound,
        3 => MixPopulation::Mixed,
        _ => MixPopulation::Uniform,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Families always pass the sweep-axis validation (valid benchmarks,
    /// uniform width, unique names).
    #[test]
    fn families_are_valid_sweep_axes(
        seed in 0u64..u64::MAX / 2,
        count in 1usize..24,
        num_cores in 1usize..17,
        pop in 0u8..5,
    ) {
        let spec = SynthSpec {
            seed,
            count,
            num_cores,
            population: population(pop),
            name_prefix: "p-".to_string(),
        };
        let mixes = spec.mixes().expect("valid spec expands");
        prop_assert_eq!(mixes.len(), count);
        validate_mix_axis(&mixes).expect("family is a valid axis");
        for mix in &mixes {
            prop_assert_eq!(mix.num_cores(), num_cores);
        }
    }

    /// `mix(index)` depends only on `(seed, index)`: shrinking or growing
    /// the family, or regenerating a single index, is byte-identical.
    #[test]
    fn generation_is_deterministic_per_seed_and_index(
        seed in 0u64..u64::MAX / 2,
        count in 2usize..24,
        index_frac in 0u64..1000,
        pop in 0u8..5,
    ) {
        let spec = SynthSpec {
            seed,
            count,
            num_cores: 4,
            population: population(pop),
            name_prefix: "d-".to_string(),
        };
        let index = (index_frac as usize * (count - 1)) / 999;
        let full = spec.mixes().expect("valid spec expands");
        // Regenerating one index in isolation matches the full expansion.
        prop_assert_eq!(&spec.mix(index), &full[index]);
        // A truncated family is a prefix of the full one.
        let truncated = SynthSpec { count: index + 1, ..spec.clone() };
        prop_assert_eq!(&truncated.mixes().expect("valid")[..], &full[..index + 1]);
        // A different seed changes the draw somewhere in the family.
        let reseeded = SynthSpec { seed: seed + 1, ..spec };
        let other = reseeded.mixes().expect("valid");
        prop_assert!(
            (0..count).any(|i| other[i].benchmarks != full[i].benchmarks),
            "seed change left the whole family identical"
        );
    }
}
