//! Synthetic phase specification.
//!
//! A phase is a region of program execution with stable behaviour. Its
//! synthetic specification controls the three properties the resource
//! manager's trade-offs depend on:
//!
//! * the **miss curve** (how MPKI falls as LLC ways are added), shaped by a
//!   mixture of working-set regions plus a never-reused streaming component;
//! * the **miss burstiness** (how many independent misses are issued close
//!   together), which determines how much MLP a larger core can expose;
//! * the **ILP** of the non-memory instruction stream, which determines how
//!   the execution CPI reacts to the core size.

use core_model::IlpParams;
use qosrm_types::QosrmError;
use serde::{Deserialize, Serialize};

/// One working-set region of a phase.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Region {
    /// Number of distinct cache lines in the region.
    pub lines: u64,
    /// Fraction of non-streaming accesses that touch this region.
    pub weight: f64,
}

/// Synthetic specification of one program phase.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PhaseSpec {
    /// Phase name (for diagnostics), e.g. `"mcf_like.p1"`.
    pub name: String,
    /// LLC accesses per kilo-instruction.
    pub apki: f64,
    /// Working-set regions, re-referenced with LRU-friendly reuse.
    pub regions: Vec<Region>,
    /// Fraction of accesses that stream over new lines and are never reused.
    pub streaming_fraction: f64,
    /// Number of consecutive accesses issued as one burst (dense in
    /// instruction count); larger bursts expose more MLP to large cores.
    pub burst_len: usize,
    /// Instruction gap between accesses inside a burst.
    pub intra_burst_gap: u64,
    /// Fraction of accesses whose address depends on the previous
    /// long-latency load (pointer chasing); dependent misses never overlap,
    /// keeping MLP low regardless of the core size.
    pub dependent_fraction: f64,
    /// ILP characteristics of the phase's instruction stream.
    pub ilp: IlpParams,
}

impl PhaseSpec {
    /// Validates the specification.
    pub fn validate(&self) -> Result<(), QosrmError> {
        if self.apki <= 0.0 || !self.apki.is_finite() {
            return Err(QosrmError::InvalidWorkload(format!(
                "{}: APKI must be positive",
                self.name
            )));
        }
        if !(0.0..=1.0).contains(&self.streaming_fraction) {
            return Err(QosrmError::InvalidWorkload(format!(
                "{}: streaming fraction must be in [0, 1]",
                self.name
            )));
        }
        if self.regions.is_empty() && self.streaming_fraction < 1.0 {
            return Err(QosrmError::InvalidWorkload(format!(
                "{}: a non-streaming phase needs at least one region",
                self.name
            )));
        }
        for r in &self.regions {
            if r.lines == 0 || r.weight < 0.0 {
                return Err(QosrmError::InvalidWorkload(format!(
                    "{}: regions must have lines > 0 and weight >= 0",
                    self.name
                )));
            }
        }
        if !self.regions.is_empty() {
            let total: f64 = self.regions.iter().map(|r| r.weight).sum();
            if total <= 0.0 {
                return Err(QosrmError::InvalidWorkload(format!(
                    "{}: region weights must sum to a positive value",
                    self.name
                )));
            }
        }
        if self.burst_len == 0 {
            return Err(QosrmError::InvalidWorkload(format!(
                "{}: burst length must be >= 1",
                self.name
            )));
        }
        if !(0.0..=1.0).contains(&self.dependent_fraction) {
            return Err(QosrmError::InvalidWorkload(format!(
                "{}: dependent fraction must be in [0, 1]",
                self.name
            )));
        }
        Ok(())
    }

    /// Average instruction distance between consecutive LLC accesses.
    pub fn mean_access_gap(&self) -> f64 {
        1000.0 / self.apki
    }

    /// Total number of distinct lines across all regions (the phase's
    /// resident working set, ignoring the streaming component).
    pub fn working_set_lines(&self) -> u64 {
        self.regions.iter().map(|r| r.lines).sum()
    }
}

/// Convenience builders for the archetypes used by the synthetic suite.
impl PhaseSpec {
    /// A compute-bound phase: few LLC accesses, tiny working set.
    pub fn compute_bound(name: impl Into<String>, exec_cpi: f64, ilp_sensitivity: f64) -> Self {
        PhaseSpec {
            name: name.into(),
            apki: 1.0,
            regions: vec![Region {
                lines: 256,
                weight: 1.0,
            }],
            streaming_fraction: 0.02,
            burst_len: 1,
            intra_burst_gap: 10,
            dependent_fraction: 0.2,
            ilp: IlpParams::new(exec_cpi, ilp_sensitivity),
        }
    }

    /// A streaming phase: every access misses regardless of the cache size;
    /// misses are bursty so they overlap well on a large core.
    pub fn streaming(name: impl Into<String>, apki: f64, burst_len: usize) -> Self {
        PhaseSpec {
            name: name.into(),
            apki,
            regions: vec![Region {
                lines: 512,
                weight: 1.0,
            }],
            streaming_fraction: 0.85,
            burst_len,
            intra_burst_gap: 8,
            dependent_fraction: 0.0,
            ilp: IlpParams::new(0.9, 0.25),
        }
    }

    /// A cache-sensitive phase with pointer-chasing style dependent misses
    /// (low MLP on every core size).
    pub fn cache_sensitive_dependent(name: impl Into<String>, apki: f64, ws_lines: u64) -> Self {
        PhaseSpec {
            name: name.into(),
            apki,
            regions: vec![
                Region {
                    lines: ws_lines,
                    weight: 0.8,
                },
                Region {
                    lines: ws_lines / 8,
                    weight: 0.2,
                },
            ],
            streaming_fraction: 0.05,
            burst_len: 1,
            intra_burst_gap: 20,
            dependent_fraction: 0.9,
            ilp: IlpParams::new(1.3, 0.2),
        }
    }

    /// A cache-sensitive phase with bursty (overlappable) misses.
    pub fn cache_sensitive_bursty(name: impl Into<String>, apki: f64, ws_lines: u64) -> Self {
        PhaseSpec {
            name: name.into(),
            apki,
            regions: vec![
                Region {
                    lines: ws_lines,
                    weight: 0.7,
                },
                Region {
                    lines: ws_lines / 4,
                    weight: 0.3,
                },
            ],
            streaming_fraction: 0.10,
            burst_len: 12,
            intra_burst_gap: 10,
            dependent_fraction: 0.05,
            ilp: IlpParams::new(1.0, 0.3),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn archetypes_are_valid() {
        assert!(PhaseSpec::compute_bound("c", 0.7, 0.9).validate().is_ok());
        assert!(PhaseSpec::streaming("s", 25.0, 8).validate().is_ok());
        assert!(PhaseSpec::cache_sensitive_dependent("d", 12.0, 8192)
            .validate()
            .is_ok());
        assert!(PhaseSpec::cache_sensitive_bursty("b", 15.0, 8192)
            .validate()
            .is_ok());
    }

    #[test]
    fn validation_rejects_bad_specs() {
        let mut p = PhaseSpec::compute_bound("c", 0.7, 0.9);
        p.apki = 0.0;
        assert!(p.validate().is_err());

        let mut p = PhaseSpec::streaming("s", 25.0, 8);
        p.streaming_fraction = 1.5;
        assert!(p.validate().is_err());

        let mut p = PhaseSpec::cache_sensitive_bursty("b", 15.0, 8192);
        p.burst_len = 0;
        assert!(p.validate().is_err());

        let mut p = PhaseSpec::cache_sensitive_bursty("b", 15.0, 8192);
        p.regions.clear();
        p.streaming_fraction = 0.1;
        assert!(p.validate().is_err());

        let mut p = PhaseSpec::cache_sensitive_bursty("b", 15.0, 8192);
        p.regions[0].lines = 0;
        assert!(p.validate().is_err());
    }

    #[test]
    fn derived_quantities() {
        let p = PhaseSpec::streaming("s", 20.0, 8);
        assert!((p.mean_access_gap() - 50.0).abs() < 1e-12);
        let d = PhaseSpec::cache_sensitive_dependent("d", 10.0, 8000);
        assert_eq!(d.working_set_lines(), 8000 + 1000);
    }
}
