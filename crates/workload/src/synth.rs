//! Seeded synthesis of workload mixes.
//!
//! The paper evaluates on a handful of hand-picked mixes; the interesting
//! behaviour of a coordinated resource manager lives in the long tail of the
//! scenario space. This module turns "200 mixes drawn from a streaming-heavy
//! population on 8 cores" into data: a [`SynthSpec`] is serializable (so it
//! can sit inside a scenario spec file) and expands deterministically —
//! [`SynthSpec::mix`] depends only on `(seed, index)`, never on how many
//! mixes were generated before it, so sharded and resumed sweeps regenerate
//! identical workloads.
//!
//! Mixes are composed from the same category pools the paper's hand-built
//! mixes use (see `mixes.rs`): each slot samples a pool according to the
//! population's weights, then a benchmark uniformly within the pool.
//!
//! # Example
//!
//! ```
//! use workload::{validate_mix_axis, MixPopulation, SynthSpec};
//!
//! let spec = SynthSpec {
//!     seed: 42,
//!     count: 8,
//!     num_cores: 4,
//!     population: MixPopulation::StreamingHeavy,
//!     name_prefix: "syn-".to_string(),
//! };
//! let mixes = spec.mixes().unwrap();
//! assert_eq!(mixes.len(), 8);
//! assert!(validate_mix_axis(&mixes).is_ok());
//! // Deterministic per (seed, index): regenerating any mix is exact.
//! assert_eq!(spec.mix(5), mixes[5]);
//! ```

use crate::mixes::{pools, WorkloadMix};
use qosrm_types::QosrmError;
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use serde::{Deserialize, Serialize};

/// Which population of applications a synthesized mix draws from.
///
/// Each population is a weighted mixture over the category pools of
/// `mixes.rs`; the weights steer the mix towards the paper's qualitative
/// scenario classes without hardcoding any particular composition.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum MixPopulation {
    /// Dominated by streaming, cache-insensitive memory applications
    /// (the paper's Scenario-3 shape: only core re-configuration helps).
    StreamingHeavy,
    /// Dominated by cache-sensitive applications (where coordinated
    /// DVFS + partitioning pays off most).
    CacheSensitive,
    /// Dominated by compute-bound applications (the paper's "no benefit"
    /// shape).
    ComputeBound,
    /// A balanced draw across all category pools.
    Mixed,
    /// Uniform over the whole suite, ignoring categories.
    Uniform,
}

/// One weighted pool of a population.
type WeightedPool = (&'static [&'static str], u32);

impl MixPopulation {
    /// Every population, in a fixed declaration order. Evolutionary search
    /// over [`SynthSpec`]s indexes this list with a seeded generator, so the
    /// order is part of the deterministic-archive contract: reordering it
    /// changes what a given seed explores.
    pub const ALL: [MixPopulation; 5] = [
        MixPopulation::StreamingHeavy,
        MixPopulation::CacheSensitive,
        MixPopulation::ComputeBound,
        MixPopulation::Mixed,
        MixPopulation::Uniform,
    ];

    /// The weighted category pools of this population.
    fn weighted_pools(&self) -> &'static [WeightedPool] {
        const STREAMING: &[WeightedPool] =
            &[(&pools::CI_PS, 6), (&pools::CS_PS, 2), (&pools::COMPUTE, 2)];
        const CACHE_SENSITIVE: &[WeightedPool] = &[
            (&pools::CS_PI, 4),
            (&pools::CS_PS, 4),
            (&pools::COMPUTE, 1),
            (&pools::MIXED, 1),
        ];
        const COMPUTE_BOUND: &[WeightedPool] =
            &[(&pools::COMPUTE, 6), (&pools::CI_PI, 3), (&pools::MIXED, 1)];
        const MIXED: &[WeightedPool] = &[
            (&pools::CS_PI, 1),
            (&pools::CS_PS, 1),
            (&pools::CI_PS, 1),
            (&pools::CI_PI, 1),
            (&pools::COMPUTE, 1),
            (&pools::MIXED, 1),
        ];
        match self {
            MixPopulation::StreamingHeavy => STREAMING,
            MixPopulation::CacheSensitive => CACHE_SENSITIVE,
            MixPopulation::ComputeBound => COMPUTE_BOUND,
            MixPopulation::Mixed => MIXED,
            // Uniform samples the whole suite directly (see `sample_slot`).
            MixPopulation::Uniform => MIXED,
        }
    }
}

/// A declarative, serializable recipe for a family of workload mixes.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SynthSpec {
    /// Root seed of the family; every mix derives its generator from
    /// `(seed, index)` alone.
    pub seed: u64,
    /// Number of mixes the spec expands to.
    pub count: usize,
    /// Applications per mix (= cores of the target platform).
    pub num_cores: usize,
    /// Population the applications are drawn from.
    pub population: MixPopulation,
    /// Prefix of the generated mix names (`"{prefix}{index:04}"`); names are
    /// unique within the spec, as a sweep axis requires.
    pub name_prefix: String,
}

/// SplitMix64 finalizer: decorrelates the per-mix seeds derived from
/// `(seed, index)`.
fn mix_seed(seed: u64, index: u64) -> u64 {
    let mut z = seed ^ index.wrapping_mul(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

impl SynthSpec {
    /// Validates the spec: at least one mix, at least one core.
    pub fn validate(&self) -> Result<(), QosrmError> {
        if self.count == 0 {
            return Err(QosrmError::InvalidWorkload(
                "synthetic workload spec expands to zero mixes".into(),
            ));
        }
        if self.num_cores == 0 {
            return Err(QosrmError::InvalidWorkload(
                "synthetic workload spec has zero cores per mix".into(),
            ));
        }
        Ok(())
    }

    /// Generates mix `index` of the family.
    ///
    /// Deterministic per `(seed, index)`: the result does not depend on
    /// `count` or on any previously generated mix, so a resumed or sharded
    /// sweep regenerates byte-identical workloads.
    pub fn mix(&self, index: usize) -> WorkloadMix {
        let mut rng = ChaCha8Rng::seed_from_u64(mix_seed(self.seed, index as u64));
        let benchmarks: Vec<&str> = (0..self.num_cores)
            .map(|_| self.sample_slot(&mut rng))
            .collect();
        WorkloadMix::new(format!("{}{index:04}", self.name_prefix), benchmarks)
    }

    /// Expands the whole family (validating first).
    pub fn mixes(&self) -> Result<Vec<WorkloadMix>, QosrmError> {
        self.validate()?;
        Ok((0..self.count).map(|i| self.mix(i)).collect())
    }

    /// Returns a mutated copy: exactly one gene (seed, population or count)
    /// changes, drawn from `rng`. `max_count` bounds the family size so a
    /// search cannot mutate a spec into an unaffordably large axis;
    /// `num_cores` and `name_prefix` are structural (tied to the platform
    /// axis and the mix-name contract) and never mutate.
    ///
    /// All randomness comes from the caller's generator, so a seeded search
    /// replays byte-identically.
    pub fn mutated(&self, rng: &mut ChaCha8Rng, max_count: usize) -> SynthSpec {
        let mut next = self.clone();
        match rng.gen_range(0..3u64) {
            0 => {
                // Reseed the whole family.
                next.seed = rng.gen();
            }
            1 => {
                // Shift to another population (never a no-op: offset 1..len).
                let current = MixPopulation::ALL
                    .iter()
                    .position(|p| *p == self.population)
                    .unwrap_or(0);
                let offset = 1 + rng.gen_range(0..(MixPopulation::ALL.len() as u64 - 1)) as usize;
                next.population = MixPopulation::ALL[(current + offset) % MixPopulation::ALL.len()];
            }
            _ => {
                // Nudge the family size within [1, max_count].
                let bound = max_count.max(1);
                let grow = rng.gen_range(0..2u64) == 0;
                next.count = if grow {
                    (self.count + 1).min(bound)
                } else {
                    self.count.saturating_sub(1).max(1)
                };
            }
        }
        next
    }

    /// Uniform per-gene crossover with `other`: seed, population and count
    /// each come from one parent chosen by `rng`; the structural genes
    /// (`num_cores`, `name_prefix`) always come from `self`, so the child
    /// stays valid for `self`'s platform axis.
    pub fn crossover(&self, other: &SynthSpec, rng: &mut ChaCha8Rng) -> SynthSpec {
        let mut child = self.clone();
        if rng.gen_range(0..2u64) == 1 {
            child.seed = other.seed;
        }
        if rng.gen_range(0..2u64) == 1 {
            child.population = other.population;
        }
        if rng.gen_range(0..2u64) == 1 {
            child.count = other.count.max(1);
        }
        child
    }

    /// Samples one application slot from the population.
    fn sample_slot(&self, rng: &mut ChaCha8Rng) -> &'static str {
        if self.population == MixPopulation::Uniform {
            let names = crate::suite::benchmark_names();
            return names[rng.gen_range(0..names.len())];
        }
        let weighted = self.population.weighted_pools();
        let total: u32 = weighted.iter().map(|(_, w)| w).sum();
        let mut ticket = rng.gen_range(0..total as u64) as u32;
        for (pool, weight) in weighted {
            if ticket < *weight {
                return pool[rng.gen_range(0..pool.len())];
            }
            ticket -= weight;
        }
        unreachable!("ticket exceeds total pool weight");
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mixes::validate_mix_axis;

    fn spec(population: MixPopulation) -> SynthSpec {
        SynthSpec {
            seed: 7,
            count: 16,
            num_cores: 4,
            population,
            name_prefix: "syn-".to_string(),
        }
    }

    #[test]
    fn families_are_valid_sweep_axes() {
        for population in [
            MixPopulation::StreamingHeavy,
            MixPopulation::CacheSensitive,
            MixPopulation::ComputeBound,
            MixPopulation::Mixed,
            MixPopulation::Uniform,
        ] {
            let mixes = spec(population).mixes().unwrap();
            assert_eq!(mixes.len(), 16);
            validate_mix_axis(&mixes).unwrap_or_else(|e| panic!("{population:?}: {e}"));
        }
    }

    #[test]
    fn per_index_determinism_is_independent_of_count() {
        let a = spec(MixPopulation::Mixed);
        let mut b = a.clone();
        b.count = 3;
        for i in 0..3 {
            assert_eq!(a.mix(i), b.mix(i));
        }
        assert_eq!(a.mixes().unwrap()[..3], b.mixes().unwrap()[..]);
    }

    #[test]
    fn different_seeds_and_indices_differ() {
        let a = spec(MixPopulation::Mixed);
        let mut other = a.clone();
        other.seed = 8;
        assert_ne!(a.mix(0).benchmarks, other.mix(0).benchmarks);
        assert_ne!(a.mix(0).benchmarks, a.mix(1).benchmarks);
    }

    #[test]
    fn populations_shape_the_draw() {
        let streaming = SynthSpec {
            count: 64,
            ..spec(MixPopulation::StreamingHeavy)
        };
        let slots: Vec<String> = streaming
            .mixes()
            .unwrap()
            .into_iter()
            .flat_map(|m| m.benchmarks)
            .collect();
        let streaming_fraction = slots
            .iter()
            .filter(|b| pools::CI_PS.contains(&b.as_str()))
            .count() as f64
            / slots.len() as f64;
        assert!(
            streaming_fraction > 0.4,
            "streaming-heavy population drew only {streaming_fraction:.2} from CI-PS"
        );

        let compute = SynthSpec {
            count: 64,
            ..spec(MixPopulation::ComputeBound)
        };
        let slots: Vec<String> = compute
            .mixes()
            .unwrap()
            .into_iter()
            .flat_map(|m| m.benchmarks)
            .collect();
        let compute_fraction = slots
            .iter()
            .filter(|b| pools::COMPUTE.contains(&b.as_str()))
            .count() as f64
            / slots.len() as f64;
        assert!(
            compute_fraction > 0.4,
            "compute-bound population drew only {compute_fraction:.2} from COMPUTE"
        );
    }

    #[test]
    fn validation_rejects_degenerate_specs() {
        let mut zero_count = spec(MixPopulation::Mixed);
        zero_count.count = 0;
        assert!(zero_count.mixes().is_err());
        let mut zero_cores = spec(MixPopulation::Mixed);
        zero_cores.num_cores = 0;
        assert!(zero_cores.mixes().is_err());
    }

    #[test]
    fn mutation_changes_exactly_one_gene_and_stays_valid() {
        let base = spec(MixPopulation::Mixed);
        for round in 0..64u64 {
            let mut rng = ChaCha8Rng::seed_from_u64(round);
            let next = base.mutated(&mut rng, 32);
            next.validate().unwrap();
            assert!(next.count >= 1 && next.count <= 32);
            assert_eq!(next.num_cores, base.num_cores, "structural gene mutated");
            assert_eq!(
                next.name_prefix, base.name_prefix,
                "structural gene mutated"
            );
            let changed = [
                next.seed != base.seed,
                next.population != base.population,
                next.count != base.count,
            ]
            .iter()
            .filter(|c| **c)
            .count();
            assert_eq!(changed, 1, "exactly one gene must change per mutation");
        }
    }

    #[test]
    fn mutation_and_crossover_are_deterministic_per_seed() {
        let a = spec(MixPopulation::Mixed);
        let b = SynthSpec {
            seed: 99,
            count: 9,
            ..spec(MixPopulation::ComputeBound)
        };
        let mut r1 = ChaCha8Rng::seed_from_u64(5);
        let mut r2 = ChaCha8Rng::seed_from_u64(5);
        assert_eq!(a.mutated(&mut r1, 32), a.mutated(&mut r2, 32));
        assert_eq!(a.crossover(&b, &mut r1), a.crossover(&b, &mut r2));
        // Crossover children keep the structural genes of the first parent.
        let child = a.crossover(&b, &mut ChaCha8Rng::seed_from_u64(11));
        assert_eq!(child.num_cores, a.num_cores);
        assert_eq!(child.name_prefix, a.name_prefix);
        child.validate().unwrap();
    }

    #[test]
    fn spec_round_trips_through_json() {
        let s = spec(MixPopulation::StreamingHeavy);
        let json = serde_json::to_string(&s).unwrap();
        let back: SynthSpec = serde_json::from_str(&json).unwrap();
        assert_eq!(back, s);
    }
}
