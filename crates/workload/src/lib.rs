//! # workload
//!
//! Synthetic SPEC-CPU2006-like benchmark suite, phase analysis and workload
//! mix generation.
//!
//! The paper evaluates its resource managers on multi-programmed workloads of
//! SPEC CPU2006 benchmarks, characterized through SimPoint phase analysis of
//! whole-program pinballs. Neither the benchmarks nor the pinballs can be
//! redistributed, so this crate builds the closest synthetic equivalent:
//!
//! * a suite of named **application profiles** ([`suite`]) spanning the same
//!   characteristic space the paper's categorization uses — memory intensive
//!   vs. compute intensive, cache sensitive vs. insensitive, and (Paper II)
//!   parallelism sensitive vs. insensitive;
//! * each application is a sequence of **phases** ([`phase`]), and each phase
//!   deterministically generates a synthetic LLC **reference stream**
//!   ([`stream`]) with a controlled working-set mixture, streaming fraction
//!   and miss burstiness;
//! * a **characterization** step ([`characterize`]) that replays the stream
//!   through the cache substrate and produces the
//!   [`core_model::PhaseCharacterization`] ground truth (plus the ATD-sampled
//!   view) for the simulation database;
//! * **phase traces** ([`trace`]) with per-phase weights, mirroring the
//!   SimPoint output the co-phase simulator consumes, plus a small k-means
//!   clustering utility ([`simpoint`]) over slice feature vectors;
//! * the paper's **application categorization** ([`category`]) and the
//!   **workload mixes** ([`mixes`]) used by every experiment;
//! * a seeded **mix synthesizer** ([`synth`]) that expands a serializable
//!   [`SynthSpec`] into arbitrarily many mixes drawn from the category
//!   pools — deterministic per `(seed, index)`, so scenario sweeps can scale
//!   far beyond the hand-enumerated paper mixes.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod category;
pub mod characterize;
pub mod mixes;
pub mod phase;
pub mod simpoint;
pub mod stream;
pub mod suite;
pub mod synth;
pub mod trace;

pub use category::{classify, AppCategory, CategoryThresholds, Paper1Category, Paper2Category};
pub use characterize::{CharacterizationConfig, PhaseCharacterizer};
pub use mixes::{
    paper1_workloads, paper2_category_representatives, paper2_scenario_workloads,
    paper2_sixteen_mixes, validate_mix_axis, WorkloadMix,
};
pub use phase::{PhaseSpec, Region};
pub use simpoint::{cluster_slices, SliceFeatures};
pub use stream::StreamGenerator;
pub use suite::{benchmark, benchmark_names, BenchmarkProfile};
pub use synth::{MixPopulation, SynthSpec};
pub use trace::PhaseTrace;
