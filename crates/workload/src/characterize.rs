//! Phase characterization: from a synthetic phase specification to the
//! architectural ground truth consumed by the simulation database.
//!
//! The paper performs detailed Sniper + McPAT simulations of one
//! representative slice per phase, preceded by a warm-up slice. The
//! reproduction equivalently replays a warm-up and a representative synthetic
//! reference stream through the cache substrate. To keep the cost of
//! characterizing a whole benchmark suite low, the replay is performed on a
//! *scaled* configuration: `1/scale` of the LLC sets and `1/scale` of the
//! interval instructions, with all counts multiplied back by `scale` — the
//! same dynamic set-sampling argument the ATD hardware itself relies on.

use crate::phase::PhaseSpec;
use crate::stream::StreamGenerator;
use cache_model::{MlpAtd, MlpAtdConfig, OverlapParams, StackDistanceProfiler};
use core_model::{exec_cpi_curve, PhaseCharacterization};
use qosrm_types::{LlcGeometry, PlatformConfig, QosrmError};
use serde::{Deserialize, Serialize};

/// Configuration of the characterization step.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CharacterizationConfig {
    /// Scaled-down LLC geometry used for the replay.
    pub sim_llc: LlcGeometry,
    /// Scaling factor between the simulated slice and the real interval
    /// (applies to both sets and instructions).
    pub scale: u64,
    /// Additional set-sampling factor of the ATD view relative to the
    /// (already scaled) simulated LLC.
    pub atd_sampling: usize,
    /// Fraction of the simulated slice used to warm the cache state before
    /// the representative slice is recorded.
    pub warmup_fraction: f64,
}

impl CharacterizationConfig {
    /// Default configuration for a platform: simulate 1/16 of the LLC sets
    /// and 1/16 of the interval, with an additional 1-in-4 ATD sampling.
    pub fn for_platform(platform: &PlatformConfig) -> Self {
        let scale = 16u64;
        let sim_sets = (platform.llc.num_sets / scale as usize).max(64);
        CharacterizationConfig {
            sim_llc: LlcGeometry {
                num_sets: sim_sets,
                associativity: platform.llc.associativity,
                line_bytes: platform.llc.line_bytes,
            },
            scale: (platform.llc.num_sets / sim_sets) as u64,
            atd_sampling: 8,
            warmup_fraction: 0.5,
        }
    }

    /// A much coarser configuration for unit tests (1/64 of the sets).
    pub fn quick_for_tests(platform: &PlatformConfig) -> Self {
        let sim_sets = (platform.llc.num_sets / 64).max(32);
        CharacterizationConfig {
            sim_llc: LlcGeometry {
                num_sets: sim_sets,
                associativity: platform.llc.associativity,
                line_bytes: platform.llc.line_bytes,
            },
            scale: (platform.llc.num_sets / sim_sets) as u64,
            atd_sampling: 2,
            warmup_fraction: 0.5,
        }
    }

    /// Validates the configuration.
    pub fn validate(&self) -> Result<(), QosrmError> {
        self.sim_llc.validate()?;
        if self.scale == 0 {
            return Err(QosrmError::InvalidWorkload("scale must be >= 1".into()));
        }
        if !(0.0..=1.0).contains(&self.warmup_fraction) {
            return Err(QosrmError::InvalidWorkload(
                "warmup fraction must be in [0, 1]".into(),
            ));
        }
        Ok(())
    }

    /// Scales a working-set size expressed in lines of the *full* LLC down to
    /// the simulated LLC. Phase specifications are written against the full
    /// LLC; the stream generator works against the simulated one.
    pub fn scale_lines(&self, full_lines: u64) -> u64 {
        (full_lines / self.scale).max(1)
    }
}

/// Characterizes phases of the synthetic suite against a platform.
#[derive(Debug, Clone)]
pub struct PhaseCharacterizer {
    platform: PlatformConfig,
    config: CharacterizationConfig,
    overlap_params: Vec<OverlapParams>,
}

impl PhaseCharacterizer {
    /// Creates a characterizer.
    pub fn new(platform: &PlatformConfig, config: CharacterizationConfig) -> Self {
        let overlap_params = platform
            .core_sizes
            .iter()
            .map(OverlapParams::from)
            .collect();
        PhaseCharacterizer {
            platform: platform.clone(),
            config,
            overlap_params,
        }
    }

    /// Convenience constructor with the default configuration.
    pub fn for_platform(platform: &PlatformConfig) -> Self {
        PhaseCharacterizer::new(platform, CharacterizationConfig::for_platform(platform))
    }

    /// The characterization configuration.
    pub fn config(&self) -> &CharacterizationConfig {
        &self.config
    }

    /// Characterizes one phase: generates its warm-up and representative
    /// streams, replays them through the scaled LLC (exact and ATD-sampled),
    /// and assembles the [`PhaseCharacterization`].
    pub fn characterize(&self, spec: &PhaseSpec, seed: u64) -> PhaseCharacterization {
        let assoc = self.config.sim_llc.associativity;
        let sim_instructions =
            (self.platform.interval_instructions / self.config.scale).max(10_000);
        let warm_instructions = (sim_instructions as f64 * self.config.warmup_fraction) as u64;

        // Scale the phase's working sets down to the simulated LLC.
        let mut scaled = spec.clone();
        for region in &mut scaled.regions {
            region.lines = self.config.scale_lines(region.lines);
        }

        let mut generator = StreamGenerator::new(seed, 0);
        let warm_trace = generator.generate(&scaled, warm_instructions.max(1_000));
        let main_trace = generator.generate(&scaled, sim_instructions);

        // Exact (ground-truth) replay over every simulated set.
        let mut exact = StackDistanceProfiler::new(&self.config.sim_llc);
        exact.warm_up(&warm_trace);
        let exact_profile = exact.replay(&main_trace);

        // ATD miss-curve view: additionally set-sampled (models the shadow
        // tag directory hardware monitor).
        let mut atd = StackDistanceProfiler::sampled(
            &self.config.sim_llc,
            self.config.atd_sampling,
            1 % self.config.atd_sampling.max(1),
        );
        atd.warm_up(&warm_trace);
        let atd_profile = atd.replay(&main_trace);

        let scale = self.config.scale;
        let misses_per_way: Vec<u64> = (1..=assoc)
            .map(|w| exact_profile.misses_at(w) * scale)
            .collect();
        let atd_misses_per_way: Vec<u64> = (1..=assoc)
            .map(|w| atd_profile.misses_at(w) * scale)
            .collect();

        let mlp_config = MlpAtdConfig {
            set_sampling: 1,
            core_sizes: self.overlap_params.clone(),
        };
        let exact_matrix = MlpAtd::matrix_from_profile(&exact_profile, &mlp_config, assoc);
        let leading_misses: Vec<Vec<u64>> = exact_matrix
            .leading
            .iter()
            .map(|row| row.iter().map(|&v| v * scale).collect())
            .collect();
        // The MLP-ATD extension observes miss overlap at the MSHR file, which
        // sees every real miss (not only the ATD-sampled sets); its reported
        // leading-miss counts therefore track the full-stream overlap
        // structure. The remaining Model-3 error comes from the sampled miss
        // curve (for non-current way counts) and from effects the leading-
        // loads model ignores (bandwidth queueing).
        let atd_leading_misses: Vec<Vec<u64>> = leading_misses.clone();

        let exec_cpi = exec_cpi_curve(
            &spec.ilp,
            &self.platform.core_sizes,
            self.platform.baseline_core_size,
        );

        PhaseCharacterization {
            instructions: self.platform.interval_instructions,
            llc_accesses: main_trace.len() as u64 * scale,
            exec_cpi,
            misses_per_way,
            leading_misses,
            atd_misses_per_way,
            atd_leading_misses,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::phase::PhaseSpec;
    use qosrm_types::CoreSizeIdx;

    fn platform() -> PlatformConfig {
        PlatformConfig::paper2(4)
    }

    fn characterizer() -> PhaseCharacterizer {
        let p = platform();
        PhaseCharacterizer::new(&p, CharacterizationConfig::quick_for_tests(&p))
    }

    #[test]
    fn configs_are_valid() {
        let p = platform();
        assert!(CharacterizationConfig::for_platform(&p).validate().is_ok());
        assert!(CharacterizationConfig::quick_for_tests(&p)
            .validate()
            .is_ok());
        let mut bad = CharacterizationConfig::for_platform(&p);
        bad.warmup_fraction = 2.0;
        assert!(bad.validate().is_err());
    }

    #[test]
    fn characterization_is_internally_consistent() {
        let c = characterizer();
        let spec = PhaseSpec::cache_sensitive_bursty("b", 12.0, 32_768);
        let phase = c.characterize(&spec, 3);
        assert!(phase.validate().is_ok());
        assert_eq!(phase.max_ways(), 16);
        assert_eq!(phase.num_core_sizes(), 3);
        assert!(phase.llc_accesses > 0);
    }

    #[test]
    fn cache_sensitive_phase_has_steep_curve() {
        let c = characterizer();
        // Working set sized to roughly half the full LLC.
        let spec = PhaseSpec::cache_sensitive_dependent("d", 15.0, 32_768);
        let phase = c.characterize(&spec, 5);
        assert!(
            phase.mpki_at(2) > 2.0 * phase.mpki_at(16),
            "mpki(2)={} mpki(16)={}",
            phase.mpki_at(2),
            phase.mpki_at(16)
        );
    }

    #[test]
    fn compute_bound_phase_has_flat_low_curve() {
        let c = characterizer();
        let spec = PhaseSpec::compute_bound("c", 0.8, 0.8);
        let phase = c.characterize(&spec, 7);
        assert!(phase.mpki_at(2) < 1.0);
        assert!(phase.mpki_at(2) - phase.mpki_at(16) < 0.5);
    }

    #[test]
    fn bursty_phase_gains_mlp_on_large_core() {
        let c = characterizer();
        let spec = PhaseSpec::streaming("s", 25.0, 10);
        let phase = c.characterize(&spec, 9);
        let small = phase.mlp_at(CoreSizeIdx(0), 8);
        let large = phase.mlp_at(CoreSizeIdx(2), 8);
        assert!(large > small * 1.3, "small={small} large={large}");
    }

    #[test]
    fn dependent_phase_keeps_low_mlp() {
        let c = characterizer();
        let spec = PhaseSpec::cache_sensitive_dependent("d", 12.0, 32_768);
        let phase = c.characterize(&spec, 11);
        let small = phase.mlp_at(CoreSizeIdx(0), 4);
        let large = phase.mlp_at(CoreSizeIdx(2), 4);
        assert!(large < small * 1.6, "small={small} large={large}");
        assert!(large < 2.5);
    }

    #[test]
    fn atd_view_tracks_exact_curve() {
        let c = characterizer();
        let spec = PhaseSpec::cache_sensitive_bursty("b", 15.0, 32_768);
        let phase = c.characterize(&spec, 13);
        for w in [1usize, 4, 8, 16] {
            let exact = phase.misses_per_way[w - 1] as f64;
            let atd = phase.atd_misses_per_way[w - 1] as f64;
            if exact > 1000.0 {
                let rel = (atd - exact).abs() / exact;
                assert!(rel < 0.5, "w={w}: exact={exact} atd={atd}");
            }
        }
    }

    #[test]
    fn deterministic_given_seed() {
        let c = characterizer();
        let spec = PhaseSpec::streaming("s", 20.0, 6);
        let a = c.characterize(&spec, 21);
        let b = c.characterize(&spec, 21);
        assert_eq!(a, b);
    }
}
