//! SimPoint-style clustering of program slices into phases.
//!
//! The real evaluation runs SimPoint on basic-block vectors of whole-program
//! pinballs. The synthetic suite already knows its phases by construction,
//! but the pipeline still exposes the clustering step: given per-slice
//! feature vectors (MPKI, APKI, CPI, MLP, ...), a small k-means implementation
//! groups the slices into phases, selects the slice closest to each centroid
//! as the representative, and reports per-phase weights — the same artefacts
//! SimPoint produces. It is used by tests to verify that the synthetic
//! benchmarks' generated slices are recovered as the phases they were
//! generated from.

use qosrm_types::QosrmError;
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use serde::{Deserialize, Serialize};

/// Feature vector of one execution slice.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SliceFeatures {
    /// Arbitrary-dimension feature values (all slices must agree on the
    /// dimension). Typical features: MPKI, APKI, exec CPI, measured MLP.
    pub values: Vec<f64>,
}

impl SliceFeatures {
    /// Creates a feature vector.
    pub fn new(values: Vec<f64>) -> Self {
        SliceFeatures { values }
    }

    fn distance2(&self, other: &[f64]) -> f64 {
        self.values
            .iter()
            .zip(other.iter())
            .map(|(a, b)| (a - b) * (a - b))
            .sum()
    }
}

/// Result of clustering slices into phases.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Clustering {
    /// Phase assignment of every slice.
    pub assignments: Vec<usize>,
    /// Index of the representative slice of every phase (the slice closest
    /// to the centroid).
    pub representatives: Vec<usize>,
    /// Fraction of slices belonging to every phase.
    pub weights: Vec<f64>,
    /// Final centroids.
    pub centroids: Vec<Vec<f64>>,
}

/// Clusters `slices` into at most `k` phases with k-means (Lloyd's algorithm,
/// deterministic given `seed`).
pub fn cluster_slices(
    slices: &[SliceFeatures],
    k: usize,
    seed: u64,
) -> Result<Clustering, QosrmError> {
    if slices.is_empty() {
        return Err(QosrmError::InvalidWorkload("no slices to cluster".into()));
    }
    if k == 0 {
        return Err(QosrmError::InvalidWorkload("k must be >= 1".into()));
    }
    let dim = slices[0].values.len();
    if slices.iter().any(|s| s.values.len() != dim) {
        return Err(QosrmError::InvalidWorkload(
            "all slices must have the same feature dimension".into(),
        ));
    }
    let k = k.min(slices.len());
    let mut rng = ChaCha8Rng::seed_from_u64(seed);

    // k-means++ style seeding: first centroid random, then proportional to
    // squared distance from the nearest existing centroid.
    let mut centroids: Vec<Vec<f64>> = Vec::with_capacity(k);
    centroids.push(slices[rng.gen_range(0..slices.len())].values.clone());
    while centroids.len() < k {
        let distances: Vec<f64> = slices
            .iter()
            .map(|s| {
                centroids
                    .iter()
                    .map(|c| s.distance2(c))
                    .fold(f64::INFINITY, f64::min)
            })
            .collect();
        let total: f64 = distances.iter().sum();
        if total <= 0.0 {
            // All remaining slices coincide with existing centroids.
            centroids.push(slices[rng.gen_range(0..slices.len())].values.clone());
            continue;
        }
        let mut pick = rng.gen_range(0.0..total);
        let mut chosen = 0;
        for (i, d) in distances.iter().enumerate() {
            pick -= d;
            if pick <= 0.0 {
                chosen = i;
                break;
            }
        }
        centroids.push(slices[chosen].values.clone());
    }

    let mut assignments = vec![0usize; slices.len()];
    for _iteration in 0..50 {
        // Assign.
        let mut changed = false;
        for (i, s) in slices.iter().enumerate() {
            let best = centroids
                .iter()
                .enumerate()
                .min_by(|a, b| s.distance2(a.1).partial_cmp(&s.distance2(b.1)).unwrap())
                .map(|(idx, _)| idx)
                .unwrap_or(0);
            if assignments[i] != best {
                assignments[i] = best;
                changed = true;
            }
        }
        // Update.
        for (ci, centroid) in centroids.iter_mut().enumerate() {
            let members: Vec<&SliceFeatures> = slices
                .iter()
                .zip(assignments.iter())
                .filter(|(_, &a)| a == ci)
                .map(|(s, _)| s)
                .collect();
            if members.is_empty() {
                continue;
            }
            for (d, slot) in centroid.iter_mut().enumerate() {
                *slot = members.iter().map(|m| m.values[d]).sum::<f64>() / members.len() as f64;
            }
        }
        if !changed {
            break;
        }
    }

    // Representatives and weights.
    let mut representatives = Vec::with_capacity(k);
    let mut weights = Vec::with_capacity(k);
    for (ci, centroid) in centroids.iter().enumerate() {
        let mut best_idx = None;
        let mut best_dist = f64::INFINITY;
        let mut count = 0usize;
        for (i, s) in slices.iter().enumerate() {
            if assignments[i] != ci {
                continue;
            }
            count += 1;
            let d = s.distance2(centroid);
            if d < best_dist {
                best_dist = d;
                best_idx = Some(i);
            }
        }
        representatives.push(best_idx.unwrap_or(0));
        weights.push(count as f64 / slices.len() as f64);
    }

    Ok(Clustering {
        assignments,
        representatives,
        weights,
        centroids,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn two_blob_slices() -> Vec<SliceFeatures> {
        let mut slices = Vec::new();
        for i in 0..20 {
            slices.push(SliceFeatures::new(vec![1.0 + 0.01 * i as f64, 10.0]));
        }
        for i in 0..10 {
            slices.push(SliceFeatures::new(vec![8.0 + 0.01 * i as f64, 2.0]));
        }
        slices
    }

    #[test]
    fn recovers_two_well_separated_phases() {
        let slices = two_blob_slices();
        let clustering = cluster_slices(&slices, 2, 3).unwrap();
        // All slices of one blob share an assignment.
        let first = clustering.assignments[0];
        assert!(clustering.assignments[..20].iter().all(|&a| a == first));
        let second = clustering.assignments[20];
        assert_ne!(first, second);
        assert!(clustering.assignments[20..].iter().all(|&a| a == second));
        // Weights reflect blob sizes.
        let w_first = clustering.weights[first];
        assert!((w_first - 20.0 / 30.0).abs() < 1e-9);
        // Representatives belong to their own cluster.
        assert_eq!(
            clustering.assignments[clustering.representatives[first]],
            first
        );
        assert_eq!(
            clustering.assignments[clustering.representatives[second]],
            second
        );
    }

    #[test]
    fn k_is_capped_by_slice_count() {
        let slices = vec![SliceFeatures::new(vec![1.0]), SliceFeatures::new(vec![2.0])];
        let clustering = cluster_slices(&slices, 10, 0).unwrap();
        assert!(clustering.centroids.len() <= 2);
        assert_eq!(clustering.assignments.len(), 2);
    }

    #[test]
    fn weights_sum_to_one() {
        let clustering = cluster_slices(&two_blob_slices(), 3, 1).unwrap();
        let total: f64 = clustering.weights.iter().sum();
        assert!((total - 1.0).abs() < 1e-9);
    }

    #[test]
    fn errors_on_bad_input() {
        assert!(cluster_slices(&[], 2, 0).is_err());
        assert!(cluster_slices(&[SliceFeatures::new(vec![1.0])], 0, 0).is_err());
        let mixed = vec![
            SliceFeatures::new(vec![1.0]),
            SliceFeatures::new(vec![1.0, 2.0]),
        ];
        assert!(cluster_slices(&mixed, 2, 0).is_err());
    }

    #[test]
    fn deterministic_given_seed() {
        let slices = two_blob_slices();
        let a = cluster_slices(&slices, 2, 5).unwrap();
        let b = cluster_slices(&slices, 2, 5).unwrap();
        assert_eq!(a, b);
    }
}
