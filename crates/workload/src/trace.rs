//! Phase traces: the sequence of phases a benchmark visits over its full
//! execution, as produced by the SimPoint-style analysis.

use qosrm_types::{PhaseId, QosrmError};
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use serde::{Deserialize, Serialize};

/// The phase trace of one benchmark: for every execution interval (slice) of
/// the full program, the phase it belongs to.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PhaseTrace {
    sequence: Vec<PhaseId>,
    num_phases: usize,
}

impl PhaseTrace {
    /// Creates a trace from an explicit sequence.
    pub fn new(sequence: Vec<PhaseId>, num_phases: usize) -> Result<Self, QosrmError> {
        if sequence.is_empty() {
            return Err(QosrmError::InvalidWorkload("empty phase trace".into()));
        }
        if num_phases == 0 {
            return Err(QosrmError::InvalidWorkload("no phases".into()));
        }
        if sequence.iter().any(|p| p.index() >= num_phases) {
            return Err(QosrmError::InvalidWorkload(
                "phase trace references an unknown phase".into(),
            ));
        }
        Ok(PhaseTrace {
            sequence,
            num_phases,
        })
    }

    /// Generates a structured trace of `length` intervals over `weights.len()`
    /// phases such that each phase's share of the intervals approximates its
    /// weight. Programs visit phases in runs (a phase persists for several
    /// intervals before switching), which is what makes interval-based
    /// resource management worthwhile; `mean_run_length` controls the typical
    /// run length.
    pub fn generate(
        weights: &[f64],
        length: usize,
        mean_run_length: usize,
        seed: u64,
    ) -> Result<Self, QosrmError> {
        if weights.is_empty() || weights.iter().any(|&w| w < 0.0) {
            return Err(QosrmError::InvalidWorkload(
                "phase weights must be non-negative and non-empty".into(),
            ));
        }
        let total: f64 = weights.iter().sum();
        if total <= 0.0 {
            return Err(QosrmError::InvalidWorkload(
                "phase weights must sum to a positive value".into(),
            ));
        }
        if length == 0 {
            return Err(QosrmError::InvalidWorkload(
                "trace length must be > 0".into(),
            ));
        }
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let mean_run = mean_run_length.max(1);
        // Remaining budget of intervals per phase, proportional to weights.
        let mut budget: Vec<f64> = weights.iter().map(|w| w / total * length as f64).collect();
        let mut sequence = Vec::with_capacity(length);
        while sequence.len() < length {
            // Pick the phase with the largest remaining budget, with a random
            // tie-break so traces differ between benchmarks.
            let phase = budget
                .iter()
                .enumerate()
                .max_by(|a, b| {
                    (a.1 + rng.gen_range(0.0..0.25))
                        .partial_cmp(&(b.1 + rng.gen_range(0.0..0.25)))
                        .unwrap()
                })
                .map(|(i, _)| i)
                .unwrap_or(0);
            let run = rng.gen_range(1..=2 * mean_run).min(length - sequence.len());
            for _ in 0..run {
                sequence.push(PhaseId(phase));
            }
            budget[phase] -= run as f64;
        }
        PhaseTrace::new(sequence, weights.len())
    }

    /// The phase sequence.
    pub fn sequence(&self) -> &[PhaseId] {
        &self.sequence
    }

    /// Number of intervals in the trace (one full execution of the program).
    pub fn len(&self) -> usize {
        self.sequence.len()
    }

    /// Whether the trace is empty (never true for a validated trace).
    pub fn is_empty(&self) -> bool {
        self.sequence.is_empty()
    }

    /// Number of distinct phases the trace may reference.
    pub fn num_phases(&self) -> usize {
        self.num_phases
    }

    /// The phase of interval `interval`, wrapping around at the end of the
    /// trace (the co-phase simulator restarts finished applications so that
    /// contention persists until every application completes its first
    /// round).
    pub fn phase_at(&self, interval: usize) -> PhaseId {
        self.sequence[interval % self.sequence.len()]
    }

    /// Empirical weight of each phase in the trace.
    pub fn weights(&self) -> Vec<f64> {
        let mut counts = vec![0usize; self.num_phases];
        for p in &self.sequence {
            counts[p.index()] += 1;
        }
        counts
            .into_iter()
            .map(|c| c as f64 / self.sequence.len() as f64)
            .collect()
    }

    /// Number of phase switches in the trace.
    pub fn num_switches(&self) -> usize {
        self.sequence.windows(2).filter(|w| w[0] != w[1]).count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generated_trace_matches_weights() {
        let weights = vec![0.5, 0.3, 0.2];
        let trace = PhaseTrace::generate(&weights, 200, 8, 1).unwrap();
        assert_eq!(trace.len(), 200);
        let observed = trace.weights();
        for (w, o) in weights.iter().zip(observed.iter()) {
            assert!((w - o).abs() < 0.08, "weight {w} observed {o}");
        }
    }

    #[test]
    fn traces_have_runs_not_noise() {
        let trace = PhaseTrace::generate(&[0.5, 0.5], 300, 10, 3).unwrap();
        // With mean run length 10, far fewer than 150 switches are expected.
        assert!(
            trace.num_switches() < 80,
            "switches={}",
            trace.num_switches()
        );
        assert!(trace.num_switches() > 2);
    }

    #[test]
    fn phase_at_wraps_around() {
        let trace = PhaseTrace::new(vec![PhaseId(0), PhaseId(1), PhaseId(1)], 2).unwrap();
        assert_eq!(trace.phase_at(0), PhaseId(0));
        assert_eq!(trace.phase_at(2), PhaseId(1));
        assert_eq!(trace.phase_at(3), PhaseId(0));
        assert_eq!(trace.phase_at(7), PhaseId(1));
    }

    #[test]
    fn generation_is_deterministic() {
        let a = PhaseTrace::generate(&[0.6, 0.4], 100, 5, 9).unwrap();
        let b = PhaseTrace::generate(&[0.6, 0.4], 100, 5, 9).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn validation_rejects_bad_traces() {
        assert!(PhaseTrace::new(vec![], 1).is_err());
        assert!(PhaseTrace::new(vec![PhaseId(3)], 2).is_err());
        assert!(PhaseTrace::new(vec![PhaseId(0)], 0).is_err());
        assert!(PhaseTrace::generate(&[], 10, 5, 0).is_err());
        assert!(PhaseTrace::generate(&[1.0], 0, 5, 0).is_err());
        assert!(PhaseTrace::generate(&[-1.0, 2.0], 10, 5, 0).is_err());
        assert!(PhaseTrace::generate(&[0.0, 0.0], 10, 5, 0).is_err());
    }

    #[test]
    fn single_phase_trace() {
        let trace = PhaseTrace::generate(&[1.0], 50, 10, 2).unwrap();
        assert_eq!(trace.len(), 50);
        assert_eq!(trace.num_switches(), 0);
        assert!((trace.weights()[0] - 1.0).abs() < 1e-12);
    }
}
