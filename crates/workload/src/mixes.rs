//! Multi-programmed workload mixes used by the experiments.
//!
//! Paper I builds several 4-core and 8-core workloads from combinations of
//! its application categories (memory intensity × cache sensitivity).
//! Paper II builds workloads per *scenario*: groups of the sixteen pairwise
//! category mixes for which the three resource managers (RM1 partitioning
//! only, RM2 = Paper I, RM3 = Paper II) behave qualitatively differently.

use crate::category::Paper2Category;
use qosrm_types::QosrmError;
use serde::{Deserialize, Serialize};

/// A named multi-programmed workload: one benchmark per core.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WorkloadMix {
    /// Workload name as it appears in result tables (e.g. `"W4-03"`).
    pub name: String,
    /// Benchmark name per core (length = number of cores).
    pub benchmarks: Vec<String>,
}

impl WorkloadMix {
    /// Creates a mix.
    pub fn new(name: impl Into<String>, benchmarks: Vec<&str>) -> Self {
        WorkloadMix {
            name: name.into(),
            benchmarks: benchmarks.into_iter().map(str::to_string).collect(),
        }
    }

    /// Number of cores (= applications) of the mix.
    pub fn num_cores(&self) -> usize {
        self.benchmarks.len()
    }

    /// Validates that every referenced benchmark exists in the suite.
    pub fn validate(&self) -> Result<(), QosrmError> {
        if self.benchmarks.is_empty() {
            return Err(QosrmError::InvalidWorkload(format!(
                "workload {} is empty",
                self.name
            )));
        }
        for b in &self.benchmarks {
            if crate::suite::benchmark(b).is_none() {
                return Err(QosrmError::InvalidWorkload(format!(
                    "workload {} references unknown benchmark {b}",
                    self.name
                )));
            }
        }
        Ok(())
    }
}

/// Validates that a mix list can serve as a sweep axis: every mix valid,
/// every mix the same width, and names unique (scenario results are keyed by
/// mix name, so duplicates would make sweep cells ambiguous).
pub fn validate_mix_axis(mixes: &[WorkloadMix]) -> Result<(), QosrmError> {
    let mut seen = std::collections::HashSet::new();
    for mix in mixes {
        mix.validate()?;
        if mix.num_cores() != mixes[0].num_cores() {
            return Err(QosrmError::InvalidWorkload(format!(
                "workload {} has {} applications but {} has {}",
                mix.name,
                mix.num_cores(),
                mixes[0].name,
                mixes[0].num_cores()
            )));
        }
        if !seen.insert(mix.name.as_str()) {
            return Err(QosrmError::InvalidWorkload(format!(
                "duplicate workload name {} in sweep axis",
                mix.name
            )));
        }
    }
    Ok(())
}

/// Category pools used to compose the mixes (shared with the seeded
/// synthesizer in [`crate::synth`]).
pub(crate) mod pools {
    /// Memory-intensive, cache-sensitive, dependent misses (CS-PI).
    pub const CS_PI: [&str; 4] = ["mcf_like", "omnetpp_like", "astar_like", "xalancbmk_like"];
    /// Memory-intensive, cache-sensitive, bursty misses (CS-PS).
    pub const CS_PS: [&str; 4] = [
        "soplex_like",
        "sphinx3_like",
        "gems_fdtd_like",
        "cactusadm_like",
    ];
    /// Memory-intensive, cache-insensitive, streaming (CI-PS).
    pub const CI_PS: [&str; 6] = [
        "libquantum_like",
        "lbm_like",
        "milc_like",
        "leslie3d_like",
        "bwaves_like",
        "zeusmp_like",
    ];
    /// Cache-insensitive, parallelism-insensitive (huge dependent working
    /// sets or compute bound).
    pub const CI_PI: [&str; 6] = [
        "canneal_like",
        "randacc_like",
        "gobmk_like",
        "sjeng_like",
        "perlbench_like",
        "gromacs_like",
    ];
    /// Compute-intensive (low MPKI).
    pub const COMPUTE: [&str; 6] = [
        "gamess_like",
        "povray_like",
        "namd_like",
        "calculix_like",
        "hmmer_like",
        "h264ref_like",
    ];
    /// Mixed-behaviour benchmarks.
    pub const MIXED: [&str; 2] = ["gcc_like", "bzip2_like"];
}

fn pick(pool: &[&'static str], idx: usize) -> &'static str {
    pool[idx % pool.len()]
}

/// The Paper I workloads for `num_cores` cores (4 or 8).
///
/// Twenty 4-core workloads (80 applications) or ten 8-core workloads
/// (80 applications) are produced, mirroring the paper's totals. The mixes
/// rotate through the category pools so that most workloads contain at least
/// one cache-sensitive application (where coordinated management pays off)
/// while a few contain none (where the paper reports no gain or a slight
/// loss).
pub fn paper1_workloads(num_cores: usize) -> Vec<WorkloadMix> {
    use pools::*;
    assert!(
        num_cores == 4 || num_cores == 8,
        "Paper I evaluates 4- and 8-core systems"
    );
    let num_workloads = 80 / num_cores;
    let mut mixes = Vec::with_capacity(num_workloads);
    for i in 0..num_workloads {
        // Composition pattern cycles through five templates.
        let template = i % 5;
        let mut benchmarks: Vec<&str> = Vec::with_capacity(num_cores);
        for slot in 0..num_cores {
            // Stride the pool index so consecutive workloads of the same
            // template draw different members (pool sizes are 4 and 6, both
            // coprime with 7).
            let k = i * 7 + slot * 3 + template;
            let name = match (template, slot % 4) {
                // All cache-sensitive.
                (0, _) => {
                    if slot % 2 == 0 {
                        pick(&CS_PI, k)
                    } else {
                        pick(&CS_PS, k)
                    }
                }
                // Cache-sensitive + streaming.
                (1, 0) | (1, 1) => pick(&CS_PS, k),
                (1, _) => pick(&CI_PS, k),
                // Cache-sensitive + compute.
                (2, 0) => pick(&CS_PI, k),
                (2, 1) => pick(&CS_PS, k),
                (2, _) => pick(&COMPUTE, k),
                // One sensitive + insensitive background.
                (3, 0) => pick(&CS_PI, k),
                (3, 1) => pick(&CI_PS, k),
                (3, 2) => pick(&CI_PI, k),
                (3, _) => pick(&MIXED, k),
                // All cache-insensitive (the paper's "no benefit" cases).
                (4, 0) | (4, 1) => pick(&CI_PS, k),
                (4, 2) => pick(&CI_PI, k),
                (4, _) => pick(&COMPUTE, k),
                _ => unreachable!(),
            };
            benchmarks.push(name);
        }
        mixes.push(WorkloadMix::new(format!("W{num_cores}-{i:02}"), benchmarks));
    }
    mixes
}

/// Two representative benchmarks of each Paper II category.
pub fn paper2_category_representatives(category: Paper2Category) -> [&'static str; 2] {
    match (category.cache_sensitive, category.parallelism_sensitive) {
        (true, true) => ["soplex_like", "gems_fdtd_like"],
        (true, false) => ["mcf_like", "omnetpp_like"],
        (false, true) => ["libquantum_like", "lbm_like"],
        (false, false) => ["canneal_like", "sjeng_like"],
    }
}

/// The sixteen pairwise category mixes of the Paper II trade-off analysis:
/// for every ordered pair of categories `(A, B)`, a 4-core workload with two
/// applications of category A and two of category B.
pub fn paper2_sixteen_mixes() -> Vec<(Paper2Category, Paper2Category, WorkloadMix)> {
    let mut mixes = Vec::with_capacity(16);
    for a in Paper2Category::all() {
        for b in Paper2Category::all() {
            let ra = paper2_category_representatives(a);
            let rb = paper2_category_representatives(b);
            let mix = WorkloadMix::new(
                format!("M-{}-{}", a.label(), b.label()),
                vec![ra[0], ra[1], rb[0], rb[1]],
            );
            mixes.push((a, b, mix));
        }
    }
    mixes
}

/// The four Paper II evaluation scenarios.
///
/// * **Scenario 1** — RM3 substantially improves on RM2: workloads pairing
///   parallelism-sensitive memory applications with cache-sensitive ones.
/// * **Scenario 2** — RM2 and RM3 are comparable: cache-sensitive,
///   parallelism-insensitive applications with compute-bound background.
/// * **Scenario 3** — only RM3 is effective: cache-insensitive but
///   parallelism-sensitive (streaming) workloads.
/// * **Scenario 4** — neither saves energy: compute-bound, insensitive
///   workloads.
pub fn paper2_scenario_workloads(num_cores: usize) -> Vec<(usize, WorkloadMix)> {
    assert!(
        num_cores == 4 || num_cores == 8,
        "Paper II evaluates 4- and 8-core systems"
    );
    let four_core: Vec<(usize, WorkloadMix)> = vec![
        // Scenario 1: CS-PS + CS-PI / CI-PS mixes.
        (
            1,
            WorkloadMix::new(
                "S1-a",
                vec![
                    "soplex_like",
                    "gems_fdtd_like",
                    "mcf_like",
                    "libquantum_like",
                ],
            ),
        ),
        (
            1,
            WorkloadMix::new(
                "S1-b",
                vec!["sphinx3_like", "soplex_like", "lbm_like", "omnetpp_like"],
            ),
        ),
        (
            1,
            WorkloadMix::new(
                "S1-c",
                vec![
                    "gems_fdtd_like",
                    "cactusadm_like",
                    "bwaves_like",
                    "mcf_like",
                ],
            ),
        ),
        // Scenario 2: CS-PI + compute.
        (
            2,
            WorkloadMix::new(
                "S2-a",
                vec!["mcf_like", "omnetpp_like", "gamess_like", "povray_like"],
            ),
        ),
        (
            2,
            WorkloadMix::new(
                "S2-b",
                vec!["astar_like", "xalancbmk_like", "namd_like", "hmmer_like"],
            ),
        ),
        (
            2,
            WorkloadMix::new(
                "S2-c",
                vec!["mcf_like", "astar_like", "calculix_like", "gobmk_like"],
            ),
        ),
        // Scenario 3: streaming / parallelism-sensitive, cache-insensitive.
        (
            3,
            WorkloadMix::new(
                "S3-a",
                vec!["libquantum_like", "lbm_like", "milc_like", "leslie3d_like"],
            ),
        ),
        (
            3,
            WorkloadMix::new(
                "S3-b",
                vec!["bwaves_like", "zeusmp_like", "libquantum_like", "milc_like"],
            ),
        ),
        (
            3,
            WorkloadMix::new(
                "S3-c",
                vec!["lbm_like", "leslie3d_like", "zeusmp_like", "bwaves_like"],
            ),
        ),
        // Scenario 4: compute-bound / insensitive.
        (
            4,
            WorkloadMix::new(
                "S4-a",
                vec!["gamess_like", "povray_like", "gobmk_like", "sjeng_like"],
            ),
        ),
        (
            4,
            WorkloadMix::new(
                "S4-b",
                vec!["namd_like", "hmmer_like", "perlbench_like", "h264ref_like"],
            ),
        ),
        (
            4,
            WorkloadMix::new(
                "S4-c",
                vec!["calculix_like", "gromacs_like", "gamess_like", "sjeng_like"],
            ),
        ),
    ];
    if num_cores == 4 {
        return four_core;
    }
    // 8-core variants: concatenate two 4-core compositions of the same
    // scenario.
    let mut eight_core = Vec::new();
    for scenario in 1..=4usize {
        let members: Vec<&WorkloadMix> = four_core
            .iter()
            .filter(|(s, _)| *s == scenario)
            .map(|(_, m)| m)
            .collect();
        for (j, pair) in members.windows(2).enumerate() {
            let mut benchmarks = pair[0].benchmarks.clone();
            benchmarks.extend(pair[1].benchmarks.clone());
            eight_core.push((
                scenario,
                WorkloadMix {
                    name: format!("S{scenario}-8c-{j}"),
                    benchmarks,
                },
            ));
        }
    }
    eight_core
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper1_workload_counts_match_the_paper() {
        let w4 = paper1_workloads(4);
        let w8 = paper1_workloads(8);
        assert_eq!(w4.len(), 20);
        assert_eq!(w8.len(), 10);
        assert_eq!(w4.iter().map(|m| m.num_cores()).sum::<usize>(), 80);
        assert_eq!(w8.iter().map(|m| m.num_cores()).sum::<usize>(), 80);
    }

    #[test]
    fn all_mixes_reference_existing_benchmarks() {
        for mix in paper1_workloads(4).iter().chain(paper1_workloads(8).iter()) {
            mix.validate()
                .unwrap_or_else(|e| panic!("{}: {e}", mix.name));
        }
        for (_, mix) in paper2_scenario_workloads(4)
            .iter()
            .chain(paper2_scenario_workloads(8).iter())
        {
            mix.validate()
                .unwrap_or_else(|e| panic!("{}: {e}", mix.name));
        }
        for (_, _, mix) in paper2_sixteen_mixes() {
            mix.validate()
                .unwrap_or_else(|e| panic!("{}: {e}", mix.name));
        }
    }

    #[test]
    fn sixteen_mixes_cover_all_pairs() {
        let mixes = paper2_sixteen_mixes();
        assert_eq!(mixes.len(), 16);
        let unique: std::collections::HashSet<String> =
            mixes.iter().map(|(_, _, m)| m.name.clone()).collect();
        assert_eq!(unique.len(), 16);
    }

    #[test]
    fn scenarios_have_multiple_workloads() {
        let scenarios = paper2_scenario_workloads(4);
        for s in 1..=4usize {
            let count = scenarios.iter().filter(|(sc, _)| *sc == s).count();
            assert!(count >= 3, "scenario {s} has {count} workloads");
        }
        let scenarios8 = paper2_scenario_workloads(8);
        for (_, m) in &scenarios8 {
            assert_eq!(m.num_cores(), 8);
        }
    }

    #[test]
    fn some_paper1_workloads_are_fully_insensitive() {
        // Template 4 workloads contain no cache-sensitive application; the
        // paper reports these as the cases with no energy benefit.
        let w4 = paper1_workloads(4);
        let insensitive: Vec<&WorkloadMix> = w4
            .iter()
            .filter(|m| {
                m.benchmarks.iter().all(|b| {
                    pools::CI_PS.contains(&b.as_str())
                        || pools::CI_PI.contains(&b.as_str())
                        || pools::COMPUTE.contains(&b.as_str())
                })
            })
            .collect();
        assert!(insensitive.len() >= 3);
    }

    #[test]
    fn validation_catches_unknown_benchmarks() {
        let bad = WorkloadMix::new("bad", vec!["mcf_like", "unknown_like"]);
        assert!(bad.validate().is_err());
        let empty = WorkloadMix {
            name: "e".into(),
            benchmarks: vec![],
        };
        assert!(empty.validate().is_err());
    }
}
