//! Application categorization.
//!
//! Paper I classifies applications along two axes — **memory intensity**
//! (MPKI at the baseline allocation above a threshold) and **cache
//! sensitivity** (variation of MPKI across allocations around the baseline
//! above a threshold). Paper II replaces memory intensity with **parallelism
//! sensitivity** (variation of MLP across core sizes above a threshold).
//! Workload mixes for the experiments are drawn from these categories.

use core_model::PhaseCharacterization;
use qosrm_types::CoreSizeIdx;
use serde::{Deserialize, Serialize};

/// Thresholds of the categorization.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CategoryThresholds {
    /// MPKI at the baseline allocation above which an application is memory
    /// intensive.
    pub memory_intensity_mpki: f64,
    /// Absolute MPKI variation (from half to double the baseline ways) above
    /// which an application is cache sensitive.
    pub cache_sensitivity_mpki: f64,
    /// Relative MLP variation (smallest to largest core) above which an
    /// application is parallelism sensitive.
    pub parallelism_sensitivity: f64,
}

impl Default for CategoryThresholds {
    fn default() -> Self {
        CategoryThresholds {
            memory_intensity_mpki: 1.0,
            cache_sensitivity_mpki: 1.0,
            parallelism_sensitivity: 0.3,
        }
    }
}

/// Paper I category of an application.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Paper1Category {
    /// MPKI at the baseline allocation exceeds the memory-intensity threshold.
    pub memory_intensive: bool,
    /// MPKI varies strongly with the allocation around the baseline.
    pub cache_sensitive: bool,
}

impl Paper1Category {
    /// Short label, e.g. `"MI-CS"` (memory intensive, cache sensitive).
    pub fn label(&self) -> &'static str {
        match (self.memory_intensive, self.cache_sensitive) {
            (true, true) => "MI-CS",
            (true, false) => "MI-CI",
            (false, true) => "CI-CS",
            (false, false) => "CI-CI",
        }
    }
}

/// Paper II category of an application.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Paper2Category {
    /// MPKI varies strongly with the allocation around the baseline.
    pub cache_sensitive: bool,
    /// MLP varies strongly with the core size.
    pub parallelism_sensitive: bool,
}

impl Paper2Category {
    /// Short label, e.g. `"CS-PS"` (cache sensitive, parallelism sensitive).
    pub fn label(&self) -> &'static str {
        match (self.cache_sensitive, self.parallelism_sensitive) {
            (true, true) => "CS-PS",
            (true, false) => "CS-PI",
            (false, true) => "CI-PS",
            (false, false) => "CI-PI",
        }
    }

    /// All four categories in a fixed order (used to enumerate the sixteen
    /// pairwise mixes of the Paper II analysis).
    pub fn all() -> [Paper2Category; 4] {
        [
            Paper2Category {
                cache_sensitive: true,
                parallelism_sensitive: true,
            },
            Paper2Category {
                cache_sensitive: true,
                parallelism_sensitive: false,
            },
            Paper2Category {
                cache_sensitive: false,
                parallelism_sensitive: true,
            },
            Paper2Category {
                cache_sensitive: false,
                parallelism_sensitive: false,
            },
        ]
    }
}

/// Combined categorization of an application under both papers' criteria.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct AppCategory {
    /// Paper I axes.
    pub paper1: Paper1Category,
    /// Paper II axes.
    pub paper2: Paper2Category,
}

/// Classifies an application from its (weighted) phase characterizations.
///
/// `phases` pairs each phase's characterization with its weight in the phase
/// trace; `baseline_ways` is the equal-share LLC allocation of the platform.
pub fn classify(
    phases: &[(PhaseCharacterization, f64)],
    baseline_ways: usize,
    thresholds: &CategoryThresholds,
) -> AppCategory {
    let total_weight: f64 = phases.iter().map(|(_, w)| w).sum();
    let norm = if total_weight > 0.0 {
        total_weight
    } else {
        1.0
    };

    let max_ways = phases
        .first()
        .map(|(p, _)| p.max_ways())
        .unwrap_or(baseline_ways);
    let lo_ways = (baseline_ways / 2).max(1);
    let hi_ways = (baseline_ways * 2).min(max_ways);

    let mut mpki_baseline = 0.0;
    let mut mpki_variation = 0.0;
    let mut mlp_variation = 0.0;
    for (phase, weight) in phases {
        let w = weight / norm;
        mpki_baseline += w * phase.mpki_at(baseline_ways.min(phase.max_ways()));
        let lo = phase.mpki_at(lo_ways.min(phase.max_ways()));
        let hi = phase.mpki_at(hi_ways.min(phase.max_ways()));
        mpki_variation += w * (lo - hi).max(0.0);

        let sizes = phase.num_core_sizes();
        if sizes >= 2 {
            let small = phase.mlp_at(CoreSizeIdx(0), baseline_ways.min(phase.max_ways()));
            let large = phase.mlp_at(CoreSizeIdx(sizes - 1), baseline_ways.min(phase.max_ways()));
            if small > 0.0 {
                mlp_variation += w * ((large - small) / small).max(0.0);
            }
        }
    }

    let memory_intensive = mpki_baseline > thresholds.memory_intensity_mpki;
    let cache_sensitive = mpki_variation > thresholds.cache_sensitivity_mpki;
    // An application with almost no misses cannot meaningfully be
    // parallelism sensitive: the MLP of a handful of misses is irrelevant.
    let parallelism_sensitive =
        memory_intensive && mlp_variation > thresholds.parallelism_sensitivity;

    AppCategory {
        paper1: Paper1Category {
            memory_intensive,
            cache_sensitive,
        },
        paper2: Paper2Category {
            cache_sensitive,
            parallelism_sensitive,
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::characterize::{CharacterizationConfig, PhaseCharacterizer};
    use crate::suite::benchmark;
    use qosrm_types::PlatformConfig;

    fn characterize_benchmark(name: &str) -> AppCategory {
        let platform = PlatformConfig::paper2(4);
        let characterizer = PhaseCharacterizer::new(
            &platform,
            CharacterizationConfig::quick_for_tests(&platform),
        );
        let b = benchmark(name).unwrap();
        let trace = b.phase_trace();
        let weights = trace.weights();
        let phases: Vec<(PhaseCharacterization, f64)> = b
            .phases
            .iter()
            .enumerate()
            .map(|(i, spec)| {
                (
                    characterizer.characterize(spec, b.phase_seed(i)),
                    weights[i],
                )
            })
            .collect();
        classify(
            &phases,
            platform.baseline_ways_per_core(),
            &CategoryThresholds::default(),
        )
    }

    #[test]
    fn mcf_like_is_memory_intensive_cache_sensitive_low_mlp() {
        let cat = characterize_benchmark("mcf_like");
        assert!(cat.paper1.memory_intensive);
        assert!(cat.paper1.cache_sensitive);
        assert!(!cat.paper2.parallelism_sensitive);
        assert_eq!(cat.paper1.label(), "MI-CS");
        assert_eq!(cat.paper2.label(), "CS-PI");
    }

    #[test]
    fn libquantum_like_is_streaming_parallelism_sensitive() {
        let cat = characterize_benchmark("libquantum_like");
        assert!(cat.paper1.memory_intensive);
        assert!(!cat.paper1.cache_sensitive);
        assert!(cat.paper2.parallelism_sensitive);
        assert_eq!(cat.paper2.label(), "CI-PS");
    }

    #[test]
    fn gamess_like_is_compute_intensive() {
        let cat = characterize_benchmark("gamess_like");
        assert!(!cat.paper1.memory_intensive);
        assert!(!cat.paper1.cache_sensitive);
        assert_eq!(cat.paper1.label(), "CI-CI");
        assert_eq!(cat.paper2.label(), "CI-PI");
    }

    #[test]
    fn soplex_like_is_cache_and_parallelism_sensitive() {
        let cat = characterize_benchmark("soplex_like");
        assert!(cat.paper1.cache_sensitive);
        assert!(cat.paper2.parallelism_sensitive);
        assert_eq!(cat.paper2.label(), "CS-PS");
    }

    #[test]
    fn labels_cover_all_cases() {
        assert_eq!(
            Paper1Category {
                memory_intensive: true,
                cache_sensitive: false
            }
            .label(),
            "MI-CI"
        );
        assert_eq!(
            Paper1Category {
                memory_intensive: false,
                cache_sensitive: true
            }
            .label(),
            "CI-CS"
        );
        assert_eq!(Paper2Category::all().len(), 4);
        let labels: Vec<_> = Paper2Category::all().iter().map(|c| c.label()).collect();
        assert_eq!(labels, vec!["CS-PS", "CS-PI", "CI-PS", "CI-PI"]);
    }

    #[test]
    fn empty_phase_list_is_insensitive() {
        let cat = classify(&[], 4, &CategoryThresholds::default());
        assert!(!cat.paper1.memory_intensive);
        assert!(!cat.paper1.cache_sensitive);
        assert!(!cat.paper2.parallelism_sensitive);
    }
}
