//! The synthetic benchmark suite.
//!
//! Twenty-eight named application profiles stand in for the SPEC CPU2006
//! suite. The names carry a `_like` suffix to make clear they are synthetic
//! profiles *modelled on* the published characteristics of the corresponding
//! benchmark (memory intensity, cache sensitivity, miss burstiness, ILP), not
//! the benchmarks themselves. Together they span every category the paper's
//! workload construction draws from:
//!
//! * memory-intensive & cache-sensitive, with either dependent (low-MLP) or
//!   bursty (high-MLP) misses;
//! * memory-intensive & cache-insensitive (streaming or huge working sets);
//! * compute-intensive, with either high or low ILP sensitivity.

use crate::phase::{PhaseSpec, Region};
use crate::trace::PhaseTrace;
use core_model::IlpParams;
use qosrm_types::QosrmError;
use serde::{Deserialize, Serialize};

/// Cache lines per LLC way of the reference platform (4096 sets × 1 line).
pub const LINES_PER_WAY: u64 = 4096;

/// A synthetic application profile: its phases, their weights and the shape
/// of its phase trace.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BenchmarkProfile {
    /// Benchmark name (e.g. `"mcf_like"`).
    pub name: String,
    /// Phase specifications.
    pub phases: Vec<PhaseSpec>,
    /// Relative weight (fraction of execution) of every phase.
    pub phase_weights: Vec<f64>,
    /// Number of 100 M-instruction intervals in one full execution.
    pub trace_intervals: usize,
    /// Typical number of consecutive intervals spent in one phase.
    pub mean_run_length: usize,
    /// Seed for trace and stream generation (derived from the name).
    pub seed: u64,
}

impl BenchmarkProfile {
    /// Validates the profile.
    pub fn validate(&self) -> Result<(), QosrmError> {
        if self.phases.is_empty() || self.phases.len() != self.phase_weights.len() {
            return Err(QosrmError::InvalidWorkload(format!(
                "{}: phases and weights must be non-empty and aligned",
                self.name
            )));
        }
        if self.trace_intervals == 0 {
            return Err(QosrmError::InvalidWorkload(format!(
                "{}: trace must cover at least one interval",
                self.name
            )));
        }
        for p in &self.phases {
            p.validate()?;
        }
        Ok(())
    }

    /// Number of phases.
    pub fn num_phases(&self) -> usize {
        self.phases.len()
    }

    /// Generates the benchmark's phase trace (deterministic).
    pub fn phase_trace(&self) -> PhaseTrace {
        PhaseTrace::generate(
            &self.phase_weights,
            self.trace_intervals,
            self.mean_run_length,
            self.seed,
        )
        .expect("benchmark profiles generate valid traces")
    }

    /// Deterministic per-phase stream seed.
    pub fn phase_seed(&self, phase_idx: usize) -> u64 {
        self.seed
            .wrapping_mul(0x9E37_79B9_7F4A_7C15)
            .wrapping_add(phase_idx as u64)
    }
}

fn name_seed(name: &str) -> u64 {
    // FNV-1a, good enough for deterministic per-benchmark seeds.
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for b in name.bytes() {
        hash ^= b as u64;
        hash = hash.wrapping_mul(0x1000_0000_01b3);
    }
    hash
}

fn ways(n: u64) -> u64 {
    n * LINES_PER_WAY
}

/// Archetype constructors. Each returns (phases, weights).
mod archetype {
    use super::*;

    /// Memory-intensive, cache-sensitive, dependent misses (low MLP):
    /// pointer-chasing over a working set of `ws_ways` ways.
    pub fn dependent_cache_sensitive(
        name: &str,
        apki: f64,
        ws_ways: u64,
    ) -> (Vec<PhaseSpec>, Vec<f64>) {
        let main =
            PhaseSpec::cache_sensitive_dependent(format!("{name}.main"), apki, ways(ws_ways));
        let mut small = PhaseSpec::cache_sensitive_dependent(
            format!("{name}.small_ws"),
            apki * 0.7,
            ways((ws_ways / 2).max(1)),
        );
        small.ilp = IlpParams::new(1.1, 0.2);
        let compute = PhaseSpec::compute_bound(format!("{name}.compute"), 1.0, 0.2);
        (vec![main, small, compute], vec![0.6, 0.25, 0.15])
    }

    /// Memory-intensive, cache-sensitive, bursty misses (MLP-scalable).
    pub fn bursty_cache_sensitive(
        name: &str,
        apki: f64,
        ws_ways: u64,
    ) -> (Vec<PhaseSpec>, Vec<f64>) {
        let main = PhaseSpec::cache_sensitive_bursty(format!("{name}.main"), apki, ways(ws_ways));
        let mut stream = PhaseSpec::streaming(format!("{name}.stream"), apki * 1.2, 6);
        stream.ilp = IlpParams::new(0.9, 0.3);
        let compute = PhaseSpec::compute_bound(format!("{name}.compute"), 0.9, 0.3);
        (vec![main, stream, compute], vec![0.55, 0.25, 0.2])
    }

    /// Memory-intensive, cache-insensitive, bursty streaming (high MLP on a
    /// large core).
    pub fn streaming_scalable(name: &str, apki: f64, burst: usize) -> (Vec<PhaseSpec>, Vec<f64>) {
        let main = PhaseSpec::streaming(format!("{name}.stream"), apki, burst);
        let mut secondary = PhaseSpec::streaming(format!("{name}.stream2"), apki * 0.6, burst / 2);
        secondary.ilp = IlpParams::new(1.0, 0.25);
        let compute = PhaseSpec::compute_bound(format!("{name}.compute"), 0.8, 0.35);
        (vec![main, secondary, compute], vec![0.6, 0.25, 0.15])
    }

    /// Memory-intensive, cache-insensitive, dependent misses: random pointer
    /// chasing over a working set far larger than the LLC.
    pub fn huge_ws_dependent(name: &str, apki: f64) -> (Vec<PhaseSpec>, Vec<f64>) {
        let main = PhaseSpec {
            name: format!("{name}.main"),
            apki,
            regions: vec![Region {
                lines: ways(128),
                weight: 1.0,
            }],
            streaming_fraction: 0.05,
            burst_len: 1,
            intra_burst_gap: 25,
            dependent_fraction: 0.9,
            ilp: IlpParams::new(1.5, 0.2),
        };
        let mut calmer = main.clone();
        calmer.name = format!("{name}.calmer");
        calmer.apki = apki * 0.5;
        calmer.ilp = IlpParams::new(1.2, 0.3);
        (vec![main, calmer], vec![0.7, 0.3])
    }

    /// Compute-intensive with comparatively strong ILP sensitivity (wide
    /// floating-point kernels). Even for these codes, doubling the issue
    /// width buys well under 2x IPC, so the exponent stays moderate.
    pub fn compute_ilp_sensitive(name: &str, exec_cpi: f64) -> (Vec<PhaseSpec>, Vec<f64>) {
        let main = PhaseSpec::compute_bound(format!("{name}.main"), exec_cpi, 0.4);
        let mut memory = PhaseSpec::cache_sensitive_bursty(format!("{name}.memory"), 4.0, ways(2));
        memory.ilp = IlpParams::new(exec_cpi * 1.1, 0.35);
        (vec![main, memory], vec![0.8, 0.2])
    }

    /// Compute-intensive with weak ILP sensitivity (branchy integer codes).
    pub fn compute_ilp_insensitive(name: &str, exec_cpi: f64) -> (Vec<PhaseSpec>, Vec<f64>) {
        let main = PhaseSpec::compute_bound(format!("{name}.main"), exec_cpi, 0.1);
        let mut memory =
            PhaseSpec::cache_sensitive_dependent(format!("{name}.memory"), 3.0, ways(2));
        memory.ilp = IlpParams::new(exec_cpi * 1.05, 0.1);
        (vec![main, memory], vec![0.85, 0.15])
    }

    /// Mixed-behaviour benchmark alternating compute and cache-sensitive
    /// phases (gcc-like).
    pub fn mixed(name: &str, apki: f64, ws_ways: u64) -> (Vec<PhaseSpec>, Vec<f64>) {
        let compute = PhaseSpec::compute_bound(format!("{name}.compute"), 1.0, 0.3);
        let memory =
            PhaseSpec::cache_sensitive_bursty(format!("{name}.memory"), apki, ways(ws_ways));
        let stream = PhaseSpec::streaming(format!("{name}.stream"), apki * 0.8, 4);
        (vec![compute, memory, stream], vec![0.4, 0.4, 0.2])
    }
}

/// The benchmark table: name, archetype and primary parameters.
fn build(name: &str) -> Option<(Vec<PhaseSpec>, Vec<f64>, usize)> {
    use archetype::*;
    // (phases, weights, trace intervals)
    let spec = match name {
        // Memory-intensive, cache-sensitive, dependent (low MLP).
        "mcf_like" => (dependent_cache_sensitive(name, 28.0, 12), 90),
        "omnetpp_like" => (dependent_cache_sensitive(name, 14.0, 10), 70),
        "astar_like" => (dependent_cache_sensitive(name, 10.0, 8), 60),
        "xalancbmk_like" => (dependent_cache_sensitive(name, 12.0, 9), 70),
        // Memory-intensive, cache-sensitive, bursty (MLP-scalable).
        "soplex_like" => (bursty_cache_sensitive(name, 18.0, 10), 80),
        "sphinx3_like" => (bursty_cache_sensitive(name, 14.0, 8), 70),
        "gems_fdtd_like" => (bursty_cache_sensitive(name, 20.0, 12), 80),
        "cactusadm_like" => (bursty_cache_sensitive(name, 10.0, 6), 60),
        // Memory-intensive, cache-insensitive, streaming (MLP-scalable): the
        // burst lengths exceed the medium core's MSHR count, so only the
        // large configuration can expose the full memory-level parallelism.
        "libquantum_like" => (streaming_scalable(name, 26.0, 16), 80),
        "lbm_like" => (streaming_scalable(name, 30.0, 18), 80),
        "milc_like" => (streaming_scalable(name, 22.0, 14), 70),
        "leslie3d_like" => (streaming_scalable(name, 18.0, 12), 70),
        "bwaves_like" => (streaming_scalable(name, 24.0, 16), 80),
        "zeusmp_like" => (streaming_scalable(name, 12.0, 10), 60),
        // Memory-intensive, cache-insensitive, dependent (huge working set).
        "canneal_like" => (huge_ws_dependent(name, 18.0), 70),
        "randacc_like" => (huge_ws_dependent(name, 24.0), 70),
        // Compute-intensive, ILP-sensitive.
        "gamess_like" => (compute_ilp_sensitive(name, 0.55), 60),
        "povray_like" => (compute_ilp_sensitive(name, 0.6), 60),
        "namd_like" => (compute_ilp_sensitive(name, 0.5), 60),
        "calculix_like" => (compute_ilp_sensitive(name, 0.6), 60),
        "hmmer_like" => (compute_ilp_sensitive(name, 0.5), 60),
        "h264ref_like" => (compute_ilp_sensitive(name, 0.65), 60),
        // Compute-intensive, ILP-insensitive.
        "gobmk_like" => (compute_ilp_insensitive(name, 1.1), 60),
        "sjeng_like" => (compute_ilp_insensitive(name, 1.05), 60),
        "perlbench_like" => (compute_ilp_insensitive(name, 1.0), 60),
        "gromacs_like" => (compute_ilp_insensitive(name, 0.9), 60),
        // Mixed behaviour.
        "gcc_like" => (mixed(name, 12.0, 8), 80),
        "bzip2_like" => (mixed(name, 8.0, 5), 70),
        _ => return None,
    };
    let ((phases, weights), intervals) = spec;
    Some((phases, weights, intervals))
}

/// Names of every benchmark in the synthetic suite.
pub fn benchmark_names() -> Vec<&'static str> {
    vec![
        "mcf_like",
        "omnetpp_like",
        "astar_like",
        "xalancbmk_like",
        "soplex_like",
        "sphinx3_like",
        "gems_fdtd_like",
        "cactusadm_like",
        "libquantum_like",
        "lbm_like",
        "milc_like",
        "leslie3d_like",
        "bwaves_like",
        "zeusmp_like",
        "canneal_like",
        "randacc_like",
        "gamess_like",
        "povray_like",
        "namd_like",
        "calculix_like",
        "hmmer_like",
        "h264ref_like",
        "gobmk_like",
        "sjeng_like",
        "perlbench_like",
        "gromacs_like",
        "gcc_like",
        "bzip2_like",
    ]
}

/// Looks up a benchmark profile by name.
///
/// # Example
///
/// ```
/// use workload::{benchmark, benchmark_names};
///
/// // Every suite member resolves to a valid multi-phase profile.
/// let mcf = benchmark("mcf_like").expect("mcf_like is in the suite");
/// assert!(!mcf.phases.is_empty());
/// assert!(mcf.validate().is_ok());
/// assert!(benchmark_names().contains(&"mcf_like"));
/// assert!(benchmark("not_a_benchmark").is_none());
/// ```
pub fn benchmark(name: &str) -> Option<BenchmarkProfile> {
    let (phases, phase_weights, trace_intervals) = build(name)?;
    Some(BenchmarkProfile {
        name: name.to_string(),
        phases,
        phase_weights,
        trace_intervals,
        mean_run_length: 8,
        seed: name_seed(name),
    })
}

/// The full synthetic suite.
pub fn full_suite() -> Vec<BenchmarkProfile> {
    benchmark_names()
        .into_iter()
        .map(|n| benchmark(n).expect("registered benchmark"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_benchmarks_are_valid() {
        let suite = full_suite();
        assert_eq!(suite.len(), 28);
        for b in &suite {
            b.validate().unwrap_or_else(|e| panic!("{}: {e}", b.name));
            assert!(b.num_phases() >= 2, "{} needs phase behaviour", b.name);
            let trace = b.phase_trace();
            assert_eq!(trace.len(), b.trace_intervals);
            assert_eq!(trace.num_phases(), b.num_phases());
        }
    }

    #[test]
    fn lookup_by_name() {
        assert!(benchmark("mcf_like").is_some());
        assert!(benchmark("not_a_benchmark").is_none());
        let names = benchmark_names();
        assert_eq!(names.len(), 28);
        assert!(names.contains(&"libquantum_like"));
    }

    #[test]
    fn seeds_differ_between_benchmarks() {
        let a = benchmark("mcf_like").unwrap();
        let b = benchmark("lbm_like").unwrap();
        assert_ne!(a.seed, b.seed);
        assert_ne!(a.phase_seed(0), a.phase_seed(1));
    }

    #[test]
    fn profiles_are_deterministic() {
        let a = benchmark("soplex_like").unwrap();
        let b = benchmark("soplex_like").unwrap();
        assert_eq!(a, b);
        assert_eq!(a.phase_trace(), b.phase_trace());
    }

    #[test]
    fn archetype_distribution_covers_categories() {
        // At least four benchmarks of each coarse archetype.
        let suite = full_suite();
        let dependent_cs = suite
            .iter()
            .filter(|b| b.phases[0].dependent_fraction > 0.5 && b.phases[0].apki > 5.0)
            .count();
        let streaming = suite
            .iter()
            .filter(|b| b.phases[0].streaming_fraction > 0.5)
            .count();
        let compute = suite.iter().filter(|b| b.phases[0].apki <= 2.0).count();
        assert!(
            dependent_cs >= 4,
            "dependent cache-sensitive: {dependent_cs}"
        );
        assert!(streaming >= 4, "streaming: {streaming}");
        assert!(compute >= 6, "compute-bound: {compute}");
    }
}
