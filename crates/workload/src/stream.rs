//! Deterministic synthetic reference-stream generation.

use crate::phase::PhaseSpec;
use cache_model::{Access, AccessTrace};
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

/// Address-space stride between working-set regions, in cache lines, so that
/// regions of the same phase never alias.
const REGION_STRIDE: u64 = 1 << 28;
/// Base of the streaming (never reused) address range.
const STREAMING_BASE: u64 = 1 << 40;

/// Generates the LLC reference stream of a phase.
///
/// The generator is deterministic: the same specification and seed always
/// produce the same trace, which keeps the whole evaluation pipeline
/// reproducible.
#[derive(Debug, Clone)]
pub struct StreamGenerator {
    rng: ChaCha8Rng,
    /// Per-application offset added to every line address so different
    /// applications never alias in a shared structure.
    address_offset: u64,
    streaming_cursor: u64,
}

impl StreamGenerator {
    /// Creates a generator with the given seed and per-application address
    /// offset.
    pub fn new(seed: u64, address_offset: u64) -> Self {
        StreamGenerator {
            rng: ChaCha8Rng::seed_from_u64(seed),
            address_offset,
            streaming_cursor: 0,
        }
    }

    /// Generates the reference stream of one slice of `instructions`
    /// instructions behaving as described by `spec`.
    pub fn generate(&mut self, spec: &PhaseSpec, instructions: u64) -> AccessTrace {
        debug_assert!(spec.validate().is_ok(), "invalid phase spec {}", spec.name);
        let expected_accesses = (instructions as f64 * spec.apki / 1000.0) as usize;
        let mut accesses = Vec::with_capacity(expected_accesses + spec.burst_len);

        // Pre-compute cumulative region weights.
        let total_weight: f64 = spec.regions.iter().map(|r| r.weight).sum();
        let mut cumulative = Vec::with_capacity(spec.regions.len());
        let mut acc = 0.0;
        for r in &spec.regions {
            acc += r.weight / total_weight.max(f64::MIN_POSITIVE);
            cumulative.push(acc);
        }

        // Instruction bookkeeping: inside a burst accesses are
        // `intra_burst_gap` apart; between bursts we insert the gap needed to
        // keep the overall APKI on target (with +-40 % jitter).
        let mean_gap = spec.mean_access_gap();
        let burst_span = spec.burst_len as f64 * spec.intra_burst_gap as f64;
        let inter_burst_gap = (spec.burst_len as f64 * mean_gap - burst_span).max(1.0);

        let mut inst = 0u64;
        while inst < instructions {
            for _ in 0..spec.burst_len {
                if inst >= instructions {
                    break;
                }
                let line = self.pick_line(spec, &cumulative);
                let dependent = self.rng.gen::<f64>() < spec.dependent_fraction;
                let access = if dependent {
                    Access::dependent(self.address_offset + line, inst)
                } else {
                    Access::new(self.address_offset + line, inst)
                };
                accesses.push(access);
                inst += spec.intra_burst_gap.max(1);
            }
            let jitter = self.rng.gen_range(0.6..1.4);
            inst += (inter_burst_gap * jitter) as u64 + 1;
        }
        AccessTrace::new(accesses, instructions)
    }

    fn pick_line(&mut self, spec: &PhaseSpec, cumulative: &[f64]) -> u64 {
        if spec.regions.is_empty() || self.rng.gen::<f64>() < spec.streaming_fraction {
            // Streaming access: a brand new line, never reused.
            self.streaming_cursor += 1;
            return STREAMING_BASE + self.streaming_cursor;
        }
        let pick: f64 = self.rng.gen();
        let region_idx = cumulative
            .iter()
            .position(|&c| pick <= c)
            .unwrap_or(cumulative.len() - 1);
        let region = &spec.regions[region_idx];
        let line_in_region = self.rng.gen_range(0..region.lines);
        (region_idx as u64 + 1) * REGION_STRIDE + line_in_region
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::phase::{PhaseSpec, Region};
    use cache_model::StackDistanceProfiler;
    use core_model::IlpParams;
    use qosrm_types::LlcGeometry;

    fn sim_llc() -> LlcGeometry {
        LlcGeometry {
            num_sets: 256,
            associativity: 16,
            line_bytes: 64,
        }
    }

    #[test]
    fn apki_is_respected() {
        let spec = PhaseSpec::streaming("s", 20.0, 4);
        let mut generator = StreamGenerator::new(1, 0);
        let trace = generator.generate(&spec, 2_000_000);
        let apki = trace.apki();
        assert!(
            (apki - 20.0).abs() / 20.0 < 0.25,
            "APKI {apki} too far from target 20"
        );
    }

    #[test]
    fn generation_is_deterministic() {
        let spec = PhaseSpec::cache_sensitive_bursty("b", 15.0, 4096);
        let a = StreamGenerator::new(42, 0).generate(&spec, 500_000);
        let b = StreamGenerator::new(42, 0).generate(&spec, 500_000);
        assert_eq!(a, b);
        let c = StreamGenerator::new(43, 0).generate(&spec, 500_000);
        assert_ne!(a, c);
    }

    #[test]
    fn streaming_phase_is_cache_insensitive() {
        let spec = PhaseSpec::streaming("s", 20.0, 8);
        let mut generator = StreamGenerator::new(7, 0);
        let trace = generator.generate(&spec, 1_000_000);
        let mut profiler = StackDistanceProfiler::new(&sim_llc());
        let profile = profiler.replay(&trace);
        let m1 = profile.misses_at(1) as f64;
        let m16 = profile.misses_at(16) as f64;
        // Most accesses miss regardless of the allocation.
        assert!(m16 / m1 > 0.75, "m1={m1} m16={m16}");
        assert!(m16 > 0.7 * trace.len() as f64);
    }

    #[test]
    fn working_set_phase_is_cache_sensitive() {
        // Working set of ~8 ways of the simulated LLC.
        let ws_lines = 8 * 256;
        let spec = PhaseSpec {
            name: "cs".into(),
            apki: 15.0,
            regions: vec![Region {
                lines: ws_lines,
                weight: 1.0,
            }],
            streaming_fraction: 0.0,
            burst_len: 2,
            intra_burst_gap: 15,
            dependent_fraction: 0.3,
            ilp: IlpParams::new(1.0, 0.5),
        };
        let mut generator = StreamGenerator::new(11, 0);
        let warm = generator.generate(&spec, 1_000_000);
        let main = generator.generate(&spec, 2_000_000);
        let mut profiler = StackDistanceProfiler::new(&sim_llc());
        profiler.warm_up(&warm);
        let profile = profiler.replay(&main);
        let m2 = profile.misses_at(2) as f64;
        let m16 = profile.misses_at(16) as f64;
        assert!(m2 > 3.0 * (m16 + 1.0), "m2={m2} m16={m16}");
        // With the full cache the warmed working set mostly fits.
        assert!(m16 < 0.1 * main.len() as f64);
    }

    #[test]
    fn address_offset_separates_applications() {
        let spec = PhaseSpec::compute_bound("c", 1.0, 0.5);
        let a = StreamGenerator::new(1, 0).generate(&spec, 100_000);
        let b = StreamGenerator::new(1, 1 << 50).generate(&spec, 100_000);
        let max_a = a.accesses().iter().map(|x| x.line_addr).max().unwrap();
        let min_b = b.accesses().iter().map(|x| x.line_addr).min().unwrap();
        assert!(min_b > max_a);
    }
}
