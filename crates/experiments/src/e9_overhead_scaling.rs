//! E9 — Paper II RM3 overhead scaling with the core count.
//!
//! Paper claim: one RM3 invocation executes roughly 18 K / 40 K / 67 K
//! instructions on 2- / 4- / 8-core systems, below 0.1 % of a
//! 100 M-instruction interval in every case.
//!
//! Like E5, the reported cost is measured: the curve builder's exact
//! evaluation count and the pruned global reduction's cell updates from a
//! short cache-less co-phase run, with the dense worst-case bound shown for
//! comparison.

use crate::context::ExperimentContext;
use crate::e5_overhead::{measured_counters, per_invocation};
use crate::report::{ExperimentReport, ReportRow};
use qosrm_core::{CoordinatedRma, OverheadModel};
use qosrm_types::{PlatformConfig, QosSpec};

/// Paper-reported instruction counts per core count.
pub const PAPER_REPORTED: &[(usize, u64)] = &[(2, 18_000), (4, 40_000), (8, 67_000)];

/// Runs the experiment.
pub fn run(ctx: &ExperimentContext) -> ExperimentReport {
    let mut report = ExperimentReport::new(
        "e9",
        "Paper II: RM3 software overhead versus core count \
         (measured evaluation and reduction-cell counts; see the criterion \
         bench `optimizer_scaling` for measured time)",
    );

    let overhead = OverheadModel::default();
    for &(num_cores, paper_value) in PAPER_REPORTED {
        let platform = PlatformConfig::paper2(num_cores);
        let manager = CoordinatedRma::paper2(&platform, vec![QosSpec::STRICT; num_cores]);
        let bound =
            overhead.invocation_instructions(&platform, manager.evaluations_per_invocation());
        let (evals, cells) = per_invocation(measured_counters(ctx, &platform, manager));
        let instructions = overhead.invocation_instructions_measured(evals, cells);
        let fraction = overhead.fraction_of_interval_measured(&platform, evals, cells);
        report.push_row(
            ReportRow::new(format!("{num_cores}-core"))
                .with("Instructions / invocation (measured)", instructions as f64)
                .with("Worst-case bound", bound as f64)
                .with("Paper reported", paper_value as f64)
                .with("% of 100M interval", fraction * 100.0),
        );
    }

    report.push_summary(
        "Measured overhead grows with the core count (the global reduction performs more \
         pairwise combines) and stays below 0.1% of an interval, matching the paper's \
         18K / 40K / 67K scale; QoS pruning and lower-bound pruning keep the measured \
         cost below the dense worst-case bound."
            .to_string(),
    );
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn overhead_scales_and_stays_negligible() {
        let ctx = ExperimentContext::new(true);
        let report = run(&ctx);
        assert_eq!(report.rows.len(), 3);
        let values: Vec<f64> = report
            .rows
            .iter()
            .map(|r| r.get("Instructions / invocation (measured)").unwrap())
            .collect();
        assert!(values[0] < values[1] && values[1] < values[2]);
        for row in &report.rows {
            assert!(row.get("% of 100M interval").unwrap() < 0.1);
            // Paper-bound sanity: measured cost stays below the dense bound.
            let measured = row.get("Instructions / invocation (measured)").unwrap();
            assert!(measured <= row.get("Worst-case bound").unwrap());
        }
    }
}
