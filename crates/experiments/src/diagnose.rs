//! Diagnostic runner: dump what RM3 decides for one workload and how the
//! ground truth responds.
//!
//! Formerly the separate `debug_s3` binary; folded into the main CLI as the
//! `diagnose` subcommand so it shares the context/platform setup of the
//! experiment pipeline instead of duplicating (and silently bit-rotting)
//! it. Not part of the experiment suite; kept for calibration work.

use crate::context::ExperimentContext;
use qosrm_core::CoordinatedRma;
use qosrm_types::{CoreId, PlatformConfig, QosSpec, ResourceManager, SystemSetting};
use rma_sim::{compare, CophaseSimulator, SimulationOptions};
use simdb::GroundTruth;
use std::fmt::Write as _;
use workload::WorkloadMix;

/// Wraps the manager under inspection and prints its first reconfiguration
/// decisions.
struct Spy<'a> {
    inner: CoordinatedRma,
    printed: usize,
    out: &'a mut String,
}

impl ResourceManager for Spy<'_> {
    fn name(&self) -> &str {
        self.inner.name()
    }
    fn reset(&mut self, n: usize) {
        self.inner.reset(n);
    }
    fn on_interval(
        &mut self,
        core: CoreId,
        obs: &qosrm_types::CoreObservation,
        current: &SystemSetting,
    ) -> SystemSetting {
        let next = self.inner.on_interval(core, obs, current);
        if self.printed < 12 && next != *current {
            self.printed += 1;
            let _ = writeln!(self.out, "-- decision after {core} finished an interval:");
            for i in 0..next.num_cores() {
                let c = next.core(CoreId(i));
                let _ = writeln!(
                    self.out,
                    "   core{i}: size={} freq_level={} ways={}",
                    c.core_size.index(),
                    c.freq.index(),
                    c.ways
                );
            }
        }
        next
    }
}

/// The default diagnostic workload: the Scenario-3 (streaming) mix whose
/// RM3-only savings motivated the original tool.
pub fn default_mix() -> WorkloadMix {
    WorkloadMix::new(
        "S3-debug",
        vec!["libquantum_like", "lbm_like", "milc_like", "leslie3d_like"],
    )
}

/// Runs the diagnostic on `mix` (4 applications) and returns the report
/// text.
pub fn run(ctx: &ExperimentContext, mix: &WorkloadMix) -> Result<String, qosrm_types::QosrmError> {
    mix.validate()?;
    let platform = PlatformConfig::paper2(mix.num_cores());
    platform.validate()?;
    let mut out = String::new();
    let db = ctx.database(&platform, std::slice::from_ref(mix));
    let qos = vec![QosSpec::STRICT; mix.num_cores()];

    // Inspect the first application's record.
    let gt = GroundTruth::new(&platform);
    let first = &mix.benchmarks[0];
    let rec = db.benchmark(first).expect("database covers the mix");
    let phase = rec.phase(rec.trace.phase_at(0));
    let baseline_ways = platform.baseline_ways_per_core();
    let _ = writeln!(
        out,
        "{first} phase0: mpki({baseline_ways}w)={:.2}",
        phase.mpki_at(baseline_ways)
    );
    for size in platform.core_size_indices() {
        let m = gt.metrics(phase, size, platform.baseline_freq(), baseline_ways);
        let _ = writeln!(
            out,
            "  size{} @baseline f, {baseline_ways}w: time={:.4}s energy={:.4}J mlp={:.2}",
            size.index(),
            m.time_seconds,
            m.energy_joules,
            m.llc_misses as f64 / m.leading_misses.max(1) as f64
        );
    }
    // What does the cheapest QoS-meeting config look like per size?
    let base = gt.metrics(
        phase,
        platform.baseline_core_size,
        platform.baseline_freq(),
        baseline_ways,
    );
    let num_levels = platform.vf.num_levels();
    for size in platform.core_size_indices() {
        for f in (0..num_levels).rev() {
            let m = gt.metrics(phase, size, qosrm_types::FreqLevel(f), baseline_ways);
            if m.time_seconds <= base.time_seconds {
                continue;
            }
            // First level that violates; the previous one is the slowest
            // feasible.
            let feasible = f + 1;
            if feasible < num_levels {
                let m2 = gt.metrics(phase, size, qosrm_types::FreqLevel(feasible), baseline_ways);
                let _ = writeln!(
                    out,
                    "  size{}: slowest feasible f-level={} energy={:.4}J (baseline energy {:.4}J)",
                    size.index(),
                    feasible,
                    m2.energy_joules,
                    base.energy_joules
                );
            } else {
                let _ = writeln!(
                    out,
                    "  size{}: no feasible frequency at {baseline_ways} ways",
                    size.index()
                );
            }
            break;
        }
    }

    let simulator = CophaseSimulator::new(&db, mix, SimulationOptions::default())?;
    let baseline = simulator.run_baseline()?;
    let mut spy = Spy {
        inner: CoordinatedRma::paper2(&platform, qos.clone()),
        printed: 0,
        out: &mut out,
    };
    let managed = simulator.run(&mut spy)?;
    let cmp = compare(&baseline, &managed, &qos);
    let _ = writeln!(out, "energy savings: {:.2}%", cmp.energy_savings * 100.0);
    let _ = writeln!(out, "violations: {}", cmp.num_violations());
    for (i, s) in cmp.per_app_slowdown.iter().enumerate() {
        let _ = writeln!(
            out,
            "  app{i}: slowdown {:.2}% energy {:.4} -> {:.4} J",
            s * 100.0,
            baseline.per_app[i].energy_joules,
            managed.per_app[i].energy_joules
        );
    }
    let _ = writeln!(out, "breakdown baseline: {:?}", baseline.energy_breakdown);
    let _ = writeln!(out, "breakdown managed:  {:?}", managed.energy_breakdown);
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn diagnose_reports_decisions_and_savings() {
        let ctx = ExperimentContext::new(true);
        let report = run(&ctx, &default_mix()).unwrap();
        assert!(report.contains("energy savings:"));
        assert!(report.contains("breakdown managed:"));
    }

    #[test]
    fn diagnose_rejects_unknown_benchmarks() {
        let ctx = ExperimentContext::new(true);
        let bad = WorkloadMix::new("bad", vec!["mcf_like", "nope_like"]);
        assert!(run(&ctx, &bad).is_err());
    }
}
