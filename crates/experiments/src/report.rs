//! Experiment report structures and table rendering.

use serde::{Deserialize, Serialize};

/// One row of an experiment table: a label plus named numeric columns.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ReportRow {
    /// Row label (workload name, parameter value, ...).
    pub label: String,
    /// `(column name, value)` pairs, in display order.
    pub values: Vec<(String, f64)>,
}

impl ReportRow {
    /// Creates a row.
    pub fn new(label: impl Into<String>) -> Self {
        ReportRow {
            label: label.into(),
            values: Vec::new(),
        }
    }

    /// Adds a named value.
    pub fn with(mut self, column: impl Into<String>, value: f64) -> Self {
        self.values.push((column.into(), value));
        self
    }

    /// Looks up a value by column name.
    pub fn get(&self, column: &str) -> Option<f64> {
        self.values
            .iter()
            .find(|(c, _)| c == column)
            .map(|(_, v)| *v)
    }
}

/// The result of one experiment: a titled table plus free-form summary lines
/// (the headline numbers the paper reports).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ExperimentReport {
    /// Experiment identifier (`"e1"`, ...).
    pub id: String,
    /// Human-readable title (which paper table/figure it regenerates).
    pub title: String,
    /// Table rows.
    pub rows: Vec<ReportRow>,
    /// Headline summary lines.
    pub summary: Vec<String>,
}

impl ExperimentReport {
    /// Creates an empty report.
    pub fn new(id: impl Into<String>, title: impl Into<String>) -> Self {
        ExperimentReport {
            id: id.into(),
            title: title.into(),
            rows: Vec::new(),
            summary: Vec::new(),
        }
    }

    /// Adds a row.
    pub fn push_row(&mut self, row: ReportRow) {
        self.rows.push(row);
    }

    /// Adds a summary line.
    pub fn push_summary(&mut self, line: impl Into<String>) {
        self.summary.push(line.into());
    }

    /// Renders the report as an aligned text table.
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "## {} — {}\n\n",
            self.id.to_uppercase(),
            self.title
        ));

        if !self.rows.is_empty() {
            // Collect the union of columns, preserving first-seen order.
            let mut columns: Vec<String> = Vec::new();
            for row in &self.rows {
                for (c, _) in &row.values {
                    if !columns.contains(c) {
                        columns.push(c.clone());
                    }
                }
            }
            let label_width = self
                .rows
                .iter()
                .map(|r| r.label.len())
                .chain(std::iter::once("workload".len()))
                .max()
                .unwrap_or(8);
            let col_width = columns.iter().map(|c| c.len().max(10)).collect::<Vec<_>>();

            out.push_str(&format!("{:<label_width$}", "workload"));
            for (c, w) in columns.iter().zip(&col_width) {
                out.push_str(&format!("  {c:>w$}", w = w));
            }
            out.push('\n');
            out.push_str(&"-".repeat(label_width + col_width.iter().map(|w| w + 2).sum::<usize>()));
            out.push('\n');
            for row in &self.rows {
                out.push_str(&format!("{:<label_width$}", row.label));
                for (c, w) in columns.iter().zip(&col_width) {
                    match row.get(c) {
                        Some(v) => out.push_str(&format!("  {v:>w$.3}", w = w)),
                        None => out.push_str(&format!("  {:>w$}", "-", w = w)),
                    }
                }
                out.push('\n');
            }
            out.push('\n');
        }

        for line in &self.summary {
            out.push_str(&format!("  {line}\n"));
        }
        out.push('\n');
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn row_accessors() {
        let row = ReportRow::new("W1")
            .with("savings", 0.12)
            .with("violations", 1.0);
        assert_eq!(row.get("savings"), Some(0.12));
        assert_eq!(row.get("missing"), None);
    }

    #[test]
    fn render_contains_all_labels_and_columns() {
        let mut report = ExperimentReport::new("e1", "Energy savings");
        report.push_row(ReportRow::new("W4-00").with("RM2 savings %", 6.0));
        report.push_row(
            ReportRow::new("W4-01")
                .with("RM2 savings %", 18.0)
                .with("RM1 savings %", 1.0),
        );
        report.push_summary("average savings 6%");
        let text = report.render();
        assert!(text.contains("E1"));
        assert!(text.contains("W4-00"));
        assert!(text.contains("RM2 savings %"));
        assert!(text.contains("RM1 savings %"));
        assert!(text.contains("average savings 6%"));
        // Missing cells render as '-'.
        assert!(text.contains('-'));
    }

    #[test]
    fn render_without_rows_still_prints_summary() {
        let mut report = ExperimentReport::new("e5", "Overhead");
        report.push_summary("40K instructions");
        let text = report.render();
        assert!(text.contains("Overhead"));
        assert!(text.contains("40K instructions"));
    }
}
