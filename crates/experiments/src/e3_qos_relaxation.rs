//! E3 — Paper I QoS-relaxation sweep.
//!
//! Paper claim: if users tolerate a bounded performance reduction, the energy
//! savings of the Combined RMA (with perfect models) grow to 17 % on average
//! and up to 29 % at roughly 40 % longer execution time, with diminishing
//! returns as the constraint is relaxed further (the sweep goes to 80 %).
//!
//! The experiment is one declarative [`ScenarioSpec`] lowered to a
//! [`crate::sweep::ScenarioGrid`]: a single Paper I platform axis, one QoS
//! axis point per relaxation level, and the perfect-model Combined RMA as
//! the only variant.

use crate::context::{max, mean, ExperimentContext};
use crate::report::{ExperimentReport, ReportRow};
use crate::spec::{MixSelection, PlatformAxisSpec, PlatformSpec, ScenarioSpec, WorkloadSource};
use crate::sweep::{self, QosAxis, RmaVariant};
use qosrm_core::ModelKind;
use qosrm_types::QosSpec;
use rma_sim::SimulationOptions;

/// The relaxation points of the sweep (fraction of extra execution time).
pub const RELAXATION_POINTS: &[f64] = &[0.0, 0.1, 0.2, 0.3, 0.4, 0.6, 0.8];

/// Variant label of the perfect-model Combined RMA.
const VARIANT: &str = "CombinedRMA-Perfect";

/// Runs the experiment.
pub fn run(ctx: &ExperimentContext) -> ExperimentReport {
    let mut report = ExperimentReport::new(
        "e3",
        "Paper I: energy savings as the QoS constraint is relaxed \
         (Combined RMA with perfect models, 4-core workloads)",
    );

    let relaxations: &[f64] = if ctx.quick {
        &[0.0, 0.4]
    } else {
        RELAXATION_POINTS
    };

    let spec = ScenarioSpec {
        name: "e3-qos-relaxation".to_string(),
        platforms: vec![PlatformAxisSpec {
            label: "paper1-4c".to_string(),
            platform: PlatformSpec::Paper1 { num_cores: 4 },
            // The relaxation study focuses on a subset in the paper as well;
            // keep the sweep tractable in full mode by using every other
            // workload (quick mode keeps its usual prefix).
            workloads: WorkloadSource::Paper1(if ctx.quick {
                ctx.quick_mix_selection()
            } else {
                MixSelection { step: 2, limit: 0 }
            }),
        }],
        qos: relaxations
            .iter()
            .map(|&relaxation| {
                QosAxis::uniform(
                    format!("relaxation {:.0}%", relaxation * 100.0),
                    QosSpec::relaxed_by(relaxation),
                )
            })
            .collect(),
        variants: vec![RmaVariant::WithModel {
            model: ModelKind::Perfect,
            control_core_size: false,
            name: VARIANT.to_string(),
        }],
        options: Some(SimulationOptions {
            provide_mlp_profiles: false,
            provide_perfect_tables: true,
            ..Default::default()
        }),
    };
    let grid = spec.lower().expect("the E3 spec lowers");
    let result = sweep::run(&grid, ctx);

    let axis = &grid.platforms[0];
    let mut savings_at_40 = Vec::new();
    for (qos_axis, &relaxation) in grid.qos.iter().zip(relaxations) {
        let mut savings = Vec::new();
        let mut violations = 0usize;
        for mix in &axis.mixes {
            let cmp = result.expect_comparison(&axis.label, &mix.name, &qos_axis.label, VARIANT);
            savings.push(cmp.energy_savings);
            violations += cmp.num_violations();
        }
        if (relaxation - 0.4).abs() < 1e-9 {
            savings_at_40 = savings.clone();
        }
        report.push_row(
            ReportRow::new(qos_axis.label.clone())
                .with("Avg savings %", mean(&savings) * 100.0)
                .with("Max savings %", max(&savings) * 100.0)
                .with("QoS violations", violations as f64),
        );
    }

    report.push_summary(format!(
        "At 40% relaxation: avg {:.1}% / max {:.1}% energy savings \
         (paper: avg 17%, max 29%); savings must grow monotonically with relaxation",
        mean(&savings_at_40) * 100.0,
        max(&savings_at_40) * 100.0,
    ));

    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn relaxation_increases_savings() {
        let ctx = ExperimentContext::new(true);
        let report = run(&ctx);
        assert!(report.rows.len() >= 2);
        let strict = report.rows.first().unwrap().get("Avg savings %").unwrap();
        let relaxed = report.rows.last().unwrap().get("Avg savings %").unwrap();
        assert!(
            relaxed >= strict,
            "relaxing QoS must not reduce savings: strict {strict}%, relaxed {relaxed}%"
        );
    }
}
