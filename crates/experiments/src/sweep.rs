//! The parallel scenario-sweep engine.
//!
//! Every evaluation in the paper has the same shape: run a set of workload
//! mixes on a platform, under one or more QoS specifications, with one or
//! more resource-manager variants, and compare each managed run against the
//! baseline run of the same workload. The experiment modules used to spell
//! that shape out as bespoke nested loops; this module turns it into data:
//!
//! * a [`ScenarioGrid`] declares the axes — [`PlatformAxis`] (platform +
//!   its workload mixes), [`QosAxis`] (named QoS assignment) and
//!   [`RmaVariant`] (which manager to build) — plus the shared
//!   [`SimulationOptions`];
//! * [`run_with`] enumerates the cross product, builds the per-platform
//!   simulation databases once, computes each workload's baseline run once
//!   (it is manager- and QoS-independent), and fans the scenarios out over
//!   worker threads;
//! * results land in a [`SweepResult`] — a typed table of
//!   ([`ScenarioKey`], [`rma_sim::Comparison`]) cells, in deterministic
//!   axis order regardless of execution order, which `report.rs` renders
//!   and `simdb::persist` can save/load as JSON.
//!
//! Two switches in [`SweepOptions`] control execution without affecting
//! results:
//!
//! * `parallel` — scenarios run on all available cores (the sweep is
//!   embarrassingly parallel once the databases exist);
//! * `memoize` — all managers share one [`qosrm_core::CurveCache`], so the
//!   energy-versus-ways curves that dominate an RMA invocation are computed
//!   once per distinct `(configuration, QoS, observation)` across the whole
//!   sweep (phase traces wrap around within a run and recur across runs,
//!   so hit rates are high).
//!
//! Serial, parallel and memoized execution produce bit-identical
//! [`SweepResult`]s; `tests/sweep_equivalence.rs` locks that in.
//!
//! # Example
//!
//! ```no_run
//! use experiments::sweep::{self, PlatformAxis, QosAxis, RmaVariant, ScenarioGrid};
//! use experiments::ExperimentContext;
//! use qosrm_types::{PlatformConfig, QosSpec};
//! use rma_sim::SimulationOptions;
//!
//! let platform = PlatformConfig::paper2(4);
//! let grid = ScenarioGrid {
//!     platforms: vec![PlatformAxis::new(
//!         "paper2-4c",
//!         platform,
//!         workload::paper2_scenario_workloads(4).into_iter().map(|(_, m)| m).take(2).collect(),
//!     )],
//!     qos: vec![QosAxis::uniform("strict", QosSpec::STRICT)],
//!     variants: vec![RmaVariant::Paper1, RmaVariant::Paper2],
//!     options: SimulationOptions::default(),
//! };
//! let ctx = ExperimentContext::new(true);
//! let result = sweep::run(&grid, &ctx);
//! for outcome in &result.scenarios {
//!     println!("{}: {:.1}%", outcome.key, outcome.comparison.energy_savings * 100.0);
//! }
//! ```

use crate::context::ExperimentContext;
use qosrm_core::{CoordinatedRma, ModelKind};
use qosrm_types::{PlatformConfig, QosSpec, QosrmError};
use rayon::prelude::*;
use rma_sim::{Comparison, CophaseSimulator, SimulationOptions, SimulationResult};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::fmt;
use std::path::Path;
use workload::WorkloadMix;

/// One platform point of a sweep: the platform configuration together with
/// the workload mixes evaluated on it (mix width must match the platform's
/// core count, so mixes are per-platform rather than a global axis).
#[derive(Debug, Clone)]
pub struct PlatformAxis {
    /// Label used in scenario keys (e.g. `"paper1-4c"`, `"baseline 1.6 GHz"`).
    pub label: String,
    /// The platform configuration managers optimize against.
    pub platform: PlatformConfig,
    /// Workload mixes evaluated on this platform (unique names).
    pub mixes: Vec<WorkloadMix>,
}

impl PlatformAxis {
    /// Creates a platform axis.
    pub fn new(
        label: impl Into<String>,
        platform: PlatformConfig,
        mixes: Vec<WorkloadMix>,
    ) -> Self {
        PlatformAxis {
            label: label.into(),
            platform,
            mixes,
        }
    }
}

/// How a QoS axis point assigns per-application QoS specifications.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum QosPolicy {
    /// Every application gets the same specification.
    Uniform(QosSpec),
    /// Application `i` gets `specs[i]`; applications beyond the vector get
    /// the strict default (matching [`qosrm_core::RmaConfig::qos`]).
    PerCore(Vec<QosSpec>),
}

impl QosPolicy {
    /// Resolves the per-core QoS vector for a platform with `num_cores`
    /// cores.
    pub fn resolve(&self, num_cores: usize) -> Vec<QosSpec> {
        match self {
            QosPolicy::Uniform(spec) => vec![*spec; num_cores],
            QosPolicy::PerCore(specs) => (0..num_cores)
                .map(|i| specs.get(i).copied().unwrap_or_default())
                .collect(),
        }
    }
}

/// One named QoS point of a sweep.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct QosAxis {
    /// Label used in scenario keys (e.g. `"strict"`, `"relaxation 40%"`).
    pub label: String,
    /// The QoS assignment.
    pub policy: QosPolicy,
}

impl QosAxis {
    /// A uniform QoS axis point.
    pub fn uniform(label: impl Into<String>, spec: QosSpec) -> Self {
        QosAxis {
            label: label.into(),
            policy: QosPolicy::Uniform(spec),
        }
    }

    /// A per-core QoS axis point.
    pub fn per_core(label: impl Into<String>, specs: Vec<QosSpec>) -> Self {
        QosAxis {
            label: label.into(),
            policy: QosPolicy::PerCore(specs),
        }
    }
}

/// Which resource manager a scenario runs.
///
/// Serializable so a scenario spec file (`crate::spec`) can name variants
/// directly; labels (not the serialized form) key the sweep results.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum RmaVariant {
    /// RM1: LLC partitioning only.
    PartitioningOnly,
    /// RM2: the Paper I Combined RMA (DVFS + partitioning, Model 2).
    Paper1,
    /// RM3: the Paper II manager (core size + DVFS + partitioning, Model 3).
    Paper2,
    /// DVFS only, no repartitioning.
    DvfsOnly,
    /// Selfish iterated best response over the shared LLC on the RM2 knobs
    /// (label `"NashBR"`); E10 reports its price of anarchy.
    NashBestResponse,
    /// Minimum-total-energy pure Nash equilibrium on the RM2 knobs (label
    /// `"NashEq"`). Equilibrium enumeration is combinatorial in the core
    /// count — use on small (≤ 4-core) platforms.
    NashEquilibrium,
    /// DVFS + partitioning with an explicit model choice (used by the
    /// perfect-model and model-comparison studies).
    WithModel {
        /// The analytical model driving the manager.
        model: ModelKind,
        /// Whether the core size knob is controlled.
        control_core_size: bool,
        /// Display name (also the scenario-key label).
        name: String,
    },
}

impl RmaVariant {
    /// Label used in scenario keys (`"RM1"`, `"RM2"`, `"RM3"`, `"DVFS"`, or
    /// the custom name).
    pub fn label(&self) -> &str {
        match self {
            RmaVariant::PartitioningOnly => "RM1",
            RmaVariant::Paper1 => "RM2",
            RmaVariant::Paper2 => "RM3",
            RmaVariant::DvfsOnly => "DVFS",
            RmaVariant::NashBestResponse => "NashBR",
            RmaVariant::NashEquilibrium => "NashEq",
            RmaVariant::WithModel { name, .. } => name,
        }
    }

    /// Builds the manager for one scenario.
    pub fn build(&self, platform: &PlatformConfig, qos: Vec<QosSpec>) -> CoordinatedRma {
        match self {
            RmaVariant::PartitioningOnly => CoordinatedRma::partitioning_only(platform, qos),
            RmaVariant::Paper1 => CoordinatedRma::paper1(platform, qos),
            RmaVariant::Paper2 => CoordinatedRma::paper2(platform, qos),
            RmaVariant::DvfsOnly => CoordinatedRma::dvfs_only(platform, qos),
            RmaVariant::NashBestResponse => CoordinatedRma::nash_best_response(platform, qos),
            RmaVariant::NashEquilibrium => CoordinatedRma::nash_equilibrium(platform, qos),
            RmaVariant::WithModel {
                model,
                control_core_size,
                name,
            } => CoordinatedRma::with_model(platform, qos, *model, *control_core_size)
                .with_name(name.clone()),
        }
    }
}

/// A declarative scenario sweep: the cross product of platform axes (each
/// with its mixes), QoS axes and manager variants, under shared simulation
/// options.
///
/// # Example
///
/// ```
/// use experiments::sweep::{PlatformAxis, QosAxis, RmaVariant, ScenarioGrid};
/// use qosrm_types::{PlatformConfig, QosSpec};
/// use rma_sim::SimulationOptions;
/// use workload::paper1_workloads;
///
/// let grid = ScenarioGrid {
///     platforms: vec![PlatformAxis::new(
///         "paper1-4c",
///         PlatformConfig::paper1(4),
///         paper1_workloads(4).into_iter().take(3).collect(),
///     )],
///     qos: vec![
///         QosAxis::uniform("strict", QosSpec::STRICT),
///         QosAxis::uniform("relaxed 40%", QosSpec::relaxed_by(0.4)),
///     ],
///     variants: vec![RmaVariant::Paper1, RmaVariant::PartitioningOnly],
///     options: SimulationOptions::default(),
/// };
/// assert!(grid.validate().is_ok());
/// assert_eq!(grid.len(), 3 * 2 * 2);
/// ```
#[derive(Debug, Clone)]
pub struct ScenarioGrid {
    /// Platform points, each carrying its workload mixes.
    pub platforms: Vec<PlatformAxis>,
    /// QoS points.
    pub qos: Vec<QosAxis>,
    /// Manager variants.
    pub variants: Vec<RmaVariant>,
    /// Simulation options shared by every scenario (and by the baselines).
    pub options: SimulationOptions,
}

impl ScenarioGrid {
    /// Number of scenarios the grid expands to.
    pub fn len(&self) -> usize {
        let mixes: usize = self.platforms.iter().map(|a| a.mixes.len()).sum();
        mixes * self.qos.len() * self.variants.len()
    }

    /// Whether the grid expands to no scenarios.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Validates the grid: non-empty axes, mixes valid/unique per axis and
    /// matching their platform's core count, unique axis labels.
    pub fn validate(&self) -> Result<(), QosrmError> {
        if self.platforms.is_empty() || self.qos.is_empty() || self.variants.is_empty() {
            return Err(QosrmError::InvalidWorkload(
                "scenario grid has an empty axis".into(),
            ));
        }
        let mut platform_labels = std::collections::HashSet::new();
        for axis in &self.platforms {
            axis.platform
                .validate()
                .map_err(|e| QosrmError::InvalidPlatform(format!("axis {}: {e}", axis.label)))?;
            workload::validate_mix_axis(&axis.mixes)?;
            if let Some(mix) = axis.mixes.first() {
                if mix.num_cores() != axis.platform.num_cores {
                    return Err(QosrmError::InvalidWorkload(format!(
                        "axis {}: mixes have {} applications, platform has {} cores",
                        axis.label,
                        mix.num_cores(),
                        axis.platform.num_cores
                    )));
                }
            }
            if !platform_labels.insert(axis.label.as_str()) {
                return Err(QosrmError::InvalidWorkload(format!(
                    "duplicate platform axis label {}",
                    axis.label
                )));
            }
        }
        let mut labels = std::collections::HashSet::new();
        for axis in &self.qos {
            if !labels.insert(axis.label.as_str()) {
                return Err(QosrmError::InvalidWorkload(format!(
                    "duplicate QoS axis label {}",
                    axis.label
                )));
            }
            // A per-core spec list longer than a platform's core count would
            // silently drop the excess specs in resolve(); reject it so the
            // declared assignment always matches the executed one.
            if let QosPolicy::PerCore(specs) = &axis.policy {
                for platform_axis in &self.platforms {
                    if specs.len() > platform_axis.platform.num_cores {
                        return Err(QosrmError::InvalidWorkload(format!(
                            "QoS axis {} specifies {} per-core specs but platform axis {} has only {} cores",
                            axis.label,
                            specs.len(),
                            platform_axis.label,
                            platform_axis.platform.num_cores
                        )));
                    }
                }
            }
        }
        let mut labels = std::collections::HashSet::new();
        for variant in &self.variants {
            if !labels.insert(variant.label()) {
                return Err(QosrmError::InvalidWorkload(format!(
                    "duplicate variant label {}",
                    variant.label()
                )));
            }
        }
        Ok(())
    }
}

/// Identifies one scenario of a sweep by its axis labels.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct ScenarioKey {
    /// Platform-axis label.
    pub platform: String,
    /// Workload-mix name.
    pub mix: String,
    /// QoS-axis label.
    pub qos: String,
    /// Variant label.
    pub variant: String,
}

impl fmt::Display for ScenarioKey {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}/{}/{}/{}",
            self.platform, self.mix, self.qos, self.variant
        )
    }
}

/// One evaluated scenario.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ScenarioOutcome {
    /// Which scenario this is.
    pub key: ScenarioKey,
    /// Comparison of the managed run against the workload's baseline run.
    pub comparison: Comparison,
}

/// The typed result table of one sweep, in deterministic axis order
/// (platform → mix → QoS → variant) regardless of execution order.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SweepResult {
    /// All evaluated scenarios.
    pub scenarios: Vec<ScenarioOutcome>,
}

impl SweepResult {
    /// Looks up one scenario's comparison by its axis labels.
    pub fn comparison(
        &self,
        platform: &str,
        mix: &str,
        qos: &str,
        variant: &str,
    ) -> Option<&Comparison> {
        self.scenarios
            .iter()
            .find(|o| {
                o.key.platform == platform
                    && o.key.mix == mix
                    && o.key.qos == qos
                    && o.key.variant == variant
            })
            .map(|o| &o.comparison)
    }

    /// Like [`SweepResult::comparison`] but panics with the missing key —
    /// for experiment code where every cell is known to exist.
    pub fn expect_comparison(
        &self,
        platform: &str,
        mix: &str,
        qos: &str,
        variant: &str,
    ) -> &Comparison {
        self.comparison(platform, mix, qos, variant)
            .unwrap_or_else(|| panic!("sweep result has no cell {platform}/{mix}/{qos}/{variant}"))
    }

    /// Saves the result table as JSON via `simdb`'s persistence layer.
    pub fn save(&self, path: &Path) -> Result<(), QosrmError> {
        simdb::persist::save_json(self, path)
    }

    /// Loads a result table saved with [`SweepResult::save`].
    pub fn load(path: &Path) -> Result<Self, QosrmError> {
        simdb::persist::load_json(path)
    }
}

/// Execution switches of a sweep. No switch affects results, only how fast
/// they are produced.
#[derive(Debug, Clone, Copy)]
pub struct SweepOptions {
    /// Fan scenarios out over worker threads.
    pub parallel: bool,
    /// Share one energy-curve memoization cache across all managers.
    pub memoize: bool,
    /// Run every manager on its incremental delta path
    /// ([`CoordinatedRma::with_incremental`]): recurring per-core
    /// observations skip curve construction entirely and the cooperative
    /// global step warm-starts from the retained reduction arena. Settings
    /// — and therefore sweep results — are bit-identical either way
    /// (`tests/sweep_equivalence.rs` locks that in); the switch defaults to
    /// off so the overhead experiments keep reporting cold per-invocation
    /// work, and the resident serving daemon turns it on.
    pub incremental: bool,
}

impl Default for SweepOptions {
    fn default() -> Self {
        SweepOptions {
            parallel: true,
            memoize: true,
            incremental: false,
        }
    }
}

impl SweepOptions {
    /// Fully serial, uncached execution (the reference path benchmarks
    /// compare against).
    pub fn serial() -> Self {
        SweepOptions {
            parallel: false,
            memoize: false,
            incremental: false,
        }
    }
}

/// Runs the grid with the context's sweep options (parallel + memoized by
/// default).
pub fn run(grid: &ScenarioGrid, ctx: &ExperimentContext) -> SweepResult {
    run_with(grid, ctx, &ctx.sweep)
}

/// Runs the grid with explicit execution options.
///
/// Builds (or fetches from the context cache) one simulation database per
/// platform axis, computes each workload's baseline run once, then
/// evaluates every scenario. Scenario order in the result is the axis
/// order platform → mix → QoS → variant.
///
/// # Panics
///
/// Panics if the grid fails [`ScenarioGrid::validate`] or a workload does
/// not match its platform's database.
pub fn run_with(
    grid: &ScenarioGrid,
    ctx: &ExperimentContext,
    options: &SweepOptions,
) -> SweepResult {
    grid.validate().expect("scenario grid must be valid");
    let engine = SweepEngine::new(grid, ctx, *options);
    let points = grid_points(grid);
    let pairs: Vec<(usize, usize)> = mix_pairs(&points);
    let units = engine.build_units(&pairs);
    let scenarios = engine.evaluate_all(&units, &points);
    SweepResult { scenarios }
}

/// One scenario of a grid as `(platform, mix, qos, variant)` axis indices.
pub(crate) type GridPoint = (usize, usize, usize, usize);

/// Enumerates a grid's scenarios in the canonical axis order
/// (platform → mix → QoS → variant) — the order of [`SweepResult`] rows.
pub(crate) fn grid_points(grid: &ScenarioGrid) -> Vec<GridPoint> {
    let mut points = Vec::with_capacity(grid.len());
    for (a, axis) in grid.platforms.iter().enumerate() {
        for m in 0..axis.mixes.len() {
            for q in 0..grid.qos.len() {
                for v in 0..grid.variants.len() {
                    points.push((a, m, q, v));
                }
            }
        }
    }
    points
}

/// The [`ScenarioKey`] of one grid point.
pub(crate) fn scenario_key(grid: &ScenarioGrid, (a, m, q, v): GridPoint) -> ScenarioKey {
    ScenarioKey {
        platform: grid.platforms[a].label.clone(),
        mix: grid.platforms[a].mixes[m].name.clone(),
        qos: grid.qos[q].label.clone(),
        variant: grid.variants[v].label().to_string(),
    }
}

/// The distinct `(platform, mix)` pairs of a point list, in first-seen
/// order (points are enumerated in axis order, so this is axis order too).
pub(crate) fn mix_pairs(points: &[GridPoint]) -> Vec<(usize, usize)> {
    let mut seen = std::collections::HashSet::new();
    let mut pairs = Vec::new();
    for &(a, m, _, _) in points {
        if seen.insert((a, m)) {
            pairs.push((a, m));
        }
    }
    pairs
}

/// The per-`(platform, mix)` state a scenario evaluation needs: the
/// simulator and the manager-independent baseline run (reused across all
/// QoS points and variants of the mix).
pub(crate) struct MixUnit {
    simulator: CophaseSimulator,
    baseline: SimulationResult,
}

/// Shared evaluation machinery of the in-memory ([`run_with`]) and
/// streaming (`crate::stream`) executors: the per-platform databases plus
/// the single-scenario evaluation path. [`MixUnit`]s are built explicitly
/// (and can be dropped between shards), so the caller controls how much
/// simulation state is resident at once.
pub(crate) struct SweepEngine<'g> {
    grid: &'g ScenarioGrid,
    options: SweepOptions,
    curve_cache: std::sync::Arc<qosrm_core::CurveCache>,
    rma_telemetry: std::sync::Arc<crate::context::RmaTelemetry>,
    databases: Vec<simdb::SimDb>,
}

impl<'g> SweepEngine<'g> {
    /// Builds the engine: one simulation database per platform axis
    /// (cached in the context and internally parallel already).
    pub fn new(grid: &'g ScenarioGrid, ctx: &ExperimentContext, options: SweepOptions) -> Self {
        let databases = grid
            .platforms
            .iter()
            .map(|axis| ctx.database(&axis.platform, &axis.mixes))
            .collect();
        SweepEngine {
            grid,
            options,
            curve_cache: ctx.curve_cache().clone(),
            rma_telemetry: ctx.rma_telemetry().clone(),
            databases,
        }
    }

    /// Builds the simulator and baseline run of every listed
    /// `(platform, mix)` pair — baselines are manager- and QoS-independent,
    /// so a sweep with Q QoS points and V variants reuses each one Q·V
    /// times. Runs in parallel when the sweep options say so.
    pub fn build_units(&self, pairs: &[(usize, usize)]) -> HashMap<(usize, usize), MixUnit> {
        let build = |&(a, m): &(usize, usize)| -> ((usize, usize), MixUnit) {
            let axis = &self.grid.platforms[a];
            let simulator = CophaseSimulator::new(
                &self.databases[a],
                &axis.mixes[m],
                self.grid.options.clone(),
            )
            .expect("mix validated against its platform");
            let baseline = simulator
                .run_baseline()
                .expect("baseline run must finish within the event budget");
            (
                (a, m),
                MixUnit {
                    simulator,
                    baseline,
                },
            )
        };
        if self.options.parallel {
            pairs.par_iter().map(build).collect::<Vec<_>>()
        } else {
            pairs.iter().map(build).collect::<Vec<_>>()
        }
        .into_iter()
        .collect()
    }

    /// Evaluates one scenario against its prebuilt [`MixUnit`].
    pub fn evaluate(
        &self,
        units: &HashMap<(usize, usize), MixUnit>,
        (a, m, q, v): GridPoint,
    ) -> ScenarioOutcome {
        let axis = &self.grid.platforms[a];
        let qos_axis = &self.grid.qos[q];
        let variant = &self.grid.variants[v];
        let unit = units
            .get(&(a, m))
            .expect("mix unit built before evaluation");
        let qos = qos_axis.policy.resolve(axis.platform.num_cores);
        let mut manager = variant.build(&axis.platform, qos.clone());
        if self.options.memoize {
            manager = manager.with_curve_cache(self.curve_cache.clone());
        }
        if self.options.incremental {
            manager = manager.with_incremental();
        }
        let (comparison, _managed) = unit
            .simulator
            .run_comparison(&mut manager, &unit.baseline, &qos)
            .unwrap_or_else(|e| panic!("scenario simulation failed: {e}"));
        // Fold the manager's measured work into the session telemetry (the
        // serving daemon exposes the aggregate via `/stats`).
        self.rma_telemetry.absorb(&manager.work_counters());
        ScenarioOutcome {
            key: scenario_key(self.grid, (a, m, q, v)),
            comparison,
        }
    }

    /// Evaluates the listed scenarios (in parallel when enabled), returning
    /// outcomes in the order of `points` regardless of execution order.
    pub fn evaluate_all(
        &self,
        units: &HashMap<(usize, usize), MixUnit>,
        points: &[GridPoint],
    ) -> Vec<ScenarioOutcome> {
        if self.options.parallel {
            points
                .par_iter()
                .map(|&point| self.evaluate(units, point))
                .collect()
        } else {
            points
                .iter()
                .map(|&point| self.evaluate(units, point))
                .collect()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_grid() -> ScenarioGrid {
        ScenarioGrid {
            platforms: vec![PlatformAxis::new(
                "p4",
                PlatformConfig::paper1(4),
                vec![WorkloadMix::new(
                    "t0",
                    vec!["mcf_like", "gamess_like", "povray_like", "soplex_like"],
                )],
            )],
            qos: vec![
                QosAxis::uniform("strict", QosSpec::STRICT),
                QosAxis::uniform("relaxed 40%", QosSpec::relaxed_by(0.4)),
            ],
            variants: vec![RmaVariant::Paper1, RmaVariant::PartitioningOnly],
            options: SimulationOptions {
                provide_mlp_profiles: false,
                ..Default::default()
            },
        }
    }

    #[test]
    fn grid_size_and_validation() {
        let grid = tiny_grid();
        assert_eq!(grid.len(), 4); // 1 mix x 2 QoS x 2 variants
        assert!(!grid.is_empty());
        assert!(grid.validate().is_ok());

        let mut empty = tiny_grid();
        empty.variants.clear();
        assert!(empty.validate().is_err());
        assert!(empty.is_empty());

        let mut dup = tiny_grid();
        dup.qos.push(QosAxis::uniform("strict", QosSpec::STRICT));
        assert!(dup.validate().is_err());

        let mut wrong_width = tiny_grid();
        wrong_width.platforms[0].mixes =
            vec![WorkloadMix::new("w2", vec!["mcf_like", "gamess_like"])];
        assert!(wrong_width.validate().is_err());

        // Per-core QoS lists longer than a platform's core count are
        // rejected rather than silently truncated.
        let mut oversized = tiny_grid();
        oversized.qos.push(QosAxis::per_core(
            "oversized",
            vec![QosSpec::relaxed_by(0.4); 8],
        ));
        assert!(oversized.validate().is_err());
    }

    #[test]
    fn qos_policy_resolution() {
        let uniform = QosPolicy::Uniform(QosSpec::relaxed_by(0.2));
        assert_eq!(uniform.resolve(3), vec![QosSpec::relaxed_by(0.2); 3]);

        let per_core = QosPolicy::PerCore(vec![QosSpec::relaxed_by(0.4)]);
        let resolved = per_core.resolve(3);
        assert_eq!(resolved[0], QosSpec::relaxed_by(0.4));
        assert_eq!(resolved[1], QosSpec::STRICT);
        assert_eq!(resolved[2], QosSpec::STRICT);
    }

    #[test]
    fn variant_labels_and_managers() {
        let p = PlatformConfig::paper2(4);
        assert_eq!(RmaVariant::PartitioningOnly.label(), "RM1");
        assert_eq!(RmaVariant::Paper1.label(), "RM2");
        assert_eq!(RmaVariant::Paper2.label(), "RM3");
        assert_eq!(RmaVariant::DvfsOnly.label(), "DVFS");
        assert_eq!(RmaVariant::NashBestResponse.label(), "NashBR");
        assert_eq!(RmaVariant::NashEquilibrium.label(), "NashEq");
        let custom = RmaVariant::WithModel {
            model: ModelKind::Perfect,
            control_core_size: false,
            name: "CombinedRMA-Perfect".into(),
        };
        assert_eq!(custom.label(), "CombinedRMA-Perfect");
        use qosrm_types::ResourceManager;
        assert_eq!(
            custom.build(&p, vec![QosSpec::STRICT; 4]).name(),
            "CombinedRMA-Perfect"
        );
        assert_eq!(
            RmaVariant::Paper2
                .build(&p, vec![QosSpec::STRICT; 4])
                .name(),
            "CoordCoreRMA-Model3"
        );
        assert_eq!(
            RmaVariant::NashBestResponse
                .build(&p, vec![QosSpec::STRICT; 4])
                .name(),
            "NashBR-Model2"
        );
        assert_eq!(
            RmaVariant::NashEquilibrium
                .build(&p, vec![QosSpec::STRICT; 4])
                .name(),
            "NashEq-Model2"
        );
    }

    #[test]
    fn sweep_produces_every_cell_in_axis_order() {
        let grid = tiny_grid();
        let ctx = ExperimentContext::new(true);
        let result = run(&grid, &ctx);
        assert_eq!(result.scenarios.len(), grid.len());
        // Axis order: mix → qos → variant.
        let labels: Vec<String> = result
            .scenarios
            .iter()
            .map(|o| format!("{}/{}", o.key.qos, o.key.variant))
            .collect();
        assert_eq!(
            labels,
            vec![
                "strict/RM2",
                "strict/RM1",
                "relaxed 40%/RM2",
                "relaxed 40%/RM1",
            ]
        );
        assert!(result.comparison("p4", "t0", "strict", "RM2").is_some());
        assert!(result.comparison("p4", "t0", "strict", "RM9").is_none());
        // Relaxing QoS cannot reduce RM2 savings.
        let strict = result.expect_comparison("p4", "t0", "strict", "RM2");
        let relaxed = result.expect_comparison("p4", "t0", "relaxed 40%", "RM2");
        assert!(relaxed.energy_savings >= strict.energy_savings - 1e-12);
    }

    #[test]
    fn save_load_roundtrip() {
        let grid = tiny_grid();
        let ctx = ExperimentContext::new(true);
        let result = run(&grid, &ctx);
        let path = std::env::temp_dir().join("qosrm_sweep_roundtrip.json");
        result.save(&path).unwrap();
        let loaded = SweepResult::load(&path).unwrap();
        assert_eq!(loaded, result);
        std::fs::remove_file(&path).ok();
    }
}
