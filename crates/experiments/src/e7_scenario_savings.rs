//! E7 — Paper II per-scenario energy savings.
//!
//! Paper claim: grouping the workloads into four scenarios,
//!
//! * Scenario 1 — RM3 saves up to 17.6 % and 14 % on average, up to 60 % more
//!   than RM2;
//! * Scenario 2 — RM2 and RM3 are comparable (up to 10 %, 5 % on average);
//! * Scenario 3 — only RM3 is effective (up to 11 %, 8.5 % on average);
//! * Scenario 4 — neither saves a significant amount of energy.
//!
//! The experiment is one declarative [`ScenarioSpec`] lowered to a grid:
//! the Paper II 4-core platform with the scenario workloads, strict QoS,
//! and the RM2/RM3 variant pair (the mixes go in as an explicit source
//! because the report keys rows by scenario number).

use crate::context::{max, mean, ExperimentContext};
use crate::report::{ExperimentReport, ReportRow};
use crate::spec::{PlatformAxisSpec, PlatformSpec, ScenarioSpec, WorkloadSource};
use crate::sweep::{self, QosAxis, RmaVariant};
use qosrm_types::QosSpec;
use workload::paper2_scenario_workloads;

/// Runs the experiment.
pub fn run(ctx: &ExperimentContext) -> ExperimentReport {
    let mut report = ExperimentReport::new(
        "e7",
        "Paper II: RM2 vs. RM3 energy savings per evaluation scenario (4-core workloads, \
         strict QoS)",
    );

    let scenario_mixes = paper2_scenario_workloads(4);
    let scenario_mixes: Vec<_> = if ctx.quick {
        // One workload per scenario in quick mode.
        let mut seen = std::collections::HashSet::new();
        scenario_mixes
            .into_iter()
            .filter(|(s, _)| seen.insert(*s))
            .collect()
    } else {
        scenario_mixes
    };
    let spec = ScenarioSpec {
        name: "e7-scenario-savings".to_string(),
        platforms: vec![PlatformAxisSpec {
            label: "paper2-4c".to_string(),
            platform: PlatformSpec::Paper2 { num_cores: 4 },
            workloads: WorkloadSource::Explicit(
                scenario_mixes.iter().map(|(_, m)| m.clone()).collect(),
            ),
        }],
        qos: vec![QosAxis::uniform("strict", QosSpec::STRICT)],
        variants: vec![RmaVariant::Paper1, RmaVariant::Paper2],
        options: None,
    };
    let grid = spec.lower().expect("the E7 spec lowers");
    let result = sweep::run(&grid, ctx);

    let axis = &grid.platforms[0];
    let mut per_scenario_rm2: Vec<Vec<f64>> = vec![Vec::new(); 5];
    let mut per_scenario_rm3: Vec<Vec<f64>> = vec![Vec::new(); 5];

    for (scenario, mix) in &scenario_mixes {
        let rm2_cmp = result.expect_comparison(&axis.label, &mix.name, "strict", "RM2");
        let rm3_cmp = result.expect_comparison(&axis.label, &mix.name, "strict", "RM3");

        per_scenario_rm2[*scenario].push(rm2_cmp.energy_savings);
        per_scenario_rm3[*scenario].push(rm3_cmp.energy_savings);

        report.push_row(
            ReportRow::new(format!("S{scenario} {}", mix.name))
                .with("RM2 savings %", rm2_cmp.energy_savings * 100.0)
                .with("RM3 savings %", rm3_cmp.energy_savings * 100.0)
                .with("RM3 violations", rm3_cmp.num_violations() as f64),
        );
    }

    let paper_expectations = [
        "",
        "S1 (paper: RM3 avg 14%, up to 17.6%, >= RM2)",
        "S2 (paper: both ~5% avg, up to 10%)",
        "S3 (paper: RM3 avg 8.5%, RM2 ineffective)",
        "S4 (paper: neither effective)",
    ];
    for scenario in 1..=4usize {
        report.push_summary(format!(
            "Scenario {scenario}: RM2 avg {:.1}% / max {:.1}%, RM3 avg {:.1}% / max {:.1}% — {}",
            mean(&per_scenario_rm2[scenario]) * 100.0,
            max(&per_scenario_rm2[scenario]) * 100.0,
            mean(&per_scenario_rm3[scenario]) * 100.0,
            max(&per_scenario_rm3[scenario]) * 100.0,
            paper_expectations[scenario],
        ));
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn produces_one_summary_per_scenario() {
        let ctx = ExperimentContext::new(true);
        let report = run(&ctx);
        assert_eq!(report.summary.len(), 4);
        assert!(!report.rows.is_empty());
    }
}
