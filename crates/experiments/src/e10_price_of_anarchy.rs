//! E10 — price of anarchy of game-theoretic LLC allocation (beyond the
//! paper).
//!
//! The paper's RM2 is cooperative: one arbiter minimizes *total* energy over
//! joint (ways, VF) allocations. The ZERO-Regrets / integer-programming-games
//! line of work models the same setting with selfish tenants choosing integer
//! strategies over the shared cache. E10 quantifies the cost of selfishness
//! on the reproduced platform: it sweeps the Paper I 4-core scenario grid
//! under three managers sharing bit-identical energy curves —
//!
//! * `RM2` — the cooperative optimum ([`RmaVariant::Paper1`]);
//! * `NashBR` — iterated best response ([`RmaVariant::NashBestResponse`]),
//!   where the first responder hoards the free way pool;
//! * `NashEq` — minimum-total-energy pure Nash equilibrium
//!   ([`RmaVariant::NashEquilibrium`]), the ZERO-Regrets selection, which by
//!   free disposal coincides with the slack-allowed social optimum —
//!
//! and reports each game variant's **price of anarchy**: the ratio of its
//! managed energy to the cooperative optimum's,
//! `PoA = (1 − savings_game) / (1 − savings_RM2)`, where `savings` is the
//! simulator's energy saving against the unmanaged baseline. `PoA = 1`
//! means selfishness cost nothing; values above 1 measure the anarchy gap.
//! QoS is tracked alongside as full-run violation counts (all variants
//! honor the same per-core QoS constraints in their curves, so violations
//! stay comparable).
//!
//! The grid is deliberately 4-core only: equilibrium enumeration is
//! combinatorial in the core count (see [`qosrm_core::game`]).

use crate::context::{mean, ExperimentContext};
use crate::report::{ExperimentReport, ReportRow};
use crate::spec::{PlatformAxisSpec, PlatformSpec, ScenarioSpec, WorkloadSource};
use crate::sweep::{self, QosAxis, RmaVariant};
use qosrm_types::QosSpec;
use rma_sim::SimulationOptions;

/// The declarative spec of the experiment's sweep. Its quick-mode form is
/// committed at `examples/specs/e10_quick.json` and exercised by the CI
/// sweep-smoke kill/resume/merge cycle.
pub fn spec(ctx: &ExperimentContext) -> ScenarioSpec {
    ScenarioSpec {
        name: "e10-price-of-anarchy".to_string(),
        platforms: vec![PlatformAxisSpec {
            label: "paper1-4c".to_string(),
            platform: PlatformSpec::Paper1 { num_cores: 4 },
            workloads: WorkloadSource::Paper1(ctx.quick_mix_selection()),
        }],
        qos: vec![QosAxis::uniform("strict", QosSpec::STRICT)],
        variants: vec![
            RmaVariant::Paper1,
            RmaVariant::NashBestResponse,
            RmaVariant::NashEquilibrium,
        ],
        // Paper I platform: no core re-configuration, no MLP-ATD hardware.
        options: Some(SimulationOptions {
            provide_mlp_profiles: false,
            ..Default::default()
        }),
    }
}

/// Price of anarchy of a game variant against the cooperative manager:
/// the ratio of managed-energy fractions (`1 − savings`) relative to the
/// shared unmanaged baseline.
fn price_of_anarchy(game_savings: f64, coop_savings: f64) -> f64 {
    (1.0 - game_savings) / (1.0 - coop_savings)
}

/// Runs the experiment.
pub fn run(ctx: &ExperimentContext) -> ExperimentReport {
    let mut report = ExperimentReport::new(
        "e10",
        "Beyond the paper: price of anarchy of selfish LLC allocation — iterated best \
         response (NashBR) and best pure Nash equilibrium (NashEq) vs. the cooperative \
         RM2 (Paper I 4-core workloads, strict QoS)",
    );

    let grid = spec(ctx).lower().expect("the E10 spec lowers");
    let result = sweep::run(&grid, ctx);

    for axis in &grid.platforms {
        let mut br_poa = Vec::new();
        let mut eq_poa = Vec::new();
        let mut coop_violations = 0usize;
        let mut br_violations = 0usize;
        let mut eq_violations = 0usize;

        for mix in &axis.mixes {
            let coop = result.expect_comparison(&axis.label, &mix.name, "strict", "RM2");
            let br = result.expect_comparison(&axis.label, &mix.name, "strict", "NashBR");
            let eq = result.expect_comparison(&axis.label, &mix.name, "strict", "NashEq");

            let poa_br = price_of_anarchy(br.energy_savings, coop.energy_savings);
            let poa_eq = price_of_anarchy(eq.energy_savings, coop.energy_savings);
            br_poa.push(poa_br);
            eq_poa.push(poa_eq);
            coop_violations += coop.num_violations();
            br_violations += br.num_violations();
            eq_violations += eq.num_violations();

            report.push_row(
                ReportRow::new(mix.name.clone())
                    .with("RM2 savings %", coop.energy_savings * 100.0)
                    .with("NashBR savings %", br.energy_savings * 100.0)
                    .with("NashEq savings %", eq.energy_savings * 100.0)
                    .with("NashBR PoA", poa_br)
                    .with("NashEq PoA", poa_eq)
                    .with("NashBR QoS violations", br.num_violations() as f64),
            );
        }

        report.push_summary(format!(
            "{}: NashBR PoA avg {:.3} (anarchy gap {:+.1}% energy), NashEq PoA avg {:.3}; \
             QoS violations RM2 {} / NashBR {} / NashEq {}",
            axis.label,
            mean(&br_poa),
            (mean(&br_poa) - 1.0) * 100.0,
            mean(&eq_poa),
            coop_violations,
            br_violations,
            eq_violations,
        ));
    }

    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::PathBuf;

    #[test]
    fn quick_run_reports_poa_at_least_one_up_to_noise() {
        let ctx = ExperimentContext::new(true);
        let report = run(&ctx);
        assert!(!report.rows.is_empty());
        assert_eq!(report.summary.len(), 1);
        // Selfishness cannot beat the cooperative optimum by more than
        // simulation noise: PoA ≥ 1 − ε on every mix.
        for row in &report.rows {
            for col in ["NashBR PoA", "NashEq PoA"] {
                let poa = row.get(col).expect("PoA column present");
                assert!(poa >= 0.98, "{col} of {} is {poa:.4} < 1 - ε", row.label);
            }
        }
        // The selected equilibrium tracks the cooperative optimum much more
        // closely than unconstrained best response on average.
        let br: Vec<f64> = report
            .rows
            .iter()
            .filter_map(|r| r.get("NashBR PoA"))
            .collect();
        let eq: Vec<f64> = report
            .rows
            .iter()
            .filter_map(|r| r.get("NashEq PoA"))
            .collect();
        assert!(mean(&eq) <= mean(&br) + 1e-9);
        let rendered = report.render();
        assert!(rendered.contains("NashBR PoA"));
        assert!(rendered.contains("NashEq PoA"));
    }

    #[test]
    fn report_renders_byte_identically_across_runs() {
        // The golden-lock contract E1–E8 follow: two cold contexts must
        // produce byte-identical rendered reports.
        let first = run(&ExperimentContext::new(true)).render();
        let second = run(&ExperimentContext::new(true)).render();
        assert_eq!(first, second);
    }

    #[test]
    fn committed_quick_spec_is_in_sync() {
        let expected = spec(&ExperimentContext::new(true));
        let path =
            PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../examples/specs/e10_quick.json");
        if std::env::var("QOSRM_UPDATE_SPECS").is_ok() {
            expected.save(&path).expect("spec saves");
        }
        let committed = ScenarioSpec::load(&path).expect("committed E10 quick spec loads");
        assert_eq!(
            committed, expected,
            "examples/specs/e10_quick.json is stale; rerun this test with \
             QOSRM_UPDATE_SPECS=1 to refresh it"
        );
    }
}
