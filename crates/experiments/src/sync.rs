//! Poison-tolerant locking for shared pipeline state.
//!
//! Every long-lived service in the workspace — the serve daemon, the sweep
//! coordinator, the experiment context's telemetry and database cache —
//! shares state between worker threads through [`std::sync::Mutex`]. A
//! panicking worker poisons any mutex it holds, and a bare
//! `.lock().unwrap()` then re-panics in *every* subsequent accessor,
//! cascading one bad run into a dead daemon.
//!
//! That cascade is never the right trade here: all durable state is written
//! **save-before-grant** (snapshots and shard logs reach disk via atomic
//! renames *before* in-memory bookkeeping advances), so the value behind a
//! poisoned lock is at worst a step behind the disk — consistent, and
//! exactly what crash recovery already tolerates. These helpers inherit the
//! inner value and keep serving.

use std::sync::{Condvar, Mutex, MutexGuard};

/// Poison-tolerant [`Mutex`] locking.
pub trait LockUnpoisoned<T> {
    /// Locks the mutex, inheriting the inner value if a previous holder
    /// panicked (see the module docs for why that is sound here).
    fn lock_unpoisoned(&self) -> MutexGuard<'_, T>;
}

impl<T> LockUnpoisoned<T> for Mutex<T> {
    fn lock_unpoisoned(&self) -> MutexGuard<'_, T> {
        self.lock().unwrap_or_else(|poisoned| poisoned.into_inner())
    }
}

/// Poison-tolerant [`Condvar`] waiting.
pub trait WaitUnpoisoned {
    /// Waits on the condition variable, inheriting the guard if the mutex
    /// was poisoned while parked.
    fn wait_unpoisoned<'a, T>(&self, guard: MutexGuard<'a, T>) -> MutexGuard<'a, T>;
}

impl WaitUnpoisoned for Condvar {
    fn wait_unpoisoned<'a, T>(&self, guard: MutexGuard<'a, T>) -> MutexGuard<'a, T> {
        self.wait(guard)
            .unwrap_or_else(|poisoned| poisoned.into_inner())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::{Arc, Mutex};

    #[test]
    fn a_poisoned_mutex_is_recovered_with_its_last_state() {
        let state = Arc::new(Mutex::new(0u64));
        let poisoner = Arc::clone(&state);
        let _ = std::thread::spawn(move || {
            let mut guard = poisoner.lock().unwrap();
            *guard = 7;
            panic!("poison the lock mid-update");
        })
        .join();
        assert!(state.lock().is_err(), "the lock must actually be poisoned");
        assert_eq!(*state.lock_unpoisoned(), 7, "inner state is inherited");
        // And the recovery is repeatable: the lock stays usable.
        *state.lock_unpoisoned() += 1;
        assert_eq!(*state.lock_unpoisoned(), 8);
    }
}
