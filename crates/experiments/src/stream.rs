//! Streaming, sharded, resumable execution of scenario sweeps.
//!
//! The in-memory executor ([`crate::sweep::run_with`]) holds every
//! [`ScenarioOutcome`] until the sweep completes — fine for the paper's
//! grids, fatal for the long tail: a 10k-scenario synthetic sweep that dies
//! at 97% loses everything, and its result set may not fit in RAM at all.
//! This module executes the same grids as a sequence of **shards**:
//!
//! * scenarios are enumerated in the canonical axis order and chunked into
//!   shards of [`StreamOptions::shard_size`];
//! * each completed shard is appended to the run directory as a JSONL log
//!   (`shard-0000.jsonl`, one serialized [`ScenarioOutcome`] per line,
//!   written atomically) and recorded in the checkpoint manifest
//!   (`manifest.json`) together with its [`qosrm_core::CurveCache`] hit
//!   statistics — the cache itself is shared across shards, so later
//!   shards benefit from curves computed by earlier ones;
//! * per-mix simulators and baselines live only for the duration of their
//!   shard, and outcomes go to disk as soon as their shard completes, so
//!   resident memory is bounded by the shard size, not the sweep size;
//! * a killed run is resumed with [`resume`]: completed scenarios are
//!   scanned from the shard logs and skipped, and only the remainder is
//!   simulated. Simulation is deterministic, so the final [`merge`]d
//!   [`SweepResult`] is byte-identical to an uninterrupted run — and to
//!   the in-memory executor (`tests/streaming_resume.rs` locks both in).
//!
//! The unit of work on disk is the [`ScenarioSpec`] IR: the manifest embeds
//! the spec (plus the quick/full database mode), so a run directory is
//! self-describing — `resume` and `merge` need nothing but the directory.

use crate::context::ExperimentContext;
use crate::spec::ScenarioSpec;
use crate::sweep::{
    grid_points, mix_pairs, scenario_key, GridPoint, ScenarioKey, ScenarioOutcome, SweepEngine,
    SweepOptions, SweepResult,
};
use qosrm_types::QosrmError;
use serde::{Deserialize, Serialize};
use std::collections::{HashMap, HashSet};
use std::fs;
use std::path::{Path, PathBuf};

/// Execution knobs of a streaming sweep. Like [`SweepOptions`], none of
/// them affect results — only how the work is chunked and executed.
#[derive(Debug, Clone, Copy)]
pub struct StreamOptions {
    /// Scenarios per shard (bounds resident outcomes and checkpoint
    /// granularity). Applies to the shards of *this* call — a [`resume`]
    /// may chunk finer or coarser than the original run; the manifest
    /// records the size most recently used.
    pub shard_size: usize,
    /// Stop after this many shards in one call (0 = run to completion).
    /// Used by tests and smoke runs to exercise partial progress
    /// deterministically.
    pub max_shards: usize,
    /// Execution switches shared with the in-memory path.
    pub sweep: SweepOptions,
}

impl Default for StreamOptions {
    fn default() -> Self {
        StreamOptions {
            shard_size: 32,
            max_shards: 0,
            sweep: SweepOptions::default(),
        }
    }
}

/// One completed shard in the checkpoint manifest.
///
/// Shards normally enter the manifest right after their log is written; a
/// shard whose manifest update was lost to a kill is *reconciled* from its
/// log on the next [`resume`], with its cache statistics zeroed (the
/// counters died with the killed process).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ShardRecord {
    /// Shard log file name within the run directory.
    pub file: String,
    /// Scenarios the shard completed.
    pub scenarios: usize,
    /// Energy-curve cache hits scored while the shard ran (0 for a shard
    /// reconciled from disk after a kill).
    pub curve_hits: u64,
    /// Energy-curve cache misses scored while the shard ran (0 for a shard
    /// reconciled from disk after a kill).
    pub curve_misses: u64,
}

impl ShardRecord {
    /// Fraction of the shard's curve lookups answered from the shared
    /// cache (0 when the shard did no lookups).
    pub fn curve_hit_rate(&self) -> f64 {
        let total = self.curve_hits + self.curve_misses;
        if total == 0 {
            0.0
        } else {
            self.curve_hits as f64 / total as f64
        }
    }
}

/// The checkpoint manifest of a streaming run directory.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SweepManifest {
    /// The sweep being executed.
    pub spec: ScenarioSpec,
    /// Whether the run uses quick-mode databases (results depend on it, so
    /// a resume must match).
    pub quick: bool,
    /// Scenarios per shard of the most recent `run`/`resume` call (the
    /// CLI's `sweep resume` defaults to it when `--shard-size` is absent).
    pub shard_size: usize,
    /// Total scenarios the spec lowers to.
    pub total_scenarios: usize,
    /// Scenarios completed across all shards so far.
    pub completed_scenarios: usize,
    /// Completed shards, in execution order.
    pub shards: Vec<ShardRecord>,
}

/// File name of the checkpoint manifest.
pub const MANIFEST_FILE: &str = "manifest.json";

impl SweepManifest {
    /// Loads the manifest of a run directory.
    pub fn load(dir: &Path) -> Result<Self, QosrmError> {
        simdb::persist::load_json(&dir.join(MANIFEST_FILE))
    }

    fn save(&self, dir: &Path) -> Result<(), QosrmError> {
        // Durable: the manifest is crash-recovery state — a daemon restart
        // right after a "shard complete" report must find it on disk.
        simdb::persist::save_json_durable(self, &dir.join(MANIFEST_FILE))
    }
}

/// What one [`run`]/[`resume`] call accomplished.
#[derive(Debug, Clone, PartialEq)]
pub struct StreamReport {
    /// Total scenarios of the sweep.
    pub total: usize,
    /// Scenarios completed on disk after this call.
    pub completed: usize,
    /// Scenarios found already complete when this call started.
    pub skipped: usize,
    /// Shards this call executed.
    pub shards_run: usize,
    /// Whether the sweep is now complete.
    pub finished: bool,
}

/// Starts a fresh streaming run of `spec` in `dir`.
///
/// Fails if `dir` already contains a manifest (use [`resume`] to continue
/// an interrupted run).
pub fn run(
    spec: &ScenarioSpec,
    ctx: &ExperimentContext,
    dir: &Path,
    options: &StreamOptions,
) -> Result<StreamReport, QosrmError> {
    if dir.join(MANIFEST_FILE).exists() {
        return Err(QosrmError::Io(format!(
            "{} already contains a streaming run; use resume to continue it",
            dir.display()
        )));
    }
    let grid = spec.lower()?;
    let manifest = SweepManifest {
        spec: spec.clone(),
        quick: ctx.quick,
        shard_size: options.shard_size.max(1),
        total_scenarios: grid.len(),
        completed_scenarios: 0,
        shards: Vec::new(),
    };
    fs::create_dir_all(dir)?;
    manifest.save(dir)?;
    run_pending(manifest, ctx, dir, options)
}

/// Resumes an interrupted streaming run from its directory.
///
/// Completed scenarios (scanned from the shard logs) are skipped; the
/// context's quick/full mode must match the original run, because the
/// simulation databases — and therefore the results — depend on it.
pub fn resume(
    ctx: &ExperimentContext,
    dir: &Path,
    options: &StreamOptions,
) -> Result<StreamReport, QosrmError> {
    let manifest = SweepManifest::load(dir)?;
    if manifest.quick != ctx.quick {
        return Err(QosrmError::Io(format!(
            "run at {} was started in {} mode but the resume context is {} mode; \
             results would not be comparable",
            dir.display(),
            if manifest.quick { "quick" } else { "full" },
            if ctx.quick { "quick" } else { "full" },
        )));
    }
    run_pending(manifest, ctx, dir, options)
}

/// Merges the shard logs of a (complete) streaming run into the final
/// [`SweepResult`], in canonical axis order — byte-identical to what the
/// in-memory executor produces for the same spec.
pub fn merge(dir: &Path) -> Result<SweepResult, QosrmError> {
    let manifest = SweepManifest::load(dir)?;
    let grid = manifest.spec.lower()?;
    let mut by_key: HashMap<ScenarioKey, ScenarioOutcome> = HashMap::new();
    scan_shards(dir, |_, outcome| {
        by_key.entry(outcome.key.clone()).or_insert(outcome);
    })?;
    let scenarios = grid_points(&grid)
        .into_iter()
        .map(|point| {
            let key = scenario_key(&grid, point);
            by_key.remove(&key).ok_or_else(|| {
                QosrmError::Io(format!(
                    "streaming run at {} is incomplete: scenario {key} has no outcome \
                     (resume the run before merging)",
                    dir.display()
                ))
            })
        })
        .collect::<Result<Vec<_>, QosrmError>>()?;
    Ok(SweepResult { scenarios })
}

/// Executes the scenarios of `manifest` that have no outcome on disk yet.
fn run_pending(
    mut manifest: SweepManifest,
    ctx: &ExperimentContext,
    dir: &Path,
    options: &StreamOptions,
) -> Result<StreamReport, QosrmError> {
    let grid = manifest.spec.lower()?;
    let points = grid_points(&grid);
    // Keys-only scan: a resume near the end of a huge sweep must not
    // materialize every completed outcome just to know what to skip.
    let mut completed: HashSet<ScenarioKey> = HashSet::new();
    let mut on_disk: Vec<(String, usize)> = Vec::new();
    scan_shards(dir, |file, outcome| {
        completed.insert(outcome.key);
        match on_disk.last_mut() {
            Some((last, count)) if last == file => *count += 1,
            _ => on_disk.push((file.to_string(), 1)),
        }
    })?;
    let pending: Vec<GridPoint> = points
        .iter()
        .copied()
        .filter(|&point| !completed.contains(&scenario_key(&grid, point)))
        .collect();
    let skipped = points.len() - pending.len();
    // Reconcile the manifest with what is actually on disk: a kill may have
    // landed between a shard write and its manifest update, in which case
    // the shard's outcomes exist but its record (and cache statistics, lost
    // with the process) does not.
    manifest.completed_scenarios = skipped;
    manifest.shard_size = options.shard_size.max(1);
    for (file, scenarios) in &on_disk {
        if !manifest.shards.iter().any(|record| &record.file == file) {
            manifest.shards.push(ShardRecord {
                file: file.clone(),
                scenarios: *scenarios,
                curve_hits: 0,
                curve_misses: 0,
            });
        }
    }
    // The inverse divergence: a crash in the rename-without-dirsync window
    // (shard log written non-durably, manifest updated, then the log's
    // directory entry lost) leaves a manifest record with no file behind
    // it. Drop such ghost records — their scenarios are simply pending
    // again — so the manifest never claims shards that do not exist.
    manifest
        .shards
        .retain(|record| dir.join(&record.file).is_file());
    manifest.shards.sort_by(|a, b| a.file.cmp(&b.file));

    if pending.is_empty() {
        manifest.save(dir)?;
        return Ok(StreamReport {
            total: points.len(),
            completed: skipped,
            skipped,
            shards_run: 0,
            finished: true,
        });
    }

    let engine = SweepEngine::new(&grid, ctx, options.sweep);
    let first_shard = next_shard_index(dir)?;
    let mut shards_run = 0usize;
    for (next_shard, chunk) in (first_shard..).zip(pending.chunks(options.shard_size.max(1))) {
        if options.max_shards > 0 && shards_run >= options.max_shards {
            break;
        }
        // Per-shard simulators and baselines: built here, dropped at the end
        // of the shard, so resident state is bounded by the shard size.
        let units = engine.build_units(&mix_pairs(chunk));
        let cache = ctx.curve_cache();
        let (hits_before, misses_before) = (cache.hits(), cache.misses());
        let outcomes = engine.evaluate_all(&units, chunk);
        drop(units);

        let file = format!("shard-{next_shard:04}.jsonl");
        let mut log = String::new();
        for outcome in &outcomes {
            log.push_str(
                &serde_json::to_string(outcome).map_err(|e| QosrmError::Io(e.to_string()))?,
            );
            log.push('\n');
        }
        // Durable (fsync file + run directory): once the shard is recorded
        // in the manifest, a crash — even a power cut — must not be able to
        // roll the log's rename back out of the directory.
        simdb::persist::write_atomic_durable(&dir.join(&file), log.as_bytes())?;

        manifest.completed_scenarios += outcomes.len();
        manifest.shards.push(ShardRecord {
            file,
            scenarios: outcomes.len(),
            curve_hits: cache.hits() - hits_before,
            curve_misses: cache.misses() - misses_before,
        });
        manifest.save(dir)?;
        shards_run += 1;
    }

    Ok(StreamReport {
        total: points.len(),
        completed: manifest.completed_scenarios,
        skipped,
        shards_run,
        finished: manifest.completed_scenarios == points.len(),
    })
}

/// The shard log files of a run directory, sorted by shard index.
fn shard_files(dir: &Path) -> Result<Vec<PathBuf>, QosrmError> {
    let mut files = Vec::new();
    for entry in fs::read_dir(dir)? {
        let entry = entry?;
        let name = entry.file_name().to_string_lossy().into_owned();
        if name.starts_with("shard-") && name.ends_with(".jsonl") {
            files.push(entry.path());
        }
    }
    files.sort();
    Ok(files)
}

/// Index to use for the next shard log (max existing index + 1).
fn next_shard_index(dir: &Path) -> Result<usize, QosrmError> {
    Ok(shard_files(dir)?
        .iter()
        .filter_map(|path| {
            path.file_name()?
                .to_string_lossy()
                .strip_prefix("shard-")?
                .strip_suffix(".jsonl")?
                .parse::<usize>()
                .ok()
        })
        .map(|idx| idx + 1)
        .max()
        .unwrap_or(0))
}

/// Visits every completed outcome in the shard logs, in shard order,
/// passing each visitor the shard's file name. The visitor decides what to
/// retain — a resume keeps only the keys, a merge the full outcomes.
///
/// A malformed *final* line of a log is tolerated (a torn write from a
/// killed process — that scenario simply counts as not completed); a
/// malformed line in the middle of a log is corruption and fails the scan.
fn scan_shards(dir: &Path, mut visit: impl FnMut(&str, ScenarioOutcome)) -> Result<(), QosrmError> {
    for path in shard_files(dir)? {
        let file = path
            .file_name()
            .map(|n| n.to_string_lossy().into_owned())
            .unwrap_or_default();
        let text = fs::read_to_string(&path)?;
        let lines: Vec<&str> = text.lines().collect();
        for (i, line) in lines.iter().enumerate() {
            if line.trim().is_empty() {
                continue;
            }
            match serde_json::from_str::<ScenarioOutcome>(line) {
                Ok(outcome) => visit(&file, outcome),
                Err(e) if i + 1 == lines.len() => {
                    // Torn trailing line: drop it, the scenario re-runs.
                    let _ = e;
                }
                Err(e) => {
                    return Err(QosrmError::Io(format!(
                        "corrupt shard log {} at line {}: {e}",
                        path.display(),
                        i + 1
                    )));
                }
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::{PlatformAxisSpec, PlatformSpec, WorkloadSource};
    use crate::sweep::{QosAxis, RmaVariant};
    use qosrm_types::QosSpec;
    use workload::{MixPopulation, SynthSpec};

    fn tiny_spec() -> ScenarioSpec {
        ScenarioSpec {
            name: "stream-test".to_string(),
            platforms: vec![PlatformAxisSpec {
                label: "p4".to_string(),
                platform: PlatformSpec::Paper1 { num_cores: 4 },
                workloads: WorkloadSource::Synth(SynthSpec {
                    seed: 3,
                    count: 3,
                    num_cores: 4,
                    population: MixPopulation::Mixed,
                    name_prefix: "s-".to_string(),
                }),
            }],
            qos: vec![QosAxis::uniform("strict", QosSpec::STRICT)],
            variants: vec![RmaVariant::Paper1],
            options: Some(rma_sim::SimulationOptions {
                provide_mlp_profiles: false,
                ..Default::default()
            }),
        }
    }

    fn temp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("qosrm_stream_{tag}_{}", std::process::id()));
        fs::remove_dir_all(&dir).ok();
        dir
    }

    #[test]
    fn run_refuses_an_existing_run_directory() {
        let dir = temp_dir("existing");
        let ctx = ExperimentContext::new(true);
        let spec = tiny_spec();
        let options = StreamOptions {
            shard_size: 2,
            ..Default::default()
        };
        run(&spec, &ctx, &dir, &options).unwrap();
        assert!(run(&spec, &ctx, &dir, &options).is_err());
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn partial_run_checkpoints_and_resume_completes() {
        let dir = temp_dir("partial");
        let ctx = ExperimentContext::new(true);
        let spec = tiny_spec();
        let partial = StreamOptions {
            shard_size: 1,
            max_shards: 2,
            ..Default::default()
        };
        let report = run(&spec, &ctx, &dir, &partial).unwrap();
        assert_eq!(report.total, 3);
        assert_eq!(report.completed, 2);
        assert!(!report.finished);
        // Merging an incomplete run names the missing scenario.
        assert!(merge(&dir).is_err());

        let manifest = SweepManifest::load(&dir).unwrap();
        assert_eq!(manifest.shards.len(), 2);
        assert_eq!(manifest.completed_scenarios, 2);

        let rest = StreamOptions {
            shard_size: 1,
            ..Default::default()
        };
        let report = resume(&ctx, &dir, &rest).unwrap();
        assert_eq!(report.skipped, 2);
        assert!(report.finished);
        let merged = merge(&dir).unwrap();
        assert_eq!(merged.scenarios.len(), 3);
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn resume_rejects_a_database_mode_mismatch() {
        let dir = temp_dir("mode");
        let ctx = ExperimentContext::new(true);
        run(&tiny_spec(), &ctx, &dir, &StreamOptions::default()).unwrap();
        let full = ExperimentContext::new(false);
        assert!(resume(&full, &dir, &StreamOptions::default()).is_err());
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn lost_shard_log_with_manifest_record_is_rerun() {
        // Replays the rename-without-dirsync window: before the durable
        // write fix, a crash immediately after "shard complete" could
        // persist the manifest record while the shard log's rename never
        // reached the directory. The run directory then claims a shard
        // that does not exist; resume must treat its scenarios as pending
        // and heal to a byte-identical merge.
        let dir = temp_dir("lost_log");
        let ctx = ExperimentContext::new(true);
        run(
            &tiny_spec(),
            &ctx,
            &dir,
            &StreamOptions {
                shard_size: 1,
                ..Default::default()
            },
        )
        .unwrap();
        let reference = serde_json::to_string(&merge(&dir).unwrap()).unwrap();
        // Simulate the lost rename: delete a middle shard log but keep its
        // manifest record (the manifest was saved after the shard).
        fs::remove_file(dir.join("shard-0001.jsonl")).unwrap();
        let manifest = SweepManifest::load(&dir).unwrap();
        assert!(manifest.shards.iter().any(|s| s.file == "shard-0001.jsonl"));
        assert!(
            merge(&dir).is_err(),
            "merge must refuse the healed-over gap"
        );

        let report = resume(&ctx, &dir, &StreamOptions::default()).unwrap();
        assert!(report.finished);
        assert_eq!(report.skipped, 2);
        let healed = serde_json::to_string(&merge(&dir).unwrap()).unwrap();
        assert_eq!(healed, reference, "healed merge must be byte-identical");
        // The ghost record is gone and every recorded shard exists on disk.
        let manifest = SweepManifest::load(&dir).unwrap();
        assert!(manifest.shards.iter().all(|s| dir.join(&s.file).is_file()));
        assert!(!manifest.shards.iter().any(|s| s.file == "shard-0001.jsonl"));
        assert_eq!(manifest.completed_scenarios, 3);
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn torn_trailing_shard_line_is_dropped_and_rerun() {
        let dir = temp_dir("torn");
        let ctx = ExperimentContext::new(true);
        run(
            &tiny_spec(),
            &ctx,
            &dir,
            &StreamOptions {
                shard_size: 1,
                ..Default::default()
            },
        )
        .unwrap();
        let reference = merge(&dir).unwrap();
        // Tear the last line of the last shard log.
        let last = shard_files(&dir).unwrap().pop().unwrap();
        let text = fs::read_to_string(&last).unwrap();
        fs::write(&last, &text[..text.len() / 2]).unwrap();
        assert!(merge(&dir).is_err());
        let report = resume(&ctx, &dir, &StreamOptions::default()).unwrap();
        assert!(report.finished);
        assert_eq!(report.skipped, 2);
        let healed = merge(&dir).unwrap();
        assert_eq!(healed, reference);
        fs::remove_dir_all(&dir).ok();
    }
}
