//! Streaming, sharded, resumable execution of scenario sweeps — now built
//! on a **lease-based shard scheduler** so the same run directory can be
//! driven by one process or by many.
//!
//! The in-memory executor ([`crate::sweep::run_with`]) holds every
//! [`ScenarioOutcome`] until the sweep completes — fine for the paper's
//! grids, fatal for the long tail: a 10k-scenario synthetic sweep that dies
//! at 97% loses everything, and its result set may not fit in RAM at all.
//! This module executes the same grids as a sequence of **shards**:
//!
//! * scenarios are enumerated in the canonical axis order and chunked into
//!   shards of [`StreamOptions::shard_size`];
//! * each completed shard is appended to the run directory as a JSONL log
//!   (`shard-0000.jsonl`, one serialized [`ScenarioOutcome`] per line,
//!   written atomically) and recorded in the checkpoint manifest
//!   (`manifest.json`) together with its [`qosrm_core::CurveCache`] hit
//!   statistics;
//! * per-mix simulators and baselines live only for the duration of their
//!   shard, and outcomes go to disk as soon as their shard completes, so
//!   resident memory is bounded by the shard size, not the sweep size;
//! * a killed run is resumed with [`resume`]: completed scenarios are
//!   scanned from the shard logs and skipped, and only the remainder is
//!   simulated. Simulation is deterministic, so the final [`merge`]d
//!   [`SweepResult`] is byte-identical to an uninterrupted run — and to
//!   the in-memory executor (`tests/streaming_resume.rs` locks both in).
//!
//! ## The lease protocol
//!
//! Work distribution is a [`ShardScheduler`] over durable [`LeaseRecord`]s
//! in the manifest. Each shard moves through three states:
//!
//! ```text
//!            lease()                 complete(epoch match)
//! Pending ────────────▶ Leased{worker, epoch, expiry} ───────▶ Done
//!    ▲                       │              │
//!    │   expiry (reinject)   │              │ heartbeat()
//!    └───────────────────────┘              ▼ (renews expiry)
//! ```
//!
//! Every grant increments the shard's **lease epoch**; a completion is
//! accepted only if it names the currently active epoch, so when a lease
//! expires and the shard is reinjected, a presumed-dead worker finishing
//! late is rejected as *stale* and exactly one shard log ever wins. The
//! single-process [`run`]/[`resume`] path is the degenerate case — one
//! `"local"` worker leasing from its own scheduler — so the multi-process
//! coordinator ([`crate::dist`]) shares every line of the checkpoint and
//! recovery logic with the path the tests already pin down.
//!
//! The unit of work on disk is the [`ScenarioSpec`] IR: the manifest embeds
//! the spec (plus the quick/full database mode), so a run directory is
//! self-describing — `resume` and `merge` need nothing but the directory.

use crate::context::ExperimentContext;
use crate::spec::ScenarioSpec;
use crate::sweep::{
    grid_points, mix_pairs, scenario_key, GridPoint, ScenarioKey, ScenarioOutcome, SweepEngine,
    SweepOptions, SweepResult,
};
use crate::sync::LockUnpoisoned;
use qosrm_proto::LeaseTelemetry;
use qosrm_types::QosrmError;
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, HashMap, HashSet, VecDeque};
use std::fs;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// Execution knobs of a streaming sweep. Like [`SweepOptions`], none of
/// them affect results — only how the work is chunked and executed.
#[derive(Debug, Clone, Copy)]
pub struct StreamOptions {
    /// Scenarios per shard (bounds resident outcomes and checkpoint
    /// granularity). Applies to the shards of *this* call — a [`resume`]
    /// may chunk finer or coarser than the original run; the manifest
    /// records the size most recently used.
    pub shard_size: usize,
    /// Stop after this many shards in one call (0 = run to completion).
    /// Used by tests and smoke runs to exercise partial progress
    /// deterministically.
    pub max_shards: usize,
    /// Execution switches shared with the in-memory path.
    pub sweep: SweepOptions,
}

impl Default for StreamOptions {
    fn default() -> Self {
        StreamOptions {
            shard_size: 32,
            max_shards: 0,
            sweep: SweepOptions::default(),
        }
    }
}

/// One completed shard in the checkpoint manifest.
///
/// Shards normally enter the manifest right after their log is written; a
/// shard whose manifest update was lost to a kill is *reconciled* from its
/// log on the next [`resume`], with its cache statistics zeroed (the
/// counters died with the killed process).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ShardRecord {
    /// Shard log file name within the run directory.
    pub file: String,
    /// Scenarios the shard completed.
    pub scenarios: usize,
    /// Energy-curve cache hits scored while the shard ran (0 for a shard
    /// reconciled from disk after a kill).
    pub curve_hits: u64,
    /// Energy-curve cache misses scored while the shard ran (0 for a shard
    /// reconciled from disk after a kill).
    pub curve_misses: u64,
}

impl ShardRecord {
    /// Fraction of the shard's curve lookups answered from the shared
    /// cache (0 when the shard did no lookups).
    pub fn curve_hit_rate(&self) -> f64 {
        let total = self.curve_hits + self.curve_misses;
        if total == 0 {
            0.0
        } else {
            self.curve_hits as f64 / total as f64
        }
    }
}

/// The durable lease state of one shard — who holds it, under which epoch,
/// until when, and which grid points it covers.
///
/// Exactly one record exists per shard; a re-grant after expiry updates the
/// record in place with a higher epoch, so the record always carries the
/// highest epoch ever issued for the shard and epochs can never regress
/// across a coordinator restart.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct LeaseRecord {
    /// Shard index (names the `shard-NNNN.jsonl` log).
    pub shard: u64,
    /// Worker the shard is (or was last) leased to; empty before the first
    /// grant.
    pub worker: String,
    /// Highest lease epoch issued for the shard (0 = never granted). Only
    /// a completion naming this exact epoch — while the lease is live — is
    /// accepted.
    pub epoch: u64,
    /// Coordinator-clock lease expiry, milliseconds since the Unix epoch.
    ///
    /// The boundary is **inclusive of expiry**: the lease is live only
    /// while `now_ms < expires_ms`. At `now_ms == expires_ms` exactly the
    /// lease is already expired — eligible for reinjection, unrenewable,
    /// and its completions are stale (see
    /// [`ShardScheduler::heartbeat`]).
    pub expires_ms: u64,
    /// Whether the shard's log has been accepted and durably written.
    pub done: bool,
    /// Grid-point indices (into the spec's canonical point order) the
    /// shard evaluates. Persisted so chunk boundaries survive a
    /// coordinator restart — re-chunking live points would otherwise shift
    /// assignments under workers holding leases.
    pub indices: Vec<u64>,
}

/// The checkpoint manifest of a streaming run directory.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SweepManifest {
    /// The sweep being executed.
    pub spec: ScenarioSpec,
    /// Whether the run uses quick-mode databases (results depend on it, so
    /// a resume must match).
    pub quick: bool,
    /// Scenarios per shard of the most recent `run`/`resume` call (the
    /// CLI's `sweep resume` defaults to it when `--shard-size` is absent).
    pub shard_size: usize,
    /// Total scenarios the spec lowers to.
    pub total_scenarios: usize,
    /// Scenarios completed across all shards so far.
    pub completed_scenarios: usize,
    /// Completed shards, in completion order.
    pub shards: Vec<ShardRecord>,
    /// Durable per-shard lease state (see [`LeaseRecord`]).
    pub leases: Vec<LeaseRecord>,
}

/// File name of the checkpoint manifest.
pub const MANIFEST_FILE: &str = "manifest.json";

/// Worker id of the synchronous single-process executor. Its leases are
/// reclaimed unconditionally whenever a scheduler opens the directory: the
/// local executor leases and completes in one call stack, so a surviving
/// `"local"` lease always belongs to a dead process.
pub const LOCAL_WORKER: &str = "local";

impl SweepManifest {
    /// Loads the manifest of a run directory.
    pub fn load(dir: &Path) -> Result<Self, QosrmError> {
        simdb::persist::load_json(&dir.join(MANIFEST_FILE))
    }

    fn save(&self, dir: &Path) -> Result<(), QosrmError> {
        // Durable: the manifest is crash-recovery state — a daemon restart
        // right after a "shard complete" report must find it on disk.
        simdb::persist::save_json_durable(self, &dir.join(MANIFEST_FILE))
    }
}

/// What one [`run`]/[`resume`] call accomplished.
#[derive(Debug, Clone, PartialEq)]
pub struct StreamReport {
    /// Total scenarios of the sweep.
    pub total: usize,
    /// Scenarios completed on disk after this call.
    pub completed: usize,
    /// Scenarios found already complete when this call started.
    pub skipped: usize,
    /// Shards this call executed.
    pub shards_run: usize,
    /// Whether the sweep is now complete.
    pub finished: bool,
}

/// Creates the manifest of a fresh streaming run directory.
///
/// Fails if `dir` already contains a manifest. This is the shared entry
/// point of [`run`] and the distributed coordinator
/// ([`crate::dist::Coordinator`]); both then drive the same
/// [`ShardScheduler`] over the directory.
pub fn init_manifest(
    spec: &ScenarioSpec,
    quick: bool,
    dir: &Path,
    shard_size: usize,
) -> Result<SweepManifest, QosrmError> {
    if dir.join(MANIFEST_FILE).exists() {
        return Err(QosrmError::Io(format!(
            "{} already contains a streaming run; use resume to continue it",
            dir.display()
        )));
    }
    let grid = spec.lower()?;
    let manifest = SweepManifest {
        spec: spec.clone(),
        quick,
        shard_size: shard_size.max(1),
        total_scenarios: grid.len(),
        completed_scenarios: 0,
        shards: Vec::new(),
        leases: Vec::new(),
    };
    fs::create_dir_all(dir)?;
    manifest.save(dir)?;
    Ok(manifest)
}

/// Starts a fresh streaming run of `spec` in `dir`.
///
/// Fails if `dir` already contains a manifest (use [`resume`] to continue
/// an interrupted run).
pub fn run(
    spec: &ScenarioSpec,
    ctx: &ExperimentContext,
    dir: &Path,
    options: &StreamOptions,
) -> Result<StreamReport, QosrmError> {
    let manifest = init_manifest(spec, ctx.quick, dir, options.shard_size)?;
    run_pending(manifest, ctx, dir, options)
}

/// Resumes an interrupted streaming run from its directory.
///
/// Completed scenarios (scanned from the shard logs) are skipped; the
/// context's quick/full mode must match the original run, because the
/// simulation databases — and therefore the results — depend on it.
pub fn resume(
    ctx: &ExperimentContext,
    dir: &Path,
    options: &StreamOptions,
) -> Result<StreamReport, QosrmError> {
    let manifest = SweepManifest::load(dir)?;
    if manifest.quick != ctx.quick {
        return Err(QosrmError::Io(format!(
            "run at {} was started in {} mode but the resume context is {} mode; \
             results would not be comparable",
            dir.display(),
            if manifest.quick { "quick" } else { "full" },
            if ctx.quick { "quick" } else { "full" },
        )));
    }
    run_pending(manifest, ctx, dir, options)
}

/// Merges the shard logs of a (complete) streaming run into the final
/// [`SweepResult`], in canonical axis order — byte-identical to what the
/// in-memory executor produces for the same spec, regardless of how many
/// workers wrote the shards or in which order.
pub fn merge(dir: &Path) -> Result<SweepResult, QosrmError> {
    let manifest = SweepManifest::load(dir)?;
    let grid = manifest.spec.lower()?;
    let mut by_key: HashMap<ScenarioKey, ScenarioOutcome> = HashMap::new();
    scan_shards(dir, |_, outcome| {
        by_key.entry(outcome.key.clone()).or_insert(outcome);
    })?;
    let scenarios = grid_points(&grid)
        .into_iter()
        .map(|point| {
            let key = scenario_key(&grid, point);
            by_key.remove(&key).ok_or_else(|| {
                QosrmError::Io(format!(
                    "streaming run at {} is incomplete: scenario {key} has no outcome \
                     (resume the run before merging)",
                    dir.display()
                ))
            })
        })
        .collect::<Result<Vec<_>, QosrmError>>()?;
    Ok(SweepResult { scenarios })
}

/// The log file name of shard `shard` within its run directory.
pub fn shard_file_name(shard: u64) -> String {
    format!("shard-{shard:04}.jsonl")
}

/// Process-lifetime counters of the lease protocol, shared (via `Arc`)
/// between a scheduler and whatever surfaces its telemetry — the
/// coordinator's `/status`, the daemon's `/stats`.
#[derive(Debug, Default)]
pub struct LeaseCounters {
    granted: AtomicU64,
    renewed: AtomicU64,
    expired: AtomicU64,
    reinjected: AtomicU64,
    stale_rejected: AtomicU64,
    completed: AtomicU64,
    per_worker: Mutex<BTreeMap<String, u64>>,
}

impl LeaseCounters {
    fn bump_granted(&self) {
        self.granted.fetch_add(1, Ordering::Relaxed);
    }

    fn bump_renewed(&self) {
        self.renewed.fetch_add(1, Ordering::Relaxed);
    }

    fn bump_expired_reinjected(&self) {
        self.expired.fetch_add(1, Ordering::Relaxed);
        self.reinjected.fetch_add(1, Ordering::Relaxed);
    }

    fn bump_stale(&self) {
        self.stale_rejected.fetch_add(1, Ordering::Relaxed);
    }

    fn bump_completed(&self, worker: &str) {
        self.completed.fetch_add(1, Ordering::Relaxed);
        let mut per_worker = self.per_worker.lock_unpoisoned();
        *per_worker.entry(worker.to_string()).or_insert(0) += 1;
    }

    /// A plain-data snapshot of every counter.
    pub fn snapshot(&self) -> LeaseTelemetry {
        LeaseTelemetry {
            granted: self.granted.load(Ordering::Relaxed),
            renewed: self.renewed.load(Ordering::Relaxed),
            expired: self.expired.load(Ordering::Relaxed),
            reinjected: self.reinjected.load(Ordering::Relaxed),
            stale_rejected: self.stale_rejected.load(Ordering::Relaxed),
            completed: self.completed.load(Ordering::Relaxed),
            per_worker: self.per_worker.lock_unpoisoned().clone(),
        }
    }
}

/// One granted lease, as handed to a worker.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShardLease {
    /// Leased shard index.
    pub shard: u64,
    /// The lease epoch the grant was issued under; completions must echo
    /// it exactly.
    pub epoch: u64,
    /// The shard's log file name.
    pub file: String,
    /// Grid-point indices (into the spec's canonical point order) to
    /// evaluate.
    pub points: Vec<u64>,
    /// Coordinator-clock expiry of the lease, milliseconds. Inclusive of
    /// expiry: the lease is live only while `now < expires_ms` on the
    /// coordinator's clock (see [`LeaseRecord::expires_ms`]).
    pub expires_ms: u64,
}

/// Outcome of delivering a shard completion to the scheduler.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CompleteOutcome {
    /// The log was accepted and durably written.
    pub accepted: bool,
    /// The completion named a lease epoch that is no longer active (the
    /// shard expired and was reinjected, or was already done) and the log
    /// was dropped.
    pub stale: bool,
}

/// The lease-based shard scheduler over one streaming run directory.
///
/// All scheduling state lives in the [`SweepManifest`] (saved durably on
/// every mutation), so a coordinator process can be SIGKILLed and a new
/// one re-`open`ed over the directory without losing grants: unexpired
/// leases are restored and their workers simply keep going.
///
/// Time is an explicit `now_ms` argument on every method — the scheduler
/// never reads a clock — so lease expiry is deterministic under test.
pub struct ShardScheduler {
    dir: PathBuf,
    manifest: SweepManifest,
    pending: VecDeque<u64>,
    counters: Arc<LeaseCounters>,
    lease_ms: u64,
    total: usize,
    skipped: usize,
}

impl ShardScheduler {
    /// Opens a scheduler over `dir`, reconciling the manifest with the
    /// shard logs actually on disk (both directions: logs without records
    /// are adopted, records without logs are dropped and their scenarios
    /// re-pended) and restoring unexpired leases as active. With
    /// `reclaim`, *every* live lease is reinjected instead — the caller
    /// asserts no worker process can still be running (the single-process
    /// executor does, since it is the only worker).
    pub fn open(
        mut manifest: SweepManifest,
        dir: &Path,
        shard_size: usize,
        lease_ms: u64,
        counters: Arc<LeaseCounters>,
        reclaim: bool,
        now_ms: u64,
    ) -> Result<Self, QosrmError> {
        let grid = manifest.spec.lower()?;
        let points = grid_points(&grid);
        // Keys-only scan: a resume near the end of a huge sweep must not
        // materialize every completed outcome just to know what to skip.
        let mut completed: HashSet<ScenarioKey> = HashSet::new();
        let mut on_disk: Vec<(String, usize)> = Vec::new();
        scan_shards(dir, |file, outcome| {
            completed.insert(outcome.key);
            match on_disk.last_mut() {
                Some((last, count)) if last == file => *count += 1,
                _ => on_disk.push((file.to_string(), 1)),
            }
        })?;
        let pending_points: Vec<u64> = (0..points.len() as u64)
            .filter(|&idx| !completed.contains(&scenario_key(&grid, points[idx as usize])))
            .collect();
        let skipped = points.len() - pending_points.len();
        // Reconcile the manifest with what is actually on disk: a kill may
        // have landed between a shard write and its manifest update, in
        // which case the shard's outcomes exist but its record (and cache
        // statistics, lost with the process) does not.
        manifest.completed_scenarios = skipped;
        manifest.shard_size = shard_size.max(1);
        for (file, scenarios) in &on_disk {
            if !manifest.shards.iter().any(|record| &record.file == file) {
                manifest.shards.push(ShardRecord {
                    file: file.clone(),
                    scenarios: *scenarios,
                    curve_hits: 0,
                    curve_misses: 0,
                });
            }
        }
        // The inverse divergence: a crash in the rename-without-dirsync
        // window (shard log written non-durably, manifest updated, then
        // the log's directory entry lost) leaves a manifest record with no
        // file behind it. Drop such ghost records — their scenarios are
        // simply pending again — so the manifest never claims shards that
        // do not exist.
        manifest
            .shards
            .retain(|record| dir.join(&record.file).is_file());
        manifest.shards.sort_by(|a, b| a.file.cmp(&b.file));

        // Lease reconciliation. A record is done iff its log exists on
        // disk (a completion crash-lands the log before the manifest, so
        // disk is the truth); live leases either survive the reopen or —
        // on expiry, reclaim, or a dead-by-definition local worker — go
        // back to pending under their recorded shard id and indices.
        let mut pending: Vec<u64> = Vec::new();
        let mut assigned: HashSet<u64> = HashSet::new();
        for record in &mut manifest.leases {
            record.done = dir.join(shard_file_name(record.shard)).is_file();
            if record.done {
                continue;
            }
            for &idx in &record.indices {
                assigned.insert(idx);
            }
            if reclaim || record.worker == LOCAL_WORKER || record.expires_ms <= now_ms {
                pending.push(record.shard);
            }
        }
        // Points that are neither completed on disk nor covered by a live
        // or re-pended assignment get fresh shards. (A torn trailing line
        // in a done shard's log lands here: its point re-runs in a new
        // shard, the merge dedupes by scenario key.)
        let first_fresh_shard = next_shard_index(dir)?.max(
            manifest
                .leases
                .iter()
                .map(|record| record.shard + 1)
                .max()
                .unwrap_or(0),
        );
        let unassigned: Vec<u64> = pending_points
            .into_iter()
            .filter(|idx| !assigned.contains(idx))
            .collect();
        for (offset, chunk) in unassigned.chunks(shard_size.max(1)).enumerate() {
            let shard = first_fresh_shard + offset as u64;
            manifest.leases.push(LeaseRecord {
                shard,
                worker: String::new(),
                epoch: 0,
                expires_ms: 0,
                done: false,
                indices: chunk.to_vec(),
            });
            pending.push(shard);
        }
        manifest.leases.sort_by_key(|record| record.shard);
        pending.sort_unstable();
        manifest.save(dir)?;

        Ok(ShardScheduler {
            dir: dir.to_path_buf(),
            manifest,
            pending: pending.into(),
            counters,
            lease_ms,
            total: points.len(),
            skipped,
        })
    }

    /// Leases the next pending shard to `worker`, first reinjecting any
    /// leases that expired by `now_ms`. Returns `None` when nothing is
    /// pending *right now* — which means finished only if [`finished`]
    /// also says so; otherwise live leases may yet expire and the caller
    /// should retry later.
    ///
    /// [`finished`]: ShardScheduler::finished
    pub fn lease(&mut self, worker: &str, now_ms: u64) -> Result<Option<ShardLease>, QosrmError> {
        let mut dirty = self.expire_stale(now_ms);
        let lease = match self.pending.pop_front() {
            Some(shard) => {
                let lease_ms = self.lease_ms;
                let record = self.record_mut(shard);
                record.worker = worker.to_string();
                record.epoch += 1;
                record.expires_ms = now_ms.saturating_add(lease_ms);
                let lease = ShardLease {
                    shard,
                    epoch: record.epoch,
                    file: shard_file_name(shard),
                    points: record.indices.clone(),
                    expires_ms: record.expires_ms,
                };
                self.counters.bump_granted();
                dirty = true;
                Some(lease)
            }
            None => None,
        };
        if dirty {
            self.manifest.save(&self.dir)?;
        }
        Ok(lease)
    }

    /// Renews `worker`'s lease on `shard` under `epoch`. Returns the new
    /// expiry, or `None` if the lease is no longer active — the worker
    /// should abandon the shard, since its completion would be rejected as
    /// stale anyway.
    ///
    /// The expiry boundary is inclusive: a heartbeat arriving at
    /// `now_ms == expires_ms` exactly finds the lease already expired and
    /// returns `None`. Expiry is processed *before* the renewal is
    /// considered (every entry point runs `expire_stale` first,
    /// under the scheduler's single lock), so a boundary-instant heartbeat
    /// can never race the reinjection into two live grants of the same
    /// shard: either the heartbeat renews a still-live lease, or the shard
    /// is pending and only the next `lease` call — under a fresh epoch —
    /// grants it.
    pub fn heartbeat(
        &mut self,
        worker: &str,
        shard: u64,
        epoch: u64,
        now_ms: u64,
    ) -> Result<Option<u64>, QosrmError> {
        let mut dirty = self.expire_stale(now_ms);
        let renewed = if self.lease_is_active(worker, shard, epoch) {
            let expires_ms = now_ms.saturating_add(self.lease_ms);
            self.record_mut(shard).expires_ms = expires_ms;
            self.counters.bump_renewed();
            dirty = true;
            Some(expires_ms)
        } else {
            None
        };
        if dirty {
            self.manifest.save(&self.dir)?;
        }
        Ok(renewed)
    }

    /// Delivers a finished shard's outcome log.
    ///
    /// Accepted — durably written, recorded, lease closed — only if
    /// `worker` still holds the shard under exactly `epoch`; any other
    /// combination (expired, reinjected, re-leased, already done) is
    /// rejected as stale and the log is dropped, so exactly one log per
    /// shard ever reaches disk.
    #[allow(clippy::too_many_arguments)]
    pub fn complete(
        &mut self,
        worker: &str,
        shard: u64,
        epoch: u64,
        outcomes_jsonl: &str,
        curve_hits: u64,
        curve_misses: u64,
        now_ms: u64,
    ) -> Result<CompleteOutcome, QosrmError> {
        let dirty = self.expire_stale(now_ms);
        if !self.lease_is_active(worker, shard, epoch) {
            self.counters.bump_stale();
            if dirty {
                self.manifest.save(&self.dir)?;
            }
            return Ok(CompleteOutcome {
                accepted: false,
                stale: true,
            });
        }
        let file = shard_file_name(shard);
        // Durable (fsync file + run directory): once the shard is recorded
        // in the manifest, a crash — even a power cut — must not be able
        // to roll the log's rename back out of the directory.
        simdb::persist::write_atomic_durable(&self.dir.join(&file), outcomes_jsonl.as_bytes())?;
        let scenarios = outcomes_jsonl
            .lines()
            .filter(|line| !line.trim().is_empty())
            .count();
        self.manifest.completed_scenarios += scenarios;
        self.manifest.shards.push(ShardRecord {
            file,
            scenarios,
            curve_hits,
            curve_misses,
        });
        self.record_mut(shard).done = true;
        self.counters.bump_completed(worker);
        self.manifest.save(&self.dir)?;
        Ok(CompleteOutcome {
            accepted: true,
            stale: false,
        })
    }

    /// Whether every scenario of the sweep has a durable outcome.
    pub fn finished(&self) -> bool {
        self.manifest.completed_scenarios >= self.total
    }

    /// The scheduler's view of the manifest (kept saved on every change).
    pub fn manifest(&self) -> &SweepManifest {
        &self.manifest
    }

    /// Total scenarios of the sweep.
    pub fn total(&self) -> usize {
        self.total
    }

    /// A snapshot of the lease-protocol counters.
    pub fn telemetry(&self) -> LeaseTelemetry {
        self.counters.snapshot()
    }

    /// Builds the caller-facing report after `shards_run` local shards.
    pub fn report(&self, shards_run: usize) -> StreamReport {
        StreamReport {
            total: self.total,
            completed: self.manifest.completed_scenarios,
            skipped: self.skipped,
            shards_run,
            finished: self.finished(),
        }
    }

    /// Reinjects every live lease whose expiry has passed — inclusively: a
    /// lease with `expires_ms <= now_ms` is expired, so the boundary
    /// instant itself already counts as expired. Returns whether anything
    /// changed (the caller owes a manifest save).
    fn expire_stale(&mut self, now_ms: u64) -> bool {
        let mut changed = false;
        let pending = &mut self.pending;
        for record in &mut self.manifest.leases {
            if record.done || record.epoch == 0 || pending.contains(&record.shard) {
                continue;
            }
            if record.expires_ms <= now_ms {
                pending.push_back(record.shard);
                self.counters.bump_expired_reinjected();
                changed = true;
            }
        }
        changed
    }

    /// Whether `worker` currently holds `shard` under exactly `epoch`.
    fn lease_is_active(&self, worker: &str, shard: u64, epoch: u64) -> bool {
        if self.pending.contains(&shard) {
            return false;
        }
        self.manifest
            .leases
            .iter()
            .find(|record| record.shard == shard)
            .map(|record| !record.done && record.worker == worker && record.epoch == epoch)
            .unwrap_or(false)
    }

    fn record_mut(&mut self, shard: u64) -> &mut LeaseRecord {
        self.manifest
            .leases
            .iter_mut()
            .find(|record| record.shard == shard)
            .expect("lease record exists for every scheduled shard")
    }
}

/// Lease duration of the synchronous local executor: effectively infinite,
/// safe because every scheduler `open` reclaims [`LOCAL_WORKER`] leases
/// unconditionally.
const LOCAL_LEASE_MS: u64 = u64::MAX / 4;

/// Executes the scenarios of `manifest` that have no outcome on disk yet,
/// as the degenerate single-worker case of the lease scheduler.
fn run_pending(
    manifest: SweepManifest,
    ctx: &ExperimentContext,
    dir: &Path,
    options: &StreamOptions,
) -> Result<StreamReport, QosrmError> {
    let counters = Arc::new(LeaseCounters::default());
    let mut scheduler = ShardScheduler::open(
        manifest,
        dir,
        options.shard_size,
        LOCAL_LEASE_MS,
        counters,
        true, // the only worker is this call stack — reclaim everything
        0,
    )?;
    let grid = scheduler.manifest().spec.lower()?;
    let points = grid_points(&grid);
    let engine = SweepEngine::new(&grid, ctx, options.sweep);
    let mut shards_run = 0usize;
    while options.max_shards == 0 || shards_run < options.max_shards {
        let Some(lease) = scheduler.lease(LOCAL_WORKER, 0)? else {
            break;
        };
        // Per-shard simulators and baselines: built here, dropped at the
        // end of the shard, so resident state is bounded by the shard size.
        let chunk: Vec<GridPoint> = lease
            .points
            .iter()
            .map(|&idx| points[idx as usize])
            .collect();
        let units = engine.build_units(&mix_pairs(&chunk));
        let cache = ctx.curve_cache();
        let (hits_before, misses_before) = (cache.hits(), cache.misses());
        let outcomes = engine.evaluate_all(&units, &chunk);
        drop(units);

        let mut log = String::new();
        for outcome in &outcomes {
            log.push_str(
                &serde_json::to_string(outcome).map_err(|e| QosrmError::Io(e.to_string()))?,
            );
            log.push('\n');
        }
        let sealed = scheduler.complete(
            LOCAL_WORKER,
            lease.shard,
            lease.epoch,
            &log,
            cache.hits() - hits_before,
            cache.misses() - misses_before,
            0,
        )?;
        debug_assert!(sealed.accepted, "the local worker's lease cannot expire");
        shards_run += 1;
    }
    Ok(scheduler.report(shards_run))
}

/// The shard log files of a run directory, sorted by shard index.
fn shard_files(dir: &Path) -> Result<Vec<PathBuf>, QosrmError> {
    let mut files = Vec::new();
    for entry in fs::read_dir(dir)? {
        let entry = entry?;
        let name = entry.file_name().to_string_lossy().into_owned();
        if name.starts_with("shard-") && name.ends_with(".jsonl") {
            files.push(entry.path());
        }
    }
    files.sort();
    Ok(files)
}

/// Index to use for the next shard log (max existing index + 1).
fn next_shard_index(dir: &Path) -> Result<u64, QosrmError> {
    Ok(shard_files(dir)?
        .iter()
        .filter_map(|path| {
            path.file_name()?
                .to_string_lossy()
                .strip_prefix("shard-")?
                .strip_suffix(".jsonl")?
                .parse::<u64>()
                .ok()
        })
        .map(|idx| idx + 1)
        .max()
        .unwrap_or(0))
}

/// Visits every completed outcome in the shard logs, in shard order,
/// passing each visitor the shard's file name. The visitor decides what to
/// retain — a resume keeps only the keys, a merge the full outcomes.
///
/// A malformed *final* line of a log is tolerated (a torn write from a
/// killed process — that scenario simply counts as not completed); a
/// malformed line in the middle of a log is corruption and fails the scan.
fn scan_shards(dir: &Path, mut visit: impl FnMut(&str, ScenarioOutcome)) -> Result<(), QosrmError> {
    for path in shard_files(dir)? {
        let file = path
            .file_name()
            .map(|n| n.to_string_lossy().into_owned())
            .unwrap_or_default();
        let text = fs::read_to_string(&path)?;
        let lines: Vec<&str> = text.lines().collect();
        for (i, line) in lines.iter().enumerate() {
            if line.trim().is_empty() {
                continue;
            }
            match serde_json::from_str::<ScenarioOutcome>(line) {
                Ok(outcome) => visit(&file, outcome),
                Err(e) if i + 1 == lines.len() => {
                    // Torn trailing line: drop it, the scenario re-runs.
                    let _ = e;
                }
                Err(e) => {
                    return Err(QosrmError::Io(format!(
                        "corrupt shard log {} at line {}: {e}",
                        path.display(),
                        i + 1
                    )));
                }
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::{PlatformAxisSpec, PlatformSpec, WorkloadSource};
    use crate::sweep::{QosAxis, RmaVariant};
    use qosrm_types::QosSpec;
    use workload::{MixPopulation, SynthSpec};

    fn tiny_spec() -> ScenarioSpec {
        ScenarioSpec {
            name: "stream-test".to_string(),
            platforms: vec![PlatformAxisSpec {
                label: "p4".to_string(),
                platform: PlatformSpec::Paper1 { num_cores: 4 },
                workloads: WorkloadSource::Synth(SynthSpec {
                    seed: 3,
                    count: 3,
                    num_cores: 4,
                    population: MixPopulation::Mixed,
                    name_prefix: "s-".to_string(),
                }),
            }],
            qos: vec![QosAxis::uniform("strict", QosSpec::STRICT)],
            variants: vec![RmaVariant::Paper1],
            options: Some(rma_sim::SimulationOptions {
                provide_mlp_profiles: false,
                ..Default::default()
            }),
        }
    }

    fn temp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("qosrm_stream_{tag}_{}", std::process::id()));
        fs::remove_dir_all(&dir).ok();
        dir
    }

    #[test]
    fn run_refuses_an_existing_run_directory() {
        let dir = temp_dir("existing");
        let ctx = ExperimentContext::new(true);
        let spec = tiny_spec();
        let options = StreamOptions {
            shard_size: 2,
            ..Default::default()
        };
        run(&spec, &ctx, &dir, &options).unwrap();
        assert!(run(&spec, &ctx, &dir, &options).is_err());
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn partial_run_checkpoints_and_resume_completes() {
        let dir = temp_dir("partial");
        let ctx = ExperimentContext::new(true);
        let spec = tiny_spec();
        let partial = StreamOptions {
            shard_size: 1,
            max_shards: 2,
            ..Default::default()
        };
        let report = run(&spec, &ctx, &dir, &partial).unwrap();
        assert_eq!(report.total, 3);
        assert_eq!(report.completed, 2);
        assert!(!report.finished);
        // Merging an incomplete run names the missing scenario.
        assert!(merge(&dir).is_err());

        let manifest = SweepManifest::load(&dir).unwrap();
        assert_eq!(manifest.shards.len(), 2);
        assert_eq!(manifest.completed_scenarios, 2);
        // Every completed shard's lease record is closed; the rest are open.
        assert!(manifest
            .leases
            .iter()
            .all(|record| record.done == dir.join(shard_file_name(record.shard)).is_file()));

        let rest = StreamOptions {
            shard_size: 1,
            ..Default::default()
        };
        let report = resume(&ctx, &dir, &rest).unwrap();
        assert_eq!(report.skipped, 2);
        assert!(report.finished);
        let merged = merge(&dir).unwrap();
        assert_eq!(merged.scenarios.len(), 3);
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn resume_rejects_a_database_mode_mismatch() {
        let dir = temp_dir("mode");
        let ctx = ExperimentContext::new(true);
        run(&tiny_spec(), &ctx, &dir, &StreamOptions::default()).unwrap();
        let full = ExperimentContext::new(false);
        assert!(resume(&full, &dir, &StreamOptions::default()).is_err());
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn lost_shard_log_with_manifest_record_is_rerun() {
        // Replays the rename-without-dirsync window: before the durable
        // write fix, a crash immediately after "shard complete" could
        // persist the manifest record while the shard log's rename never
        // reached the directory. The run directory then claims a shard
        // that does not exist; resume must treat its scenarios as pending
        // and heal to a byte-identical merge.
        let dir = temp_dir("lost_log");
        let ctx = ExperimentContext::new(true);
        run(
            &tiny_spec(),
            &ctx,
            &dir,
            &StreamOptions {
                shard_size: 1,
                ..Default::default()
            },
        )
        .unwrap();
        let reference = serde_json::to_string(&merge(&dir).unwrap()).unwrap();
        // Simulate the lost rename: delete a middle shard log but keep its
        // manifest record (the manifest was saved after the shard).
        fs::remove_file(dir.join("shard-0001.jsonl")).unwrap();
        let manifest = SweepManifest::load(&dir).unwrap();
        assert!(manifest.shards.iter().any(|s| s.file == "shard-0001.jsonl"));
        assert!(
            merge(&dir).is_err(),
            "merge must refuse the healed-over gap"
        );

        let report = resume(&ctx, &dir, &StreamOptions::default()).unwrap();
        assert!(report.finished);
        assert_eq!(report.skipped, 2);
        let healed = serde_json::to_string(&merge(&dir).unwrap()).unwrap();
        assert_eq!(healed, reference, "healed merge must be byte-identical");
        // The shard re-ran under its recorded id (the lease record pins the
        // assignment), so the log exists again and every recorded shard is
        // backed by a file on disk.
        let manifest = SweepManifest::load(&dir).unwrap();
        assert!(manifest.shards.iter().all(|s| dir.join(&s.file).is_file()));
        assert!(dir.join("shard-0001.jsonl").is_file());
        assert_eq!(manifest.completed_scenarios, 3);
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn torn_trailing_shard_line_is_dropped_and_rerun() {
        let dir = temp_dir("torn");
        let ctx = ExperimentContext::new(true);
        run(
            &tiny_spec(),
            &ctx,
            &dir,
            &StreamOptions {
                shard_size: 1,
                ..Default::default()
            },
        )
        .unwrap();
        let reference = merge(&dir).unwrap();
        // Tear the last line of the last shard log.
        let last = shard_files(&dir).unwrap().pop().unwrap();
        let text = fs::read_to_string(&last).unwrap();
        fs::write(&last, &text[..text.len() / 2]).unwrap();
        assert!(merge(&dir).is_err());
        let report = resume(&ctx, &dir, &StreamOptions::default()).unwrap();
        assert!(report.finished);
        assert_eq!(report.skipped, 2);
        let healed = merge(&dir).unwrap();
        assert_eq!(healed, reference);
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn lease_expiry_boundary_is_inclusive_and_cannot_double_grant() {
        // Pins the boundary semantics of `expires_ms`: live strictly
        // before the instant, expired at the instant itself — and a
        // heartbeat landing exactly on the boundary cannot race the
        // reinjection into a second live grant of the same shard.
        let dir = temp_dir("boundary");
        let manifest = init_manifest(&tiny_spec(), true, &dir, 3).unwrap();
        let counters = Arc::new(LeaseCounters::default());
        let mut scheduler =
            ShardScheduler::open(manifest, &dir, 3, 1_000, counters, false, 0).unwrap();
        let alice = scheduler.lease("alice", 0).unwrap().unwrap();
        assert_eq!(alice.expires_ms, 1_000);
        // One millisecond before the boundary the lease is live: the
        // heartbeat renews it (to 999 + lease_ms).
        let renewed = scheduler
            .heartbeat("alice", alice.shard, alice.epoch, 999)
            .unwrap();
        assert_eq!(renewed, Some(1_999));
        // At the renewed boundary instant exactly, the lease is already
        // expired: the same call expires-and-reinjects first, so the
        // heartbeat finds the shard pending and cannot revive it.
        assert!(scheduler
            .heartbeat("alice", alice.shard, alice.epoch, 1_999)
            .unwrap()
            .is_none());
        // The reinjected shard is granted exactly once, under a fresh
        // epoch — a second caller at the same instant gets nothing.
        let bob = scheduler.lease("bob", 1_999).unwrap().unwrap();
        assert_eq!(bob.shard, alice.shard);
        assert_eq!(bob.epoch, alice.epoch + 1);
        assert!(scheduler.lease("carol", 1_999).unwrap().is_none());
        // Alice's boundary-instant completion is stale; bob's lands.
        let late = scheduler
            .complete("alice", alice.shard, alice.epoch, "", 0, 0, 1_999)
            .unwrap();
        assert!(late.stale && !late.accepted);
        let won = scheduler
            .complete("bob", bob.shard, bob.epoch, "{}\n{}\n{}\n", 0, 0, 2_000)
            .unwrap();
        assert!(won.accepted && !won.stale);
        let telemetry = scheduler.telemetry();
        assert_eq!(telemetry.granted, 2);
        assert_eq!(telemetry.renewed, 1);
        assert_eq!(telemetry.expired, 1);
        assert_eq!(telemetry.reinjected, 1);
        assert_eq!(telemetry.stale_rejected, 1);
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn scheduler_resolves_a_lease_epoch_race_to_one_winner() {
        // Pure scheduler-level check of the stale-completion contract (the
        // full evaluate-and-complete races live in tests/streaming_resume).
        let dir = temp_dir("epoch_race");
        let manifest = init_manifest(&tiny_spec(), true, &dir, 3).unwrap();
        let counters = Arc::new(LeaseCounters::default());
        let mut scheduler =
            ShardScheduler::open(manifest, &dir, 3, 1_000, counters, false, 0).unwrap();
        // One shard of three scenarios; alice leases it at t=0.
        let alice = scheduler.lease("alice", 0).unwrap().unwrap();
        assert_eq!(alice.epoch, 1);
        assert_eq!(alice.points.len(), 3);
        assert!(scheduler.lease("bob", 100).unwrap().is_none());
        // Alice heartbeats at t=500 (renewed), then goes silent; at
        // t=2000 the lease is expired, so bob gets the shard re-granted
        // under the next epoch.
        assert!(scheduler
            .heartbeat("alice", alice.shard, alice.epoch, 500)
            .unwrap()
            .is_some());
        let bob = scheduler.lease("bob", 2_000).unwrap().unwrap();
        assert_eq!(bob.shard, alice.shard);
        assert_eq!(bob.epoch, 2);
        // Alice can neither renew nor complete under her dead epoch.
        assert!(scheduler
            .heartbeat("alice", alice.shard, alice.epoch, 2_100)
            .unwrap()
            .is_none());
        let late = scheduler
            .complete("alice", alice.shard, alice.epoch, "", 0, 0, 2_200)
            .unwrap();
        assert!(late.stale && !late.accepted);
        let telemetry = scheduler.telemetry();
        assert_eq!(telemetry.granted, 2);
        assert_eq!(telemetry.renewed, 1);
        assert_eq!(telemetry.expired, 1);
        assert_eq!(telemetry.reinjected, 1);
        assert_eq!(telemetry.stale_rejected, 1);
        fs::remove_dir_all(&dir).ok();
    }
}
