//! The serializable scenario-sweep IR.
//!
//! A [`ScenarioSpec`] is the declarative front end of the experiment stack:
//! a JSON-serializable description of a sweep — platform axes, workload
//! sources, QoS axes, manager variants and simulation options — that
//! *lowers* to the executable [`ScenarioGrid`] of [`crate::sweep`]. The
//! E-modules build their paper grids as lowered specs (so the paper tables
//! and ad-hoc spec files share one pipeline), and the `qosrm-experiments`
//! CLI loads spec files for streaming sweeps (`crate::stream`).
//!
//! The key difference from a grid is the [`WorkloadSource`]: instead of
//! materialized mix lists, a spec names where the mixes come from — the
//! paper's hand-built families, an explicit inline list, or a seeded
//! [`SynthSpec`] population — so "200 mixes drawn from a streaming-heavy
//! distribution on 8 cores" is a few lines of JSON rather than an
//! unreachable hand enumeration.
//!
//! ```
//! use experiments::spec::{PlatformAxisSpec, PlatformSpec, ScenarioSpec, WorkloadSource};
//! use experiments::sweep::{QosAxis, RmaVariant};
//! use qosrm_types::QosSpec;
//! use workload::{MixPopulation, SynthSpec};
//!
//! let spec = ScenarioSpec {
//!     name: "streaming-tail".to_string(),
//!     platforms: vec![PlatformAxisSpec {
//!         label: "paper2-4c".to_string(),
//!         platform: PlatformSpec::Paper2 { num_cores: 4 },
//!         workloads: WorkloadSource::Synth(SynthSpec {
//!             seed: 42,
//!             count: 16,
//!             num_cores: 4,
//!             population: MixPopulation::StreamingHeavy,
//!             name_prefix: "syn-".to_string(),
//!         }),
//!     }],
//!     qos: vec![QosAxis::uniform("strict", QosSpec::STRICT)],
//!     variants: vec![RmaVariant::Paper1, RmaVariant::Paper2],
//!     options: None,
//! };
//! let grid = spec.lower().unwrap();
//! assert_eq!(grid.len(), 16 * 1 * 2);
//! ```

use crate::sweep::{PlatformAxis, QosAxis, RmaVariant, ScenarioGrid};
use qosrm_types::{PlatformConfig, QosrmError};
use rma_sim::SimulationOptions;
use serde::{Deserialize, Serialize};
use workload::{SynthSpec, WorkloadMix};

/// Which platform a spec axis runs on.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum PlatformSpec {
    /// The Paper I evaluation platform (`PlatformConfig::paper1`).
    Paper1 {
        /// Number of cores.
        num_cores: usize,
    },
    /// The Paper II evaluation platform (`PlatformConfig::paper2`).
    Paper2 {
        /// Number of cores.
        num_cores: usize,
    },
    /// A fully explicit platform description.
    Custom(PlatformConfig),
}

impl PlatformSpec {
    /// Materializes the platform configuration.
    pub fn resolve(&self) -> PlatformConfig {
        match self {
            PlatformSpec::Paper1 { num_cores } => PlatformConfig::paper1(*num_cores),
            PlatformSpec::Paper2 { num_cores } => PlatformConfig::paper2(*num_cores),
            PlatformSpec::Custom(config) => config.clone(),
        }
    }
}

/// Trims a source's mix list: `step` keeps every `step`-th mix (0 and 1
/// keep all), then `limit` truncates (0 keeps all). Mirrors the selection
/// idioms of the E-modules (quick-mode prefixes, every-other-workload
/// studies).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MixSelection {
    /// Keep every `step`-th mix of the source order (0 / 1 = keep all).
    pub step: usize,
    /// Keep at most this many mixes after stepping (0 = no limit).
    pub limit: usize,
}

impl MixSelection {
    /// Keeps the whole source.
    pub const ALL: MixSelection = MixSelection { step: 0, limit: 0 };

    /// Keeps at most `limit` mixes (0 = no limit).
    pub fn limit(limit: usize) -> Self {
        MixSelection { step: 0, limit }
    }

    /// Applies the selection.
    fn apply(&self, mixes: Vec<WorkloadMix>) -> Vec<WorkloadMix> {
        let step = self.step.max(1);
        let selected = mixes.into_iter().step_by(step);
        if self.limit == 0 {
            selected.collect()
        } else {
            selected.take(self.limit).collect()
        }
    }
}

/// Where a platform axis draws its workload mixes from.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum WorkloadSource {
    /// An explicit inline mix list.
    Explicit(Vec<WorkloadMix>),
    /// The Paper I workloads for the axis platform's core count (4 or 8).
    Paper1(MixSelection),
    /// The Paper II scenario workloads for the axis platform's core count
    /// (4 or 8).
    Paper2Scenarios(MixSelection),
    /// The sixteen pairwise category mixes of the Paper II trade-off
    /// analysis (4-core only).
    Paper2Sixteen(MixSelection),
    /// Seeded synthetic mixes (see [`workload::synth`]).
    Synth(SynthSpec),
}

impl WorkloadSource {
    /// Materializes the mix list for a platform.
    pub fn resolve(&self, platform: &PlatformConfig) -> Result<Vec<WorkloadMix>, QosrmError> {
        let cores = platform.num_cores;
        let require_paper_cores = |family: &str| -> Result<(), QosrmError> {
            if cores == 4 || cores == 8 {
                Ok(())
            } else {
                Err(QosrmError::InvalidWorkload(format!(
                    "the {family} workload family exists for 4- and 8-core platforms, \
                     not {cores} cores"
                )))
            }
        };
        match self {
            WorkloadSource::Explicit(mixes) => Ok(mixes.clone()),
            WorkloadSource::Paper1(selection) => {
                require_paper_cores("Paper I")?;
                Ok(selection.apply(workload::paper1_workloads(cores)))
            }
            WorkloadSource::Paper2Scenarios(selection) => {
                require_paper_cores("Paper II scenario")?;
                Ok(selection.apply(
                    workload::paper2_scenario_workloads(cores)
                        .into_iter()
                        .map(|(_, m)| m)
                        .collect(),
                ))
            }
            WorkloadSource::Paper2Sixteen(selection) => {
                if cores != 4 {
                    return Err(QosrmError::InvalidWorkload(format!(
                        "the sixteen pairwise category mixes are 4-core workloads, \
                         the platform has {cores} cores"
                    )));
                }
                Ok(selection.apply(
                    workload::paper2_sixteen_mixes()
                        .into_iter()
                        .map(|(_, _, m)| m)
                        .collect(),
                ))
            }
            WorkloadSource::Synth(synth) => {
                if synth.num_cores != cores {
                    return Err(QosrmError::InvalidWorkload(format!(
                        "synthetic mixes have {} applications but the platform has \
                         {cores} cores",
                        synth.num_cores
                    )));
                }
                synth.mixes()
            }
        }
    }
}

/// One platform axis of a spec: a label, the platform, and where its mixes
/// come from.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PlatformAxisSpec {
    /// Label used in scenario keys.
    pub label: String,
    /// The platform.
    pub platform: PlatformSpec,
    /// The workload source.
    pub workloads: WorkloadSource,
}

/// A declarative, serializable scenario sweep.
///
/// Lowering ([`ScenarioSpec::lower`]) materializes platforms and workload
/// sources into a validated [`ScenarioGrid`]; the QoS axes, variants and
/// simulation options carry over verbatim.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ScenarioSpec {
    /// Name of the sweep (used in logs and artifact directories).
    pub name: String,
    /// Platform axes.
    pub platforms: Vec<PlatformAxisSpec>,
    /// QoS axes.
    pub qos: Vec<QosAxis>,
    /// Manager variants.
    pub variants: Vec<RmaVariant>,
    /// Simulation options (`null` in JSON = defaults).
    pub options: Option<SimulationOptions>,
}

impl ScenarioSpec {
    /// Lowers the spec to an executable, validated [`ScenarioGrid`].
    pub fn lower(&self) -> Result<ScenarioGrid, QosrmError> {
        let platforms = self
            .platforms
            .iter()
            .map(|axis| {
                let platform = axis.platform.resolve();
                let mixes = axis.workloads.resolve(&platform).map_err(|e| {
                    QosrmError::InvalidWorkload(format!("axis {}: {e}", axis.label))
                })?;
                Ok(PlatformAxis::new(axis.label.clone(), platform, mixes))
            })
            .collect::<Result<Vec<_>, QosrmError>>()?;
        let grid = ScenarioGrid {
            platforms,
            qos: self.qos.clone(),
            variants: self.variants.clone(),
            options: self.options.clone().unwrap_or_default(),
        };
        grid.validate()?;
        Ok(grid)
    }

    /// Loads a spec from a JSON file.
    pub fn load(path: &std::path::Path) -> Result<Self, QosrmError> {
        simdb::persist::load_json(path)
    }

    /// Saves the spec as pretty-printed JSON (atomic write).
    pub fn save(&self, path: &std::path::Path) -> Result<(), QosrmError> {
        let json = serde_json::to_string_pretty(self).map_err(|e| QosrmError::Io(e.to_string()))?;
        simdb::persist::write_atomic(path, json.as_bytes())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qosrm_types::QosSpec;
    use workload::MixPopulation;

    fn synth_axis(num_cores: usize, count: usize) -> PlatformAxisSpec {
        PlatformAxisSpec {
            label: format!("paper2-{num_cores}c"),
            platform: PlatformSpec::Paper2 { num_cores },
            workloads: WorkloadSource::Synth(SynthSpec {
                seed: 11,
                count,
                num_cores,
                population: MixPopulation::Mixed,
                name_prefix: format!("syn{num_cores}-"),
            }),
        }
    }

    fn tiny_spec() -> ScenarioSpec {
        ScenarioSpec {
            name: "tiny".to_string(),
            platforms: vec![synth_axis(4, 3)],
            qos: vec![QosAxis::uniform("strict", QosSpec::STRICT)],
            variants: vec![RmaVariant::Paper1, RmaVariant::Paper2],
            options: None,
        }
    }

    #[test]
    fn lowering_materializes_the_grid() {
        let grid = tiny_spec().lower().unwrap();
        assert_eq!(grid.len(), 6); // 3 mixes x 1 QoS x 2 variants
        assert_eq!(grid.platforms[0].mixes[0].name, "syn4-0000");
        assert_eq!(grid.options, rma_sim::SimulationOptions::default());
    }

    #[test]
    fn paper_sources_match_the_hand_built_grids() {
        let paper1 = WorkloadSource::Paper1(MixSelection::limit(4))
            .resolve(&PlatformConfig::paper1(4))
            .unwrap();
        let expected: Vec<_> = workload::paper1_workloads(4).into_iter().take(4).collect();
        assert_eq!(paper1, expected);

        let stepped = WorkloadSource::Paper1(MixSelection { step: 2, limit: 0 })
            .resolve(&PlatformConfig::paper1(4))
            .unwrap();
        let expected: Vec<_> = workload::paper1_workloads(4)
            .into_iter()
            .step_by(2)
            .collect();
        assert_eq!(stepped, expected);

        let sixteen = WorkloadSource::Paper2Sixteen(MixSelection::ALL)
            .resolve(&PlatformConfig::paper2(4))
            .unwrap();
        assert_eq!(sixteen.len(), 16);
    }

    #[test]
    fn lowering_rejects_mismatched_sources() {
        // Synthetic width must match the platform.
        let mut spec = tiny_spec();
        spec.platforms = vec![PlatformAxisSpec {
            label: "mismatch".to_string(),
            platform: PlatformSpec::Paper2 { num_cores: 8 },
            workloads: WorkloadSource::Synth(SynthSpec {
                seed: 1,
                count: 2,
                num_cores: 4,
                population: MixPopulation::Mixed,
                name_prefix: "m-".to_string(),
            }),
        }];
        assert!(spec.lower().is_err());

        // Paper families only exist for 4 and 8 cores.
        assert!(WorkloadSource::Paper1(MixSelection::ALL)
            .resolve(&PlatformConfig::paper2(16))
            .is_err());
        assert!(WorkloadSource::Paper2Sixteen(MixSelection::ALL)
            .resolve(&PlatformConfig::paper2(8))
            .is_err());
    }

    #[test]
    fn spec_round_trips_through_json() {
        let spec = ScenarioSpec {
            platforms: vec![synth_axis(4, 3), synth_axis(8, 2)],
            qos: vec![
                QosAxis::uniform("strict", QosSpec::STRICT),
                QosAxis::per_core("one relaxed", vec![QosSpec::relaxed_by(0.4)]),
            ],
            variants: vec![
                RmaVariant::Paper1,
                RmaVariant::WithModel {
                    model: qosrm_core::ModelKind::Perfect,
                    control_core_size: false,
                    name: "CombinedRMA-Perfect".to_string(),
                },
            ],
            options: Some(rma_sim::SimulationOptions {
                provide_mlp_profiles: false,
                ..Default::default()
            }),
            ..tiny_spec()
        };
        let json = serde_json::to_string_pretty(&spec).unwrap();
        let back: ScenarioSpec = serde_json::from_str(&json).unwrap();
        assert_eq!(back, spec);
        // Lowered grids of equal specs are equal scenario-for-scenario.
        assert_eq!(
            back.lower().unwrap().platforms[0].mixes,
            spec.lower().unwrap().platforms[0].mixes
        );
    }

    #[test]
    fn save_load_roundtrip() {
        let spec = tiny_spec();
        let path = std::env::temp_dir().join("qosrm_spec_roundtrip.json");
        spec.save(&path).unwrap();
        let loaded = ScenarioSpec::load(&path).unwrap();
        assert_eq!(loaded, spec);
        std::fs::remove_file(&path).ok();
    }
}
