//! Shared experiment infrastructure: database construction/caching and
//! workload execution helpers.

use crate::sweep::SweepOptions;
use crate::sync::LockUnpoisoned;
use qosrm_core::{CurveCache, RmaWorkCounters};
use qosrm_types::{PlatformConfig, QosSpec, ResourceManager};
use rma_sim::{Comparison, CophaseSimulator, SimulationOptions, SimulationResult};
use simdb::builder::{build_database_for_mixes, BuildOptions};
use simdb::SimDb;
use std::collections::HashMap;
use std::path::PathBuf;
use std::sync::{Arc, Mutex};
use workload::WorkloadMix;

/// Session-wide aggregation of the measured RMA work counters
/// ([`RmaWorkCounters`]) of every manager a sweep evaluated. The sweep
/// engine folds each manager's cumulative counters in after its run, so a
/// resident serving process can expose — via `qosrm_serve`'s `/stats` —
/// how much optimization work it actually performed and how much the
/// chunked kernels and the incremental delta path skipped.
#[derive(Debug, Default)]
pub struct RmaTelemetry {
    counters: Mutex<RmaWorkCounters>,
}

impl RmaTelemetry {
    /// Folds one manager's cumulative counters into the aggregate.
    pub fn absorb(&self, counters: &RmaWorkCounters) {
        // Exhaustive destructuring (no `..`), mirroring the counters'
        // `Display`: adding a counter fails compilation here until the
        // aggregate covers it.
        let RmaWorkCounters {
            invocations,
            curve_builds,
            local_evaluations,
            reduction_ops,
            reduction_pruned,
            qos_at_risk_intervals,
            game_rounds,
            best_response_evaluations,
            equilibria_examined,
            delta_invocations,
            curves_patched,
            warm_rows_reused,
            chunked_conv_lanes,
        } = *counters;
        let mut total = self.counters.lock_unpoisoned();
        total.invocations += invocations;
        total.curve_builds += curve_builds;
        total.local_evaluations += local_evaluations;
        total.reduction_ops += reduction_ops;
        total.reduction_pruned += reduction_pruned;
        total.qos_at_risk_intervals += qos_at_risk_intervals;
        total.game_rounds += game_rounds;
        total.best_response_evaluations += best_response_evaluations;
        total.equilibria_examined += equilibria_examined;
        total.delta_invocations += delta_invocations;
        total.curves_patched += curves_patched;
        total.warm_rows_reused += warm_rows_reused;
        total.chunked_conv_lanes += chunked_conv_lanes;
    }

    /// The aggregated counters so far.
    pub fn snapshot(&self) -> RmaWorkCounters {
        *self.counters.lock_unpoisoned()
    }
}

/// Shared state of an experiment session.
pub struct ExperimentContext {
    /// Quick mode: fewer workloads and a coarser characterization, intended
    /// for smoke tests and CI.
    pub quick: bool,
    /// Optional directory where simulation databases are cached as JSON.
    pub cache_dir: Option<PathBuf>,
    /// How `sweep::run` executes grids (parallel + memoized by default).
    pub sweep: SweepOptions,
    /// Energy-curve memoization cache shared by every memoized sweep of the
    /// session (keys include platform/config digests, so scenarios from
    /// different grids never collide).
    curve_cache: Arc<CurveCache>,
    /// Aggregated measured RMA work of every sweep-evaluated manager of the
    /// session (see [`RmaTelemetry`]).
    rma_telemetry: Arc<RmaTelemetry>,
    databases: Mutex<HashMap<String, SimDb>>,
}

impl ExperimentContext {
    /// Creates a context. `quick` selects the reduced configuration.
    pub fn new(quick: bool) -> Self {
        ExperimentContext {
            quick,
            cache_dir: None,
            sweep: SweepOptions::default(),
            curve_cache: Arc::new(CurveCache::new()),
            rma_telemetry: Arc::new(RmaTelemetry::default()),
            databases: Mutex::new(HashMap::new()),
        }
    }

    /// Enables on-disk caching of simulation databases under `dir`.
    pub fn with_cache_dir(mut self, dir: PathBuf) -> Self {
        self.cache_dir = Some(dir);
        self
    }

    /// Overrides the sweep execution options (e.g. to force the serial
    /// reference path).
    pub fn with_sweep_options(mut self, options: SweepOptions) -> Self {
        self.sweep = options;
        self
    }

    /// The session-wide energy-curve cache.
    pub fn curve_cache(&self) -> &Arc<CurveCache> {
        &self.curve_cache
    }

    /// The session-wide aggregated RMA work telemetry.
    pub fn rma_telemetry(&self) -> &Arc<RmaTelemetry> {
        &self.rma_telemetry
    }

    /// Workload prefix kept by quick mode (the representative subset the
    /// smoke tests and CI run).
    pub const QUICK_WORKLOAD_PREFIX: usize = 4;

    /// Limits a workload list according to the quick mode (keeps a
    /// representative prefix).
    pub fn limit_workloads(&self, mixes: Vec<WorkloadMix>) -> Vec<WorkloadMix> {
        if self.quick {
            mixes
                .into_iter()
                .take(Self::QUICK_WORKLOAD_PREFIX)
                .collect()
        } else {
            mixes
        }
    }

    /// The spec-level mirror of [`ExperimentContext::limit_workloads`]: a
    /// [`crate::spec::MixSelection`] keeping the quick-mode prefix of a
    /// workload source (and everything in full mode) — the single source of
    /// the quick-mode cap for the E-module specs.
    pub fn quick_mix_selection(&self) -> crate::spec::MixSelection {
        if self.quick {
            crate::spec::MixSelection::limit(Self::QUICK_WORKLOAD_PREFIX)
        } else {
            crate::spec::MixSelection::ALL
        }
    }

    /// Database build options for a platform.
    fn build_options(&self, platform: &PlatformConfig) -> BuildOptions {
        if self.quick {
            BuildOptions::quick_for_tests(platform)
        } else {
            BuildOptions::for_platform(platform)
        }
    }

    /// Returns (building and caching if necessary) the simulation database
    /// covering `mixes` on `platform`.
    ///
    /// The cache key digests the *full* platform configuration: the
    /// simulator takes its platform from the database, so two platforms
    /// differing in any parameter (e.g. only the baseline VF level, as in
    /// E4's sensitivity axes) must never share a database.
    pub fn database(&self, platform: &PlatformConfig, mixes: &[WorkloadMix]) -> SimDb {
        let mut names: Vec<&str> = mixes
            .iter()
            .flat_map(|m| m.benchmarks.iter().map(String::as_str))
            .collect();
        names.sort_unstable();
        names.dedup();
        let platform_digest = qosrm_core::memo::fingerprint(platform);
        let key = format!(
            "{:016x}{:016x}-{}-{}",
            platform_digest.0,
            platform_digest.1,
            if self.quick { "quick" } else { "full" },
            names.join(",")
        );
        {
            let cache = self.databases.lock_unpoisoned();
            if let Some(db) = cache.get(&key) {
                return db.clone();
            }
        }
        let options = self.build_options(platform);
        let db = if let Some(dir) = &self.cache_dir {
            let digest = fnv(&key);
            let path = dir.join(format!("simdb-{digest:016x}.json"));
            simdb::persist::load_or_build(&path, || {
                build_database_for_mixes(platform, mixes, &options)
            })
            .unwrap_or_else(|_| build_database_for_mixes(platform, mixes, &options))
        } else {
            build_database_for_mixes(platform, mixes, &options)
        };
        self.databases.lock_unpoisoned().insert(key, db.clone());
        db
    }

    /// Runs `mix` under `manager` and compares against the baseline run.
    ///
    /// One-shot convenience over [`CophaseSimulator::run_comparison`]; loops
    /// that evaluate several managers on one workload should construct the
    /// simulator once and reuse the baseline instead.
    pub fn run_and_compare(
        &self,
        db: &SimDb,
        mix: &WorkloadMix,
        manager: &mut dyn ResourceManager,
        qos: &[QosSpec],
        options: SimulationOptions,
    ) -> (Comparison, SimulationResult) {
        let simulator =
            CophaseSimulator::new(db, mix, options).expect("workload matches database platform");
        let baseline = simulator
            .run_baseline()
            .expect("baseline run must finish within the event budget");
        simulator
            .run_comparison(manager, &baseline, qos)
            .unwrap_or_else(|e| panic!("managed run failed: {e}"))
    }

    /// Runs `mix` under `manager` returning only the comparison.
    pub fn comparison(
        &self,
        db: &SimDb,
        mix: &WorkloadMix,
        manager: &mut dyn ResourceManager,
        qos: &[QosSpec],
        options: SimulationOptions,
    ) -> Comparison {
        self.run_and_compare(db, mix, manager, qos, options).0
    }
}

fn fnv(s: &str) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for b in s.bytes() {
        hash ^= b as u64;
        hash = hash.wrapping_mul(0x1000_0000_01b3);
    }
    hash
}

/// Mean of a slice (0 when empty).
pub fn mean(values: &[f64]) -> f64 {
    if values.is_empty() {
        0.0
    } else {
        values.iter().sum::<f64>() / values.len() as f64
    }
}

/// Maximum of a slice (0 when empty).
pub fn max(values: &[f64]) -> f64 {
    values.iter().copied().fold(0.0, f64::max)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn statistics_helpers() {
        assert_eq!(mean(&[]), 0.0);
        assert!((mean(&[1.0, 2.0, 3.0]) - 2.0).abs() < 1e-12);
        assert_eq!(max(&[]), 0.0);
        assert!((max(&[0.4, -1.0, 0.2]) - 0.4).abs() < 1e-12);
    }

    #[test]
    fn quick_mode_limits_workloads() {
        let ctx = ExperimentContext::new(true);
        let mixes = workload::paper1_workloads(4);
        assert_eq!(ctx.limit_workloads(mixes.clone()).len(), 4);
        let full = ExperimentContext::new(false);
        assert_eq!(full.limit_workloads(mixes.clone()).len(), mixes.len());
    }

    #[test]
    fn database_is_memoized() {
        let ctx = ExperimentContext::new(true);
        let platform = PlatformConfig::paper2(4);
        let mixes = vec![WorkloadMix::new(
            "t",
            vec!["gamess_like", "povray_like", "gamess_like", "povray_like"],
        )];
        let a = ctx.database(&platform, &mixes);
        let b = ctx.database(&platform, &mixes);
        assert_eq!(a, b);
        assert_eq!(a.len(), 2);
    }
}
