//! E1 — Paper I energy savings (Combined RMA vs. Partitioning-only RMA).
//!
//! Paper claim: the Combined RMA (per-core DVFS + LLC partitioning under QoS
//! constraints) saves up to 18 % of system energy on 4-core workloads and up
//! to 14 % on 8-core workloads, 6 % on average in both cases; a
//! partitioning-only RMA saves only 1–2 % on average; workloads with no
//! cache-sensitive application see no benefit (or a slight loss).
//!
//! The experiment is one declarative [`ScenarioSpec`] lowered to a
//! [`crate::sweep::ScenarioGrid`]: two platform axes (the 4-core and 8-core
//! Paper I machines, each with its workloads), a strict QoS point, and the
//! RM2/RM1 variant pair.

use crate::context::{max, mean, ExperimentContext};
use crate::report::{ExperimentReport, ReportRow};
use crate::spec::{PlatformAxisSpec, PlatformSpec, ScenarioSpec, WorkloadSource};
use crate::sweep::{self, QosAxis, RmaVariant};
use qosrm_types::QosSpec;
use rma_sim::SimulationOptions;

/// The declarative spec of the experiment's sweep (also the reference grid
/// of the streaming-executor equivalence test).
pub fn spec(ctx: &ExperimentContext) -> ScenarioSpec {
    ScenarioSpec {
        name: "e1-energy-savings".to_string(),
        platforms: [4usize, 8]
            .iter()
            .map(|&num_cores| PlatformAxisSpec {
                label: format!("paper1-{num_cores}c"),
                platform: PlatformSpec::Paper1 { num_cores },
                workloads: WorkloadSource::Paper1(ctx.quick_mix_selection()),
            })
            .collect(),
        qos: vec![QosAxis::uniform("strict", QosSpec::STRICT)],
        variants: vec![RmaVariant::Paper1, RmaVariant::PartitioningOnly],
        // Paper I platform: no core re-configuration, no MLP-ATD hardware.
        options: Some(SimulationOptions {
            provide_mlp_profiles: false,
            ..Default::default()
        }),
    }
}

/// Runs the experiment.
pub fn run(ctx: &ExperimentContext) -> ExperimentReport {
    let mut report = ExperimentReport::new(
        "e1",
        "Paper I: system energy savings of the Combined RMA vs. the Partitioning-only RMA \
         (4-core and 8-core workloads, strict QoS)",
    );

    let grid = spec(ctx).lower().expect("the E1 spec lowers");
    let result = sweep::run(&grid, ctx);

    for axis in &grid.platforms {
        let num_cores = axis.platform.num_cores;
        let mut combined_savings = Vec::new();
        let mut partitioning_savings = Vec::new();
        let mut violations = 0usize;

        for mix in &axis.mixes {
            let combined_cmp = result.expect_comparison(&axis.label, &mix.name, "strict", "RM2");
            let partitioning_cmp =
                result.expect_comparison(&axis.label, &mix.name, "strict", "RM1");

            combined_savings.push(combined_cmp.energy_savings);
            partitioning_savings.push(partitioning_cmp.energy_savings);
            violations += combined_cmp.num_violations();

            report.push_row(
                ReportRow::new(format!("{} ({}c)", mix.name, num_cores))
                    .with("Combined savings %", combined_cmp.energy_savings * 100.0)
                    .with(
                        "Partitioning savings %",
                        partitioning_cmp.energy_savings * 100.0,
                    )
                    .with("QoS violations", combined_cmp.num_violations() as f64),
            );
        }

        report.push_summary(format!(
            "{num_cores}-core: Combined RMA savings avg {:.1}% / max {:.1}% (paper: avg 6%, max {}%); \
             Partitioning-only avg {:.1}% (paper: {}%); {} full-run QoS violations",
            mean(&combined_savings) * 100.0,
            max(&combined_savings) * 100.0,
            if num_cores == 4 { 18 } else { 14 },
            mean(&partitioning_savings) * 100.0,
            if num_cores == 4 { 1 } else { 2 },
            violations,
        ));
    }

    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_run_produces_rows_and_positive_average() {
        let ctx = ExperimentContext::new(true);
        let report = run(&ctx);
        assert!(!report.rows.is_empty());
        assert_eq!(report.summary.len(), 2);
        // The combined RMA must not be worse than the partitioning-only RMA
        // on average.
        let combined: Vec<f64> = report
            .rows
            .iter()
            .filter_map(|r| r.get("Combined savings %"))
            .collect();
        let partitioning: Vec<f64> = report
            .rows
            .iter()
            .filter_map(|r| r.get("Partitioning savings %"))
            .collect();
        assert!(mean(&combined) >= mean(&partitioning) - 0.5);
    }
}
