//! E5 — Paper I RMA overhead.
//!
//! Paper claim: one invocation of the Combined RMA executes fewer than 40 K
//! instructions on a 4-core system, about 0.04 % of a 100 M-instruction
//! interval, so the algorithm itself is negligible.
//!
//! The reported cost is **measured**, not bounded: a short co-phase
//! simulation drives the manager (without a curve cache, so every invocation
//! builds its curve), and the instruction estimate is derived from the
//! builder's exact model-evaluation count and the global step's actually
//! updated convolution cells (`PruneStats::ops`). The dense
//! `ways × sizes × levels` and `associativity²`-per-reduction worst cases
//! are reported alongside as the paper-style bound.

use crate::context::ExperimentContext;
use crate::report::{ExperimentReport, ReportRow};
use qosrm_core::{CoordinatedRma, OverheadModel, RmaWorkCounters};
use qosrm_types::{PlatformConfig, QosSpec};
use rma_sim::{CophaseSimulator, SimulationOptions};
use workload::WorkloadMix;

/// The fixed mix the overhead measurement drives the manager with: a
/// rotation of cache-sensitive, streaming and compute applications so the
/// local optimizer sees representative feasibility patterns.
fn measurement_mix(num_cores: usize) -> WorkloadMix {
    const POOL: [&str; 4] = ["mcf_like", "soplex_like", "libquantum_like", "gamess_like"];
    WorkloadMix::new(
        format!("overhead-{num_cores}c"),
        (0..num_cores).map(|i| POOL[i % POOL.len()]).collect(),
    )
}

/// Runs `manager` over the fixed measurement mix on `platform` and returns
/// its cumulative measured work counters. No curve cache is attached, so
/// every invocation pays its full local-optimization cost — exactly what a
/// per-invocation overhead figure must charge.
pub(crate) fn measured_counters(
    ctx: &ExperimentContext,
    platform: &PlatformConfig,
    mut manager: CoordinatedRma,
) -> RmaWorkCounters {
    let mix = measurement_mix(platform.num_cores);
    let db = ctx.database(platform, std::slice::from_ref(&mix));
    let sim = CophaseSimulator::new(&db, &mix, SimulationOptions::default())
        .expect("measurement mix matches platform");
    sim.run(&mut manager)
        .expect("overhead measurement run must finish within the event budget");
    let counters = manager.work_counters();
    assert!(counters.invocations > 0, "measurement run invoked the RMA");
    counters
}

/// Average measured work per invocation, rounded to whole operations.
pub(crate) fn per_invocation(counters: RmaWorkCounters) -> (u64, u64) {
    let inv = counters.invocations.max(1);
    (
        (counters.local_evaluations as f64 / inv as f64).round() as u64,
        (counters.reduction_ops as f64 / inv as f64).round() as u64,
    )
}

/// Runs the experiment.
pub fn run(ctx: &ExperimentContext) -> ExperimentReport {
    let mut report = ExperimentReport::new(
        "e5",
        "Paper I: software overhead of one Combined RMA invocation \
         (measured evaluation and reduction-cell counts; see the criterion \
         bench `rma_overhead` for measured time)",
    );

    let overhead = OverheadModel::default();
    let mut four_core_measured = 0u64;
    for &num_cores in &[2usize, 4, 8] {
        let platform = PlatformConfig::paper1(num_cores);
        let manager = CoordinatedRma::paper1(&platform, vec![QosSpec::STRICT; num_cores]);
        let bound =
            overhead.invocation_instructions(&platform, manager.evaluations_per_invocation());
        let (evals, cells) = per_invocation(measured_counters(ctx, &platform, manager));
        let instructions = overhead.invocation_instructions_measured(evals, cells);
        if num_cores == 4 {
            four_core_measured = instructions;
        }
        let fraction = overhead.fraction_of_interval_measured(&platform, evals, cells);
        report.push_row(
            ReportRow::new(format!("{num_cores}-core"))
                .with("Instructions / invocation (measured)", instructions as f64)
                .with("Worst-case bound", bound as f64)
                .with("Model evaluations / invocation", evals as f64)
                .with("Reduction cells / invocation", cells as f64)
                .with("% of 100M interval", fraction * 100.0),
        );
    }

    report.push_summary(format!(
        "4-core Combined RMA: {four_core_measured} instructions per invocation, measured from \
         the curve builder's evaluation count and the pruned reduction's cell updates \
         (paper: < 40K, about 0.04% of an interval)"
    ));
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn overhead_is_below_paper_bound() {
        let ctx = ExperimentContext::new(true);
        let report = run(&ctx);
        let four_core = report.rows.iter().find(|r| r.label == "4-core").unwrap();
        let measured = four_core
            .get("Instructions / invocation (measured)")
            .unwrap();
        // The paper-bound assertion: one invocation stays under 40K
        // instructions.
        assert!(measured < 40_000.0);
        assert!(four_core.get("% of 100M interval").unwrap() < 0.1);
        // Truthful accounting: the measured cost never exceeds the dense
        // worst-case bound.
        for row in &report.rows {
            let measured = row.get("Instructions / invocation (measured)").unwrap();
            assert!(measured <= row.get("Worst-case bound").unwrap());
            assert!(measured > 0.0);
        }
        assert!(report.summary.iter().any(|s| s.contains("measured")));
    }
}
