//! E5 — Paper I RMA overhead.
//!
//! Paper claim: one invocation of the Combined RMA executes fewer than 40 K
//! instructions on a 4-core system, about 0.04 % of a 100 M-instruction
//! interval, so the algorithm itself is negligible.

use crate::context::ExperimentContext;
use crate::report::{ExperimentReport, ReportRow};
use qosrm_core::{CoordinatedRma, OverheadModel};
use qosrm_types::{PlatformConfig, QosSpec, ResourceManager};

/// Runs the experiment.
pub fn run(_ctx: &ExperimentContext) -> ExperimentReport {
    let mut report = ExperimentReport::new(
        "e5",
        "Paper I: software overhead of one Combined RMA invocation \
         (instruction estimate; see the criterion bench `rma_overhead` for measured time)",
    );

    let overhead = OverheadModel::default();
    for &num_cores in &[2usize, 4, 8] {
        let platform = PlatformConfig::paper1(num_cores);
        let manager = CoordinatedRma::paper1(&platform, vec![QosSpec::STRICT; num_cores]);
        let instructions = manager.invocation_overhead_instructions(num_cores);
        let fraction =
            overhead.fraction_of_interval(&platform, manager.evaluations_per_invocation());
        report.push_row(
            ReportRow::new(format!("{num_cores}-core"))
                .with("Instructions / invocation", instructions as f64)
                .with("% of 100M interval", fraction * 100.0),
        );
    }

    let platform = PlatformConfig::paper1(4);
    let manager = CoordinatedRma::paper1(&platform, vec![QosSpec::STRICT; 4]);
    report.push_summary(format!(
        "4-core Combined RMA: {} instructions per invocation \
         (paper: < 40K, about 0.04% of an interval)",
        manager.invocation_overhead_instructions(4)
    ));
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn overhead_is_below_paper_bound() {
        let ctx = ExperimentContext::new(true);
        let report = run(&ctx);
        let four_core = report.rows.iter().find(|r| r.label == "4-core").unwrap();
        assert!(four_core.get("Instructions / invocation").unwrap() < 40_000.0);
        assert!(four_core.get("% of 100M interval").unwrap() < 0.1);
    }
}
