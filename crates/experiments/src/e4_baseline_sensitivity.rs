//! E4 — Paper I sensitivity studies: choice of the baseline VF level and
//! partial QoS relaxation.
//!
//! Paper claim: the achievable savings depend on the baseline VF that defines
//! the QoS target (a higher baseline leaves more headroom to trade), and
//! relaxing the QoS target for only a subset of the applications yields a
//! proportional share of the full-relaxation savings.
//!
//! Two declarative [`ScenarioSpec`]s lowered to grids: the first sweeps the
//! baseline VF level as a platform axis (strict QoS), the second sweeps
//! partial relaxation as a per-core QoS axis on the default platform.

use crate::context::{mean, ExperimentContext};
use crate::report::{ExperimentReport, ReportRow};
use crate::spec::{PlatformAxisSpec, PlatformSpec, ScenarioSpec, WorkloadSource};
use crate::sweep::{self, QosAxis, RmaVariant};
use qosrm_types::{FreqLevel, PlatformConfig, QosSpec};
use rma_sim::SimulationOptions;

/// Runs the experiment.
pub fn run(ctx: &ExperimentContext) -> ExperimentReport {
    let mut report = ExperimentReport::new(
        "e4",
        "Paper I: sensitivity to the baseline VF level and to relaxing QoS for only a \
         subset of the applications (Combined RMA, 4-core workloads)",
    );

    let workloads = WorkloadSource::Paper1(ctx.quick_mix_selection());
    let options = Some(SimulationOptions {
        provide_mlp_profiles: false,
        ..Default::default()
    });

    // Part 1: baseline VF sensitivity. Levels 4 / 6 / 8 = 1.6 / 2.0 / 2.4 GHz.
    let vf_spec = ScenarioSpec {
        name: "e4-baseline-vf".to_string(),
        platforms: [4usize, 6, 8]
            .iter()
            .map(|&baseline_level| {
                let mut platform = PlatformConfig::paper1(4);
                platform.vf = platform
                    .vf
                    .with_baseline(FreqLevel(baseline_level))
                    .unwrap();
                let freq_ghz = platform.vf.point(FreqLevel(baseline_level)).freq_ghz;
                PlatformAxisSpec {
                    label: format!("baseline {freq_ghz:.1} GHz"),
                    platform: PlatformSpec::Custom(platform),
                    workloads: workloads.clone(),
                }
            })
            .collect(),
        qos: vec![QosAxis::uniform("strict", QosSpec::STRICT)],
        variants: vec![RmaVariant::Paper1],
        options: options.clone(),
    };
    let vf_grid = vf_spec.lower().expect("the E4 VF spec lowers");
    let vf_result = sweep::run(&vf_grid, ctx);
    for axis in &vf_grid.platforms {
        let savings: Vec<f64> = axis
            .mixes
            .iter()
            .map(|mix| {
                vf_result
                    .expect_comparison(&axis.label, &mix.name, "strict", "RM2")
                    .energy_savings
            })
            .collect();
        report.push_row(
            ReportRow::new(axis.label.clone()).with("Avg savings %", mean(&savings) * 100.0),
        );
    }

    // Part 2: partial relaxation — relax 0 / 1 / 2 / 4 of the 4 applications
    // by 40 % while the rest stay strict.
    let partial_spec = ScenarioSpec {
        name: "e4-partial-relaxation".to_string(),
        platforms: vec![PlatformAxisSpec {
            label: "paper1-4c".to_string(),
            platform: PlatformSpec::Paper1 { num_cores: 4 },
            workloads,
        }],
        qos: [0usize, 1, 2, 4]
            .iter()
            .map(|&relaxed_apps| {
                QosAxis::per_core(
                    format!("{relaxed_apps}/4 apps relaxed by 40%"),
                    (0..4)
                        .map(|i| {
                            if i < relaxed_apps {
                                QosSpec::relaxed_by(0.4)
                            } else {
                                QosSpec::STRICT
                            }
                        })
                        .collect(),
                )
            })
            .collect(),
        variants: vec![RmaVariant::Paper1],
        options,
    };
    let partial_grid = partial_spec.lower().expect("the E4 partial spec lowers");
    let partial_result = sweep::run(&partial_grid, ctx);
    let axis = &partial_grid.platforms[0];
    for qos_axis in &partial_grid.qos {
        let savings: Vec<f64> = axis
            .mixes
            .iter()
            .map(|mix| {
                partial_result
                    .expect_comparison(&axis.label, &mix.name, &qos_axis.label, "RM2")
                    .energy_savings
            })
            .collect();
        report.push_row(
            ReportRow::new(qos_axis.label.clone()).with("Avg savings %", mean(&savings) * 100.0),
        );
    }

    report.push_summary(
        "Savings must grow with the number of relaxed applications; the baseline VF shifts \
         the absolute numbers (paper: higher baselines leave more room to slow down)."
            .to_string(),
    );
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn partial_relaxation_is_monotone() {
        let ctx = ExperimentContext::new(true);
        let report = run(&ctx);
        // Rows 3..=6 are the partial-relaxation sweep (0, 1, 2, 4 apps).
        let partial: Vec<f64> = report
            .rows
            .iter()
            .filter(|r| r.label.contains("apps relaxed"))
            .filter_map(|r| r.get("Avg savings %"))
            .collect();
        assert_eq!(partial.len(), 4);
        assert!(
            partial.last().unwrap() >= partial.first().unwrap(),
            "relaxing all apps must save at least as much as relaxing none: {partial:?}"
        );
    }
}
