//! E2 — Paper I modeling-error study: perfect vs. analytical models and the
//! resulting QoS violations.
//!
//! Paper claim: with perfect (oracle) models the Combined RMA saves 8 % of
//! system energy on average, close to the 6 % achieved with the analytical
//! models. With analytical models, 13 of the 80 applications in the 4-core
//! workloads violate their QoS constraint (average violation 3 %, maximum
//! 9 %); for the 8-core workloads 15 of 80 violate (average 3 %, maximum 7 %).

use crate::context::{max, mean, ExperimentContext};
use crate::report::{ExperimentReport, ReportRow};
use qosrm_core::{CoordinatedRma, ModelKind};
use qosrm_types::{PlatformConfig, QosSpec};
use rma_sim::SimulationOptions;
use workload::paper1_workloads;

/// Runs the experiment.
pub fn run(ctx: &ExperimentContext) -> ExperimentReport {
    let mut report = ExperimentReport::new(
        "e2",
        "Paper I: effect of modeling error — Combined RMA with analytical (Model 2) vs. \
         perfect models, and the QoS violations caused by modeling error",
    );

    for &num_cores in &[4usize, 8] {
        let platform = PlatformConfig::paper1(num_cores);
        let mixes = ctx.limit_workloads(paper1_workloads(num_cores));
        let db = ctx.database(&platform, &mixes);
        let qos = vec![QosSpec::STRICT; num_cores];

        let analytic_options = SimulationOptions {
            provide_mlp_profiles: false,
            ..Default::default()
        };
        let perfect_options = SimulationOptions {
            provide_mlp_profiles: false,
            provide_perfect_tables: true,
            ..Default::default()
        };

        let mut analytic_savings = Vec::new();
        let mut perfect_savings = Vec::new();
        let mut violation_magnitudes = Vec::new();
        let mut total_apps = 0usize;

        for mix in &mixes {
            let mut analytic = CoordinatedRma::paper1(&platform, qos.clone());
            let analytic_cmp =
                ctx.comparison(&db, mix, &mut analytic, &qos, analytic_options.clone());

            let mut perfect =
                CoordinatedRma::with_model(&platform, qos.clone(), ModelKind::Perfect, false)
                    .with_name("CombinedRMA-Perfect");
            let perfect_cmp = ctx.comparison(&db, mix, &mut perfect, &qos, perfect_options.clone());

            analytic_savings.push(analytic_cmp.energy_savings);
            perfect_savings.push(perfect_cmp.energy_savings);
            total_apps += num_cores;
            for v in &analytic_cmp.violations {
                violation_magnitudes.push(v.magnitude());
            }

            report.push_row(
                ReportRow::new(format!("{} ({}c)", mix.name, num_cores))
                    .with("Analytical savings %", analytic_cmp.energy_savings * 100.0)
                    .with("Perfect savings %", perfect_cmp.energy_savings * 100.0)
                    .with("Violations", analytic_cmp.num_violations() as f64)
                    .with("Max violation %", analytic_cmp.max_violation() * 100.0),
            );
        }

        report.push_summary(format!(
            "{num_cores}-core: analytical avg {:.1}% vs perfect avg {:.1}% savings \
             (paper: 6% vs 8%); {} of {} applications violate QoS \
             (paper: {}/80), avg violation {:.1}% / max {:.1}% (paper: 3% / {}%)",
            mean(&analytic_savings) * 100.0,
            mean(&perfect_savings) * 100.0,
            violation_magnitudes.len(),
            total_apps,
            if num_cores == 4 { 13 } else { 15 },
            mean(&violation_magnitudes) * 100.0,
            max(&violation_magnitudes) * 100.0,
            if num_cores == 4 { 9 } else { 7 },
        ));
    }

    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_run_reports_both_model_variants() {
        let ctx = ExperimentContext::new(true);
        let report = run(&ctx);
        assert!(!report.rows.is_empty());
        for row in &report.rows {
            assert!(row.get("Analytical savings %").is_some());
            assert!(row.get("Perfect savings %").is_some());
        }
        assert_eq!(report.summary.len(), 2);
    }
}
