//! Multi-process distributed sweeps: a coordinator serving shard leases
//! over the wire protocol of [`qosrm_proto`], and the worker loop that
//! drains it.
//!
//! The [`Coordinator`] is a thin concurrency shell around the durable
//! [`ShardScheduler`] of [`crate::stream`] — every grant, heartbeat, and
//! completion lands in the run directory's `manifest.json`, so a SIGKILLed
//! coordinator can be reopened over the same directory and live workers
//! simply keep going (their unexpired leases are restored). Workers
//! evaluate grants with the same `SweepEngine` the
//! single-process path uses and deliver JSONL outcome logs back over
//! `POST /shards/{id}/complete`; the scheduler writes them through
//! `simdb::persist`, so `sweep merge` of a distributed run is
//! byte-identical to a single-process run of the same spec.
//!
//! Three deployment shapes share this module:
//!
//! * **offline multi-process** — `sweep coordinate` serves a directory
//!   ([`serve_coordinator`]), `sweep work` processes drain it
//!   ([`run_worker`]);
//! * **daemon** — `qosrm_serve` opens a [`Coordinator`] per run and mounts
//!   the same endpoints on its own listener, with its in-process workers
//!   and external `qosrm_worker` processes drawing from one queue;
//! * **in-process** — benches and tests drive [`Coordination`] directly,
//!   with explicit clocks and no sockets.

use crate::context::ExperimentContext;
use crate::spec::ScenarioSpec;
use crate::stream::{self, LeaseCounters, ShardScheduler, SweepManifest, MANIFEST_FILE};
use crate::sweep::{grid_points, mix_pairs, GridPoint, SweepEngine, SweepOptions};
use crate::sync::LockUnpoisoned;
use qosrm_proto::http::{
    check_proto_version, read_request, write_error, write_json, Request, RequestError, WireError,
    PROTO_VERSION, PROTO_VERSION_HEADER,
};
use qosrm_proto::{
    CompleteReply, CompleteRequest, CoordStatus, HeartbeatReply, HeartbeatRequest, LeaseGrant,
    LeaseReply, LeaseRequest, LeaseTelemetry,
};
use qosrm_types::QosrmError;
use serde::Serialize;
use std::collections::HashMap;
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::path::Path;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::{self, JoinHandle};
use std::time::{Duration, SystemTime, UNIX_EPOCH};

/// Body bound of coordination requests. Completions carry whole shard logs,
/// so this is far above the daemon's default submission payload cap.
pub const MAX_COMPLETE_BYTES: usize = 64 * 1024 * 1024;

/// Milliseconds since the Unix epoch, the coordinator's lease clock.
pub fn unix_ms() -> u64 {
    SystemTime::now()
        .duration_since(UNIX_EPOCH)
        .map(|d| d.as_millis() as u64)
        .unwrap_or(0)
}

/// Tuning of a [`Coordinator`].
#[derive(Debug, Clone)]
pub struct CoordinatorConfig {
    /// Scenarios per shard when the directory is fresh.
    pub shard_size: usize,
    /// Lease duration; workers heartbeat at a third of it.
    pub lease_ms: u64,
    /// Retry hint handed to workers when nothing is pending right now.
    pub retry_ms: u64,
    /// Ask workers to evaluate serially (deterministic counter sequencing
    /// for benchmarks; memoization stays on).
    pub serial: bool,
    /// Log grants, completions, and reinjections to stderr.
    pub verbose: bool,
    /// Worker-id prefix whose live leases are reclaimed (forced to expire)
    /// at open. The daemon names its in-process workers with a fixed
    /// prefix; those leases cannot outlive the daemon process, so a
    /// restarted daemon reinjects them immediately instead of waiting out
    /// `lease_ms` — while *external* workers' leases survive the restart.
    /// Empty (the default) reclaims nothing.
    pub reclaim_prefix: String,
}

impl Default for CoordinatorConfig {
    fn default() -> Self {
        CoordinatorConfig {
            shard_size: 32,
            lease_ms: 10_000,
            retry_ms: 250,
            serial: false,
            verbose: false,
            reclaim_prefix: String::new(),
        }
    }
}

/// The lease-granting side of a distributed sweep: a [`ShardScheduler`]
/// over one run directory, shared across connection threads.
pub struct Coordinator {
    run: String,
    spec_json: String,
    quick: bool,
    config: CoordinatorConfig,
    counters: Arc<LeaseCounters>,
    scheduler: Mutex<ShardScheduler>,
}

impl Coordinator {
    /// Opens (creating or resuming) the run directory `dir` for `spec`.
    ///
    /// A fresh directory gets a manifest; an existing one is adopted after
    /// checking that its spec and quick mode match — a coordinator restart
    /// must continue the same sweep, not silently start a different one.
    /// Unexpired leases survive the reopen; expired (and single-process
    /// `"local"`) leases are reinjected.
    pub fn open(
        run: &str,
        spec: &ScenarioSpec,
        quick: bool,
        dir: &Path,
        config: &CoordinatorConfig,
        counters: Arc<LeaseCounters>,
    ) -> Result<Coordinator, QosrmError> {
        let spec_json = serde_json::to_string(spec).map_err(|e| QosrmError::Io(e.to_string()))?;
        let mut manifest = if dir.join(MANIFEST_FILE).exists() {
            let manifest = SweepManifest::load(dir)?;
            if manifest.quick != quick {
                return Err(QosrmError::Io(format!(
                    "run at {} was started in {} mode but the coordinator is in {} mode",
                    dir.display(),
                    if manifest.quick { "quick" } else { "full" },
                    if quick { "quick" } else { "full" },
                )));
            }
            let existing =
                serde_json::to_string(&manifest.spec).map_err(|e| QosrmError::Io(e.to_string()))?;
            if existing != spec_json {
                return Err(QosrmError::Io(format!(
                    "run at {} embeds a different spec ({:?}); refusing to mix sweeps \
                     in one directory",
                    dir.display(),
                    manifest.spec.name,
                )));
            }
            manifest
        } else {
            stream::init_manifest(spec, quick, dir, config.shard_size)?
        };
        if !config.reclaim_prefix.is_empty() {
            // Leases held by this process family's own (dead) workers are
            // forced to expire so the scheduler reinjects them at open.
            for record in &mut manifest.leases {
                if !record.done
                    && record.epoch > 0
                    && record.worker.starts_with(&config.reclaim_prefix)
                {
                    record.expires_ms = 0;
                }
            }
        }
        let scheduler = ShardScheduler::open(
            manifest,
            dir,
            config.shard_size,
            config.lease_ms,
            counters.clone(),
            false,
            unix_ms(),
        )?;
        Ok(Coordinator {
            run: run.to_string(),
            spec_json,
            quick,
            config: config.clone(),
            counters,
            scheduler: Mutex::new(scheduler),
        })
    }

    /// The run identifier workers echo back on every request.
    pub fn run(&self) -> &str {
        &self.run
    }

    /// Whether every scenario has a durable outcome.
    pub fn finished(&self) -> bool {
        self.scheduler.lock_unpoisoned().finished()
    }

    /// `(completed, total)` scenarios.
    pub fn progress(&self) -> (usize, usize) {
        let scheduler = self.scheduler.lock_unpoisoned();
        (scheduler.manifest().completed_scenarios, scheduler.total())
    }

    /// A snapshot of the lease-protocol counters.
    pub fn telemetry(&self) -> LeaseTelemetry {
        self.counters.snapshot()
    }

    /// The `GET /status` snapshot.
    pub fn status(&self) -> CoordStatus {
        let (completed, total) = self.progress();
        CoordStatus {
            run: self.run.clone(),
            quick: self.quick,
            completed: completed as u64,
            total: total as u64,
            finished: completed >= total,
            leases: self.telemetry(),
        }
    }

    fn log(&self, line: &str) {
        if self.config.verbose {
            eprintln!("[coordinator] {line}");
        }
    }

    /// Leases the next pending shard to `worker` (reinjecting any leases
    /// that expired first).
    pub fn lease_shard(&self, worker: &str) -> Result<LeaseReply, QosrmError> {
        let mut scheduler = self.scheduler.lock_unpoisoned();
        let reinjected_before = self.counters.snapshot().reinjected;
        let lease = scheduler.lease(worker, unix_ms())?;
        let reinjected = self.counters.snapshot().reinjected - reinjected_before;
        if reinjected > 0 {
            self.log(&format!(
                "{reinjected} expired lease(s) reinjected into the pending queue"
            ));
        }
        Ok(match lease {
            Some(lease) => {
                self.log(&format!(
                    "shard {} epoch {} -> {worker} ({} scenario(s))",
                    lease.shard,
                    lease.epoch,
                    lease.points.len()
                ));
                LeaseReply {
                    grant: Some(LeaseGrant {
                        run: self.run.clone(),
                        shard: lease.shard,
                        epoch: lease.epoch,
                        lease_ms: self.config.lease_ms,
                        expires_ms: lease.expires_ms,
                        spec_json: self.spec_json.clone(),
                        quick: self.quick,
                        points: lease.points,
                        serial: self.config.serial,
                    }),
                    finished: false,
                    retry_ms: 0,
                }
            }
            None => LeaseReply {
                grant: None,
                finished: scheduler.finished(),
                retry_ms: self.config.retry_ms,
            },
        })
    }

    /// Renews a held lease.
    pub fn renew(&self, request: &HeartbeatRequest) -> Result<HeartbeatReply, QosrmError> {
        let mut scheduler = self.scheduler.lock_unpoisoned();
        let renewed =
            scheduler.heartbeat(&request.worker, request.shard, request.epoch, unix_ms())?;
        Ok(HeartbeatReply {
            renewed: renewed.is_some(),
            expires_ms: renewed.unwrap_or(0),
        })
    }

    /// Delivers a finished shard's log; stale epochs are rejected and
    /// their log dropped.
    pub fn deliver(&self, request: &CompleteRequest) -> Result<CompleteReply, QosrmError> {
        let mut scheduler = self.scheduler.lock_unpoisoned();
        let outcome = scheduler.complete(
            &request.worker,
            request.shard,
            request.epoch,
            &request.outcomes_jsonl,
            request.curve_hits,
            request.curve_misses,
            unix_ms(),
        )?;
        if outcome.accepted {
            self.log(&format!(
                "shard {} completed by {} ({}/{} scenarios done)",
                request.shard,
                request.worker,
                scheduler.manifest().completed_scenarios,
                scheduler.total(),
            ));
        } else {
            self.log(&format!(
                "stale completion of shard {} epoch {} from {} rejected",
                request.shard, request.epoch, request.worker
            ));
        }
        Ok(CompleteReply {
            accepted: outcome.accepted,
            stale: outcome.stale,
            finished: scheduler.finished(),
        })
    }
}

/// The lease/heartbeat/complete surface a worker drains — implemented by
/// [`Coordinator`] (in-process) and [`WorkerClient`] (over the wire), so
/// the worker loop and the daemon's internal workers share one code path.
pub trait Coordination {
    /// Requests a shard lease for `worker` (from `run`, or any run when
    /// empty).
    fn lease(&self, worker: &str, run: &str) -> Result<LeaseReply, QosrmError>;
    /// Renews a held lease.
    fn heartbeat(&self, request: &HeartbeatRequest) -> Result<HeartbeatReply, QosrmError>;
    /// Delivers a finished shard's log.
    fn complete(&self, request: &CompleteRequest) -> Result<CompleteReply, QosrmError>;
}

impl Coordination for Coordinator {
    fn lease(&self, worker: &str, run: &str) -> Result<LeaseReply, QosrmError> {
        if !run.is_empty() && run != self.run {
            return Err(QosrmError::Io(format!(
                "this coordinator serves run {:?}, not {run:?}",
                self.run
            )));
        }
        self.lease_shard(worker)
    }

    fn heartbeat(&self, request: &HeartbeatRequest) -> Result<HeartbeatReply, QosrmError> {
        self.renew(request)
    }

    fn complete(&self, request: &CompleteRequest) -> Result<CompleteReply, QosrmError> {
        self.deliver(request)
    }
}

/// Evaluates the grid points `indices` (into `spec`'s canonical point
/// order) and returns `(outcomes_jsonl, curve_hits, curve_misses)` — the
/// exact payload of a [`CompleteRequest`]. The single public seam between
/// the wire protocol and the sweep engine; the single-process path,
/// workers, the daemon, and the tests all produce shard logs through the
/// same engine, which is what keeps distributed merges byte-identical.
pub fn evaluate_points(
    ctx: &ExperimentContext,
    spec: &ScenarioSpec,
    indices: &[u64],
    options: SweepOptions,
) -> Result<(String, u64, u64), QosrmError> {
    let grid = spec.lower()?;
    let points = grid_points(&grid);
    let chunk: Vec<GridPoint> = indices
        .iter()
        .map(|&idx| {
            points.get(idx as usize).copied().ok_or_else(|| {
                QosrmError::Io(format!(
                    "grid point index {idx} is out of range for spec {:?} ({} points); \
                     coordinator and worker disagree on the spec",
                    spec.name,
                    points.len()
                ))
            })
        })
        .collect::<Result<_, QosrmError>>()?;
    let engine = SweepEngine::new(&grid, ctx, options);
    let units = engine.build_units(&mix_pairs(&chunk));
    let cache = ctx.curve_cache();
    let (hits_before, misses_before) = (cache.hits(), cache.misses());
    let outcomes = engine.evaluate_all(&units, &chunk);
    drop(units);
    let mut log = String::new();
    for outcome in &outcomes {
        log.push_str(&serde_json::to_string(outcome).map_err(|e| QosrmError::Io(e.to_string()))?);
        log.push('\n');
    }
    Ok((
        log,
        cache.hits() - hits_before,
        cache.misses() - misses_before,
    ))
}

/// Evaluates one grant's points, heartbeating the lease from a side thread
/// the whole time. Returns the [`CompleteRequest`] payload; a lost lease
/// does not abort the evaluation — the completion is simply delivered and
/// resolved (accepted or stale) by epoch at the coordinator.
pub fn evaluate_grant<C: Coordination + Sync>(
    coordination: &C,
    worker: &str,
    grant: &LeaseGrant,
    ctx: &ExperimentContext,
) -> Result<(String, u64, u64), QosrmError> {
    let spec: ScenarioSpec = serde_json::from_str(&grant.spec_json)
        .map_err(|e| QosrmError::Io(format!("grant carries an unparsable spec: {e}")))?;
    // Workers are long-running serving processes: the incremental delta
    // path cuts their per-invocation cost and is bit-identical in results,
    // so merged shards still match the in-memory sweep byte for byte.
    let options = SweepOptions {
        parallel: !grant.serial,
        memoize: true,
        incremental: true,
    };
    let stop = AtomicBool::new(false);
    let heartbeat = HeartbeatRequest {
        worker: worker.to_string(),
        run: grant.run.clone(),
        shard: grant.shard,
        epoch: grant.epoch,
    };
    let interval = Duration::from_millis((grant.lease_ms / 3).max(50));
    thread::scope(|scope| {
        scope.spawn(|| {
            let tick = Duration::from_millis(25);
            let mut elapsed = Duration::ZERO;
            while !stop.load(Ordering::Relaxed) {
                thread::sleep(tick);
                elapsed += tick;
                if elapsed >= interval {
                    elapsed = Duration::ZERO;
                    // Transport hiccups and lost leases are both fine to
                    // ignore here: the completion is resolved by epoch.
                    let _ = coordination.heartbeat(&heartbeat);
                }
            }
        });
        // Contain evaluation panics (e.g. an exceeded event budget deep in
        // the engine): an escaping unwind would skip the stop-flag store
        // and leave the heartbeat thread spinning forever in the scope's
        // implicit join, hanging the worker instead of failing the run.
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            evaluate_points(ctx, &spec, &grant.points, options)
        }));
        stop.store(true, Ordering::Relaxed);
        result.unwrap_or_else(|panic| {
            let message = panic
                .downcast_ref::<&str>()
                .map(|s| s.to_string())
                .or_else(|| panic.downcast_ref::<String>().cloned())
                .unwrap_or_else(|| "non-string panic payload".to_string());
            Err(QosrmError::Io(format!(
                "shard evaluation panicked: {message}"
            )))
        })
    })
}

/// Tuning of a worker process.
#[derive(Debug, Clone)]
pub struct WorkerConfig {
    /// Worker identity (appears in telemetry and coordinator logs).
    pub worker: String,
    /// Run to draw from; empty means "any run" (daemon mode).
    pub run: String,
    /// Fallback poll interval when the coordinator grants nothing and
    /// offers no retry hint.
    pub poll_ms: u64,
    /// Artificial pause between evaluating a shard and delivering its
    /// completion (0 in production; the kill-window of the dist smoke).
    pub shard_delay_ms: u64,
    /// Transport-level retries per request before the worker gives up on
    /// the coordinator.
    pub transport_retries: u32,
}

impl Default for WorkerConfig {
    fn default() -> Self {
        WorkerConfig {
            worker: format!("worker-{}", std::process::id()),
            run: String::new(),
            poll_ms: 200,
            shard_delay_ms: 0,
            transport_retries: 25,
        }
    }
}

/// What a worker accomplished before the coordinator reported the run
/// finished.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct WorkerReport {
    /// Shard completions accepted.
    pub shards_completed: u64,
    /// Completions rejected as stale (the shard was reinjected and won by
    /// someone else).
    pub shards_stale: u64,
    /// Scenarios evaluated (including those of stale shards).
    pub scenarios: u64,
}

/// Runs the worker loop against the coordinator at `addr` until the run
/// finishes, building one [`ExperimentContext`] per database mode on
/// demand.
pub fn run_worker(addr: &str, config: &WorkerConfig) -> Result<WorkerReport, QosrmError> {
    let mut contexts: HashMap<bool, Arc<ExperimentContext>> = HashMap::new();
    run_worker_with(addr, config, &mut |quick| {
        contexts
            .entry(quick)
            .or_insert_with(|| Arc::new(ExperimentContext::new(quick)))
            .clone()
    })
}

/// [`run_worker`] with caller-supplied contexts (benches share one warm
/// context across several worker threads).
pub fn run_worker_with(
    addr: &str,
    config: &WorkerConfig,
    ctx_for: &mut dyn FnMut(bool) -> Arc<ExperimentContext>,
) -> Result<WorkerReport, QosrmError> {
    let client = WorkerClient::new(addr, config.transport_retries);
    let mut report = WorkerReport::default();
    loop {
        let reply = client.lease(&config.worker, &config.run)?;
        let Some(grant) = reply.grant else {
            if reply.finished {
                return Ok(report);
            }
            let wait = if reply.retry_ms > 0 {
                reply.retry_ms
            } else {
                config.poll_ms
            };
            thread::sleep(Duration::from_millis(wait.max(10)));
            continue;
        };
        let ctx = ctx_for(grant.quick);
        let (outcomes_jsonl, curve_hits, curve_misses) =
            evaluate_grant(&client, &config.worker, &grant, &ctx)?;
        if config.shard_delay_ms > 0 {
            thread::sleep(Duration::from_millis(config.shard_delay_ms));
        }
        let delivered = client.complete(&CompleteRequest {
            worker: config.worker.clone(),
            run: grant.run.clone(),
            shard: grant.shard,
            epoch: grant.epoch,
            outcomes_jsonl,
            curve_hits,
            curve_misses,
        })?;
        report.scenarios += grant.points.len() as u64;
        if delivered.accepted {
            report.shards_completed += 1;
        } else {
            report.shards_stale += 1;
        }
    }
}

/// Blocking wire client of the coordination endpoints. Transport errors
/// retry with backoff (a coordinator restart is survivable mid-run); typed
/// rejections — above all a protocol-version mismatch — fail fast.
pub struct WorkerClient {
    addr: String,
    transport_retries: u32,
    timeout: Duration,
}

impl WorkerClient {
    /// A client of the coordinator at `addr` (`host:port`).
    pub fn new(addr: &str, transport_retries: u32) -> Self {
        WorkerClient {
            addr: addr.to_string(),
            transport_retries,
            timeout: Duration::from_secs(120),
        }
    }

    /// Fetches the coordinator's `GET /status` snapshot.
    pub fn status(&self) -> Result<CoordStatus, QosrmError> {
        self.call_raw("GET", "/status", String::new())
    }

    fn call<B: Serialize, R: serde::Deserialize>(
        &self,
        method: &str,
        path: &str,
        body: &B,
    ) -> Result<R, QosrmError> {
        let payload = serde_json::to_string(body).map_err(|e| QosrmError::Io(e.to_string()))?;
        self.call_raw(method, path, payload)
    }

    fn call_raw<R: serde::Deserialize>(
        &self,
        method: &str,
        path: &str,
        payload: String,
    ) -> Result<R, QosrmError> {
        let mut last_error = String::new();
        for attempt in 0..self.transport_retries.max(1) {
            if attempt > 0 {
                thread::sleep(Duration::from_millis(200));
            }
            match self.exchange(method, path, &payload) {
                Ok((status, text)) if status < 400 => {
                    return serde_json::from_str(&text).map_err(|e| {
                        QosrmError::Io(format!("unparsable coordinator reply on {path}: {e}"))
                    });
                }
                Ok((status, text)) => {
                    // Typed rejection: not a transport problem, do not retry.
                    let detail = serde_json::from_str::<WireError>(&text)
                        .map(|e| format!("{}: {}", e.error.kind, e.error.message))
                        .unwrap_or(text);
                    return Err(QosrmError::Io(format!(
                        "coordinator rejected {method} {path} ({status}): {detail}"
                    )));
                }
                Err(e) => last_error = e,
            }
        }
        Err(QosrmError::Io(format!(
            "coordinator at {} unreachable after {} attempt(s) on {method} {path}: {last_error}",
            self.addr,
            self.transport_retries.max(1)
        )))
    }

    fn exchange(&self, method: &str, path: &str, payload: &str) -> Result<(u16, String), String> {
        let stream = TcpStream::connect(&self.addr).map_err(|e| e.to_string())?;
        stream.set_read_timeout(Some(self.timeout)).ok();
        stream.set_write_timeout(Some(self.timeout)).ok();
        let mut stream = stream;
        let head = format!(
            "{method} {path} HTTP/1.0\r\nHost: qosrm\r\n{PROTO_VERSION_HEADER}: {PROTO_VERSION}\r\n\
             Content-Type: application/json\r\nContent-Length: {}\r\nConnection: close\r\n\r\n",
            payload.len()
        );
        stream
            .write_all(head.as_bytes())
            .map_err(|e| e.to_string())?;
        stream
            .write_all(payload.as_bytes())
            .map_err(|e| e.to_string())?;
        stream.flush().map_err(|e| e.to_string())?;
        stream.shutdown(std::net::Shutdown::Write).ok();
        let mut raw = Vec::new();
        stream.read_to_end(&mut raw).map_err(|e| e.to_string())?;
        let text = String::from_utf8_lossy(&raw);
        let (head, body) = text
            .split_once("\r\n\r\n")
            .ok_or_else(|| "response has no header/body separator".to_string())?;
        let status = head
            .lines()
            .next()
            .and_then(|line| line.split_whitespace().nth(1))
            .and_then(|code| code.parse::<u16>().ok())
            .ok_or_else(|| format!("unparsable status line in {head:?}"))?;
        Ok((status, body.to_string()))
    }
}

impl Coordination for WorkerClient {
    fn lease(&self, worker: &str, run: &str) -> Result<LeaseReply, QosrmError> {
        self.call(
            "POST",
            "/lease",
            &LeaseRequest {
                worker: worker.to_string(),
                run: run.to_string(),
            },
        )
    }

    fn heartbeat(&self, request: &HeartbeatRequest) -> Result<HeartbeatReply, QosrmError> {
        self.call("POST", "/heartbeat", request)
    }

    fn complete(&self, request: &CompleteRequest) -> Result<CompleteReply, QosrmError> {
        self.call(
            "POST",
            &format!("/shards/{}/complete", request.shard),
            request,
        )
    }
}

/// A running coordinator listener (see [`serve_coordinator`]).
pub struct CoordinatorServer {
    addr: SocketAddr,
    shutdown: Arc<AtomicBool>,
    handle: Option<JoinHandle<()>>,
}

impl CoordinatorServer {
    /// The bound address (useful with an ephemeral port 0 bind).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stops accepting and joins the listener thread. Connection threads
    /// finish their in-flight request.
    pub fn stop(mut self) {
        self.shutdown.store(true, Ordering::SeqCst);
        // Unblock the accept loop.
        let _ = TcpStream::connect(self.addr);
        if let Some(handle) = self.handle.take() {
            let _ = handle.join();
        }
    }
}

/// Mounts `coordinator` on a listener at `addr` (`host:port`, port 0 for
/// ephemeral) and serves the coordination endpoints until
/// [`CoordinatorServer::stop`]:
///
/// | Request | Body | Meaning |
/// |---|---|---|
/// | `POST /lease` | [`LeaseRequest`] | lease the next pending shard |
/// | `POST /heartbeat` | [`HeartbeatRequest`] | renew a held lease |
/// | `POST /shards/{id}/complete` | [`CompleteRequest`] | deliver a shard log |
/// | `GET /status` | — | [`CoordStatus`] snapshot |
/// | `GET /healthz` | — | liveness |
///
/// Every `POST` requires the [`PROTO_VERSION_HEADER`] header; a missing or
/// mismatched version is answered with a typed `ProtocolMismatch` error.
pub fn serve_coordinator(
    addr: &str,
    coordinator: Arc<Coordinator>,
) -> Result<CoordinatorServer, QosrmError> {
    let listener = TcpListener::bind(addr)
        .map_err(|e| QosrmError::Io(format!("cannot bind coordinator listener at {addr}: {e}")))?;
    let local = listener
        .local_addr()
        .map_err(|e| QosrmError::Io(e.to_string()))?;
    let shutdown = Arc::new(AtomicBool::new(false));
    let accept_shutdown = shutdown.clone();
    let handle = thread::spawn(move || {
        for stream in listener.incoming() {
            if accept_shutdown.load(Ordering::SeqCst) {
                break;
            }
            let Ok(stream) = stream else { continue };
            let coordinator = coordinator.clone();
            thread::spawn(move || {
                let mut stream = stream;
                handle_coordination_connection(&mut stream, &coordinator);
            });
        }
    });
    Ok(CoordinatorServer {
        addr: local,
        shutdown,
        handle: Some(handle),
    })
}

fn handle_coordination_connection(stream: &mut TcpStream, coordinator: &Arc<Coordinator>) {
    let request = match read_request(stream, MAX_COMPLETE_BYTES) {
        Ok(request) => request,
        Err(RequestError::Closed) => return,
        Err(RequestError::TooLarge { limit }) => {
            let _ = write_error(
                stream,
                413,
                "Payload Too Large",
                &WireError::new(
                    "PayloadTooLarge",
                    format!("request exceeds the {limit}-byte bound"),
                ),
            );
            return;
        }
        Err(RequestError::Malformed(detail)) => {
            let _ = write_error(
                stream,
                400,
                "Bad Request",
                &WireError::new("MalformedRequest", detail),
            );
            return;
        }
    };
    let resolve = |run: &str| {
        if run.is_empty() || run == coordinator.run() {
            Resolution::Coordinated(coordinator.clone())
        } else {
            Resolution::Unknown
        }
    };
    if let Ok(false) = respond_coordination(stream, &request, &resolve) {
        let _ = write_error(
            stream,
            404,
            "Not Found",
            &WireError::new("NotFound", format!("no such endpoint: {}", request.path)),
        );
    }
}

/// What a run id a coordination request names resolves to.
///
/// The standalone listener only ever answers `Coordinated` (its single
/// coordinator) or `Unknown` (a mismatched run id — fail fast, the worker
/// is pointed at the wrong coordinator). The daemon additionally knows
/// about runs *around* their coordinated phase: `Pending` (admitted but
/// not yet claimed by a worker — retry soon) and `Finished` (terminal; the
/// coordinator is gone and the worker should stop).
pub enum Resolution {
    /// A live coordinator serves this run.
    Coordinated(Arc<Coordinator>),
    /// The run exists but is not coordinated *yet*; workers should retry.
    Pending,
    /// The run reached a terminal state; workers should stop draining it.
    Finished,
    /// No such run.
    Unknown,
}

/// Routes one parsed coordination request, returning `Ok(false)` when the
/// request matched none of the coordination endpoints (so an embedding
/// dispatcher — the daemon — can fall through to its own routes or a 404).
///
/// `resolve` maps the run id a request names to a [`Resolution`]; the
/// empty string means "any run with pending work". Uncoordinated
/// resolutions keep workers well-behaved: a `Pending` (or any-run
/// `Unknown`) lease is told to retry, a `Finished` lease is told the run
/// is done, a named-run `Unknown` lease is a typed `RunNotFound`, an
/// uncoordinated heartbeat is answered "lease dead", and an uncoordinated
/// completion is answered "stale" — the run finished (or died) without
/// this shard, so the log is dropped.
pub fn respond_coordination(
    stream: &mut TcpStream,
    request: &Request,
    resolve: &dyn Fn(&str) -> Resolution,
) -> std::io::Result<bool> {
    let segments: Vec<&str> = request.path.split('/').filter(|s| !s.is_empty()).collect();
    match (request.method.as_str(), segments.as_slice()) {
        ("POST", ["lease"]) => {
            if let Err(error) = check_proto_version(request) {
                return write_error(stream, 400, "Bad Request", &error).map(|_| true);
            }
            let body: LeaseRequest = match parse_body(&request.body) {
                Ok(body) => body,
                Err(error) => return write_error(stream, 400, "Bad Request", &error).map(|_| true),
            };
            let idle = |finished: bool| LeaseReply {
                grant: None,
                finished,
                retry_ms: 500,
            };
            match resolve(&body.run) {
                Resolution::Coordinated(coordinator) => {
                    reply_json(stream, coordinator.lease_shard(&body.worker)).map(|_| true)
                }
                Resolution::Pending => reply_json(stream, Ok(idle(false))).map(|_| true),
                Resolution::Finished => reply_json(stream, Ok(idle(true))).map(|_| true),
                Resolution::Unknown if body.run.is_empty() => {
                    reply_json(stream, Ok(idle(false))).map(|_| true)
                }
                Resolution::Unknown => write_error(
                    stream,
                    404,
                    "Not Found",
                    &WireError::new(
                        "RunNotFound",
                        format!("no coordinated run {:?} here", body.run),
                    ),
                )
                .map(|_| true),
            }
        }
        ("POST", ["heartbeat"]) => {
            if let Err(error) = check_proto_version(request) {
                return write_error(stream, 400, "Bad Request", &error).map(|_| true);
            }
            let body: HeartbeatRequest = match parse_body(&request.body) {
                Ok(body) => body,
                Err(error) => return write_error(stream, 400, "Bad Request", &error).map(|_| true),
            };
            match resolve(&body.run) {
                Resolution::Coordinated(coordinator) => {
                    reply_json(stream, coordinator.renew(&body)).map(|_| true)
                }
                _ => reply_json(
                    stream,
                    Ok(HeartbeatReply {
                        renewed: false,
                        expires_ms: 0,
                    }),
                )
                .map(|_| true),
            }
        }
        ("POST", ["shards", shard, "complete"]) => {
            if let Err(error) = check_proto_version(request) {
                return write_error(stream, 400, "Bad Request", &error).map(|_| true);
            }
            let body: CompleteRequest = match parse_body(&request.body) {
                Ok(body) => body,
                Err(error) => return write_error(stream, 400, "Bad Request", &error).map(|_| true),
            };
            if shard.parse::<u64>() != Ok(body.shard) {
                return write_error(
                    stream,
                    400,
                    "Bad Request",
                    &WireError::new(
                        "MalformedRequest",
                        format!("path names shard {shard} but the body names {}", body.shard),
                    ),
                )
                .map(|_| true);
            }
            match resolve(&body.run) {
                Resolution::Coordinated(coordinator) => {
                    reply_json(stream, coordinator.deliver(&body)).map(|_| true)
                }
                _ => reply_json(
                    stream,
                    Ok(CompleteReply {
                        accepted: false,
                        stale: true,
                        finished: true,
                    }),
                )
                .map(|_| true),
            }
        }
        ("GET", ["status"]) => match resolve("") {
            Resolution::Coordinated(coordinator) => {
                reply_json(stream, Ok(coordinator.status())).map(|_| true)
            }
            _ => write_error(
                stream,
                404,
                "Not Found",
                &WireError::new("RunNotFound", "no coordinated run is active"),
            )
            .map(|_| true),
        },
        ("GET", ["healthz"]) => write_json(stream, 200, "OK", "{\"ok\":true}").map(|_| true),
        _ => Ok(false),
    }
}

fn parse_body<T: serde::Deserialize>(body: &[u8]) -> Result<T, WireError> {
    let text = std::str::from_utf8(body)
        .map_err(|_| WireError::new("MalformedRequest", "body is not UTF-8"))?;
    serde_json::from_str(text)
        .map_err(|e| WireError::new("MalformedRequest", format!("unparsable body: {e}")))
}

fn reply_json<T: Serialize>(
    stream: &mut TcpStream,
    result: Result<T, QosrmError>,
) -> std::io::Result<()> {
    match result {
        Ok(value) => {
            let body = serde_json::to_string(&value).unwrap_or_else(|_| "{}".to_string());
            write_json(stream, 200, "OK", &body)
        }
        Err(e) => write_error(
            stream,
            500,
            "Internal Server Error",
            &WireError::new("Internal", e.to_string()),
        ),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::{PlatformAxisSpec, PlatformSpec, WorkloadSource};
    use crate::sweep::{QosAxis, RmaVariant};
    use qosrm_types::QosSpec;
    use std::path::PathBuf;
    use workload::{MixPopulation, SynthSpec};

    fn tiny_spec() -> ScenarioSpec {
        ScenarioSpec {
            name: "dist-test".to_string(),
            platforms: vec![PlatformAxisSpec {
                label: "p4".to_string(),
                platform: PlatformSpec::Paper1 { num_cores: 4 },
                workloads: WorkloadSource::Synth(SynthSpec {
                    seed: 3,
                    count: 3,
                    num_cores: 4,
                    population: MixPopulation::Mixed,
                    name_prefix: "s-".to_string(),
                }),
            }],
            qos: vec![QosAxis::uniform("strict", QosSpec::STRICT)],
            variants: vec![RmaVariant::Paper1],
            options: Some(rma_sim::SimulationOptions {
                provide_mlp_profiles: false,
                ..Default::default()
            }),
        }
    }

    fn temp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("qosrm_dist_{tag}_{}", std::process::id()));
        std::fs::remove_dir_all(&dir).ok();
        dir
    }

    #[test]
    fn versionless_requests_fail_fast_with_a_typed_error() {
        let dir = temp_dir("version");
        let coordinator = Arc::new(
            Coordinator::open(
                "r-test",
                &tiny_spec(),
                true,
                &dir,
                &CoordinatorConfig::default(),
                Arc::new(LeaseCounters::default()),
            )
            .unwrap(),
        );
        let server = serve_coordinator("127.0.0.1:0", coordinator).unwrap();
        let addr = server.addr().to_string();

        // A hand-rolled request without the version header.
        let mut stream = TcpStream::connect(&addr).unwrap();
        let body = "{\"worker\":\"w\",\"run\":\"\"}";
        let head = format!(
            "POST /lease HTTP/1.0\r\nContent-Type: application/json\r\n\
             Content-Length: {}\r\nConnection: close\r\n\r\n",
            body.len()
        );
        stream.write_all(head.as_bytes()).unwrap();
        stream.write_all(body.as_bytes()).unwrap();
        stream.shutdown(std::net::Shutdown::Write).unwrap();
        let mut raw = Vec::new();
        stream.read_to_end(&mut raw).unwrap();
        let text = String::from_utf8_lossy(&raw);
        assert!(text.starts_with("HTTP/1.0 400"), "got {text:?}");
        assert!(text.contains("ProtocolMismatch"), "got {text:?}");

        // The versioned client is accepted.
        let client = WorkerClient::new(&addr, 3);
        let reply = client.lease("w", "").unwrap();
        assert!(reply.grant.is_some());
        server.stop();
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn wire_worker_drains_a_coordinator_to_a_mergeable_run() {
        let dir = temp_dir("drain");
        let config = CoordinatorConfig {
            shard_size: 2,
            ..Default::default()
        };
        let coordinator = Arc::new(
            Coordinator::open(
                "r-drain",
                &tiny_spec(),
                true,
                &dir,
                &config,
                Arc::new(LeaseCounters::default()),
            )
            .unwrap(),
        );
        let server = serve_coordinator("127.0.0.1:0", coordinator.clone()).unwrap();
        let addr = server.addr().to_string();
        let report = run_worker(
            &addr,
            &WorkerConfig {
                worker: "w1".to_string(),
                ..Default::default()
            },
        )
        .unwrap();
        assert_eq!(report.scenarios, 3);
        assert_eq!(report.shards_stale, 0);
        assert!(coordinator.finished());
        let telemetry = coordinator.telemetry();
        assert_eq!(telemetry.completed, report.shards_completed);
        assert_eq!(
            telemetry.per_worker.get("w1"),
            Some(&report.shards_completed)
        );
        server.stop();

        let merged = stream::merge(&dir).unwrap();
        assert_eq!(merged.scenarios.len(), 3);
        std::fs::remove_dir_all(&dir).ok();
    }
}
